#!/usr/bin/env python3
"""Compares a fresh BENCH_engine.json snapshot against the committed
baseline and fails on regression.

Both files must be in the normalized form written by
tools/bench_engine_snapshot.py (schema 1). A benchmark regresses when its
ns_per_op exceeds the baseline by more than the threshold (default 25%,
tuned for shared CI runners — real regressions from a lost optimization are
typically 2-10x). Benchmarks present only in the baseline fail the check
(a renamed or deleted benchmark must update the baseline deliberately);
benchmarks present only in the candidate are reported but pass.

Usage:
    tools/compare_bench.py <baseline.json> <candidate.json> [--threshold=0.25]

Exit codes: 0 ok, 1 regression or missing benchmark, 2 usage/parse error.
"""
import json
import sys


def load(path: str) -> dict:
    with open(path) as f:
        snapshot = json.load(f)
    if snapshot.get("schema") != 1:
        raise ValueError(f"{path}: unexpected schema {snapshot.get('schema')!r}")
    return snapshot["benchmarks"]


def main(argv: list) -> int:
    threshold = 0.25
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        baseline = load(paths[0])
        candidate = load(paths[1])
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    failures = []
    width = max((len(name) for name in baseline), default=0)
    for name in sorted(baseline):
        base_ns = baseline[name]["ns_per_op"]
        if name not in candidate:
            failures.append(f"{name}: missing from candidate snapshot")
            print(f"{name:<{width}}  {base_ns:>10.1f} ns  ->  MISSING")
            continue
        cand_ns = candidate[name]["ns_per_op"]
        delta = (cand_ns - base_ns) / base_ns if base_ns > 0 else 0.0
        marker = ""
        if delta > threshold:
            marker = "  REGRESSION"
            failures.append(f"{name}: {base_ns:.1f} -> {cand_ns:.1f} ns ({delta:+.1%})")
        print(f"{name:<{width}}  {base_ns:>10.1f} ns  ->  {cand_ns:>10.1f} ns  {delta:+7.1%}{marker}")
    for name in sorted(set(candidate) - set(baseline)):
        print(f"{name:<{width}}  (new, no baseline)  {candidate[name]['ns_per_op']:.1f} ns")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond {threshold:.0%}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nok: no benchmark regressed beyond {threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
