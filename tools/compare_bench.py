#!/usr/bin/env python3
"""Compares a fresh BENCH_engine.json snapshot against the committed
baseline and fails on regression.

Both files must be in the normalized form written by
tools/bench_engine_snapshot.py (schema 1). A benchmark regresses when its
ns_per_op exceeds the baseline by more than the threshold (default 25%,
tuned for shared CI runners — real regressions from a lost optimization are
typically 2-10x). Improvements beyond the same threshold are reported (and
counted in the summary) but never fail. Benchmarks present in only one of
the two snapshots are reported as warnings and pass by default — a freshly
added benchmark should not break CI until the baseline is regenerated; pass
--require-all to turn a benchmark missing from the candidate back into a
failure (deliberate renames/deletions must then update the baseline).

Usage:
    tools/compare_bench.py <baseline.json> <candidate.json> \
        [--threshold=0.25] [--require-all]

Exit codes: 0 ok, 1 regression (or --require-all violation), 2 usage/parse
error.
"""
import json
import sys


def load(path: str) -> dict:
    with open(path) as f:
        snapshot = json.load(f)
    if snapshot.get("schema") != 1:
        raise ValueError(f"{path}: unexpected schema {snapshot.get('schema')!r}")
    return snapshot["benchmarks"]


def main(argv: list) -> int:
    threshold = 0.25
    require_all = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg == "--require-all":
            require_all = True
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        baseline = load(paths[0])
        candidate = load(paths[1])
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    failures = []
    warnings = []
    improvements = 0
    width = max((len(name) for name in baseline), default=0)
    for name in sorted(baseline):
        base_ns = baseline[name]["ns_per_op"]
        if name not in candidate:
            message = f"{name}: missing from candidate snapshot"
            (failures if require_all else warnings).append(message)
            print(f"{name:<{width}}  {base_ns:>10.1f} ns  ->  MISSING")
            continue
        cand_ns = candidate[name]["ns_per_op"]
        delta = (cand_ns - base_ns) / base_ns if base_ns > 0 else 0.0
        marker = ""
        if delta > threshold:
            marker = "  REGRESSION"
            failures.append(f"{name}: {base_ns:.1f} -> {cand_ns:.1f} ns ({delta:+.1%})")
        elif delta < -threshold:
            marker = "  IMPROVEMENT"
            improvements += 1
        print(f"{name:<{width}}  {base_ns:>10.1f} ns  ->  {cand_ns:>10.1f} ns  {delta:+7.1%}{marker}")
    for name in sorted(set(candidate) - set(baseline)):
        warnings.append(f"{name}: not in baseline snapshot")
        print(f"{name:<{width}}  (new, no baseline)  {candidate[name]['ns_per_op']:.1f} ns")

    if warnings:
        print(f"\n{len(warnings)} benchmark(s) without a counterpart "
              f"(regenerate the baseline to cover them):", file=sys.stderr)
        for warning in warnings:
            print(f"  warning: {warning}", file=sys.stderr)
    if improvements:
        print(f"{improvements} benchmark(s) improved beyond {threshold:.0%} "
              f"(consider refreshing the baseline)")
    if failures:
        print(f"\n{len(failures)} benchmark(s) failed the {threshold:.0%} check:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nok: no benchmark regressed beyond {threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
