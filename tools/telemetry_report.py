#!/usr/bin/env python3
"""Summarizes and diffs quicer telemetry reports.

A telemetry report is the JSON document written by `bench_suite
--telemetry=FILE` (or `run --grid`/`collect` with the same flag): format
"quicer-telemetry-v1", one entry per executed (bench, sweep) with its
wall-clock execute time, executed run count and runtime counters (event
loop, pools, netem queues, recovery — see docs/observability.md).

Usage:
    tools/telemetry_report.py summary <report.json> [more.json ...]
        Prints one table row per (bench, sweep): wall time, runs, runs/s,
        simulated events/s, and the throughput-relevant counters. Multiple
        reports concatenate (a collect report plus a local run, say).

    tools/telemetry_report.py diff <baseline.json> <candidate.json> \
        [--threshold=0.25] [--strict]
        Compares sweeps present in both reports. Deterministic counters
        (sim.*, quic.*, netem.*, recovery.*) are expected to be EQUAL for
        the same grid: any difference is reported, and fails the diff under
        --strict. Wall-clock changes beyond the threshold (default 25%) are
        reported as slower/faster but only fail under --strict.

Exit codes: 0 ok, 1 differences under --strict, 2 usage/parse error.
"""
import json
import sys

FORMAT = "quicer-telemetry-v1"

# Timer-valued counters (micros spent per phase) vary with machine load.
# Pool counters vary with thread count and shard layout: run contexts are
# reused thread-locally, so a warm context skips acquires a cold one
# performs, releases triggered by the next sweep's reset are attributed
# across sweep boundaries, and high-water marks depend on scheduling. Only
# flag those on wall-clock-sized swings, never on exact inequality.
# Everything else — event loop totals, netem enqueues/drops, recovery
# activity — is determined by the grid alone and must agree exactly.
TIMER_PREFIXES = ("sweep.",)
LAYOUT_PREFIXES = ("quic.pool.",)
LAYOUT_SUFFIXES = ("max_queue_pkts", "max_queue_bytes")


def deterministic(name: str) -> bool:
    if name.startswith(TIMER_PREFIXES) or name.startswith(LAYOUT_PREFIXES):
        return False
    return not name.endswith(LAYOUT_SUFFIXES)


def load(path: str) -> list:
    with open(path) as f:
        report = json.load(f)
    if report.get("format") != FORMAT:
        raise ValueError(f"{path}: unexpected format {report.get('format')!r}")
    return report.get("sweeps", [])


def key(entry: dict) -> str:
    bench = entry.get("bench", "")
    sweep = entry.get("sweep", "")
    return f"{bench}/{sweep}" if bench else sweep


def summary(paths: list) -> int:
    entries = []
    for path in paths:
        entries.extend(load(path))
    if not entries:
        print("no sweeps recorded")
        return 0
    width = max(len(key(e)) for e in entries)
    width = max(width, len("sweep"))
    print(f"{'sweep':<{width}}  {'wall_s':>8}  {'runs':>8}  {'runs/s':>9}  "
          f"{'events/s':>12}  {'events':>12}")
    total_wall = 0.0
    total_runs = 0
    total_events = 0
    for entry in entries:
        wall = float(entry.get("wall_seconds", 0.0))
        runs = int(entry.get("executed_runs", 0))
        counters = entry.get("counters", {})
        events = int(counters.get("sim.events_run", 0))
        rps = runs / wall if wall > 0 else 0.0
        eps = float(entry.get("events_per_sec", events / wall if wall > 0 else 0.0))
        print(f"{key(entry):<{width}}  {wall:>8.2f}  {runs:>8}  {rps:>9.1f}  "
              f"{eps:>12.0f}  {events:>12}")
        total_wall += wall
        total_runs += runs
        total_events += events
    rps = total_runs / total_wall if total_wall > 0 else 0.0
    eps = total_events / total_wall if total_wall > 0 else 0.0
    print(f"{'TOTAL':<{width}}  {total_wall:>8.2f}  {total_runs:>8}  {rps:>9.1f}  "
          f"{eps:>12.0f}  {total_events:>12}")
    return 0


def diff(baseline_path: str, candidate_path: str, threshold: float,
         strict: bool) -> int:
    # Keyed by sweep name alone: a merged report (bench_suite merge
    # --telemetry) has no bench attribution, and sweep names are unique
    # across the suite.
    baseline = {e.get("sweep", ""): e for e in load(baseline_path)}
    candidate = {e.get("sweep", ""): e for e in load(candidate_path)}
    problems = []
    notes = []

    for name in sorted(set(baseline) - set(candidate)):
        notes.append(f"{name}: only in baseline")
    for name in sorted(set(candidate) - set(baseline)):
        notes.append(f"{name}: only in candidate")

    for name in sorted(set(baseline) & set(candidate)):
        base, cand = baseline[name], candidate[name]
        base_counters = base.get("counters", {})
        cand_counters = cand.get("counters", {})
        for counter in sorted(set(base_counters) | set(cand_counters)):
            b = int(base_counters.get(counter, 0))
            c = int(cand_counters.get(counter, 0))
            if b == c:
                continue
            if deterministic(counter):
                problems.append(f"{name}: {counter} {b} -> {c}")
            else:
                notes.append(f"{name}: {counter} {b} -> {c} (load-dependent)")
        # Wall times are informational only: a merged report's wall is the
        # shards' *summed compute*, which legitimately grows when memoized
        # runners recompute per process, and sub-second sweeps are noise.
        base_wall = float(base.get("wall_seconds", 0.0))
        cand_wall = float(cand.get("wall_seconds", 0.0))
        if base_wall > 0.5 and cand_wall > 0:
            delta = (cand_wall - base_wall) / base_wall
            if abs(delta) > threshold:
                direction = "slower" if delta > 0 else "faster"
                notes.append(f"{name}: wall {base_wall:.2f}s -> {cand_wall:.2f}s "
                             f"({delta:+.1%} {direction})")

    for note in notes:
        print(f"note: {note}")
    if problems:
        print(f"{len(problems)} difference(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1 if strict else 0
    print("ok: reports agree on every shared sweep's deterministic counters")
    return 0


def main(argv: list) -> int:
    threshold = 0.25
    strict = False
    positional = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg == "--strict":
            strict = True
        else:
            positional.append(arg)
    if not positional:
        print(__doc__, file=sys.stderr)
        return 2
    mode, paths = positional[0], positional[1:]
    try:
        if mode == "summary" and paths:
            return summary(paths)
        if mode == "diff" and len(paths) == 2:
            return diff(paths[0], paths[1], threshold, strict)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
