#!/usr/bin/env python3
"""quicer project lint: determinism, codec-coverage, and telemetry rules.

The simulator's core contract is that every exported byte is a pure function
of the scenario: identical across thread counts, shard layouts, and the
distributed queue. This tool statically rejects the code patterns that have
historically broken that contract, plus two registry-coverage rules that keep
the scenario codec and the telemetry counter table in sync with the structs
they serialize.

Rules
-----
  ND001  std::rand/srand/rand(): banned everywhere (runs draw from the
         per-repetition forked sim::Rng only).
  ND002  Wall clocks (std::chrono::system_clock, std::chrono::steady_clock,
         std::time/time(nullptr)): banned in simulation and export code.
         Timing *measurement* (phase timers, heartbeats) is legitimate and
         carries a per-site or per-file suppression naming the reason.
  ND003  std::getenv: banned outside the bench_suite driver (environment
         must not leak into run behaviour; the driver owns the CLI surface).
  ND004  Iterating an unordered_map/unordered_set in a file that writes
         CSV/JSON/partial/scenario output: iteration order is
         implementation-defined and has produced nondeterministic exports.
  ND005  Pointer-valued comparisons in sort predicates: pointer order is
         allocation order, which varies run to run.
  CC001  Codec coverage: every serializable field of ExperimentConfig must
         appear in scenario.cc's ConfigFields() descriptor table, every
         netem model field in netem/codec.cc, and every SweepAxes axis in
         the scenario JSON writer. A field that is deliberately not part of
         the scenario carries a suppression on its declaration line.
  TL001  Telemetry registry: the descriptor table in obs/telemetry.cc must
         match the Counter enum 1:1, names must be dotted lower_snake under
         a known layer prefix, and any counter-name string literal elsewhere
         in the tree must name a registered counter.

Suppressions
------------
  // lint:allow(RULE): reason          same line or the line above
  // lint:allow-file(RULE): reason     anywhere in the file, file-wide
A reason is mandatory; an empty reason is itself a finding.

Usage
-----
  tools/lint/quicer_lint.py [--root DIR]      lint DIR (default: repo root)
  tools/lint/quicer_lint.py --self-test       run the tests/lint fixtures
  tools/lint/quicer_lint.py --list-rules
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import re
import sys
from pathlib import Path

RULES = {
    "ND001": "std::rand/srand banned; use the per-repetition sim::Rng",
    "ND002": "wall clock (system_clock/steady_clock/time()) in sim/export code",
    "ND003": "std::getenv outside the bench_suite driver",
    "ND004": "unordered container iteration in an export-writing file",
    "ND005": "pointer-value comparison in a sort predicate",
    "CC001": "serializable field missing from its codec/descriptor table",
    "TL001": "telemetry counter table out of sync or bad counter name",
}

ALLOW_RE = re.compile(r"lint:allow\(([A-Z0-9, ]+)\)\s*:\s*(.*)")
ALLOW_FILE_RE = re.compile(r"lint:allow-file\(([A-Z0-9, ]+)\)\s*:\s*(.*)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def strip_comments(text, keep_strings):
    """Blank out comments (and optionally string/char literals) while
    preserving line structure, so regexes see code only and line numbers
    survive."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append(c if keep_strings else " ")
                if nxt:
                    out.append(nxt if keep_strings else " ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; bail back to code
                state = "code"
                out.append(c)
            else:
                out.append(c if keep_strings else " ")
        i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, path, root):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = self.text.split("\n")
        # Code with neither comments nor literal contents: determinism rules.
        self.code = strip_comments(self.text, keep_strings=False)
        self.code_lines = self.code.split("\n")
        # Code with literals kept: the counter-name literal scan.
        self.code_str = strip_comments(self.text, keep_strings=True)
        self.allow = {}  # line number -> set of rule ids
        self.allow_file = set()
        self.bad_suppressions = []  # (line, message)
        for idx, line in enumerate(self.raw_lines, start=1):
            m = ALLOW_RE.search(line)
            if m and "allow-file" not in line:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                if not m.group(2).strip():
                    self.bad_suppressions.append(
                        (idx, "suppression without a reason"))
                for r in rules:
                    if r not in RULES:
                        self.bad_suppressions.append(
                            (idx, f"suppression names unknown rule {r}"))
                # Covers its own line and the next (comment-above style).
                self.allow.setdefault(idx, set()).update(rules)
                self.allow.setdefault(idx + 1, set()).update(rules)
            m = ALLOW_FILE_RE.search(line)
            if m:
                if not m.group(2).strip():
                    self.bad_suppressions.append(
                        (idx, "file suppression without a reason"))
                self.allow_file.update(
                    r.strip() for r in m.group(1).split(",") if r.strip())

    def suppressed(self, rule, line):
        return rule in self.allow_file or rule in self.allow.get(line, set())


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


# ---------------------------------------------------------------------------
# ND rules: per-file pattern scans.
# ---------------------------------------------------------------------------

ND001_RE = re.compile(r"\bstd::rand\b|\bsrand\s*\(|(?<![\w:.])rand\s*\(\s*\)")
ND002_RE = re.compile(
    r"std::chrono::system_clock|std::chrono::steady_clock|steady_clock::"
    r"|system_clock::|\bstd::time\s*\(|(?<![\w:.>])time\s*\(\s*(?:nullptr|NULL|0)\s*\)")
ND003_RE = re.compile(r"\bgetenv\s*\(")

EXPORT_MARKER_RE = re.compile(
    r"\bCsv\w*|\bJson\w*|std::ofstream|\bPartial\w*|\bScenario\w*|WriteFile")
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;{]*?>\s+(\w+)")
SORT_CALL_RE = re.compile(
    r"std::(?:stable_)?sort\s*\(|std::nth_element\s*\(|std::partial_sort\s*\(")
LAMBDA_RE = re.compile(r"\[[^\]\n]*\]\s*\(([^)]*)\)\s*(?:->\s*[\w:]+\s*)?\{")


def scan_nd_rules(sf, findings):
    for rule, rx in (("ND001", ND001_RE), ("ND002", ND002_RE),
                     ("ND003", ND003_RE)):
        if rule == "ND003" and sf.rel == "bench/bench_suite.cc":
            continue  # the driver owns the CLI/environment surface
        for m in rx.finditer(sf.code):
            ln = line_of(sf.code, m.start())
            if sf.suppressed(rule, ln):
                continue
            findings.append(Finding(
                sf.rel, ln, rule,
                f"'{m.group(0).strip()}' — {RULES[rule]}"))

    # ND004: unordered iteration in export-writing files.
    if EXPORT_MARKER_RE.search(sf.code):
        unordered_names = set(UNORDERED_DECL_RE.findall(sf.code))
        if unordered_names:
            names = "|".join(re.escape(n) for n in sorted(unordered_names))
            iter_re = re.compile(
                rf"for\s*\([^;)]*:\s*(?:\w+\.)*({names})\s*\)"
                rf"|\b({names})\s*\.\s*begin\s*\(")
            for m in iter_re.finditer(sf.code):
                ln = line_of(sf.code, m.start())
                if sf.suppressed("ND004", ln):
                    continue
                name = m.group(1) or m.group(2)
                findings.append(Finding(
                    sf.rel, ln, "ND004",
                    f"iteration over unordered container '{name}' in a file "
                    "that writes exports — order is implementation-defined"))

    # ND005: pointer comparisons in sort predicates.
    for call in SORT_CALL_RE.finditer(sf.code):
        window = sf.code[call.start():call.start() + 600]
        lam = LAMBDA_RE.search(window)
        if not lam:
            continue
        params = lam.group(1)
        ptr_params = re.findall(r"\*\s*(\w+)\s*(?:,|$)", params)
        if len(ptr_params) < 2:
            continue
        a, b = ptr_params[0], ptr_params[1]
        body = window[lam.end():]
        depth = 1
        end = 0
        for i, c in enumerate(body):
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        body = body[:end] if end else body
        cmp_re = re.compile(
            rf"(?<![\w*>.]){re.escape(a)}\s*[<>]=?\s*{re.escape(b)}\b"
            rf"|(?<![\w*>.]){re.escape(b)}\s*[<>]=?\s*{re.escape(a)}\b")
        m = cmp_re.search(body)
        if m:
            ln = line_of(sf.code, call.start() + lam.end() + m.start())
            if sf.suppressed("ND005", ln):
                continue
            findings.append(Finding(
                sf.rel, ln, "ND005",
                f"sort predicate compares pointers '{a}'/'{b}' by value — "
                "pointer order is allocation order, not deterministic"))


# ---------------------------------------------------------------------------
# CC001: codec coverage.
# ---------------------------------------------------------------------------

FIELD_DECL_RE = re.compile(
    r"^\s*(?:const\s+)?[A-Za-z_][\w:]*(?:\s*<[^;=]*?>)?[\s&]+"
    r"([A-Za-z_]\w*)\s*(?:\[\d+\])?\s*(?:=[^;]*|\{[^;]*\})?;\s*$")
SKIP_DECL_RE = re.compile(
    r"^\s*(?://|friend\b|using\b|enum\b|struct\b|class\b|return\b|static\b)")


def parse_struct_fields(sf, struct_name):
    """Data members of `struct <name> { ... }`, as (name, line) pairs."""
    m = re.search(rf"struct\s+{struct_name}\s*\{{", sf.code)
    if not m:
        return []
    fields = []
    depth = 1
    pos = m.end()
    start_line = line_of(sf.code, m.end())
    lines = sf.code[pos:].split("\n")
    for off, line in enumerate(lines):
        open_b, close_b = line.count("{"), line.count("}")
        if depth == 1 and not SKIP_DECL_RE.match(line) and "(" not in line.split("=")[0].split("{")[0]:
            dm = FIELD_DECL_RE.match(line)
            if dm:
                fields.append((dm.group(1), start_line + off))
        depth += open_b - close_b
        if depth <= 0:
            break
    return fields


def check_codec_coverage(files, findings):
    by_rel = {sf.rel: sf for sf in files}
    exp = by_rel.get("src/core/experiment.h")
    scen = by_rel.get("src/core/scenario.cc")
    if exp and scen:
        for name, ln in parse_struct_fields(exp, "ExperimentConfig"):
            if exp.suppressed("CC001", ln):
                continue
            if not re.search(rf"\bc\.{re.escape(name)}\b", scen.code):
                findings.append(Finding(
                    exp.rel, ln, "CC001",
                    f"ExperimentConfig::{name} is not read by any "
                    "ConfigFields() descriptor in src/core/scenario.cc — "
                    "serialize it or suppress with the reason it is "
                    "deliberately outside the scenario"))

    model = by_rel.get("src/netem/model.h")
    codec = by_rel.get("src/netem/codec.cc")
    if model and codec:
        for struct in ("LossModel", "QueueModel", "PathOverride", "LinkModel"):
            for name, ln in parse_struct_fields(model, struct):
                if model.suppressed("CC001", ln):
                    continue
                if not re.search(rf"\b{re.escape(name)}\b", codec.code_str):
                    findings.append(Finding(
                        model.rel, ln, "CC001",
                        f"netem::{struct}::{name} never appears in "
                        "src/netem/codec.cc — the scenario codec cannot "
                        "round-trip it"))

    sweep = by_rel.get("src/core/sweep.h")
    if sweep and scen:
        for name, ln in parse_struct_fields(sweep, "SweepAxes"):
            if sweep.suppressed("CC001", ln):
                continue
            if not re.search(rf"\baxes\.{re.escape(name)}\b", scen.code):
                findings.append(Finding(
                    sweep.rel, ln, "CC001",
                    f"SweepAxes::{name} is not written by the scenario JSON "
                    "writer in src/core/scenario.cc"))


# ---------------------------------------------------------------------------
# TL001: telemetry counter registry.
# ---------------------------------------------------------------------------

COUNTER_NAME_RE = re.compile(
    r"^(sim|quic\.pool|netem|recovery|sweep)\.[a-z0-9_]+(\.[a-z0-9_]+)*$")
COUNTER_LITERAL_RE = re.compile(
    r'"((?:sim|quic\.pool|netem|recovery|sweep)\.[a-z0-9_.]+)"')


def parse_counter_enum(sf):
    m = re.search(r"enum\s+Counter\b[^{]*\{", sf.code)
    if not m:
        return []
    body = sf.code[m.end():]
    body = body[:body.find("}")]
    names = re.findall(r"\b(k[A-Z]\w*)\b", body)
    return [n for n in names if n != "kCounterCount"]


def parse_descriptor_names(sf):
    m = re.search(r"kDescriptors\s*=\s*\{\{", sf.code_str)
    if not m:
        return []
    body = sf.code_str[m.end():]
    body = body[:body.find("}};")]
    out = []
    for dm in re.finditer(r'\{\s*"([^"]+)"', body):
        out.append((dm.group(1), line_of(sf.code_str, m.end() + dm.start())))
    return out


def check_telemetry_registry(files, findings):
    by_rel = {sf.rel: sf for sf in files}
    hdr = by_rel.get("src/obs/telemetry.h")
    imp = by_rel.get("src/obs/telemetry.cc")
    registered = set()
    if hdr and imp:
        enum_names = parse_counter_enum(hdr)
        desc = parse_descriptor_names(imp)
        if len(enum_names) != len(desc):
            findings.append(Finding(
                imp.rel, desc[0][1] if desc else 1, "TL001",
                f"descriptor table has {len(desc)} entries but the Counter "
                f"enum declares {len(enum_names)} — every counter needs a "
                "name, in enum order"))
        seen = set()
        for name, ln in desc:
            registered.add(name)
            if name in seen:
                findings.append(Finding(
                    imp.rel, ln, "TL001", f'duplicate counter name "{name}"'))
            seen.add(name)
            if not COUNTER_NAME_RE.match(name) and not imp.suppressed("TL001", ln):
                findings.append(Finding(
                    imp.rel, ln, "TL001",
                    f'counter name "{name}" violates the naming policy: '
                    "dotted lower_snake under sim/quic.pool/netem/recovery/"
                    "sweep"))
    if not registered:
        return
    # Counter-name literals anywhere else must name a registered counter.
    for sf in files:
        if sf.rel == "src/obs/telemetry.cc":
            continue
        for m in COUNTER_LITERAL_RE.finditer(sf.code_str):
            name = m.group(1)
            if name in registered:
                continue
            ln = line_of(sf.code_str, m.start())
            if sf.suppressed("TL001", ln):
                continue
            findings.append(Finding(
                sf.rel, ln, "TL001",
                f'"{name}" looks like a telemetry counter name but is not in '
                "the registry (src/obs/telemetry.cc)"))


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

LINT_DIRS = ("src", "bench")
LINT_SUFFIXES = (".h", ".cc")


def collect_files(root):
    files = []
    for d in LINT_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in LINT_SUFFIXES and path.is_file():
                files.append(SourceFile(path, root))
    return files


def lint_root(root):
    files = collect_files(root)
    findings = []
    for sf in files:
        for ln, msg in sf.bad_suppressions:
            findings.append(Finding(sf.rel, ln, "LINT", msg))
        scan_nd_rules(sf, findings)
    check_codec_coverage(files, findings)
    check_telemetry_registry(files, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# ---------------------------------------------------------------------------
# Self-test over tests/lint/fixtures.
# ---------------------------------------------------------------------------

def self_test(fixtures):
    """Each bad_<rule>* fixture tree must produce ≥1 finding of its rule and
    none of any other; clean/suppressed trees must produce none."""
    failures = []
    cases = sorted(p for p in fixtures.iterdir() if p.is_dir())
    if not cases:
        print(f"self-test: no fixture trees under {fixtures}", file=sys.stderr)
        return 2
    tested_rules = set()
    for case in cases:
        findings = lint_root(case)
        got_rules = {f.rule for f in findings}
        name = case.name
        if name.startswith("bad_"):
            want = name.split("_")[1].upper()
            tested_rules.add(want)
            if want not in got_rules:
                failures.append(f"{name}: expected a {want} finding, got "
                                f"{sorted(got_rules) or 'none'}")
            if got_rules - {want}:
                failures.append(f"{name}: unexpected extra findings "
                                f"{sorted(got_rules - {want})}: "
                                + "; ".join(str(f) for f in findings
                                            if f.rule != want))
        else:  # clean_* / suppressed_*: must be silent
            if findings:
                failures.append(f"{name}: expected no findings, got:\n  "
                                + "\n  ".join(str(f) for f in findings))
    missing = set(RULES) - tested_rules
    if missing:
        failures.append(f"rules with no bad_* fixture: {sorted(missing)}")
    if failures:
        print("self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"self-test OK: {len(cases)} fixture trees, "
          f"{len(tested_rules)} rules covered")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parents[2],
                    help="tree to lint (default: repo root)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite under tests/lint/fixtures")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule}  {desc}")
        return 0
    if args.self_test:
        fixtures = Path(__file__).resolve().parents[2] / "tests/lint/fixtures"
        return self_test(fixtures)

    findings = lint_root(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} finding(s). Suppress a legitimate site "
              "with '// lint:allow(RULE): reason' — see "
              "docs/static-analysis.md.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
