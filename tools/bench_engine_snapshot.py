#!/usr/bin/env python3
"""Runs bench_micro_engine with --benchmark_format=json and writes a
normalized BENCH_engine.json snapshot.

The normalized form is stable across google-benchmark versions and easy to
diff in review:

    {
      "schema": 1,
      "git_sha": "<HEAD commit, or 'unknown' outside a checkout>",
      "generated_utc": "<YYYY-MM-DDTHH:MM:SSZ>",
      "benchmarks": {
        "<name>": {"ns_per_op": <real ns/iter>, "runs_per_sec": <1e9/ns>}
      }
    }

Only per-benchmark medians/means are kept (aggregate rows preferred when
repetitions are enabled); machine noise from the benchmark context (load
average, CPU scaling) is dropped so snapshots diff cleanly. git_sha and
generated_utc record where the numbers came from; tools/compare_bench.py
reads only "schema" and "benchmarks", so provenance churn never fails a
comparison.

Usage:
    tools/bench_engine_snapshot.py <path/to/bench_micro_engine> [out.json]
        [-- <extra benchmark flags>]
"""
import datetime
import json
import subprocess
import sys


def git_sha() -> str:
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True)
    except OSError:
        return "unknown"
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


def normalize(raw: dict) -> dict:
    # Prefer aggregate "median" rows when present; otherwise take the plain
    # iteration rows. google-benchmark emits one row per benchmark/aggregate.
    rows = raw.get("benchmarks", [])
    medians = {}
    plain = {}
    for row in rows:
        name = row.get("run_name", row.get("name", ""))
        if not name:
            continue
        # Convert reported time to nanoseconds.
        unit = row.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
        ns = float(row.get("real_time", 0.0)) * scale
        if row.get("run_type") == "aggregate":
            if row.get("aggregate_name") == "median":
                medians[name] = ns
        else:
            plain[name] = ns
    chosen = {**plain, **medians}
    out = {"schema": 1, "benchmarks": {}}
    for name in sorted(chosen):
        ns = chosen[name]
        out["benchmarks"][name] = {
            "ns_per_op": round(ns, 1),
            "runs_per_sec": round(1e9 / ns, 1) if ns > 0 else 0.0,
        }
    return out


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    args = argv[1:]
    extra = []
    if "--" in args:
        split = args.index("--")
        args, extra = args[:split], args[split + 1 :]
    binary = args[0]
    out_path = args[1] if len(args) > 1 else "BENCH_engine.json"

    cmd = [binary, "--benchmark_format=json"] + extra
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        return proc.returncode
    snapshot = normalize(json.loads(proc.stdout))
    snapshot["git_sha"] = git_sha()
    snapshot["generated_utc"] = datetime.datetime.now(
        datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    with open(out_path, "w") as f:
        json.dump(snapshot, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path} ({len(snapshot['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
