// Sweep-engine walkthrough + scheduling comparison.
//
// Declares a (client × behavior × RTT) grid once, then runs it two ways:
//
//  1. the pre-refactor scheduling: one fresh spawn-and-join thread team per
//     grid point, parallel only within the point's repetitions;
//  2. the sweep engine: every (point × repetition) job scheduled globally on
//     the persistent work-stealing pool, streamed into per-point
//     accumulators.
//
// Both produce bit-identical per-point medians (same seed schedule); the
// engine saves the per-point thread spawn/join overhead and keeps the pool
// busy across point boundaries, which is what the wall-clock delta shows.
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/sweep.h"
#include "core/thread_pool.h"

namespace {

using namespace quicer;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// The old core/parallel.cc scheduling: spawn + join per call.
std::vector<double> SpawnJoinPerPoint(core::ExperimentConfig config, int repetitions) {
  std::vector<double> values(static_cast<std::size_t>(repetitions));
  const std::uint64_t base_seed = config.seed;
  std::atomic<int> next{0};
  auto worker = [&] {
    for (int i = next.fetch_add(1); i < repetitions; i = next.fetch_add(1)) {
      core::ExperimentConfig run = config;
      run.seed = base_seed + static_cast<std::uint64_t>(i) * 7919;
      values[static_cast<std::size_t>(i)] = core::RunExperiment(run).TtfbMs();
    }
  };
  unsigned threads = core::ThreadPool::Global().size();
  if (threads > static_cast<unsigned>(repetitions)) threads = repetitions;
  std::vector<std::thread> team;
  team.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) team.emplace_back(worker);
  for (std::thread& thread : team) thread.join();
  return values;
}

}  // namespace

int main() {
  core::SweepSpec spec;
  spec.name = "sweep_grid_example";
  spec.base.response_body_bytes = 4096;
  spec.axes.clients = {clients::ClientImpl::kQuicGo, clients::ClientImpl::kNgtcp2,
                       clients::ClientImpl::kPicoquic, clients::ClientImpl::kNeqo};
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.axes.rtts = {sim::Millis(1), sim::Millis(5), sim::Millis(9), sim::Millis(20),
                    sim::Millis(50), sim::Millis(100)};
  spec.repetitions = 15;

  const auto points = core::Enumerate(spec);
  std::printf("grid: %zu points x %d repetitions = %zu runs, pool of %u threads\n\n",
              points.size(), spec.repetitions, points.size() * spec.repetitions,
              core::ThreadPool::Global().size());

  // 1. Per-point spawn/join (the pre-refactor harness).
  const auto legacy_start = std::chrono::steady_clock::now();
  std::vector<double> legacy_medians;
  for (const core::SweepPoint& point : points) {
    std::vector<double> values = SpawnJoinPerPoint(point.config, spec.repetitions);
    std::vector<double> valid;
    for (double v : values) {
      if (v >= 0) valid.push_back(v);
    }
    legacy_medians.push_back(stats::Median(valid));
  }
  const double legacy_seconds = Seconds(legacy_start);

  // 2. The sweep engine: global scheduling, streaming aggregation.
  const auto sweep_start = std::chrono::steady_clock::now();
  const core::SweepResult result = core::RunSweep(spec);
  const double sweep_seconds = Seconds(sweep_start);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    if (result.points[i].values().Median() != legacy_medians[i]) ++mismatches;
  }

  std::printf("per-point spawn/join: %6.3f s  (%zu thread teams spawned+joined)\n",
              legacy_seconds, points.size());
  std::printf("sweep engine:         %6.3f s  (persistent pool, global schedule)\n",
              sweep_seconds);
  std::printf("speedup: %.2fx, median mismatches: %zu (must be 0)\n",
              legacy_seconds / sweep_seconds, mismatches);
  core::MaybeWriteSweepData(result);
  return mismatches == 0 ? 0 : 1;
}
