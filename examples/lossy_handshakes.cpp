// Lossy handshakes: reproduce the paper's two deterministic loss scenarios
// for any client implementation and print the recovery story.
//
//   ./lossy_handshakes [client]   (default quic-go; try picoquic or quiche)
#include <cstdio>
#include <cstring>

#include "core/experiment.h"
#include "core/loss_scenarios.h"
#include "stats/stats.h"

using namespace quicer;

namespace {

clients::ClientImpl ParseClient(const char* name) {
  for (clients::ClientImpl impl : clients::kAllClients) {
    if (clients::Name(impl) == name) return impl;
  }
  std::printf("unknown client '%s'; using quic-go\n", name);
  return clients::ClientImpl::kQuicGo;
}

void Report(const char* scenario, core::ExperimentConfig config) {
  std::printf("\n--- %s ---\n", scenario);
  for (quic::ServerBehavior behavior :
       {quic::ServerBehavior::kWaitForCertificate, quic::ServerBehavior::kInstantAck}) {
    config.behavior = behavior;
    if (std::strcmp(scenario, "first server flight tail lost") == 0) {
      config.loss = core::FirstServerFlightTailLoss(behavior, config.certificate_bytes,
                                                    config.http);
    }
    const core::ExperimentResult result = core::RunExperiment(config);
    if (result.client.aborted) {
      std::printf("%5s: connection aborted (%s)\n", ToString(behavior),
                  result.client.abort_reason.c_str());
      continue;
    }
    std::printf("%5s: TTFB %7.1f ms | client PTO expiries %d, probes %d | "
                "server PTO expiries %d | spurious retx %d\n",
                ToString(behavior), result.TtfbMs(), result.client.pto_expirations,
                result.client.probe_datagrams_sent, result.server.pto_expirations,
                result.client.spurious_retransmits + result.server.spurious_retransmits);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const clients::ClientImpl impl = argc > 1 ? ParseClient(argv[1])
                                            : clients::ClientImpl::kQuicGo;
  std::printf("Loss scenarios for %s at 9 ms RTT (10 KB transfer, HTTP/1.1)\n",
              std::string(clients::Name(impl)).c_str());

  core::ExperimentConfig base;
  base.client = impl;
  base.rtt = sim::Millis(9);
  base.response_body_bytes = http::kSmallFileBytes;
  base.signing = tls::SigningModel{sim::Millis(2.8), 0.0};

  Report("first server flight tail lost", base);

  core::ExperimentConfig client_loss = base;
  client_loss.loss = core::SecondClientFlightLoss(impl);
  Report("entire second client flight lost", client_loss);

  std::printf("\nWhen the server flight is lost, the instant ACK backfires: it is not\n"
              "ack-eliciting, so the server holds no RTT sample and resends only after its\n"
              "default PTO. When the client flight is lost, the accurate IACK RTT sample\n"
              "lets the client resend the request ~3 x (server processing) sooner.\n");
  return 0;
}
