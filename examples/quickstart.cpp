// Quickstart: run one QUIC handshake + 10 KB GET against the reference
// server in both frontend modes (wait-for-certificate vs instant ACK) and
// print the packet timeline plus the headline metrics.
//
//   ./quickstart [delta_t_ms]   (default 25 ms certificate-store delay)
#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"

using namespace quicer;

namespace {

void RunOnce(quic::ServerBehavior behavior, sim::Duration delta_t) {
  core::ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.http = http::Version::kHttp1;
  config.behavior = behavior;
  config.rtt = sim::Millis(9);
  config.cert_fetch_delay = delta_t;
  config.response_body_bytes = http::kSmallFileBytes;
  config.signing = tls::SigningModel{sim::Millis(2.8), 0.0};

  std::printf("\n=== %s (delta_t = %.0f ms) ===\n", ToString(behavior),
              sim::ToMillis(delta_t));
  const core::ExperimentResult result = core::RunExperiment(
      config, [](const quic::ClientConnection& client, const quic::ServerConnection&) {
        std::printf("client packet timeline:\n");
        for (const auto& event : client.trace().packets()) {
          std::printf("  %8.3f ms  %s %-9s pn=%llu %4zu B%s\n", sim::ToMillis(event.time),
                      event.sent ? "->" : "<-", std::string(ToString(event.space)).c_str(),
                      static_cast<unsigned long long>(event.packet_number), event.size,
                      event.ack_eliciting ? "" : "  (not ack-eliciting)");
        }
      });

  std::printf("first ACK received:   %8.3f ms\n", sim::ToMillis(result.client.first_ack_received));
  std::printf("first SH received:    %8.3f ms\n",
              sim::ToMillis(result.client.first_crypto_received));
  std::printf("first RTT sample:     %8.3f ms\n", sim::ToMillis(result.client.first_rtt_sample));
  std::printf("first PTO period:     %8.3f ms\n", sim::ToMillis(result.client.first_pto_period));
  std::printf("TTFB:                 %8.3f ms\n", result.TtfbMs());
  std::printf("response complete:    %8.3f ms\n",
              sim::ToMillis(result.client.response_complete));
}

}  // namespace

int main(int argc, char** argv) {
  const double delta_ms = argc > 1 ? std::atof(argv[1]) : 25.0;
  std::printf("ReACKed QUICer quickstart: 10 KB GET at 9 ms RTT, certificate-store "
              "delay %.0f ms\n", delta_ms);
  RunOnce(quic::ServerBehavior::kWaitForCertificate, sim::Millis(delta_ms));
  RunOnce(quic::ServerBehavior::kInstantAck, sim::Millis(delta_ms));
  std::printf("\nNote how the instant ACK gives the client an accurate first RTT sample\n"
              "(~9 ms instead of ~%0.f ms), shrinking its first PTO by ~3 x delta_t.\n",
              9.0 + delta_ms);
  return 0;
}
