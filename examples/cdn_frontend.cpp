// CDN frontend scenario: sweep the certificate-store delay Δt and watch the
// instant-ACK trade-off move through the Fig 4 zones — accurate PTO when
// Δt is below the client PTO, spurious probe packets beyond it, and the
// amplification-limit escape when the certificate is large.
//
//   ./cdn_frontend [rtt_ms]   (default 9 ms)
#include <cstdio>
#include <cstdlib>

#include "core/advisor.h"
#include "core/experiment.h"
#include "stats/stats.h"

using namespace quicer;

namespace {

void SweepDelta(double rtt_ms, std::size_t cert_bytes, const char* label) {
  std::printf("\n--- %s ---\n", label);
  std::printf("%10s  %12s  %12s  %14s  %14s  %8s\n", "delta[ms]", "WFC TTFB", "IACK TTFB",
              "IACK probes", "IACK spurious", "advice");
  for (double delta_ms : {1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0}) {
    core::ExperimentConfig config;
    config.client = clients::ClientImpl::kNgtcp2;
    config.rtt = sim::Millis(rtt_ms);
    config.certificate_bytes = cert_bytes;
    config.cert_fetch_delay = sim::Millis(delta_ms);
    config.response_body_bytes = http::kSmallFileBytes;

    config.behavior = quic::ServerBehavior::kWaitForCertificate;
    const double wfc = stats::Median(core::CollectTtfbMs(config, 9));
    config.behavior = quic::ServerBehavior::kInstantAck;
    const double iack = stats::Median(core::CollectTtfbMs(config, 9));
    const double probes = stats::Median(core::RunRepetitions(
        config, 9, [](const core::ExperimentResult& r) {
          return static_cast<double>(r.client.probe_datagrams_sent);
        }));
    const double spurious = stats::Median(core::RunRepetitions(
        config, 9, [](const core::ExperimentResult& r) {
          return static_cast<double>(r.client.spurious_retransmits +
                                     r.server.spurious_retransmits);
        }));

    core::DeploymentScenario scenario;
    scenario.certificate_bytes = cert_bytes;
    scenario.client_frontend_rtt = sim::Millis(rtt_ms);
    scenario.frontend_cert_delay = sim::Millis(delta_ms);
    std::printf("%10.0f  %12.1f  %12.1f  %14.0f  %14.0f  %8s\n", delta_ms, wfc, iack, probes,
                spurious, std::string(ToString(core::Advise(scenario))).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double rtt_ms = argc > 1 ? std::atof(argv[1]) : 9.0;
  std::printf("CDN frontend delta_t sweep at %.0f ms RTT (client PTO boundary: %.0f ms)\n",
              rtt_ms, 3 * rtt_ms);
  SweepDelta(rtt_ms, tls::kSmallCertificateBytes, "small certificate (1,212 B)");
  SweepDelta(rtt_ms, tls::kLargeCertificateBytes,
             "large certificate (5,113 B, exceeds amplification limit)");
  std::printf("\nOnce delta_t crosses ~3 x RTT the instant-ACK client probes before the\n"
              "ServerHello can arrive (futile load) — but with the large certificate those\n"
              "same probes refill the server's 3x budget and speed up the handshake.\n");
  return 0;
}
