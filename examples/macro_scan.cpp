// Macroscopic scan: probe a synthetic Tranco population from one vantage
// point, classify instant-ACK deployment per CDN, and show the ACK->SH
// delay distribution — a miniature of the paper's §4.3 measurement.
//
//   ./macro_scan [population_size]   (default 20000)
#include <cstdio>
#include <cstdlib>
#include <map>

#include "scan/population.h"
#include "scan/prober.h"
#include "stats/histogram.h"
#include "stats/stats.h"

using namespace quicer;

int main(int argc, char** argv) {
  const std::size_t size = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 20000;
  std::printf("Scanning a %zu-domain Tranco-style population from Sao Paulo...\n", size);

  scan::TrancoPopulation population(size, 1);
  scan::Prober prober(3);

  std::map<scan::Cdn, int> total;
  std::map<scan::Cdn, int> iack;
  std::vector<double> cloudflare_delays;

  for (const scan::Domain& domain : population.domains()) {
    if (!domain.speaks_quic) continue;
    const scan::ProbeResult result = prober.Probe(domain, scan::Vantage::kSaoPaulo, 0);
    if (!result.success) continue;
    ++total[domain.cdn];
    if (result.iack_observed) {
      ++iack[domain.cdn];
      if (domain.cdn == scan::Cdn::kCloudflare) {
        cloudflare_delays.push_back(result.ack_sh_delay_ms);
      }
    }
  }

  std::printf("\n%12s  %8s  %10s\n", "CDN", "probed", "IACK [%]");
  for (scan::Cdn cdn : scan::kAllCdns) {
    if (total[cdn] == 0) continue;
    std::printf("%12s  %8d  %10.1f\n", std::string(scan::Name(cdn)).c_str(), total[cdn],
                100.0 * iack[cdn] / total[cdn]);
  }

  if (!cloudflare_delays.empty()) {
    std::printf("\nCloudflare ACK->ServerHello delay (median %.1f ms):\n",
                stats::Median(cloudflare_delays));
    stats::Histogram histogram(0.0, 12.0, 24);
    for (double d : cloudflare_delays) histogram.Add(d);
    std::printf("%s", histogram.Render(48).c_str());
  }
  return 0;
}
