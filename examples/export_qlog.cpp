// Export a connection's qlog trace as JSON-SEQ (draft-ietf-quic-qlog) —
// the logging format the paper's measurement pipeline consumes.
//
//   ./export_qlog [iack|wfc] > trace.qlog
#include <cstdio>
#include <cstring>

#include "core/experiment.h"
#include "core/timeline.h"
#include "qlog/qlog_json.h"

using namespace quicer;

int main(int argc, char** argv) {
  const bool iack = argc > 1 && std::strcmp(argv[1], "iack") == 0;

  core::ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.behavior = iack ? quic::ServerBehavior::kInstantAck
                         : quic::ServerBehavior::kWaitForCertificate;
  config.rtt = sim::Millis(9);
  config.cert_fetch_delay = sim::Millis(25);
  config.response_body_bytes = 10 * 1024;

  std::string client_qlog;
  std::string transcript;
  core::RunExperiment(config, [&](const quic::ClientConnection& client,
                                  const quic::ServerConnection& server) {
    qlog::JsonOptions options;
    options.vantage = "client";
    client_qlog = qlog::ToJsonSeq(client.trace(), options);
    transcript = core::RenderTimeline(core::BuildTimeline(client.trace(), server.trace()));
  });

  std::fputs(client_qlog.c_str(), stdout);
  std::fprintf(stderr, "--- merged timeline (stderr) ---\n%s", transcript.c_str());
  return 0;
}
