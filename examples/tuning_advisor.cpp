// Deployment advisor CLI: should this frontend enable instant ACK?
// Encodes the paper's Table 2 guidelines.
//
//   ./tuning_advisor <cert_bytes> <rtt_ms> <delta_t_ms>
//   e.g. ./tuning_advisor 1212 9 25
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/advisor.h"
#include "core/pto_model.h"

using namespace quicer;

int main(int argc, char** argv) {
  core::DeploymentScenario scenario;
  scenario.certificate_bytes = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1212;
  scenario.client_frontend_rtt = sim::Millis(argc > 2 ? std::atof(argv[2]) : 9.0);
  scenario.frontend_cert_delay = sim::Millis(argc > 3 ? std::atof(argv[3]) : 10.0);

  std::printf("Scenario: certificate %zu B, client RTT %.1f ms, cert-store delay %.1f ms\n\n",
              scenario.certificate_bytes, sim::ToMillis(scenario.client_frontend_rtt),
              sim::ToMillis(scenario.frontend_cert_delay));

  std::printf("certificate exceeds 3x amplification budget: %s\n",
              core::CertificateExceedsAmplificationLimit(scenario) ? "yes" : "no");
  std::printf("delta_t within the client PTO (3 x RTT = %.1f ms): %s\n",
              sim::ToMillis(core::SpuriousBoundary(scenario.client_frontend_rtt)),
              core::DeltaWithinClientPto(scenario) ? "yes" : "no (spurious probes)");
  std::printf("first-PTO saving with instant ACK: %.1f ms\n\n",
              3.0 * sim::ToMillis(scenario.frontend_cert_delay));

  std::printf("%-36s  %s\n", "condition", "recommendation");
  for (core::LossCase loss : {core::LossCase::kNoLoss, core::LossCase::kFirstServerFlightTail,
                              core::LossCase::kSecondClientFlight}) {
    scenario.loss = loss;
    std::printf("%-36s  %s\n", std::string(ToString(loss)).c_str(),
                std::string(ToString(core::Advise(scenario))).c_str());
  }
  std::printf("\n(Table 2 of the paper: in the majority of scenarios instant ACK is advised;\n"
              "hold off when first-server-flight tail loss dominates and the certificate\n"
              "fits the amplification budget, or when delta_t exceeds the client PTO.)\n");
  return 0;
}
