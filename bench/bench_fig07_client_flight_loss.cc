// Fig 7 — TTFB of a 10 KB transfer at 9 ms RTT under loss of the entire
// second client flight (per-implementation datagram mapping, Table 4).
//
// Paper shape: IACK improves the TTFB by ~10-28 ms (the client's accurate
// first RTT sample shortens its PTO by 3x the server-side processing time);
// picoquic does not benefit because it ignores the Initial-space sample.
#include "bench_common.h"
#include "clients/profiles.h"
#include "core/loss_scenarios.h"

int main() {
  using namespace quicer;
  core::PrintTitle(
      "Figure 7: TTFB, 10 KB @ 9 ms RTT, loss of the entire second client flight (HTTP/1.1)");
  bench::PrintAxis(40, 620);
  for (clients::ClientImpl impl : clients::kAllClients) {
    core::ExperimentConfig config;
    config.client = impl;
    config.http = http::Version::kHttp1;
    config.rtt = sim::Millis(9);
    config.response_body_bytes = http::kSmallFileBytes;
    config.loss = core::SecondClientFlightLoss(impl);
    const auto row =
        bench::PrintClientRow(config, std::string(clients::Name(impl)), 40, 620,
                              bench::kRepetitions, /*response_stream_metric=*/true);
    if (row.median_wfc > 0 && row.median_iack > 0) {
      std::printf("%10s  IACK improvement: %+.1f ms\n", "",
                  row.median_wfc - row.median_iack);
    }
  }
  std::printf("\nShape check: IACK saves roughly 3x the server processing delay for every\n"
              "client except picoquic (which ignores the Initial-space RTT sample).\n");
  return 0;
}
