// Fig 7 — TTFB of a 10 KB transfer at 9 ms RTT under loss of the entire
// second client flight (per-implementation datagram mapping, Table 4).
//
// Paper shape: IACK improves the TTFB by ~10-28 ms (the client's accurate
// first RTT sample shortens its PTO by 3x the server-side processing time);
// picoquic does not benefit because it ignores the Initial-space sample.
#include "bench_common.h"
#include "clients/profiles.h"
#include "core/loss_scenarios.h"
#include "core/sweep.h"
#include "registry.h"

QUICER_BENCH("fig07", "Figure 7: TTFB under second-client-flight loss") {
  using namespace quicer;
  core::PrintTitle(
      "Figure 7: TTFB, 10 KB @ 9 ms RTT, loss of the entire second client flight (HTTP/1.1)");
  bench::PrintAxis(40, 620);

  core::SweepSpec spec;
  spec.name = "fig07";
  spec.base.http = http::Version::kHttp1;
  spec.base.rtt = sim::Millis(9);
  spec.base.response_body_bytes = http::kSmallFileBytes;
  spec.axes.clients.assign(clients::kAllClients.begin(), clients::kAllClients.end());
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.axes.losses = {{"second-client-flight", [](const core::ExperimentConfig& c) {
                         return core::SecondClientFlightLoss(c.client);
                       }}};
  spec.repetitions = bench::kRepetitions;
  spec.metrics = {{"response_ttfb_ms", core::MetricMode::kSummary, /*exclude_negative=*/true,
                   [](const core::ExperimentResult& r) { return r.ResponseTtfbMs(); }}};
  bench::Tune(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  for (clients::ClientImpl impl : spec.axes.clients) {
    const auto row = bench::PrintSweepClientRow(result, impl, spec.base.http, 40, 620);
    if (row.median_wfc > 0 && row.median_iack > 0) {
      std::printf("%10s  IACK improvement: %+.1f ms\n", "", row.median_wfc - row.median_iack);
    }
  }
  std::printf("\nShape check: IACK saves roughly 3x the server processing delay for every\n"
              "client except picoquic (which ignores the Initial-space RTT sample).\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("fig07")
