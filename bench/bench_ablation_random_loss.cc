// Robustness ablation — stochastic loss instead of the paper's deterministic
// datagram drops. §2 notes prior work models loss as random drop rates; the
// paper argues deterministic drops expose root causes. This bench shows what
// the stochastic view *would* have reported: averaged over random loss, the
// instant ACK's help (client-flight losses) and harm (server-flight losses)
// partially cancel, which is exactly why the paper's per-scenario analysis
// is needed.
#include "bench_common.h"
#include "core/sweep.h"
#include "registry.h"

namespace {

using namespace quicer;

core::SweepLoss RandomLoss(const char* label, double rate, sim::Direction direction,
                           bool both) {
  core::SweepLoss loss;
  char name[64];
  std::snprintf(name, sizeof(name), "%s %.0f%%", label, rate * 100);
  loss.label = name;
  loss.make = [rate, direction, both](const core::ExperimentConfig&) {
    sim::LossPattern pattern;
    if (both) {
      pattern.DropRandom(sim::Direction::kClientToServer, rate);
      pattern.DropRandom(sim::Direction::kServerToClient, rate);
    } else {
      pattern.DropRandom(direction, rate);
    }
    return pattern;
  };
  return loss;
}

}  // namespace

QUICER_BENCH("ablation_random_loss", "Ablation: stochastic loss rates (WFC vs IACK)") {
  core::PrintTitle("Ablation: stochastic loss (the modelling the paper argues against)");

  const double kRates[] = {0.01, 0.05, 0.10, 0.20};
  struct Section {
    const char* title;
    const char* label;
    sim::Direction direction;
    bool both;
  };
  const Section kSections[] = {
      {"random loss server->client", "s->c", sim::Direction::kServerToClient, false},
      {"random loss client->server", "c->s", sim::Direction::kClientToServer, false},
      {"random loss both directions", "both", sim::Direction::kClientToServer, true},
  };

  core::SweepSpec spec;
  spec.name = "ablation_random_loss";
  spec.base.client = clients::ClientImpl::kQuicGo;
  spec.base.rtt = sim::Millis(9);
  spec.base.response_body_bytes = http::kSmallFileBytes;
  spec.base.time_limit = sim::Seconds(30);
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  for (const Section& section : kSections) {
    for (double rate : kRates) {
      spec.axes.losses.push_back(RandomLoss(section.label, rate, section.direction,
                                            section.both));
    }
  }
  spec.repetitions = 60;
  // The legacy loop's seed schedule (500 + i * 101), completed-only.
  spec.seed_base = 500;
  spec.seed_stride = 101;
  spec.metrics = {{"ttfb_ms", core::MetricMode::kSummary, /*exclude_negative=*/true,
                   [](const core::ExperimentResult& r) {
                     return r.completed ? r.TtfbMs() : -1.0;
                   }}};
  bench::Tune(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  for (const Section& section : kSections) {
    core::PrintHeading(section.title);
    std::printf("%10s  %22s  %22s\n", "loss rate", "WFC med/p90 [ms]", "IACK med/p90 [ms]");
    for (double rate : kRates) {
      char label[64];
      std::snprintf(label, sizeof(label), "%s %.0f%%", section.label, rate * 100);
      auto cell = [&](quic::ServerBehavior behavior) {
        return result.Find([&](const core::SweepPoint& p) {
          return p.loss == label && p.config.behavior == behavior;
        });
      };
      const core::PointSummary* wfc = cell(quic::ServerBehavior::kWaitForCertificate);
      const core::PointSummary* iack = cell(quic::ServerBehavior::kInstantAck);
      auto p90 = [](const core::PointSummary* s) {
        return s->all_aborted() ? -1.0 : s->values().Percentile(90);
      };
      std::printf("%9.0f%%  %10.1f / %8.1f  %10.1f / %8.1f\n", rate * 100,
                  wfc->MedianOrNegative(), p90(wfc), iack->MedianOrNegative(), p90(iack));
    }
  }
  std::printf("\nShape check: under random loss the WFC/IACK medians blur together — the\n"
              "per-flight deterministic scenarios (Fig 6/7) are what isolate the instant\n"
              "ACK's distinct help/harm mechanisms.\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("ablation_random_loss")
