// Robustness ablation — stochastic loss instead of the paper's deterministic
// datagram drops. §2 notes prior work models loss as random drop rates; the
// paper argues deterministic drops expose root causes. This bench shows what
// the stochastic view *would* have reported: averaged over random loss, the
// instant ACK's help (client-flight losses) and harm (server-flight losses)
// partially cancel, which is exactly why the paper's per-scenario analysis
// is needed.
#include "bench_common.h"

namespace {

using namespace quicer;

struct Outcome {
  double median_ms = -1.0;
  double p90_ms = -1.0;
  double completion = 0.0;
};

Outcome Run(quic::ServerBehavior behavior, double rate, sim::Direction direction,
            bool both = false) {
  core::ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.behavior = behavior;
  config.rtt = sim::Millis(9);
  config.response_body_bytes = http::kSmallFileBytes;
  config.time_limit = sim::Seconds(30);
  sim::LossPattern pattern;
  if (both) {
    pattern.DropRandom(sim::Direction::kClientToServer, rate);
    pattern.DropRandom(sim::Direction::kServerToClient, rate);
  } else {
    pattern.DropRandom(direction, rate);
  }
  config.loss = pattern;

  const int repetitions = 60;
  std::vector<double> ttfb;
  int completed = 0;
  for (int i = 0; i < repetitions; ++i) {
    config.seed = 500 + static_cast<std::uint64_t>(i) * 101;
    const core::ExperimentResult result = core::RunExperiment(config);
    if (result.completed) {
      ++completed;
      ttfb.push_back(result.TtfbMs());
    }
  }
  Outcome outcome;
  if (!ttfb.empty()) {
    outcome.median_ms = stats::Median(ttfb);
    outcome.p90_ms = stats::Percentile(ttfb, 90);
  }
  outcome.completion = 100.0 * completed / repetitions;
  return outcome;
}

void Section(const char* title, sim::Direction direction, bool both) {
  core::PrintHeading(title);
  std::printf("%10s  %22s  %22s\n", "loss rate", "WFC med/p90 [ms]", "IACK med/p90 [ms]");
  for (double rate : {0.01, 0.05, 0.10, 0.20}) {
    const Outcome wfc = Run(quic::ServerBehavior::kWaitForCertificate, rate, direction, both);
    const Outcome iack = Run(quic::ServerBehavior::kInstantAck, rate, direction, both);
    std::printf("%9.0f%%  %10.1f / %8.1f  %10.1f / %8.1f\n", rate * 100, wfc.median_ms,
                wfc.p90_ms, iack.median_ms, iack.p90_ms);
  }
}

}  // namespace

int main() {
  core::PrintTitle("Ablation: stochastic loss (the modelling the paper argues against)");
  Section("random loss server->client", sim::Direction::kServerToClient, false);
  Section("random loss client->server", sim::Direction::kClientToServer, false);
  Section("random loss both directions", sim::Direction::kClientToServer, true);
  std::printf("\nShape check: under random loss the WFC/IACK medians blur together — the\n"
              "per-flight deterministic scenarios (Fig 6/7) are what isolate the instant\n"
              "ACK's distinct help/harm mechanisms.\n");
  return 0;
}
