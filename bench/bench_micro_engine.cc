// google-benchmark micro suite: cost of the engine's hot paths — full
// handshakes, 10 KB exchanges, the RTT estimator, PTO computation, ACK-range
// bookkeeping and the event queue (§4.1's "QUIC stack delays" analogue for
// this implementation).
#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "core/pto_model.h"
#include "quic/ack_manager.h"
#include "recovery/pto.h"
#include "recovery/rtt_estimator.h"
#include "sim/event_queue.h"

namespace {

using namespace quicer;

void BM_FullHandshake10KB(benchmark::State& state) {
  const bool iack = state.range(0) != 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::ExperimentConfig config;
    config.client = clients::ClientImpl::kQuicGo;
    config.behavior = iack ? quic::ServerBehavior::kInstantAck
                           : quic::ServerBehavior::kWaitForCertificate;
    config.rtt = sim::Millis(9);
    config.response_body_bytes = 10 * 1024;
    config.seed = seed++;
    benchmark::DoNotOptimize(core::RunExperiment(config));
  }
}
BENCHMARK(BM_FullHandshake10KB)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_AckHeavyTransfer(benchmark::State& state) {
  // A 1 MB download generates hundreds of ACK round trips plus MAX_DATA
  // updates — the ledger/ack-manager steady state the arena and pools exist
  // for (the handshake benches above barely touch it).
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::ExperimentConfig config;
    config.client = clients::ClientImpl::kQuicGo;
    config.rtt = sim::Millis(9);
    config.response_body_bytes = 1024 * 1024;
    config.seed = seed++;
    benchmark::DoNotOptimize(core::RunExperiment(config));
  }
}
BENCHMARK(BM_AckHeavyTransfer)->Unit(benchmark::kMicrosecond);

void BM_RttEstimatorSample(benchmark::State& state) {
  recovery::RttEstimator rtt;
  sim::Duration sample = sim::Millis(9);
  for (auto _ : state) {
    rtt.AddSample(sample, sim::Millis(1));
    benchmark::DoNotOptimize(rtt.smoothed());
    sample = sample == sim::Millis(9) ? sim::Millis(11) : sim::Millis(9);
  }
}
BENCHMARK(BM_RttEstimatorSample);

void BM_PtoComputation(benchmark::State& state) {
  recovery::RttEstimator rtt;
  rtt.AddSample(sim::Millis(9), 0);
  recovery::PtoConfig config;
  int backoff = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(recovery::PtoPeriodWithBackoff(
        rtt, config, quic::PacketNumberSpace::kHandshake, false, backoff));
    backoff = (backoff + 1) % 4;
  }
}
BENCHMARK(BM_PtoComputation);

void BM_AckManagerReceiveAndBuild(benchmark::State& state) {
  quic::AckManager manager(quic::PacketNumberSpace::kAppData, quic::AckPolicy{});
  std::uint64_t pn = 0;
  for (auto _ : state) {
    manager.OnPacketReceived(pn, true, static_cast<sim::Time>(pn));
    ++pn;
    if (pn % 2 == 0) benchmark::DoNotOptimize(manager.BuildAck(static_cast<sim::Time>(pn)));
  }
}
BENCHMARK(BM_AckManagerReceiveAndBuild);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  sim::EventQueue queue;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) queue.Schedule(i, [] {});
    queue.RunUntilIdle();
  }
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_PtoEvolutionModel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputePtoEvolution(sim::Millis(9), sim::Millis(4), 50));
  }
}
BENCHMARK(BM_PtoEvolutionModel);

}  // namespace

BENCHMARK_MAIN();
