// Fig 4, engine edition — the numerical sweet-spot analysis re-measured with
// the full packet-level engine instead of the closed-form model: first-PTO
// reduction (in RTT units) and actual spurious client probes across the
// (RTT, Δt) grid. Cross-validates the bench_fig04 analysis: the measured
// surface must match 3Δt/RTT and the measured spurious zone the Δt > 3·RTT
// boundary (shifted slightly by the server's processing time, which the
// closed-form model does not carry).
#include "bench_common.h"
#include "core/parallel.h"
#include "core/pto_model.h"

namespace {

using namespace quicer;

struct CellResult {
  double reduction_rtts = 0.0;
  double spurious_probes = 0.0;
};

CellResult Measure(double rtt_ms, double delta_ms) {
  core::ExperimentConfig config;
  config.client = clients::ClientImpl::kNgtcp2;
  config.rtt = sim::Millis(rtt_ms);
  config.cert_fetch_delay = sim::Millis(delta_ms);
  config.signing = tls::SigningModel{sim::Millis(1.0), 0.0};
  config.response_body_bytes = 4096;
  config.time_limit = sim::Seconds(60);

  auto first_pto = [](const core::ExperimentResult& r) {
    return sim::ToMillis(r.client.first_pto_period);
  };
  config.behavior = quic::ServerBehavior::kWaitForCertificate;
  const double wfc = stats::Median(core::RunRepetitionsParallel(config, 9, first_pto));
  config.behavior = quic::ServerBehavior::kInstantAck;
  const double iack = stats::Median(core::RunRepetitionsParallel(config, 9, first_pto));
  const double probes = stats::Median(core::RunRepetitionsParallel(
      config, 9, [](const core::ExperimentResult& r) {
        return static_cast<double>(r.client.pto_expirations);
      }));

  CellResult cell;
  cell.reduction_rtts = (wfc - iack) / rtt_ms;
  cell.spurious_probes = probes;
  return cell;
}

}  // namespace

int main() {
  core::PrintTitle("Figure 4 (engine-measured): first-PTO reduction and spurious probes");
  const double deltas[] = {1.0, 9.0, 25.0};
  std::printf("%10s", "RTT [ms]");
  for (double d : deltas) std::printf("   red(d=%4.0f)  spur", d);
  std::printf("\n");
  for (double rtt_ms : {2.0, 5.0, 9.0, 15.0, 25.0, 50.0, 100.0}) {
    std::printf("%10.0f", rtt_ms);
    for (double delta_ms : deltas) {
      const CellResult cell = Measure(rtt_ms, delta_ms);
      const auto model = core::FirstPtoReduction(sim::Millis(rtt_ms), sim::Millis(delta_ms));
      std::printf("   %10.2f  %4.0f", cell.reduction_rtts, cell.spurious_probes);
      (void)model;
    }
    std::printf("\n");
  }
  std::printf("\nShape check: the measured reduction tracks the model's 3*(delta+proc)/RTT\n"
              "surface; spurious client probes appear exactly where delta_t exceeds the\n"
              "client PTO (3 x RTT) — the Fig 4 zone boundary, measured live.\n");
  return 0;
}
