// Fig 4, engine edition — the numerical sweet-spot analysis re-measured with
// the full packet-level engine instead of the closed-form model: first-PTO
// reduction (in RTT units) and actual spurious client probes across the
// (RTT, Δt) grid. Cross-validates the bench_fig04 analysis: the measured
// surface must match 3Δt/RTT and the measured spurious zone the Δt > 3·RTT
// boundary (shifted slightly by the server's processing time, which the
// closed-form model does not carry).
#include "bench_common.h"
#include "core/sweep.h"
#include "registry.h"

QUICER_BENCH("fig04b", "Figure 4 (engine-measured): first-PTO reduction surface") {
  using namespace quicer;
  core::PrintTitle("Figure 4 (engine-measured): first-PTO reduction and spurious probes");

  core::SweepSpec spec;
  spec.name = "fig04b";
  spec.base.client = clients::ClientImpl::kNgtcp2;
  spec.base.signing = tls::SigningModel{sim::Millis(1.0), 0.0};
  spec.base.response_body_bytes = 4096;
  spec.base.time_limit = sim::Seconds(60);
  spec.axes.rtts = {sim::Millis(2),  sim::Millis(5),  sim::Millis(9), sim::Millis(15),
                    sim::Millis(25), sim::Millis(50), sim::Millis(100)};
  if (bench::DenseAxes(ctx)) {
    spec.axes.rtts.insert(spec.axes.rtts.end(),
                          {sim::Millis(35), sim::Millis(75), sim::Millis(150)});
  }
  spec.axes.cert_fetch_delays = {sim::Millis(1), sim::Millis(9), sim::Millis(25)};
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.repetitions = 9;
  // Raw values, negatives included: the legacy loops aggregated the
  // first_pto_period sentinel as data.
  spec.metrics = {{"first_pto_ms", core::MetricMode::kSummary, /*exclude_negative=*/false,
                   [](const core::ExperimentResult& r) {
                     return sim::ToMillis(r.client.first_pto_period);
                   }}};
  bench::Tune(spec, ctx);
  const core::SweepResult first_pto = core::RunSweep(spec);

  core::SweepSpec probes_spec = spec;
  probes_spec.name = "fig04b_probes";
  probes_spec.axes.behaviors = {quic::ServerBehavior::kInstantAck};
  probes_spec.metrics = {{"pto_expirations", core::MetricMode::kSummary,
                          /*exclude_negative=*/false, [](const core::ExperimentResult& r) {
                            return static_cast<double>(r.client.pto_expirations);
                          }}};
  const core::SweepResult probes = core::RunSweep(probes_spec);
  if (bench::AnyPartialExported({&first_pto, &probes})) return 0;

  std::printf("%10s", "RTT [ms]");
  for (sim::Duration d : spec.axes.cert_fetch_delays) {
    std::printf("   red(d=%4.0f)  spur", sim::ToMillis(d));
  }
  std::printf("\n");
  for (sim::Duration rtt : spec.axes.rtts) {
    const double rtt_ms = sim::ToMillis(rtt);
    std::printf("%10.0f", rtt_ms);
    for (sim::Duration delta : spec.axes.cert_fetch_delays) {
      auto find = [&](const core::SweepResult& result, quic::ServerBehavior behavior) {
        return result.Find([&](const core::SweepPoint& p) {
          return p.config.rtt == rtt && p.config.cert_fetch_delay == delta &&
                 p.config.behavior == behavior;
        });
      };
      const double wfc =
          find(first_pto, quic::ServerBehavior::kWaitForCertificate)->values().Median();
      const double iack = find(first_pto, quic::ServerBehavior::kInstantAck)->values().Median();
      const double spurious = find(probes, quic::ServerBehavior::kInstantAck)->values().Median();
      std::printf("   %10.2f  %4.0f", (wfc - iack) / rtt_ms, spurious);
    }
    std::printf("\n");
  }
  std::printf("\nShape check: the measured reduction tracks the model's 3*(delta+proc)/RTT\n"
              "surface; spurious client probes appear exactly where delta_t exceeds the\n"
              "client PTO (3 x RTT) — the Fig 4 zone boundary, measured live.\n");
  core::MaybeWriteSweepData(first_pto);
  core::MaybeWriteSweepData(probes);
  return 0;
}
QUICER_BENCH_MAIN("fig04b")
