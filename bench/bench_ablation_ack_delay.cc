// Appendix D ablation — could the ACK Delay field replace instant ACK?
//
// Evaluates the three client strategies (RFC standard, apply-at-init,
// re-init-on-second-sample) against the reporting behaviour actually seen in
// the wild (Table 3 zero-reporters, honest reporters, over-reporters), plus
// the §5 tuning options: padded instant ACKs and ClientHello-retransmitting
// probes.
#include <cstdio>

#include "bench_common.h"
#include "core/ack_delay_alt.h"

namespace {

using namespace quicer;

void Strategies() {
  core::PrintHeading("First-PTO by strategy (RTT 9 ms, delta_t 4 ms)");
  std::printf("%22s  %18s  %18s  %10s\n", "reported ACK Delay", "WFC first PTO [ms]",
              "IACK first PTO [ms]", "clamped");
  struct Case {
    const char* label;
    core::AckDelayStrategy strategy;
    double reported_ms;
  };
  const Case cases[] = {
      {"standard / any", core::AckDelayStrategy::kRfcStandard, 4.0},
      {"apply, honest 4ms", core::AckDelayStrategy::kApplyAtInit, 4.0},
      {"apply, zero (Table3)", core::AckDelayStrategy::kApplyAtInit, 0.0},
      {"apply, >RTT (Fig10)", core::AckDelayStrategy::kApplyAtInit, 50.0},
      {"reinit on 2nd sample", core::AckDelayStrategy::kReinitOnSecond, 4.0},
  };
  for (const Case& c : cases) {
    core::AckDelayAltScenario scenario;
    scenario.rtt = sim::Millis(9);
    scenario.delta_t = sim::Millis(4);
    scenario.reported_ack_delay = sim::Millis(c.reported_ms);
    const auto result = core::EvaluateStrategy(c.strategy, scenario);
    std::printf("%22s  %18.1f  %18.1f  %10s\n", c.label, sim::ToMillis(result.first_pto_wfc),
                sim::ToMillis(result.first_pto_iack),
                result.clamped_to_min_rtt ? "yes" : "no");
  }
}

double MedianTtfb(core::ExperimentConfig config) {
  const auto values = core::CollectTtfbMs(config, 15);
  return values.empty() ? -1.0 : stats::Median(values);
}

void Section5Tuning() {
  core::PrintHeading("Section 5 tuning knobs (large cert, delta_t 200 ms, 9 ms RTT, IACK)");
  core::ExperimentConfig base;
  base.client = clients::ClientImpl::kNgtcp2;
  base.behavior = quic::ServerBehavior::kInstantAck;
  base.rtt = sim::Millis(9);
  base.certificate_bytes = tls::kLargeCertificateBytes;
  base.cert_fetch_delay = sim::Millis(200);
  base.response_body_bytes = http::kSmallFileBytes;

  core::ExperimentConfig padded = base;
  padded.pad_instant_ack = true;
  core::ExperimentConfig ch_probe = base;
  ch_probe.client_probe_with_data = true;

  std::printf("%34s  %12s\n", "variant", "TTFB [ms]");
  std::printf("%34s  %12.1f\n", "plain instant ACK", MedianTtfb(base));
  std::printf("%34s  %12.1f\n", "padded instant ACK (PMTUD probe)", MedianTtfb(padded));
  std::printf("%34s  %12.1f\n", "client probes resend ClientHello", MedianTtfb(ch_probe));
  std::printf("\nA padded instant ACK spends 1200 B of the 3x budget, which can delay the\n"
              "flight (the paper's caution); ClientHello-retransmitting probes help the\n"
              "server rebuild state faster after loss.\n");
}

}  // namespace

int main() {
  core::PrintTitle("Appendix D ablation: ACK Delay vs instant ACK, and Section 5 tuning");
  Strategies();
  Section5Tuning();
  return 0;
}
