// Appendix D ablation — could the ACK Delay field replace instant ACK?
//
// Evaluates the three client strategies (RFC standard, apply-at-init,
// re-init-on-second-sample) against the reporting behaviour actually seen in
// the wild (Table 3 zero-reporters, honest reporters, over-reporters), plus
// the §5 tuning options: padded instant ACKs and ClientHello-retransmitting
// probes.
//
// Two registered benches: the strategy table is a closed-form model sweep
// (scenario case as an extra axis, custom runner), the §5 tuning table an
// experiment sweep over variants. The standalone binary runs both, matching
// the legacy output.
#include <cstdio>

#include "bench_common.h"
#include "core/ack_delay_alt.h"
#include "registry.h"

namespace {

using namespace quicer;

struct StrategyCase {
  const char* label;
  core::AckDelayStrategy strategy;
  double reported_ms;
};

constexpr StrategyCase kCases[] = {
    {"standard / any", core::AckDelayStrategy::kRfcStandard, 4.0},
    {"apply, honest 4ms", core::AckDelayStrategy::kApplyAtInit, 4.0},
    {"apply, zero (Table3)", core::AckDelayStrategy::kApplyAtInit, 0.0},
    {"apply, >RTT (Fig10)", core::AckDelayStrategy::kApplyAtInit, 50.0},
    {"reinit on 2nd sample", core::AckDelayStrategy::kReinitOnSecond, 4.0},
};
constexpr int kCaseCount = 5;

}  // namespace

QUICER_BENCH("ablation_ackdelay_strategies",
             "Appendix D: ACK Delay client strategies vs instant ACK (model)") {
  core::PrintTitle("Appendix D ablation: ACK Delay vs instant ACK, and Section 5 tuning");

  core::SweepSpec spec;
  spec.name = "ablation_ackdelay_strategies";
  spec.base.rtt = sim::Millis(9);
  spec.base.cert_fetch_delay = sim::Millis(4);
  core::SweepExtraAxis cases;
  cases.name = "case";
  for (int c = 0; c < kCaseCount; ++c) cases.values.push_back({kCases[c].label, c});
  spec.axes.extras = {cases};
  spec.repetitions = 1;
  auto metric = [](const char* name) {
    return core::MetricSpec{name, core::MetricMode::kSummary, /*exclude_negative=*/false,
                            nullptr};
  };
  spec.metrics = {metric("first_pto_wfc_ms"), metric("first_pto_iack_ms"),
                  metric("clamped")};
  spec.runner = [](const core::SweepRunContext& run) {
    const StrategyCase& c = kCases[run.point.Extra("case")->value];
    core::AckDelayAltScenario scenario;
    scenario.rtt = run.point.config.rtt;
    scenario.delta_t = run.point.config.cert_fetch_delay;
    scenario.reported_ack_delay = sim::Millis(c.reported_ms);
    const auto result = core::EvaluateStrategy(c.strategy, scenario);
    return std::vector<double>{sim::ToMillis(result.first_pto_wfc),
                               sim::ToMillis(result.first_pto_iack),
                               result.clamped_to_min_rtt ? 1.0 : 0.0};
  };
  bench::TuneObserver(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  core::PrintHeading("First-PTO by strategy (RTT 9 ms, delta_t 4 ms)");
  std::printf("%22s  %18s  %18s  %10s\n", "reported ACK Delay", "WFC first PTO [ms]",
              "IACK first PTO [ms]", "clamped");
  for (const core::PointSummary& summary : result.points) {
    std::printf("%22s  %18.1f  %18.1f  %10s\n", summary.point.Extra("case")->label.c_str(),
                summary.Metric("first_pto_wfc_ms")->summary.mean(),
                summary.Metric("first_pto_iack_ms")->summary.mean(),
                summary.Metric("clamped")->summary.mean() > 0 ? "yes" : "no");
  }
  core::MaybeWriteSweepData(result);
  return 0;
}

QUICER_BENCH("ablation_ackdelay_tuning",
             "Section 5 tuning: padded instant ACK, ClientHello probes") {
  core::SweepSpec spec;
  spec.name = "ablation_ackdelay_tuning";
  spec.base.client = clients::ClientImpl::kNgtcp2;
  spec.base.behavior = quic::ServerBehavior::kInstantAck;
  spec.base.rtt = sim::Millis(9);
  spec.base.certificate_bytes = tls::kLargeCertificateBytes;
  spec.base.cert_fetch_delay = sim::Millis(200);
  spec.base.response_body_bytes = http::kSmallFileBytes;
  spec.axes.variants = {
      {"plain instant ACK", nullptr},
      {"padded instant ACK (PMTUD probe)",
       [](core::ExperimentConfig& c) { c.pad_instant_ack = true; }},
      {"client probes resend ClientHello",
       [](core::ExperimentConfig& c) { c.client_probe_with_data = true; }}};
  spec.repetitions = 15;
  bench::Tune(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  core::PrintHeading("Section 5 tuning knobs (large cert, delta_t 200 ms, 9 ms RTT, IACK)");
  std::printf("%34s  %12s\n", "variant", "TTFB [ms]");
  for (const core::PointSummary& summary : result.points) {
    std::printf("%34s  %12.1f\n", summary.point.variant.c_str(), summary.MedianOrNegative());
  }
  std::printf("\nA padded instant ACK spends 1200 B of the 3x budget, which can delay the\n"
              "flight (the paper's caution); ClientHello-retransmitting probes help the\n"
              "server rebuild state faster after loss.\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN2("ablation_ackdelay_strategies", "ablation_ackdelay_tuning")
