// Fig 15 — The Fig 9 study repeated from all four vantage points (Hamburg,
// Hong Kong, Los Angeles, São Paulo).
//
// Paper shape: at every location the coalesced ACK+SH is faster than the
// separate ServerHello; the instant ACK precedes the SH by ~2.1-2.6 ms.
//
// Sweep mapping: vantage extra axis, one repetition per point, five summary
// metrics read from the memoized per-point study (scan::StudyRunner) — the
// multi-metric spec replaces the legacy per-vantage loop.
#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "registry.h"
#include "scan/sweep_runners.h"

namespace {

using namespace quicer;

scan::StudyMetricFn SummaryField(double scan::StudySummary::*field) {
  return [field](const scan::StudyOutcome& outcome, const core::SweepRunContext&) {
    return outcome.summary.*field;
  };
}

}  // namespace

QUICER_BENCH("fig15", "Figure 15: Cloudflare study from four vantage points") {
  core::PrintTitle("Figure 15: Cloudflare study from four vantage points");

  core::SweepSpec spec;
  spec.name = "fig15";
  spec.axes.extras = {
      scan::VantageAxis({scan::kAllVantages.begin(), scan::kAllVantages.end()})};
  spec.repetitions = 1;
  auto summary_metric = [](const char* name) {
    return core::MetricSpec{name, core::MetricMode::kSummary, /*exclude_negative=*/false,
                            nullptr};
  };
  spec.metrics = {summary_metric("median_ack_ms"), summary_metric("median_sh_ms"),
                  summary_metric("median_gap_ms"), summary_metric("coalesced_share"),
                  summary_metric("avoided_pto_inflation_ms")};
  spec.runner = scan::StudyRunner(
      [](const core::SweepPoint& point) {
        scan::CloudflareStudyConfig config;
        config.vantage = scan::PointVantage(point);
        config.hours = 72;  // three days per vantage keeps the bench fast
        config.samples_per_hour = 6;
        config.seed = 42 + static_cast<std::uint64_t>(config.vantage);
        return config;
      },
      {SummaryField(&scan::StudySummary::median_ack_ms),
       SummaryField(&scan::StudySummary::median_sh_ms),
       SummaryField(&scan::StudySummary::median_gap_ms),
       SummaryField(&scan::StudySummary::coalesced_share),
       SummaryField(&scan::StudySummary::avoided_pto_inflation_ms)});
  bench::TuneObserver(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  std::printf("%16s  %10s  %10s  %10s  %12s  %10s\n", "vantage", "ACK [ms]", "SH [ms]",
              "gap [ms]", "coal. [%]", "3x gap[ms]");
  for (const core::PointSummary& summary : result.points) {
    std::printf("%16s  %10.2f  %10.2f  %10.2f  %12.1f  %10.2f\n",
                summary.point.Extra("vantage")->label.c_str(),
                summary.Metric("median_ack_ms")->summary.mean(),
                summary.Metric("median_sh_ms")->summary.mean(),
                summary.Metric("median_gap_ms")->summary.mean(),
                summary.Metric("coalesced_share")->summary.mean() * 100.0,
                summary.Metric("avoided_pto_inflation_ms")->summary.mean());
  }
  std::printf("\nShape check: consistent ACK->SH gap of a few ms at all locations\n"
              "(paper: 2.1 ms Sao Paulo/Hamburg, 2.4 ms LA, 2.6 ms Hong Kong).\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("fig15")
