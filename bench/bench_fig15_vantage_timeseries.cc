// Fig 15 — The Fig 9 study repeated from all four vantage points (Hamburg,
// Hong Kong, Los Angeles, São Paulo).
//
// Paper shape: at every location the coalesced ACK+SH is faster than the
// separate ServerHello; the instant ACK precedes the SH by ~2.1-2.6 ms.
#include <cstdio>

#include "core/report.h"
#include "scan/study.h"

int main() {
  using namespace quicer;
  core::PrintTitle("Figure 15: Cloudflare study from four vantage points");
  std::printf("%16s  %10s  %10s  %10s  %12s  %10s\n", "vantage", "ACK [ms]", "SH [ms]",
              "gap [ms]", "coal. [%]", "3x gap[ms]");
  for (scan::Vantage vantage : scan::kAllVantages) {
    scan::CloudflareStudyConfig config;
    config.vantage = vantage;
    config.hours = 72;  // three days per vantage keeps the bench fast
    config.samples_per_hour = 6;
    config.seed = 42 + static_cast<std::uint64_t>(vantage);
    const auto points = scan::RunCloudflareStudy(config);
    const auto summary = scan::SummarizeStudy(points);
    std::printf("%16s  %10.2f  %10.2f  %10.2f  %12.1f  %10.2f\n",
                std::string(scan::Name(vantage)).c_str(), summary.median_ack_ms,
                summary.median_sh_ms, summary.median_gap_ms, summary.coalesced_share * 100.0,
                summary.avoided_pto_inflation_ms);
  }
  std::printf("\nShape check: consistent ACK->SH gap of a few ms at all locations\n"
              "(paper: 2.1 ms Sao Paulo/Hamburg, 2.4 ms LA, 2.6 ms Hong Kong).\n");
  return 0;
}
