// Fig 12 — the Fig 6 scenario (first-server-flight tail lost) repeated at
// 1, 9, 20, 100 and 300 ms RTT, HTTP/1.1 and HTTP/3.
//
// Paper shape: IACK's penalty (~ server default PTO) persists up to ~100 ms
// RTT; at 300 ms RTT the relationship inverts — under WFC the server's
// sample-based PTO (3 x RTT = 900 ms) exceeds its 200 ms default, so IACK
// (running on the default) recovers first.
#include "bench_common.h"
#include "clients/profiles.h"
#include "core/loss_scenarios.h"

namespace {

void RunVersion(quicer::http::Version version, quicer::core::CsvWriter* csv) {
  using namespace quicer;
  core::PrintHeading(std::string(http::ToString(version)));
  std::printf("%10s %8s  %12s  %12s  %14s\n", "client", "RTT[ms]", "WFC med[ms]",
              "IACK med[ms]", "IACK-WFC [ms]");
  for (double rtt_ms : {1.0, 9.0, 20.0, 100.0, 300.0}) {
    for (clients::ClientImpl impl : clients::kAllClients) {
      if (version == http::Version::kHttp3 && !clients::SupportsHttp3(impl)) continue;
      core::ExperimentConfig config;
      config.client = impl;
      config.http = version;
      config.rtt = sim::Millis(rtt_ms);
      config.response_body_bytes = http::kSmallFileBytes;
      config.time_limit = sim::Seconds(30);

      core::ExperimentConfig wfc = config;
      wfc.behavior = quic::ServerBehavior::kWaitForCertificate;
      wfc.loss =
          core::FirstServerFlightTailLoss(wfc.behavior, config.certificate_bytes, version);
      core::ExperimentConfig iack = config;
      iack.behavior = quic::ServerBehavior::kInstantAck;
      iack.loss =
          core::FirstServerFlightTailLoss(iack.behavior, config.certificate_bytes, version);

      const auto wfc_values = core::CollectResponseTtfbMs(wfc, 10);
      const auto iack_values = core::CollectResponseTtfbMs(iack, 10);
      if (wfc_values.empty() || iack_values.empty()) {
        std::printf("%10s %8.0f  %s\n", std::string(clients::Name(impl)).c_str(), rtt_ms,
                    "aborted (quiche CID retirement quirk)");
        continue;
      }
      const double wfc_median = stats::Median(wfc_values);
      const double iack_median = stats::Median(iack_values);
      std::printf("%10s %8.0f  %12.1f  %12.1f  %+14.1f\n",
                  std::string(clients::Name(impl)).c_str(), rtt_ms, wfc_median, iack_median,
                  iack_median - wfc_median);
      if (csv != nullptr) {
        csv->TextRow({std::string(clients::Name(impl)),
                      std::string(http::ToString(version)), std::to_string(rtt_ms),
                      std::to_string(wfc_median), std::to_string(iack_median)});
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace quicer;
  core::PrintTitle("Figure 12: first-server-flight loss across RTTs (Fig 6 generalised)");
  auto csv = bench::MaybeCsv("fig12_server_flight_loss",
                             {"client", "http", "rtt_ms", "wfc_ttfb_ms", "iack_ttfb_ms"});
  RunVersion(http::Version::kHttp1, csv.get());
  RunVersion(http::Version::kHttp3, csv.get());
  std::printf("Shape check: positive IACK penalty up to ~100 ms RTT; sign flips by 300 ms.\n");
  return 0;
}
