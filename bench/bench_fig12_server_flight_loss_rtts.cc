// Fig 12 — the Fig 6 scenario (first-server-flight tail lost) repeated at
// 1, 9, 20, 100 and 300 ms RTT, HTTP/1.1 and HTTP/3.
//
// Paper shape: IACK's penalty (~ server default PTO) persists up to ~100 ms
// RTT; at 300 ms RTT the relationship inverts — under WFC the server's
// sample-based PTO (3 x RTT = 900 ms) exceeds its 200 ms default, so IACK
// (running on the default) recovers first.
#include "bench_common.h"
#include "clients/profiles.h"
#include "core/loss_scenarios.h"
#include "core/sweep.h"
#include "registry.h"

QUICER_BENCH("fig12", "Figure 12: first-server-flight loss across RTTs") {
  using namespace quicer;
  core::PrintTitle("Figure 12: first-server-flight loss across RTTs (Fig 6 generalised)");

  core::SweepSpec spec;
  spec.name = "fig12";
  spec.base.response_body_bytes = http::kSmallFileBytes;
  spec.base.time_limit = sim::Seconds(30);
  spec.axes.http_versions = {http::Version::kHttp1, http::Version::kHttp3};
  spec.axes.rtts = {sim::Millis(1), sim::Millis(9), sim::Millis(20), sim::Millis(100),
                    sim::Millis(300)};
  if (bench::DenseAxes(ctx)) {
    spec.axes.rtts.insert(spec.axes.rtts.end(), {sim::Millis(50), sim::Millis(200)});
  }
  spec.axes.clients.assign(clients::kAllClients.begin(), clients::kAllClients.end());
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.axes.losses = {{"first-server-flight-tail", [](const core::ExperimentConfig& c) {
                         return core::FirstServerFlightTailLoss(c.behavior,
                                                                c.certificate_bytes, c.http);
                       }}};
  spec.repetitions = 10;
  spec.metrics = {{"response_ttfb_ms", core::MetricMode::kSummary, /*exclude_negative=*/true,
                   [](const core::ExperimentResult& r) { return r.ResponseTtfbMs(); }}};
  bench::Tune(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  for (http::Version version : spec.axes.http_versions) {
    core::PrintHeading(std::string(http::ToString(version)));
    std::printf("%10s %8s  %12s  %12s  %14s\n", "client", "RTT[ms]", "WFC med[ms]",
                "IACK med[ms]", "IACK-WFC [ms]");
    for (sim::Duration rtt : spec.axes.rtts) {
      const double rtt_ms = sim::ToMillis(rtt);
      for (clients::ClientImpl impl : spec.axes.clients) {
        if (version == http::Version::kHttp3 && !clients::SupportsHttp3(impl)) continue;
        auto find = [&](quic::ServerBehavior behavior) {
          return result.Find([&](const core::SweepPoint& p) {
            return p.config.client == impl && p.config.http == version &&
                   p.config.rtt == rtt && p.config.behavior == behavior;
          });
        };
        const core::PointSummary* wfc = find(quic::ServerBehavior::kWaitForCertificate);
        const core::PointSummary* iack = find(quic::ServerBehavior::kInstantAck);
        if (wfc->all_aborted() || iack->all_aborted()) {
          std::printf("%10s %8.0f  %s\n", std::string(clients::Name(impl)).c_str(), rtt_ms,
                      "aborted (quiche CID retirement quirk)");
          continue;
        }
        const double wfc_median = wfc->values().Median();
        const double iack_median = iack->values().Median();
        std::printf("%10s %8.0f  %12.1f  %12.1f  %+14.1f\n",
                    std::string(clients::Name(impl)).c_str(), rtt_ms, wfc_median, iack_median,
                    iack_median - wfc_median);
      }
      std::printf("\n");
    }
  }
  std::printf("Shape check: positive IACK penalty up to ~100 ms RTT; sign flips by 300 ms.\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("fig12")
