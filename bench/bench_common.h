// Shared helpers for the per-figure benchmark binaries.
#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep.h"
#include "registry.h"
#include "stats/stats.h"

namespace quicer::bench {

/// One sweep's full live spec (closures included), captured from a bench's
/// enumerate pass — the input of the scenario codec's export and label
/// resolution.
struct CapturedSpec {
  std::string bench;
  core::SweepSpec spec;
  std::size_t point_count = 0;
};

/// Runs the given benches in enumerate-only mode — no experiments, no
/// exports — capturing every sweep's fully tuned spec and grid size. Bench
/// bodies still print their human-readable headings, so stdout is parked on
/// /dev/null for the duration. Shared by bench_suite (export-grid, --grid,
/// queue-init, --points validation) and the grid round-trip test, so both
/// see identical capture semantics.
inline std::vector<CapturedSpec> CaptureSpecs(const std::vector<BenchInfo>& benches,
                                              int scale) {
  std::vector<CapturedSpec> specs;
  BenchContext context;
  context.scale = scale;
  const std::string* current_bench = nullptr;
  context.enumerate = [&](const core::SweepSpec& spec, const core::SweepResult& result) {
    CapturedSpec captured;
    captured.bench = *current_bench;
    captured.spec = spec;
    captured.point_count = result.points.size();
    // Strip the capture-pass execution state: the copy represents the
    // sweep's data and closures, not this enumerate run.
    captured.spec.enumerate_sink = nullptr;
    captured.spec.observer = nullptr;
    captured.spec.shard = core::SweepShard{};
    captured.spec.only_sweep.clear();
    captured.spec.export_only = false;
    captured.spec.time_budget_seconds = 0.0;
    specs.push_back(std::move(captured));
  };

  std::fflush(stdout);
  const int saved_stdout = dup(STDOUT_FILENO);
  const int null_fd = open("/dev/null", O_WRONLY);
  if (null_fd >= 0) dup2(null_fd, STDOUT_FILENO);
  for (const BenchInfo& bench : benches) {
    current_bench = &bench.name;
    bench.run(context);
  }
  std::fflush(stdout);
  if (saved_stdout >= 0) {
    dup2(saved_stdout, STDOUT_FILENO);
    close(saved_stdout);
  }
  if (null_fd >= 0) close(null_fd);
  return specs;
}

/// Repetitions per (client, mode) point. The paper uses 100; 25 keeps every
/// bench binary comfortably fast while the medians are already stable
/// (the simulator's only noise sources are signing jitter and quirk draws).
/// `bench_suite --scale` multiplies this via Tune().
inline constexpr int kRepetitions = 25;

/// True when a scaled run should also widen its RTT/Δt axes (any --scale
/// above the CI-friendly default of 1).
inline bool DenseAxes(const BenchContext& ctx) { return ctx.dense_axes(); }

/// Progress observer printing "points done / total, runs/sec" to stderr
/// (stdout carries the figure tables).
inline core::SweepObserver StderrProgress() {
  return [](const core::SweepProgress& p) {
    std::fprintf(stderr, "[%.*s] %zu/%zu points, %zu runs, %.0f runs/s%s\n",
                 static_cast<int>(p.sweep.size()), p.sweep.data(), p.points_completed,
                 p.points_total, p.runs_completed, p.runs_per_second,
                 p.points_skipped > 0 ? " (budget: some points skipped)" : "");
  };
}

/// Applies the context options every sweep honors, without touching the
/// repetition count: --progress attaches the stderr observer, --shard /
/// --points select the grid subset, and --budget-seconds hands the sweep
/// whatever remains of the suite budget. For runner-based sweeps whose
/// repetition index is semantic (population rank, study hour) this is the
/// whole tuning — scale there only via axes.
inline core::SweepSpec& TuneObserver(core::SweepSpec& spec, const BenchContext& ctx) {
  if (!spec.observer) {
    if (ctx.observer && ctx.progress) {
      spec.observer = [extra = ctx.observer,
                       stderr_progress = StderrProgress()](const core::SweepProgress& p) {
        extra(p);
        stderr_progress(p);
      };
    } else if (ctx.observer) {
      spec.observer = ctx.observer;
    } else if (ctx.progress) {
      spec.observer = StderrProgress();
    }
  }
  spec.shard = ctx.shard;
  spec.only_sweep = ctx.sweep_filter;
  spec.enumerate_sink = ctx.enumerate;
  spec.qlog_dir = ctx.qlog_dir;
  if (ctx.budget_seconds > 0.0 && spec.time_budget_seconds == 0.0) {
    spec.time_budget_seconds = ctx.RemainingBudgetSeconds();
  }
  // The grid rewrite runs last, so a scenario file's data (repetitions,
  // axes, base config) wins over --scale and the compiled-in grid.
  if (ctx.rewrite) ctx.rewrite(spec);
  return spec;
}

/// Applies the suite-wide options to an *experiment-driven* spec: --scale
/// additionally multiplies the repetitions.
inline core::SweepSpec& Tune(core::SweepSpec& spec, const BenchContext& ctx) {
  spec.repetitions *= ctx.scale;
  return TuneObserver(spec, ctx);
}

/// Sharded (and budget-clipped) runs export machine-readable data but skip
/// the bench's human-readable analysis: the tables would be computed from
/// incomplete series (and trace-indexing rows would read out of bounds).
/// Call after RunSweep; when it returns true the partial has been exported
/// and the bench should return 0 without further processing of `result`.
inline bool PartialExported(const core::SweepResult& result) {
  // Enumerate-only passes (queue-init, --points validation) produce no data
  // and must not write or warn; the sink already saw everything. Sweeps
  // deselected by only_sweep (siblings of a targeted sweep) ran nothing and
  // write nothing.
  if (result.enumerate_only || result.deselected) return true;
  if (!result.partial()) {
    if (!result.export_only) return false;
    // A full grid-driven run: export the final data pair but skip the
    // bench's printed analysis, which may index points a data-defined grid
    // dropped.
    if (!core::MaybeWriteSweepData(result)) {
      std::fprintf(stderr,
                   "[%s] WARNING: grid-run result NOT exported (set QUICER_DATA_DIR / "
                   "--data-dir)\n",
                   result.name.c_str());
    }
    std::printf("[%s] grid run: %zu points, %zu runs — data exported, analysis skipped.\n",
                result.name.c_str(), result.points.size(), result.executed_runs);
    return true;
  }
  const bool wrote = core::MaybeWriteSweepData(result);
  if (!wrote) {
    std::fprintf(stderr,
                 "[%s] WARNING: partial result NOT exported (set QUICER_DATA_DIR / "
                 "--data-dir); the executed points are lost\n",
                 result.name.c_str());
  }
  for (std::size_t id : result.shard.points) {
    if (id >= result.points.size()) {
      std::fprintf(stderr, "[%s] WARNING: --points id %zu exceeds the %zu-point grid\n",
                   result.name.c_str(), id, result.points.size());
    }
  }
  std::size_t executed = 0;
  for (const core::PointSummary& summary : result.points) {
    if (summary.executed) ++executed;
  }
  std::printf("[%s] partial run: %zu/%zu points executed — analysis skipped; combine the\n"
              "partial exports with `bench_suite merge`.\n",
              result.name.c_str(), executed, result.points.size());
  return true;
}

/// Multi-sweep variant of PartialExported: when ANY of a bench's sweeps is
/// partial, every result is exported (completed sweeps keep their final
/// exports, partial ones their partial files) and the joint analysis — which
/// needs all of them complete — is skipped.
inline bool AnyPartialExported(std::initializer_list<const core::SweepResult*> results) {
  for (const core::SweepResult* result : results) {
    if (result->enumerate_only) return true;
  }
  bool any = false;
  bool any_partial = false;
  for (const core::SweepResult* result : results) {
    if (result->deselected) {
      any = true;  // a sibling executed instead; the joint analysis cannot run
      continue;
    }
    any_partial = any_partial || result->partial();
    any = any || result->partial() || result->export_only;
  }
  if (!any) return false;
  for (const core::SweepResult* result : results) {
    if (result->deselected) continue;  // nothing ran, nothing to write
    if (!core::MaybeWriteSweepData(*result)) {
      std::fprintf(stderr,
                   "[%s] WARNING: partial result NOT exported (set QUICER_DATA_DIR / "
                   "--data-dir); the executed points are lost\n",
                   result->name.c_str());
    }
  }
  if (any_partial) {
    std::printf("(partial run — analysis skipped; combine the partial exports with "
                "`bench_suite merge`.)\n");
  } else {
    // Full grid-driven runs wrote final exports, not partials — pointing
    // the user at `merge` would have them feed it non-partial documents.
    std::printf("(grid run — data exported, analysis skipped.)\n");
  }
  return true;
}

/// WFC/IACK medians of one printed row pair, in ms (negative when all runs
/// aborted).
struct RowResult {
  double median_wfc = -1.0;
  double median_iack = -1.0;
};

/// Prints the Fig 5/6/7-style WFC/IACK row pair from two sweep point
/// summaries (either may be null / all-aborted). Same format as
/// PrintClientRow, fed by the sweep engine instead of ad-hoc loops.
inline RowResult PrintSweepRowPair(const core::PointSummary* wfc,
                                   const core::PointSummary* iack,
                                   const std::string& label, double axis_lo,
                                   double axis_hi) {
  RowResult result;
  if (wfc != nullptr) result.median_wfc = wfc->MedianOrNegative();
  if (iack != nullptr) result.median_iack = iack->MedianOrNegative();

  auto print_one = [&](const char* mode, const core::PointSummary* summary, double median) {
    if (summary == nullptr || summary->all_aborted()) {
      std::printf("%10s %-5s  %s\n", label.c_str(), mode, "(all runs aborted)");
      return;
    }
    std::printf("%10s %-5s  [%s]  median %8.1f ms  (n=%zu)\n", label.c_str(), mode,
                core::RenderAccumulatorScatter(summary->values(), axis_lo, axis_hi).c_str(),
                median, summary->values().count());
  };
  print_one("WFC", wfc, result.median_wfc);
  print_one("IACK", iack, result.median_iack);
  return result;
}

/// Looks up the (client, http, behavior) pair of a sweep and prints it.
inline RowResult PrintSweepClientRow(const core::SweepResult& result,
                                     clients::ClientImpl impl, http::Version version,
                                     double axis_lo, double axis_hi) {
  auto find = [&](quic::ServerBehavior behavior) {
    return result.Find([&](const core::SweepPoint& p) {
      return p.config.client == impl && p.config.http == version &&
             p.config.behavior == behavior;
    });
  };
  return PrintSweepRowPair(find(quic::ServerBehavior::kWaitForCertificate),
                           find(quic::ServerBehavior::kInstantAck),
                           std::string(clients::Name(impl)), axis_lo, axis_hi);
}

inline void PrintAxis(double lo, double hi) {
  std::printf("%18sTTFB axis: %.0f ms %s %.0f ms\n", "", lo, std::string(44, '-').c_str(), hi);
}

}  // namespace quicer::bench
