// Shared helpers for the per-figure benchmark binaries.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/csv.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep.h"
#include "stats/stats.h"

namespace quicer::bench {

/// Repetitions per (client, mode) point. The paper uses 100; 25 keeps every
/// bench binary comfortably fast while the medians are already stable
/// (the simulator's only noise sources are signing jitter and quirk draws).
inline constexpr int kRepetitions = 25;

/// WFC/IACK medians of one printed row pair, in ms (negative when all runs
/// aborted).
struct RowResult {
  double median_wfc = -1.0;
  double median_iack = -1.0;
};

/// Prints the Fig 5/6/7-style WFC/IACK row pair from two sweep point
/// summaries (either may be null / all-aborted). Same format as
/// PrintClientRow, fed by the sweep engine instead of ad-hoc loops.
inline RowResult PrintSweepRowPair(const core::PointSummary* wfc,
                                   const core::PointSummary* iack,
                                   const std::string& label, double axis_lo,
                                   double axis_hi) {
  RowResult result;
  if (wfc != nullptr) result.median_wfc = wfc->MedianOrNegative();
  if (iack != nullptr) result.median_iack = iack->MedianOrNegative();

  auto print_one = [&](const char* mode, const core::PointSummary* summary, double median) {
    if (summary == nullptr || summary->all_aborted()) {
      std::printf("%10s %-5s  %s\n", label.c_str(), mode, "(all runs aborted)");
      return;
    }
    std::printf("%10s %-5s  [%s]  median %8.1f ms  (n=%zu)\n", label.c_str(), mode,
                core::RenderAccumulatorScatter(summary->values, axis_lo, axis_hi).c_str(), median,
                summary->values.count());
  };
  print_one("WFC", wfc, result.median_wfc);
  print_one("IACK", iack, result.median_iack);
  return result;
}

/// Looks up the (client, http, behavior) pair of a sweep and prints it.
inline RowResult PrintSweepClientRow(const core::SweepResult& result,
                                     clients::ClientImpl impl, http::Version version,
                                     double axis_lo, double axis_hi) {
  auto find = [&](quic::ServerBehavior behavior) {
    return result.Find([&](const core::SweepPoint& p) {
      return p.config.client == impl && p.config.http == version &&
             p.config.behavior == behavior;
    });
  };
  return PrintSweepRowPair(find(quic::ServerBehavior::kWaitForCertificate),
                           find(quic::ServerBehavior::kInstantAck),
                           std::string(clients::Name(impl)), axis_lo, axis_hi);
}

inline void PrintAxis(double lo, double hi) {
  std::printf("%18sTTFB axis: %.0f ms %s %.0f ms\n", "", lo, std::string(44, '-').c_str(), hi);
}

/// Opens a CSV data file for this figure when QUICER_DATA_DIR is set;
/// returns nullptr (no-op) otherwise.
inline std::unique_ptr<core::CsvWriter> MaybeCsv(const std::string& figure,
                                                 const std::vector<std::string>& header) {
  const auto dir = core::DataDirFromEnv();
  if (!dir) return nullptr;
  auto writer = std::make_unique<core::CsvWriter>(*dir, figure, header);
  if (!writer->active()) return nullptr;
  return writer;
}

}  // namespace quicer::bench
