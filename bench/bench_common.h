// Shared helpers for the per-figure benchmark binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/csv.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep.h"
#include "stats/stats.h"

namespace quicer::bench {

/// Repetitions per (client, mode) point. The paper uses 100; 25 keeps every
/// bench binary comfortably fast while the medians are already stable
/// (the simulator's only noise sources are signing jitter and quirk draws).
/// `bench_suite --scale` multiplies this via Tune().
inline constexpr int kRepetitions = 25;

/// Repetition multiplier of this run (QUICER_BENCH_SCALE, set by
/// `bench_suite --scale=N`; the paper's grids correspond to --scale=4).
inline int ScaleFactor() {
  static const int factor = [] {
    const char* env = std::getenv("QUICER_BENCH_SCALE");
    if (env == nullptr) return 1;
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed >= 1 ? static_cast<int>(parsed) : 1;
  }();
  return factor;
}

/// True when a scaled run should also widen its RTT/Δt axes (any --scale
/// above the CI-friendly default of 1).
inline bool DenseAxes() { return ScaleFactor() > 1; }

/// True when `bench_suite --progress` asked for per-sweep progress lines
/// (QUICER_BENCH_PROGRESS).
inline bool ProgressEnabled() {
  static const bool enabled = std::getenv("QUICER_BENCH_PROGRESS") != nullptr;
  return enabled;
}

/// Progress observer printing "points done / total, runs/sec" to stderr
/// (stdout carries the figure tables).
inline core::SweepObserver StderrProgress() {
  return [](const core::SweepProgress& p) {
    std::fprintf(stderr, "[%.*s] %zu/%zu points, %zu runs, %.0f runs/s%s\n",
                 static_cast<int>(p.sweep.size()), p.sweep.data(), p.points_completed,
                 p.points_total, p.runs_completed, p.runs_per_second,
                 p.points_skipped > 0 ? " (budget: some points skipped)" : "");
  };
}

/// Applies the suite-wide options to an *experiment-driven* spec: --scale
/// multiplies the repetitions, --progress attaches the stderr observer.
/// Don't call it for runner-based sweeps whose repetition index is semantic
/// (population rank, study hour) — scale there only via axes.
inline core::SweepSpec& Tune(core::SweepSpec& spec) {
  spec.repetitions *= ScaleFactor();
  if (ProgressEnabled() && !spec.observer) spec.observer = StderrProgress();
  return spec;
}

/// Attaches only the progress observer (for runner-based sweeps).
inline core::SweepSpec& TuneObserver(core::SweepSpec& spec) {
  if (ProgressEnabled() && !spec.observer) spec.observer = StderrProgress();
  return spec;
}

/// WFC/IACK medians of one printed row pair, in ms (negative when all runs
/// aborted).
struct RowResult {
  double median_wfc = -1.0;
  double median_iack = -1.0;
};

/// Prints the Fig 5/6/7-style WFC/IACK row pair from two sweep point
/// summaries (either may be null / all-aborted). Same format as
/// PrintClientRow, fed by the sweep engine instead of ad-hoc loops.
inline RowResult PrintSweepRowPair(const core::PointSummary* wfc,
                                   const core::PointSummary* iack,
                                   const std::string& label, double axis_lo,
                                   double axis_hi) {
  RowResult result;
  if (wfc != nullptr) result.median_wfc = wfc->MedianOrNegative();
  if (iack != nullptr) result.median_iack = iack->MedianOrNegative();

  auto print_one = [&](const char* mode, const core::PointSummary* summary, double median) {
    if (summary == nullptr || summary->all_aborted()) {
      std::printf("%10s %-5s  %s\n", label.c_str(), mode, "(all runs aborted)");
      return;
    }
    std::printf("%10s %-5s  [%s]  median %8.1f ms  (n=%zu)\n", label.c_str(), mode,
                core::RenderAccumulatorScatter(summary->values(), axis_lo, axis_hi).c_str(),
                median, summary->values().count());
  };
  print_one("WFC", wfc, result.median_wfc);
  print_one("IACK", iack, result.median_iack);
  return result;
}

/// Looks up the (client, http, behavior) pair of a sweep and prints it.
inline RowResult PrintSweepClientRow(const core::SweepResult& result,
                                     clients::ClientImpl impl, http::Version version,
                                     double axis_lo, double axis_hi) {
  auto find = [&](quic::ServerBehavior behavior) {
    return result.Find([&](const core::SweepPoint& p) {
      return p.config.client == impl && p.config.http == version &&
             p.config.behavior == behavior;
    });
  };
  return PrintSweepRowPair(find(quic::ServerBehavior::kWaitForCertificate),
                           find(quic::ServerBehavior::kInstantAck),
                           std::string(clients::Name(impl)), axis_lo, axis_hi);
}

inline void PrintAxis(double lo, double hi) {
  std::printf("%18sTTFB axis: %.0f ms %s %.0f ms\n", "", lo, std::string(44, '-').c_str(), hi);
}

/// Opens a CSV data file for this figure when QUICER_DATA_DIR is set;
/// returns nullptr (no-op) otherwise.
inline std::unique_ptr<core::CsvWriter> MaybeCsv(const std::string& figure,
                                                 const std::vector<std::string>& header) {
  const auto dir = core::DataDirFromEnv();
  if (!dir) return nullptr;
  auto writer = std::make_unique<core::CsvWriter>(*dir, figure, header);
  if (!writer->active()) return nullptr;
  return writer;
}

}  // namespace quicer::bench
