// Shared helpers for the per-figure benchmark binaries.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/csv.h"
#include "core/experiment.h"
#include "core/report.h"
#include "stats/stats.h"

namespace quicer::bench {

/// Repetitions per (client, mode) point. The paper uses 100; 25 keeps every
/// bench binary comfortably fast while the medians are already stable
/// (the simulator's only noise sources are signing jitter and quirk draws).
inline constexpr int kRepetitions = 25;

/// Runs WFC and IACK for one client config and prints a Fig 5/6/7-style row
/// pair with an ASCII scatter strip. Returns {median_wfc, median_iack} in ms
/// (negative when all runs aborted).
struct RowResult {
  double median_wfc = -1.0;
  double median_iack = -1.0;
};

inline RowResult PrintClientRow(core::ExperimentConfig config, const std::string& label,
                                double axis_lo, double axis_hi,
                                int repetitions = kRepetitions,
                                bool response_stream_metric = false) {
  RowResult result;
  const auto collect = [&](quic::ServerBehavior behavior) {
    config.behavior = behavior;
    return response_stream_metric ? core::CollectResponseTtfbMs(config, repetitions)
                                  : core::CollectTtfbMs(config, repetitions);
  };
  const std::vector<double> wfc = collect(quic::ServerBehavior::kWaitForCertificate);
  const std::vector<double> iack = collect(quic::ServerBehavior::kInstantAck);

  if (!wfc.empty()) result.median_wfc = stats::Median(wfc);
  if (!iack.empty()) result.median_iack = stats::Median(iack);

  auto print_one = [&](const char* mode, const std::vector<double>& values, double median) {
    if (values.empty()) {
      std::printf("%10s %-5s  %s\n", label.c_str(), mode, "(all runs aborted)");
      return;
    }
    std::printf("%10s %-5s  [%s]  median %8.1f ms  (n=%zu)\n", label.c_str(), mode,
                core::RenderScatter(values, axis_lo, axis_hi).c_str(), median, values.size());
  };
  print_one("WFC", wfc, result.median_wfc);
  print_one("IACK", iack, result.median_iack);
  return result;
}

inline void PrintAxis(double lo, double hi) {
  std::printf("%18sTTFB axis: %.0f ms %s %.0f ms\n", "", lo, std::string(44, '-').c_str(), hi);
}

/// Opens a CSV data file for this figure when QUICER_DATA_DIR is set;
/// returns nullptr (no-op) otherwise.
inline std::unique_ptr<core::CsvWriter> MaybeCsv(const std::string& figure,
                                                 const std::vector<std::string>& header) {
  const auto dir = core::DataDirFromEnv();
  if (!dir) return nullptr;
  auto writer = std::make_unique<core::CsvWriter>(*dir, figure, header);
  if (!writer->active()) return nullptr;
  return writer;
}

}  // namespace quicer::bench
