// Fig 5 — TTFB of a 10 KB transfer at 9 ms RTT with the 5,113 B certificate
// (exceeding the anti-amplification limit), Δt = 200 ms, no packet loss;
// HTTP/1.1 and HTTP/3, all eight clients, WFC vs IACK.
//
// Paper shape: IACK reduces the median TTFB (largest for neqo ~9.6 ms and
// ngtcp2 ~10 ms); mvfst/picoquic barely change (no probes on instant ACK);
// go-x-net is erratic (mis-initialised smoothed RTT); HTTP/3 sits ~1 RTT
// below HTTP/1.1 because the server's SETTINGS is the first stream byte.
#include "bench_common.h"
#include "clients/profiles.h"

namespace {

void RunVersion(quicer::http::Version version) {
  using namespace quicer;
  core::PrintHeading(std::string(http::ToString(version)));
  bench::PrintAxis(200, 320);
  for (clients::ClientImpl impl : clients::kAllClients) {
    if (version == http::Version::kHttp3 && !clients::SupportsHttp3(impl)) continue;
    core::ExperimentConfig config;
    config.client = impl;
    config.http = version;
    config.rtt = sim::Millis(9);
    config.certificate_bytes = tls::kLargeCertificateBytes;
    config.cert_fetch_delay = sim::Millis(200);
    config.response_body_bytes = http::kSmallFileBytes;
    const auto row =
        bench::PrintClientRow(config, std::string(clients::Name(impl)), 200, 320);
    if (row.median_wfc > 0 && row.median_iack > 0) {
      std::printf("%10s  IACK improvement: %+.1f ms\n", "",
                  row.median_wfc - row.median_iack);
    }
  }
}

}  // namespace

int main() {
  using namespace quicer;
  core::PrintTitle(
      "Figure 5: TTFB, 10 KB @ 9 ms RTT, large certificate (> amplification limit), "
      "delta_t = 200 ms, no loss");
  RunVersion(http::Version::kHttp1);
  RunVersion(http::Version::kHttp3);
  return 0;
}
