// Fig 5 — TTFB of a 10 KB transfer at 9 ms RTT with the 5,113 B certificate
// (exceeding the anti-amplification limit), Δt = 200 ms, no packet loss;
// HTTP/1.1 and HTTP/3, all eight clients, WFC vs IACK.
//
// Paper shape: IACK reduces the median TTFB (largest for neqo ~9.6 ms and
// ngtcp2 ~10 ms); mvfst/picoquic barely change (no probes on instant ACK);
// go-x-net is erratic (mis-initialised smoothed RTT); HTTP/3 sits ~1 RTT
// below HTTP/1.1 because the server's SETTINGS is the first stream byte.
#include "bench_common.h"
#include "clients/profiles.h"
#include "core/sweep.h"
#include "registry.h"

QUICER_BENCH("fig05", "Figure 5: TTFB under the amplification limit, WFC vs IACK") {
  using namespace quicer;
  core::PrintTitle(
      "Figure 5: TTFB, 10 KB @ 9 ms RTT, large certificate (> amplification limit), "
      "delta_t = 200 ms, no loss");

  core::SweepSpec spec;
  spec.name = "fig05";
  spec.base.rtt = sim::Millis(9);
  spec.base.certificate_bytes = tls::kLargeCertificateBytes;
  spec.base.cert_fetch_delay = sim::Millis(200);
  spec.base.response_body_bytes = http::kSmallFileBytes;
  spec.axes.http_versions = {http::Version::kHttp1, http::Version::kHttp3};
  spec.axes.clients.assign(clients::kAllClients.begin(), clients::kAllClients.end());
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.repetitions = bench::kRepetitions;
  bench::Tune(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  for (http::Version version : spec.axes.http_versions) {
    core::PrintHeading(std::string(http::ToString(version)));
    bench::PrintAxis(200, 320);
    for (clients::ClientImpl impl : spec.axes.clients) {
      if (version == http::Version::kHttp3 && !clients::SupportsHttp3(impl)) continue;
      const auto row = bench::PrintSweepClientRow(result, impl, version, 200, 320);
      if (row.median_wfc > 0 && row.median_iack > 0) {
        std::printf("%10s  IACK improvement: %+.1f ms\n", "",
                    row.median_wfc - row.median_iack);
      }
    }
  }
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("fig05")
