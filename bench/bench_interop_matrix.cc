// QUIC-Interop-Runner-style matrix: median lossless TTFB for every client,
// HTTP version and server behaviour — the baseline grid underlying the
// paper's testbed (§3), useful for spotting profile regressions at a glance.
#include "bench_common.h"
#include "clients/profiles.h"
#include "registry.h"

QUICER_BENCH("interop_matrix", "Interop matrix: median lossless TTFB grid") {
  using namespace quicer;
  core::PrintTitle("Interop matrix: median TTFB [ms], 10 KB @ 9 ms RTT, no loss");

  core::SweepSpec spec;
  spec.name = "interop_matrix";
  spec.base.rtt = sim::Millis(9);
  spec.base.response_body_bytes = http::kSmallFileBytes;
  spec.axes.clients.assign(clients::kAllClients.begin(), clients::kAllClients.end());
  spec.axes.http_versions = {http::Version::kHttp1, http::Version::kHttp3};
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.repetitions = 15;
  bench::Tune(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  std::printf("%10s  %10s  %10s  %10s  %10s  %12s\n", "client", "H1/WFC", "H1/IACK", "H3/WFC",
              "H3/IACK", "H3-H1 gap");
  for (clients::ClientImpl impl : spec.axes.clients) {
    double cells[4] = {-1, -1, -1, -1};
    int cell = 0;
    for (http::Version version : spec.axes.http_versions) {
      for (quic::ServerBehavior behavior : spec.axes.behaviors) {
        const core::PointSummary* summary = result.Find([&](const core::SweepPoint& p) {
          return p.config.client == impl && p.config.http == version &&
                 p.config.behavior == behavior;
        });
        cells[cell++] = summary == nullptr ? -1.0 : summary->MedianOrNegative();
      }
    }
    std::printf("%10s  %10.1f  %10.1f  %10.1f  %10.1f  %12.1f\n",
                std::string(clients::Name(impl)).c_str(), cells[0], cells[1], cells[2],
                cells[3], cells[2] > 0 ? cells[0] - cells[2] : 0.0);
  }
  std::printf("\nShape check: without loss or amplification pressure, WFC == IACK for every\n"
              "client; HTTP/3 sits ~1 RTT below HTTP/1.1 (SETTINGS is the first stream\n"
              "byte). The instant-ACK effects only appear under loss (Fig 6/7) or the\n"
              "anti-amplification limit (Fig 5).\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("interop_matrix")
