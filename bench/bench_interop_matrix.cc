// QUIC-Interop-Runner-style matrix: median lossless TTFB for every client,
// HTTP version and server behaviour — the baseline grid underlying the
// paper's testbed (§3), useful for spotting profile regressions at a glance.
#include "bench_common.h"
#include "clients/profiles.h"

int main() {
  using namespace quicer;
  core::PrintTitle("Interop matrix: median TTFB [ms], 10 KB @ 9 ms RTT, no loss");
  std::printf("%10s  %10s  %10s  %10s  %10s  %12s\n", "client", "H1/WFC", "H1/IACK", "H3/WFC",
              "H3/IACK", "H3-H1 gap");
  for (clients::ClientImpl impl : clients::kAllClients) {
    double cells[4] = {-1, -1, -1, -1};
    int cell = 0;
    for (http::Version version : {http::Version::kHttp1, http::Version::kHttp3}) {
      for (quic::ServerBehavior behavior :
           {quic::ServerBehavior::kWaitForCertificate, quic::ServerBehavior::kInstantAck}) {
        if (version == http::Version::kHttp3 && !clients::SupportsHttp3(impl)) {
          ++cell;
          continue;
        }
        core::ExperimentConfig config;
        config.client = impl;
        config.http = version;
        config.behavior = behavior;
        config.rtt = sim::Millis(9);
        config.response_body_bytes = http::kSmallFileBytes;
        const auto values = core::CollectTtfbMs(config, 15);
        cells[cell++] = values.empty() ? -1.0 : stats::Median(values);
      }
    }
    std::printf("%10s  %10.1f  %10.1f  %10.1f  %10.1f  %12.1f\n",
                std::string(clients::Name(impl)).c_str(), cells[0], cells[1], cells[2],
                cells[3], cells[2] > 0 ? cells[0] - cells[2] : 0.0);
  }
  std::printf("\nShape check: without loss or amplification pressure, WFC == IACK for every\n"
              "client; HTTP/3 sits ~1 RTT below HTTP/1.1 (SETTINGS is the first stream\n"
              "byte). The instant-ACK effects only appear under loss (Fig 6/7) or the\n"
              "anti-amplification limit (Fig 5).\n");
  return 0;
}
