// Table 3 — Delay reported in the ACK Delay field of the first Initial- and
// Handshake-space acknowledgment, per server implementation (QUIC Interop
// Runner population).
//
// Paper takeaway (Appendix D): six implementations report 0 ms, msquic sends
// no Initial/Handshake ACKs at all, and s2n-quic reports more than the RTT —
// all of which disqualify ACK Delay as a substitute for instant ACK.
//
// Sweep mapping: the server implementation is an extra axis and a profile
// runner reads the two reported delays (kTrace, one repetition; NaN = the
// implementation sends no ACK in that space, rendered as "-").
#include <cstdio>

#include "bench_common.h"
#include "clients/server_profiles.h"
#include "core/report.h"
#include "registry.h"

QUICER_BENCH("table3", "Table 3: first ACK Delay per server implementation") {
  using namespace quicer;
  core::PrintTitle("Table 3: first ACK Delay per server implementation");

  core::SweepSpec spec;
  spec.name = "table3";
  core::SweepExtraAxis servers;
  servers.name = "server";
  for (clients::ServerImpl impl : clients::kAllServers) {
    servers.values.push_back({std::string(clients::GetServerAckDelayProfile(impl).name),
                              static_cast<std::int64_t>(impl)});
  }
  spec.axes.extras = {servers};
  spec.repetitions = 1;
  auto trace = [](const char* name) {
    return core::MetricSpec{name, core::MetricMode::kTrace, /*exclude_negative=*/false,
                            nullptr};
  };
  spec.metrics = {trace("initial_ack_delay_ms"), trace("handshake_ack_delay_ms")};
  spec.runner = [](const core::SweepRunContext& run) {
    const auto impl = static_cast<clients::ServerImpl>(run.point.Extra("server")->value);
    const auto& profile = clients::GetServerAckDelayProfile(impl);
    auto delay = [](const std::optional<sim::Duration>& d) {
      return d.has_value() ? sim::ToMillis(*d) : core::NoSample();
    };
    return std::vector<double>{delay(profile.initial_ack_delay),
                               delay(profile.handshake_ack_delay)};
  };
  bench::TuneObserver(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  std::printf("%12s  %16s  %18s\n", "server", "Initial [ms]", "Handshake [ms]");
  int zero_count = 0;
  int no_hs_ack = 0;
  for (const core::PointSummary& summary : result.points) {
    const auto& initial_trace = summary.Metric("initial_ack_delay_ms")->trace;
    const auto& handshake_trace = summary.Metric("handshake_ack_delay_ms")->trace;
    char initial[32] = "-";
    char handshake[32] = "-";
    if (!initial_trace.empty()) {
      std::snprintf(initial, sizeof(initial), "%.1f", initial_trace.front());
      if (initial_trace.front() == 0) ++zero_count;
    }
    if (!handshake_trace.empty()) {
      std::snprintf(handshake, sizeof(handshake), "%.1f", handshake_trace.front());
    } else {
      ++no_hs_ack;
    }
    std::printf("%12s  %16s  %18s\n", summary.point.Extra("server")->label.c_str(), initial,
                handshake);
  }
  std::printf("\n%d implementations report 0 ms in the first Initial ACK (paper: 6);\n"
              "%d send no Handshake-space acknowledgment (paper: 11+); msquic sends no\n"
              "Initial/Handshake ACKs at all; s2n-quic's reported delay exceeds the RTT.\n",
              zero_count, no_hs_ack);
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("table3")
