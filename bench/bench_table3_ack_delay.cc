// Table 3 — Delay reported in the ACK Delay field of the first Initial- and
// Handshake-space acknowledgment, per server implementation (QUIC Interop
// Runner population).
//
// Paper takeaway (Appendix D): six implementations report 0 ms, msquic sends
// no Initial/Handshake ACKs at all, and s2n-quic reports more than the RTT —
// all of which disqualify ACK Delay as a substitute for instant ACK.
#include <cstdio>

#include "clients/server_profiles.h"
#include "core/report.h"

int main() {
  using namespace quicer;
  core::PrintTitle("Table 3: first ACK Delay per server implementation");
  std::printf("%12s  %16s  %18s\n", "server", "Initial [ms]", "Handshake [ms]");
  int zero_count = 0;
  int no_hs_ack = 0;
  for (clients::ServerImpl impl : clients::kAllServers) {
    const auto& profile = clients::GetServerAckDelayProfile(impl);
    char initial[32] = "-";
    char handshake[32] = "-";
    if (profile.initial_ack_delay) {
      std::snprintf(initial, sizeof(initial), "%.1f", sim::ToMillis(*profile.initial_ack_delay));
      if (*profile.initial_ack_delay == 0) ++zero_count;
    }
    if (profile.handshake_ack_delay) {
      std::snprintf(handshake, sizeof(handshake), "%.1f",
                    sim::ToMillis(*profile.handshake_ack_delay));
    } else {
      ++no_hs_ack;
    }
    std::printf("%12s  %16s  %18s\n", std::string(profile.name).c_str(), initial, handshake);
  }
  std::printf("\n%d implementations report 0 ms in the first Initial ACK (paper: 6);\n"
              "%d send no Handshake-space acknowledgment (paper: 11+); msquic sends no\n"
              "Initial/Handshake ACKs at all; s2n-quic's reported delay exceeds the RTT.\n",
              zero_count, no_hs_ack);
  return 0;
}
