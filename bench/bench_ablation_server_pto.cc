// §5 tuning ablation — the server's default PTO trade-off: "When an instant
// ACK was received successfully but the ServerHello and additional packets
// of the handshake are lost, the server has to wait until its default PTO
// expires. Lowering this value is a trade-off between faster recovery from
// packet loss and inducing spurious retransmissions."
//
// Sweeps the server default PTO in the Fig 6 scenario (first-server-flight
// tail lost, IACK) and in the lossless case, reporting recovery time and
// spurious retransmissions.
#include "bench_common.h"
#include "core/loss_scenarios.h"

namespace {

using namespace quicer;

struct Point {
  double ttfb_ms = -1.0;
  double spurious = 0.0;
};

Point Run(double server_pto_ms, bool with_loss) {
  core::ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.behavior = quic::ServerBehavior::kInstantAck;
  config.rtt = sim::Millis(9);
  config.server_default_pto = sim::Millis(server_pto_ms);
  config.response_body_bytes = http::kSmallFileBytes;
  if (with_loss) {
    config.loss = core::FirstServerFlightTailLoss(quic::ServerBehavior::kInstantAck,
                                                  config.certificate_bytes, config.http);
  }
  Point point;
  const auto ttfb = core::CollectTtfbMs(config, bench::kRepetitions);
  if (!ttfb.empty()) point.ttfb_ms = stats::Median(ttfb);
  point.spurious = stats::Median(core::RunRepetitions(
      config, bench::kRepetitions, [](const core::ExperimentResult& r) {
        return static_cast<double>(r.client.spurious_retransmits +
                                   r.server.spurious_retransmits);
      }));
  return point;
}

}  // namespace

int main() {
  core::PrintTitle("Ablation: server default PTO trade-off (IACK, 9 ms RTT)");
  std::printf("%16s  %22s  %22s  %10s\n", "server PTO [ms]", "TTFB, flight lost [ms]",
              "TTFB, no loss [ms]", "spurious");
  for (double pto_ms : {25.0, 50.0, 100.0, 200.0, 400.0, 999.0}) {
    const Point lossy = Run(pto_ms, true);
    const Point clean = Run(pto_ms, false);
    std::printf("%16.0f  %22.1f  %22.1f  %10.0f\n", pto_ms, lossy.ttfb_ms, clean.ttfb_ms,
                lossy.spurious + clean.spurious);
  }
  std::printf("\nShape check: lowering the default PTO speeds up recovery roughly linearly\n"
              "(the Fig 6 penalty tracks the default PTO) until it under-runs the true RTT\n"
              "and spurious retransmissions appear.\n");
  return 0;
}
