// §5 tuning ablation — the server's default PTO trade-off: "When an instant
// ACK was received successfully but the ServerHello and additional packets
// of the handshake are lost, the server has to wait until its default PTO
// expires. Lowering this value is a trade-off between faster recovery from
// packet loss and inducing spurious retransmissions."
//
// Sweeps the server default PTO in the Fig 6 scenario (first-server-flight
// tail lost, IACK) and in the lossless case, reporting recovery time and
// spurious retransmissions.
#include "bench_common.h"
#include "core/loss_scenarios.h"
#include "core/sweep.h"
#include "registry.h"

QUICER_BENCH("ablation_server_pto", "Ablation: server default PTO trade-off") {
  using namespace quicer;
  core::PrintTitle("Ablation: server default PTO trade-off (IACK, 9 ms RTT)");

  const double kPtos[] = {25.0, 50.0, 100.0, 200.0, 400.0, 999.0};

  core::SweepSpec spec;
  spec.name = "ablation_server_pto";
  spec.base.client = clients::ClientImpl::kQuicGo;
  spec.base.behavior = quic::ServerBehavior::kInstantAck;
  spec.base.rtt = sim::Millis(9);
  spec.base.response_body_bytes = http::kSmallFileBytes;
  for (double pto_ms : kPtos) {
    char label[32];
    std::snprintf(label, sizeof(label), "pto=%.0f", pto_ms);
    spec.axes.variants.push_back(
        {label, [pto_ms](core::ExperimentConfig& c) { c.server_default_pto = sim::Millis(pto_ms); }});
  }
  spec.axes.losses = {{"first-server-flight-tail",
                       [](const core::ExperimentConfig& c) {
                         return core::FirstServerFlightTailLoss(quic::ServerBehavior::kInstantAck,
                                                                c.certificate_bytes, c.http);
                       }},
                      {"none", nullptr}};
  spec.repetitions = bench::kRepetitions;
  bench::Tune(spec, ctx);
  const core::SweepResult ttfb = core::RunSweep(spec);

  core::SweepSpec spurious_spec = spec;
  spurious_spec.name = "ablation_server_pto_spurious";
  // Raw counts, negatives included: the legacy loops aggregated raw values.
  spurious_spec.metrics = {
      {"spurious_retransmits", core::MetricMode::kSummary, /*exclude_negative=*/false,
       [](const core::ExperimentResult& r) {
         return static_cast<double>(r.client.spurious_retransmits +
                                    r.server.spurious_retransmits);
       }}};
  const core::SweepResult spurious = core::RunSweep(spurious_spec);
  if (bench::AnyPartialExported({&ttfb, &spurious})) return 0;

  std::printf("%16s  %22s  %22s  %10s\n", "server PTO [ms]", "TTFB, flight lost [ms]",
              "TTFB, no loss [ms]", "spurious");
  for (double pto_ms : kPtos) {
    char label[32];
    std::snprintf(label, sizeof(label), "pto=%.0f", pto_ms);
    auto cell = [&](const core::SweepResult& result, const char* loss) {
      return result.Find([&](const core::SweepPoint& p) {
        return p.variant == label && p.loss == loss;
      });
    };
    std::printf("%16.0f  %22.1f  %22.1f  %10.0f\n", pto_ms,
                cell(ttfb, "first-server-flight-tail")->MedianOrNegative(),
                cell(ttfb, "none")->MedianOrNegative(),
                cell(spurious, "first-server-flight-tail")->values().Median() +
                    cell(spurious, "none")->values().Median());
  }
  std::printf("\nShape check: lowering the default PTO speeds up recovery roughly linearly\n"
              "(the Fig 6 penalty tracks the default PTO) until it under-runs the true RTT\n"
              "and spurious retransmissions appear.\n");
  core::MaybeWriteSweepData(ttfb);
  core::MaybeWriteSweepData(spurious);
  return 0;
}
QUICER_BENCH_MAIN("ablation_server_pto")
