// Table 1 — Domains from the Tranco Top-1M hosted by CDNs, share of instant
// ACK deployment, and maximum variation across vantage points/days.
//
// The synthetic population encodes the published per-CDN behaviour as
// ground truth; the QScanner-style prober re-measures it from all four
// vantage points over three days, exactly like the paper's classification
// pipeline (separate ACK preceding the ServerHello = IACK).
//
// Sweep mapping: day × vantage × CDN extra axes; the per-point mean of the
// 0/1 "IACK observed" metric is the cell's deployment share, and the
// min/max over a CDN's twelve (day, vantage) cells is the paper's
// variation column.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "core/report.h"
#include "registry.h"
#include "scan/sweep_runners.h"

QUICER_BENCH("table1", "Table 1: CDN-hosted domains and instant-ACK deployment") {
  using namespace quicer;
  core::PrintTitle("Table 1: CDN-hosted domains and instant-ACK deployment (Tranco Top-1M)");

  // 100k-domain population scaled from the 1M list (counts scaled back up).
  constexpr std::size_t kPopulation = 100000;
  auto population = std::make_shared<const scan::TrancoPopulation>(kPopulation, /*seed=*/2024);

  core::SweepSpec spec;
  spec.name = "table1";
  // 4 vantage points x 3 days, as in §3.
  spec.axes.extras = {
      scan::DayAxis(3),
      scan::VantageAxis({scan::kAllVantages.begin(), scan::kAllVantages.end()}),
      scan::CdnAxis({scan::kAllCdns.begin(), scan::kAllCdns.end()})};
  spec.repetitions = static_cast<int>(population->size());
  spec.metrics = {
      {"iack_observed", core::MetricMode::kSummary, /*exclude_negative=*/false, nullptr}};
  spec.runner = scan::ProbeRunner(
      population, /*prober_seed=*/7, scan::MatchPointCdn(),
      {[](const core::SweepPoint&, const scan::Domain&, const scan::ProbeResult& result) {
        if (!result.success) return core::NoSample();
        return result.iack_observed ? 1.0 : 0.0;
      }});
  bench::TuneObserver(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  struct Row {
    int domains = 0;
    double min_share = 1.0;
    double max_share = 0.0;
  };
  std::map<scan::Cdn, Row> rows;
  for (scan::Cdn cdn : scan::kAllCdns) rows[cdn].domains = population->CountQuic(cdn);
  for (const core::PointSummary& summary : result.points) {
    if (summary.values().count() == 0) continue;
    const double share = summary.values().mean();
    Row& row = rows[*scan::PointCdn(summary.point)];
    row.min_share = std::min(row.min_share, share);
    row.max_share = std::max(row.max_share, share);
  }

  std::printf("%12s  %12s  %16s  %14s      (paper: share / variation)\n", "CDN",
              "Domains [#]", "IACK enabled [%]", "Variation [%]");
  const char* paper[] = {"32.2 / 12.9", "41.0 / 18.0", "99.9 / 0.1", "0.0 / 0.0",
                         "11.5 / 11.5", "0.0 / 0.0",   "0.0 / 0.0",  "21.5 / 2.3"};
  int index = 0;
  const double scale = 1.0 / population->scale();
  for (scan::Cdn cdn : scan::kAllCdns) {
    const Row& row = rows[cdn];
    const double share = row.max_share * 100.0;
    const double variation = (row.max_share - row.min_share) * 100.0;
    std::printf("%12s  %12.0f  %16.1f  %14.1f      (%s)\n",
                std::string(scan::Name(cdn)).c_str(), row.domains * scale, share, variation,
                paper[index++]);
  }
  std::printf("\nNote: IACK share counts only *separate* ACKs preceding the SH; cached\n"
              "certificates produce coalesced ACK+SH and lower the observed share for\n"
              "popular domains, as in the paper's Cloudflare analysis.\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("table1")
