// Table 1 — Domains from the Tranco Top-1M hosted by CDNs, share of instant
// ACK deployment, and maximum variation across vantage points/days.
//
// The synthetic population encodes the published per-CDN behaviour as
// ground truth; the QScanner-style prober re-measures it from all four
// vantage points over three days, exactly like the paper's classification
// pipeline (separate ACK preceding the ServerHello = IACK).
#include <cstdio>
#include <map>

#include "core/report.h"
#include "scan/population.h"
#include "scan/prober.h"

int main() {
  using namespace quicer;
  core::PrintTitle("Table 1: CDN-hosted domains and instant-ACK deployment (Tranco Top-1M)");

  // 100k-domain population scaled from the 1M list (counts scaled back up).
  constexpr std::size_t kPopulation = 100000;
  scan::TrancoPopulation population(kPopulation, /*seed=*/2024);
  scan::Prober prober(/*seed=*/7);

  struct Row {
    int domains = 0;
    double min_share = 1.0;
    double max_share = 0.0;
  };
  std::map<scan::Cdn, Row> rows;

  for (scan::Cdn cdn : scan::kAllCdns) rows[cdn].domains = population.CountQuic(cdn);

  // 4 vantage points x 3 days, as in §3.
  for (std::uint64_t day = 0; day < 3; ++day) {
    for (scan::Vantage vantage : scan::kAllVantages) {
      std::map<scan::Cdn, std::pair<int, int>> counts;  // {iack, total}
      for (const scan::Domain& domain : population.domains()) {
        if (!domain.speaks_quic) continue;
        const scan::ProbeResult result = prober.Probe(domain, vantage, day);
        if (!result.success) continue;
        auto& [iack, total] = counts[domain.cdn];
        ++total;
        if (result.iack_observed) ++iack;
      }
      for (auto& [cdn, count] : counts) {
        if (count.second == 0) continue;
        const double share = static_cast<double>(count.first) / count.second;
        rows[cdn].min_share = std::min(rows[cdn].min_share, share);
        rows[cdn].max_share = std::max(rows[cdn].max_share, share);
      }
    }
  }

  std::printf("%12s  %12s  %16s  %14s      (paper: share / variation)\n", "CDN",
              "Domains [#]", "IACK enabled [%]", "Variation [%]");
  const char* paper[] = {"32.2 / 12.9", "41.0 / 18.0", "99.9 / 0.1", "0.0 / 0.0",
                         "11.5 / 11.5", "0.0 / 0.0",   "0.0 / 0.0",  "21.5 / 2.3"};
  int index = 0;
  const double scale = 1.0 / population.scale();
  for (scan::Cdn cdn : scan::kAllCdns) {
    const Row& row = rows[cdn];
    const double share = row.max_share * 100.0;
    const double variation = (row.max_share - row.min_share) * 100.0;
    std::printf("%12s  %12.0f  %16.1f  %14.1f      (%s)\n",
                std::string(scan::Name(cdn)).c_str(), row.domains * scale, share, variation,
                paper[index++]);
  }
  std::printf("\nNote: IACK share counts only *separate* ACKs preceding the SH; cached\n"
              "certificates produce coalesced ACK+SH and lower the observed share for\n"
              "popular domains, as in the paper's Cloudflare analysis.\n");
  return 0;
}
