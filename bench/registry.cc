// lint:allow-file(ND002): suite budget accounting is wall-clock by design.
#include "registry.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace quicer::bench {

double BenchContext::RemainingBudgetSeconds() const {
  if (budget_seconds <= 0.0) return 0.0;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - suite_start).count();
  // Never return the "unlimited" 0: an exhausted budget must skip the
  // remaining sweeps' points, not unleash them.
  return std::max(1e-3, budget_seconds - elapsed);
}

Registry& Registry::Instance() {
  static Registry* registry = new Registry();  // leaked: outlives static dtors
  return *registry;
}

void Registry::Add(BenchInfo info) { benches_.push_back(std::move(info)); }

std::vector<BenchInfo> Registry::Benches() const { return Match(""); }

std::vector<BenchInfo> Registry::Match(const std::string& filter) const {
  std::vector<BenchInfo> out;
  for (const BenchInfo& bench : benches_) {
    if (filter.empty() || bench.name.find(filter) != std::string::npos) {
      out.push_back(bench);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const BenchInfo& a, const BenchInfo& b) { return a.name < b.name; });
  return out;
}

const BenchInfo* Registry::Find(const std::string& name) const {
  for (const BenchInfo& bench : benches_) {
    if (bench.name == name) return &bench;
  }
  return nullptr;
}

Registrar::Registrar(std::string name, std::string description,
                     std::function<int(const BenchContext&)> run) {
  Registry::Instance().Add(BenchInfo{std::move(name), std::move(description), std::move(run)});
}

int RunByName(const std::string& name, const BenchContext& context) {
  const BenchInfo* bench = Registry::Instance().Find(name);
  if (bench == nullptr) {
    std::fprintf(stderr, "unknown bench: %s\n", name.c_str());
    return 2;
  }
  return bench->run(context);
}

}  // namespace quicer::bench
