#include "registry.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace quicer::bench {

Registry& Registry::Instance() {
  static Registry* registry = new Registry();  // leaked: outlives static dtors
  return *registry;
}

void Registry::Add(BenchInfo info) { benches_.push_back(std::move(info)); }

std::vector<BenchInfo> Registry::Benches() const { return Match(""); }

std::vector<BenchInfo> Registry::Match(const std::string& filter) const {
  std::vector<BenchInfo> out;
  for (const BenchInfo& bench : benches_) {
    if (filter.empty() || bench.name.find(filter) != std::string::npos) {
      out.push_back(bench);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const BenchInfo& a, const BenchInfo& b) { return a.name < b.name; });
  return out;
}

const BenchInfo* Registry::Find(const std::string& name) const {
  for (const BenchInfo& bench : benches_) {
    if (bench.name == name) return &bench;
  }
  return nullptr;
}

Registrar::Registrar(std::string name, std::string description, std::function<int()> run) {
  Registry::Instance().Add(BenchInfo{std::move(name), std::move(description), std::move(run)});
}

int RunByName(const std::string& name) {
  const BenchInfo* bench = Registry::Instance().Find(name);
  if (bench == nullptr) {
    std::fprintf(stderr, "unknown bench: %s\n", name.c_str());
    return 2;
  }
  return bench->run();
}

}  // namespace quicer::bench
