// Fig 6 — TTFB of a 10 KB transfer at 9 ms RTT under loss of the remaining
// first server flight: datagrams 2+3 (IACK) / datagram 2 (WFC).
//
// Paper shape: WFC outperforms IACK by ~177-188 ms. The instant ACK is not
// ack-eliciting, so the server holds no RTT sample and must recover on its
// default PTO (200 ms); under WFC the client's ACK of the coalesced ACK+SH
// gives the server a sample and recovery is fast. quiche (HTTP/1.1) aborts
// on duplicate CID retirement.
#include "bench_common.h"
#include "clients/profiles.h"
#include "core/loss_scenarios.h"

int main() {
  using namespace quicer;
  core::PrintTitle(
      "Figure 6: TTFB, 10 KB @ 9 ms RTT, loss of first server flight tail (HTTP/1.1)");
  bench::PrintAxis(40, 320);
  for (clients::ClientImpl impl : clients::kAllClients) {
    core::ExperimentConfig config;
    config.client = impl;
    config.http = http::Version::kHttp1;
    config.rtt = sim::Millis(9);
    config.response_body_bytes = http::kSmallFileBytes;

    core::ExperimentConfig wfc = config;
    wfc.behavior = quic::ServerBehavior::kWaitForCertificate;
    wfc.loss = core::FirstServerFlightTailLoss(wfc.behavior, config.certificate_bytes,
                                               config.http);
    core::ExperimentConfig iack = config;
    iack.behavior = quic::ServerBehavior::kInstantAck;
    iack.loss = core::FirstServerFlightTailLoss(iack.behavior, config.certificate_bytes,
                                                config.http);

    const auto wfc_values = core::CollectResponseTtfbMs(wfc, bench::kRepetitions);
    const auto iack_values = core::CollectResponseTtfbMs(iack, bench::kRepetitions);
    const char* name = std::string(clients::Name(impl)).c_str();
    std::printf("%10s WFC   [%s]  median %8.1f ms\n", std::string(clients::Name(impl)).c_str(),
                core::RenderScatter(wfc_values, 40, 320).c_str(),
                wfc_values.empty() ? -1.0 : stats::Median(wfc_values));
    if (iack_values.empty()) {
      std::printf("%10s IACK  (connections aborted: duplicate CID retirement)\n",
                  std::string(clients::Name(impl)).c_str());
    } else {
      std::printf("%10s IACK  [%s]  median %8.1f ms  (IACK penalty %+.1f ms)\n",
                  std::string(clients::Name(impl)).c_str(),
                  core::RenderScatter(iack_values, 40, 320).c_str(),
                  stats::Median(iack_values),
                  stats::Median(iack_values) -
                      (wfc_values.empty() ? 0.0 : stats::Median(wfc_values)));
    }
    (void)name;
  }
  std::printf("\nShape check: IACK needs on the order of the server default PTO (200 ms)\n"
              "longer than WFC, matching the paper's ~177-188 ms penalty.\n");
  return 0;
}
