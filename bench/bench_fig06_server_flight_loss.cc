// Fig 6 — TTFB of a 10 KB transfer at 9 ms RTT under loss of the remaining
// first server flight: datagrams 2+3 (IACK) / datagram 2 (WFC).
//
// Paper shape: WFC outperforms IACK by ~177-188 ms. The instant ACK is not
// ack-eliciting, so the server holds no RTT sample and must recover on its
// default PTO (200 ms); under WFC the client's ACK of the coalesced ACK+SH
// gives the server a sample and recovery is fast. quiche (HTTP/1.1) aborts
// on duplicate CID retirement.
#include "bench_common.h"
#include "clients/profiles.h"
#include "core/loss_scenarios.h"
#include "core/sweep.h"
#include "registry.h"

QUICER_BENCH("fig06", "Figure 6: TTFB under first-server-flight tail loss") {
  using namespace quicer;
  core::PrintTitle(
      "Figure 6: TTFB, 10 KB @ 9 ms RTT, loss of first server flight tail (HTTP/1.1)");
  bench::PrintAxis(40, 320);

  core::SweepSpec spec;
  spec.name = "fig06";
  spec.base.http = http::Version::kHttp1;
  spec.base.rtt = sim::Millis(9);
  spec.base.response_body_bytes = http::kSmallFileBytes;
  spec.axes.clients.assign(clients::kAllClients.begin(), clients::kAllClients.end());
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.axes.losses = {{"first-server-flight-tail", [](const core::ExperimentConfig& c) {
                         return core::FirstServerFlightTailLoss(c.behavior,
                                                                c.certificate_bytes, c.http);
                       }}};
  spec.repetitions = bench::kRepetitions;
  spec.metrics = {{"response_ttfb_ms", core::MetricMode::kSummary, /*exclude_negative=*/true,
                   [](const core::ExperimentResult& r) { return r.ResponseTtfbMs(); }}};
  bench::Tune(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  for (clients::ClientImpl impl : spec.axes.clients) {
    auto find = [&](quic::ServerBehavior behavior) {
      return result.Find([&](const core::SweepPoint& p) {
        return p.config.client == impl && p.config.behavior == behavior;
      });
    };
    const core::PointSummary* wfc = find(quic::ServerBehavior::kWaitForCertificate);
    const core::PointSummary* iack = find(quic::ServerBehavior::kInstantAck);
    const std::string name(clients::Name(impl));
    std::printf("%10s WFC   [%s]  median %8.1f ms\n", name.c_str(),
                core::RenderAccumulatorScatter(wfc->values(), 40, 320).c_str(), wfc->MedianOrNegative());
    if (iack->all_aborted()) {
      std::printf("%10s IACK  (connections aborted: duplicate CID retirement)\n",
                  name.c_str());
    } else {
      std::printf("%10s IACK  [%s]  median %8.1f ms  (IACK penalty %+.1f ms)\n", name.c_str(),
                  core::RenderAccumulatorScatter(iack->values(), 40, 320).c_str(),
                  iack->values().Median(),
                  iack->values().Median() - (wfc->all_aborted() ? 0.0 : wfc->values().Median()));
    }
  }
  std::printf("\nShape check: IACK needs on the order of the server default PTO (200 ms)\n"
              "longer than WFC, matching the paper's ~177-188 ms penalty.\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("fig06")
