// Fig 10 — Difference between the client-frontend RTT and the reported ACK
// Delay field, per CDN, separately for coalesced ACK+SH and separate IACKs.
//
// Paper shape: coalesced ACK+SH overwhelmingly carry an acknowledgment delay
// close to or exceeding the RTT (99.8 % within 1 ms of it); separate IACKs
// exceed the RTT for most CDNs except Akamai and Others, where 61 % / 79 %
// stay below — only those allow correct client-side RTT adjustment.
//
// Sweep mapping: CDN is an extra axis; both response classes are kTrace
// metrics of one probe sweep (NaN skips the class the probe did not hit —
// exclude_negative stays off because RTT - ACK Delay is legitimately
// negative, the paper's "delay exceeds RTT" signal).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/report.h"
#include "registry.h"
#include "scan/sweep_runners.h"
#include "stats/stats.h"

namespace {

using namespace quicer;

void Report(const core::SweepResult& result, const char* metric, const char* label) {
  core::PrintHeading(label);
  std::printf("%12s  %8s  %12s  %12s  %18s\n", "CDN", "n", "median[ms]", "p90 [ms]",
              "share delay>RTT [%]");
  for (const core::PointSummary& summary : result.points) {
    const std::vector<double>& values = summary.Metric(metric)->trace;
    if (values.size() < 5) continue;
    int exceeds = 0;
    for (double diff : values) {
      if (diff < 0) ++exceeds;  // diff = RTT - ack_delay < 0 -> delay exceeds RTT
    }
    std::printf("%12s  %8zu  %12.2f  %12.2f  %18.1f\n",
                summary.point.Extra("cdn")->label.c_str(), values.size(),
                stats::Median(values), stats::Percentile(values, 90),
                100.0 * exceeds / static_cast<double>(values.size()));
  }
}

}  // namespace

QUICER_BENCH("fig10", "Figure 10: RTT minus reported ACK Delay, coalesced vs instant ACK") {
  core::PrintTitle("Figure 10: RTT minus reported ACK Delay, coalesced vs instant ACK");

  auto population = std::make_shared<const scan::TrancoPopulation>(100000, 2024);

  core::SweepSpec spec;
  spec.name = "fig10";
  spec.axes.extras = {
      scan::CdnAxis({scan::kAllCdns.begin(), scan::kAllCdns.end()})};
  spec.repetitions = static_cast<int>(population->size());
  auto trace = [](const char* name) {
    return core::MetricSpec{name, core::MetricMode::kTrace, /*exclude_negative=*/false,
                            nullptr};
  };
  spec.metrics = {trace("rtt_minus_ackdelay_coalesced"), trace("rtt_minus_ackdelay_iack")};
  spec.runner = scan::ProbeRunner(
      population, /*prober_seed=*/17, scan::MatchPointCdn(),
      {[](const core::SweepPoint&, const scan::Domain&, const scan::ProbeResult& result) {
         if (!result.success || !result.coalesced) return core::NoSample();
         return result.rtt_ms - result.reported_ack_delay_ms;
       },
       [](const core::SweepPoint&, const scan::Domain&, const scan::ProbeResult& result) {
         if (!result.success || !result.iack_observed) return core::NoSample();
         return result.rtt_ms - result.reported_ack_delay_ms;
       }});
  bench::TuneObserver(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  Report(result, "rtt_minus_ackdelay_coalesced", "(a) Coalesced ACK+SH");
  Report(result, "rtt_minus_ackdelay_iack", "(b) Separate instant ACK");
  std::printf("\nShape check: coalesced responses hug/exceed the RTT; only Akamai and\n"
              "Others' IACKs predominantly stay below it.\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("fig10")
