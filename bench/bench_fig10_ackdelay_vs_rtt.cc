// Fig 10 — Difference between the client-frontend RTT and the reported ACK
// Delay field, per CDN, separately for coalesced ACK+SH and separate IACKs.
//
// Paper shape: coalesced ACK+SH overwhelmingly carry an acknowledgment delay
// close to or exceeding the RTT (99.8 % within 1 ms of it); separate IACKs
// exceed the RTT for most CDNs except Akamai and Others, where 61 % / 79 %
// stay below — only those allow correct client-side RTT adjustment.
#include <cstdio>
#include <map>
#include <vector>

#include "core/report.h"
#include "scan/population.h"
#include "scan/prober.h"
#include "stats/stats.h"

namespace {

void Report(const std::map<quicer::scan::Cdn, std::vector<double>>& diffs, const char* label) {
  using namespace quicer;
  core::PrintHeading(label);
  std::printf("%12s  %8s  %12s  %12s  %18s\n", "CDN", "n", "median[ms]", "p90 [ms]",
              "share delay>RTT [%]");
  for (const auto& [cdn, values] : diffs) {
    if (values.size() < 5) continue;
    int exceeds = 0;
    for (double diff : values) {
      if (diff < 0) ++exceeds;  // diff = RTT - ack_delay < 0 -> delay exceeds RTT
    }
    std::printf("%12s  %8zu  %12.2f  %12.2f  %18.1f\n",
                std::string(scan::Name(cdn)).c_str(), values.size(),
                stats::Median(std::vector<double>(values)),
                stats::Percentile(std::vector<double>(values), 90),
                100.0 * exceeds / static_cast<double>(values.size()));
  }
}

}  // namespace

int main() {
  using namespace quicer;
  core::PrintTitle("Figure 10: RTT minus reported ACK Delay, coalesced vs instant ACK");

  scan::TrancoPopulation population(100000, 2024);
  scan::Prober prober(17);
  std::map<scan::Cdn, std::vector<double>> coalesced;
  std::map<scan::Cdn, std::vector<double>> iack;

  for (const scan::Domain& domain : population.domains()) {
    if (!domain.speaks_quic) continue;
    const scan::ProbeResult result = prober.Probe(domain, scan::Vantage::kSaoPaulo, 0);
    if (!result.success) continue;
    const double diff = result.rtt_ms - result.reported_ack_delay_ms;
    if (result.coalesced) {
      coalesced[domain.cdn].push_back(diff);
    } else if (result.iack_observed) {
      iack[domain.cdn].push_back(diff);
    }
  }

  Report(coalesced, "(a) Coalesced ACK+SH");
  Report(iack, "(b) Separate instant ACK");
  std::printf("\nShape check: coalesced responses hug/exceed the RTT; only Akamai and\n"
              "Others' IACKs predominantly stay below it.\n");
  return 0;
}
