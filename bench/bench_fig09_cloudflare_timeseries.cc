// Fig 9 — Reception latency of ACK, SH and coalesced ACK+SH from Cloudflare
// in São Paulo over one week (every sample is a real engine handshake).
//
// Paper shape: the instant ACK arrives ~2.1 ms after the ClientHello; the
// separate SH follows a few ms later, with larger gaps during local daytime;
// coalesced ACK+SH (cached certificate) arrives as fast as the instant ACK.
#include <cstdio>

#include "core/report.h"
#include "scan/study.h"

int main() {
  using namespace quicer;
  core::PrintTitle("Figure 9: Cloudflare week-long study, Sao Paulo (engine-backed)");

  scan::CloudflareStudyConfig config;
  config.vantage = scan::Vantage::kSaoPaulo;
  config.hours = 168;
  config.samples_per_hour = 6;
  config.cache_probability = 0.075;

  const auto points = scan::RunCloudflareStudy(config);
  std::printf("%6s  %10s  %10s  %14s\n", "hour", "ACK [ms]", "SH [ms]", "ACK,SH coal [ms]");
  for (const auto& point : points) {
    if (point.hour % 6 != 0) continue;  // readable subsample
    std::printf("%6d  %10.2f  %10.2f  %14.2f\n", point.hour, point.median_ack_ms,
                point.median_sh_ms, point.median_coalesced_ms);
  }

  const auto summary = scan::SummarizeStudy(points);
  core::PrintHeading("Summary (paper: IACK ~2.1 ms before SH; avoided PTO inflation 6.3-7.2 ms)");
  std::printf("median ACK since CH:        %6.2f ms\n", summary.median_ack_ms);
  std::printf("median SH since CH:         %6.2f ms\n", summary.median_sh_ms);
  std::printf("median ACK->SH gap:         %6.2f ms\n", summary.median_gap_ms);
  std::printf("avoided PTO inflation (3x): %6.2f ms\n", summary.avoided_pto_inflation_ms);
  std::printf("coalesced share:            %6.1f %%\n", summary.coalesced_share * 100.0);
  std::printf("\nShape check: daytime hours (7-19 local) show larger ACK->SH gaps; coalesced\n"
              "responses track the instant-ACK latency (certificate cached).\n");
  return 0;
}
