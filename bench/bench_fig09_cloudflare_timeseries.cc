// Fig 9 — Reception latency of ACK, SH and coalesced ACK+SH from Cloudflare
// in São Paulo over one week (every sample is a real engine handshake).
//
// Paper shape: the instant ACK arrives ~2.1 ms after the ClientHello; the
// separate SH follows a few ms later, with larger gaps during local daytime;
// coalesced ACK+SH (cached certificate) arrives as fast as the instant ACK.
//
// Sweep mapping: one point, repetition index = study hour, and the three
// latency series are kTrace metrics (exclude_negative off: the -1 "no
// samples this hour" sentinel keeps the series hour-aligned). The study
// itself runs once per point (scan::StudyRunner memoizes it); sample counts
// ride along as two more traces so the summary is rebuilt exactly.
#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "registry.h"
#include "scan/sweep_runners.h"

namespace {

using namespace quicer;

scan::StudyMetricFn HourField(double scan::HourlyPoint::*field) {
  return [field](const scan::StudyOutcome& outcome, const core::SweepRunContext& ctx) {
    return outcome.points[static_cast<std::size_t>(ctx.repetition)].*field;
  };
}

scan::StudyMetricFn HourCount(int scan::HourlyPoint::*field) {
  return [field](const scan::StudyOutcome& outcome, const core::SweepRunContext& ctx) {
    return static_cast<double>(outcome.points[static_cast<std::size_t>(ctx.repetition)].*field);
  };
}

}  // namespace

QUICER_BENCH("fig09", "Figure 9: Cloudflare week-long study time series (Sao Paulo)") {
  core::PrintTitle("Figure 9: Cloudflare week-long study, Sao Paulo (engine-backed)");

  scan::CloudflareStudyConfig config;
  config.vantage = scan::Vantage::kSaoPaulo;
  config.hours = 168;
  config.samples_per_hour = 6;
  config.cache_probability = 0.075;

  core::SweepSpec spec;
  spec.name = "fig09";
  spec.repetitions = config.hours;
  auto trace = [](const char* name) {
    return core::MetricSpec{name, core::MetricMode::kTrace, /*exclude_negative=*/false,
                            nullptr};
  };
  spec.metrics = {trace("median_ack_ms"), trace("median_sh_ms"), trace("median_coalesced_ms"),
                  trace("ack_samples"), trace("coalesced_samples")};
  spec.runner = scan::StudyRunner(
      [config](const core::SweepPoint&) { return config; },
      {HourField(&scan::HourlyPoint::median_ack_ms), HourField(&scan::HourlyPoint::median_sh_ms),
       HourField(&scan::HourlyPoint::median_coalesced_ms),
       HourCount(&scan::HourlyPoint::ack_samples),
       HourCount(&scan::HourlyPoint::coalesced_samples)});
  bench::TuneObserver(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;
  const core::PointSummary& point = result.points.front();

  std::printf("%6s  %10s  %10s  %14s\n", "hour", "ACK [ms]", "SH [ms]", "ACK,SH coal [ms]");
  for (int hour = 0; hour < config.hours; ++hour) {
    if (hour % 6 != 0) continue;  // readable subsample
    const std::size_t i = static_cast<std::size_t>(hour);
    std::printf("%6d  %10.2f  %10.2f  %14.2f\n", hour,
                point.Metric("median_ack_ms")->trace[i],
                point.Metric("median_sh_ms")->trace[i],
                point.Metric("median_coalesced_ms")->trace[i]);
  }

  // Rebuild the hourly points from the traces; the summary is then exactly
  // the legacy SummarizeStudy over the study's own output.
  std::vector<scan::HourlyPoint> hours(static_cast<std::size_t>(config.hours));
  for (int hour = 0; hour < config.hours; ++hour) {
    const std::size_t i = static_cast<std::size_t>(hour);
    hours[i].hour = hour;
    hours[i].median_ack_ms = point.Metric("median_ack_ms")->trace[i];
    hours[i].median_sh_ms = point.Metric("median_sh_ms")->trace[i];
    hours[i].median_coalesced_ms = point.Metric("median_coalesced_ms")->trace[i];
    hours[i].ack_samples = static_cast<int>(point.Metric("ack_samples")->trace[i]);
    hours[i].coalesced_samples = static_cast<int>(point.Metric("coalesced_samples")->trace[i]);
  }
  const auto summary = scan::SummarizeStudy(hours);
  core::PrintHeading("Summary (paper: IACK ~2.1 ms before SH; avoided PTO inflation 6.3-7.2 ms)");
  std::printf("median ACK since CH:        %6.2f ms\n", summary.median_ack_ms);
  std::printf("median SH since CH:         %6.2f ms\n", summary.median_sh_ms);
  std::printf("median ACK->SH gap:         %6.2f ms\n", summary.median_gap_ms);
  std::printf("avoided PTO inflation (3x): %6.2f ms\n", summary.avoided_pto_inflation_ms);
  std::printf("coalesced share:            %6.1f %%\n", summary.coalesced_share * 100.0);
  std::printf("\nShape check: daytime hours (7-19 local) show larger ACK->SH gaps; coalesced\n"
              "responses track the instant-ACK latency (certificate cached).\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("fig09")
