// Fig 13 — the Fig 7 scenario (entire second client flight lost) repeated at
// 1, 9, 20, 100 and 300 ms RTT, HTTP/1.1 and HTTP/3.
//
// Paper shape: IACK improves the TTFB at every RTT; the absolute improvement
// is roughly constant (3x server processing), so the relative impact is
// largest at small RTTs. At 300 ms several clients' default PTO expires
// before the server flight arrives, which shifts the datagram mapping
// (Appendix F) — visible as changed medians rather than a sign flip.
#include "bench_common.h"
#include "clients/profiles.h"
#include "core/loss_scenarios.h"

namespace {

void RunVersion(quicer::http::Version version, quicer::core::CsvWriter* csv) {
  using namespace quicer;
  core::PrintHeading(std::string(http::ToString(version)));
  std::printf("%10s %8s  %12s  %12s  %16s\n", "client", "RTT[ms]", "WFC med[ms]",
              "IACK med[ms]", "improvement [ms]");
  for (double rtt_ms : {1.0, 9.0, 20.0, 100.0, 300.0}) {
    for (clients::ClientImpl impl : clients::kAllClients) {
      if (version == http::Version::kHttp3 && !clients::SupportsHttp3(impl)) continue;
      core::ExperimentConfig config;
      config.client = impl;
      config.http = version;
      config.rtt = sim::Millis(rtt_ms);
      config.response_body_bytes = http::kSmallFileBytes;
      config.loss = core::SecondClientFlightLoss(impl);
      config.time_limit = sim::Seconds(30);

      config.behavior = quic::ServerBehavior::kWaitForCertificate;
      const auto wfc_values = core::CollectResponseTtfbMs(config, 10);
      config.behavior = quic::ServerBehavior::kInstantAck;
      const auto iack_values = core::CollectResponseTtfbMs(config, 10);
      if (wfc_values.empty() || iack_values.empty()) {
        std::printf("%10s %8.0f  %s\n", std::string(clients::Name(impl)).c_str(), rtt_ms,
                    "aborted");
        continue;
      }
      const double wfc_median = stats::Median(wfc_values);
      const double iack_median = stats::Median(iack_values);
      std::printf("%10s %8.0f  %12.1f  %12.1f  %+16.1f\n",
                  std::string(clients::Name(impl)).c_str(), rtt_ms, wfc_median, iack_median,
                  wfc_median - iack_median);
      if (csv != nullptr) {
        csv->TextRow({std::string(clients::Name(impl)),
                      std::string(http::ToString(version)), std::to_string(rtt_ms),
                      std::to_string(wfc_median), std::to_string(iack_median)});
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace quicer;
  core::PrintTitle("Figure 13: second-client-flight loss across RTTs (Fig 7 generalised)");
  auto csv = bench::MaybeCsv("fig13_client_flight_loss",
                             {"client", "http", "rtt_ms", "wfc_ttfb_ms", "iack_ttfb_ms"});
  RunVersion(http::Version::kHttp1, csv.get());
  RunVersion(http::Version::kHttp3, csv.get());
  std::printf("Shape check: IACK improvement roughly constant across RTTs; picoquic flat.\n");
  return 0;
}
