// Fig 13 — the Fig 7 scenario (entire second client flight lost) repeated at
// 1, 9, 20, 100 and 300 ms RTT, HTTP/1.1 and HTTP/3.
//
// Paper shape: IACK improves the TTFB at every RTT; the absolute improvement
// is roughly constant (3x server processing), so the relative impact is
// largest at small RTTs. At 300 ms several clients' default PTO expires
// before the server flight arrives, which shifts the datagram mapping
// (Appendix F) — visible as changed medians rather than a sign flip.
#include "bench_common.h"
#include "clients/profiles.h"
#include "core/loss_scenarios.h"
#include "core/sweep.h"
#include "registry.h"

QUICER_BENCH("fig13", "Figure 13: second-client-flight loss across RTTs") {
  using namespace quicer;
  core::PrintTitle("Figure 13: second-client-flight loss across RTTs (Fig 7 generalised)");

  core::SweepSpec spec;
  spec.name = "fig13";
  spec.base.response_body_bytes = http::kSmallFileBytes;
  spec.base.time_limit = sim::Seconds(30);
  spec.axes.http_versions = {http::Version::kHttp1, http::Version::kHttp3};
  spec.axes.rtts = {sim::Millis(1), sim::Millis(9), sim::Millis(20), sim::Millis(100),
                    sim::Millis(300)};
  if (bench::DenseAxes(ctx)) {
    spec.axes.rtts.insert(spec.axes.rtts.end(), {sim::Millis(50), sim::Millis(200)});
  }
  spec.axes.clients.assign(clients::kAllClients.begin(), clients::kAllClients.end());
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.axes.losses = {{"second-client-flight", [](const core::ExperimentConfig& c) {
                         return core::SecondClientFlightLoss(c.client);
                       }}};
  spec.repetitions = 10;
  spec.metrics = {{"response_ttfb_ms", core::MetricMode::kSummary, /*exclude_negative=*/true,
                   [](const core::ExperimentResult& r) { return r.ResponseTtfbMs(); }}};
  bench::Tune(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  for (http::Version version : spec.axes.http_versions) {
    core::PrintHeading(std::string(http::ToString(version)));
    std::printf("%10s %8s  %12s  %12s  %16s\n", "client", "RTT[ms]", "WFC med[ms]",
                "IACK med[ms]", "improvement [ms]");
    for (sim::Duration rtt : spec.axes.rtts) {
      const double rtt_ms = sim::ToMillis(rtt);
      for (clients::ClientImpl impl : spec.axes.clients) {
        if (version == http::Version::kHttp3 && !clients::SupportsHttp3(impl)) continue;
        auto find = [&](quic::ServerBehavior behavior) {
          return result.Find([&](const core::SweepPoint& p) {
            return p.config.client == impl && p.config.http == version &&
                   p.config.rtt == rtt && p.config.behavior == behavior;
          });
        };
        const core::PointSummary* wfc = find(quic::ServerBehavior::kWaitForCertificate);
        const core::PointSummary* iack = find(quic::ServerBehavior::kInstantAck);
        if (wfc->all_aborted() || iack->all_aborted()) {
          std::printf("%10s %8.0f  %s\n", std::string(clients::Name(impl)).c_str(), rtt_ms,
                      "aborted");
          continue;
        }
        const double wfc_median = wfc->values().Median();
        const double iack_median = iack->values().Median();
        std::printf("%10s %8.0f  %12.1f  %12.1f  %+16.1f\n",
                    std::string(clients::Name(impl)).c_str(), rtt_ms, wfc_median, iack_median,
                    wfc_median - iack_median);
      }
      std::printf("\n");
    }
  }
  std::printf("Shape check: IACK improvement roughly constant across RTTs; picoquic flat.\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("fig13")
