// Fig 16 — Median improvement of the first PTO (IACK over WFC), derived from
// the first recovery:metrics update each client exposes in its qlog, across
// network RTTs from 1 to 300 ms.
//
// Paper shape: the improvement is roughly constant across RTTs per client
// (median 7 to 24.7 ms overall); go-x-net is erratic due to its smoothed-RTT
// mis-initialisation.
#include "bench_common.h"
#include "clients/profiles.h"

namespace {

double FirstPtoMs(const quicer::core::ExperimentResult& result) {
  // Paper methodology: use the first exposed metrics update; if the
  // implementation did not expose one, fall back to the packet-derived PTO
  // (our first_pto_period metric).
  if (!result.client_metric_updates.empty()) {
    return quicer::sim::ToMillis(result.client_metric_updates.front().pto);
  }
  return quicer::sim::ToMillis(result.client.first_pto_period);
}

}  // namespace

int main() {
  using namespace quicer;
  core::PrintTitle("Figure 16: median first-PTO improvement of IACK over WFC across RTTs");
  std::printf("%10s", "RTT[ms]");
  for (clients::ClientImpl impl : clients::kAllClients) {
    std::printf("  %9s", std::string(clients::Name(impl)).c_str());
  }
  std::printf("   (improvement in ms)\n");

  for (double rtt_ms : {1.0, 9.0, 20.0, 50.0, 100.0, 150.0, 200.0, 300.0}) {
    std::printf("%10.0f", rtt_ms);
    for (clients::ClientImpl impl : clients::kAllClients) {
      core::ExperimentConfig config;
      config.client = impl;
      config.http = http::Version::kHttp1;
      config.rtt = sim::Millis(rtt_ms);
      config.response_body_bytes = 10 * 1024;
      config.time_limit = sim::Seconds(30);

      config.behavior = quic::ServerBehavior::kWaitForCertificate;
      const auto wfc = core::RunRepetitions(config, 15, FirstPtoMs);
      config.behavior = quic::ServerBehavior::kInstantAck;
      const auto iack = core::RunRepetitions(config, 15, FirstPtoMs);
      std::printf("  %9.1f", stats::Median(wfc) - stats::Median(iack));
    }
    std::printf("\n");
  }
  std::printf("\nShape check: per-client improvement approximately constant across RTTs\n"
              "(~3x the server-side processing delay); go-x-net noisy.\n");
  return 0;
}
