// Fig 16 — Median improvement of the first PTO (IACK over WFC), derived from
// the first recovery:metrics update each client exposes in its qlog, across
// network RTTs from 1 to 300 ms.
//
// Paper shape: the improvement is roughly constant across RTTs per client
// (median 7 to 24.7 ms overall); go-x-net is erratic due to its smoothed-RTT
// mis-initialisation.
#include "bench_common.h"
#include "clients/profiles.h"
#include "registry.h"

namespace {

double FirstPtoMs(const quicer::core::ExperimentResult& result) {
  // Paper methodology: use the first exposed metrics update; if the
  // implementation did not expose one, fall back to the packet-derived PTO
  // (our first_pto_period metric).
  if (!result.client_metric_updates.empty()) {
    return quicer::sim::ToMillis(result.client_metric_updates.front().pto);
  }
  return quicer::sim::ToMillis(result.client.first_pto_period);
}

}  // namespace

QUICER_BENCH("fig16", "Figure 16: first-PTO improvement of IACK over WFC across RTTs") {
  using namespace quicer;
  core::PrintTitle("Figure 16: median first-PTO improvement of IACK over WFC across RTTs");

  core::SweepSpec spec;
  spec.name = "fig16";
  spec.base.http = http::Version::kHttp1;
  spec.base.response_body_bytes = 10 * 1024;
  spec.base.time_limit = sim::Seconds(30);
  spec.axes.rtts = {sim::Millis(1),   sim::Millis(9),   sim::Millis(20),  sim::Millis(50),
                    sim::Millis(100), sim::Millis(150), sim::Millis(200), sim::Millis(300)};
  if (bench::DenseAxes(ctx)) {
    spec.axes.rtts.insert(spec.axes.rtts.end(), {sim::Millis(5), sim::Millis(35),
                                                 sim::Millis(75), sim::Millis(250)});
  }
  spec.axes.clients.assign(clients::kAllClients.begin(), clients::kAllClients.end());
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.repetitions = 15;
  // Raw values (the -1 no-PTO sentinel included), like the legacy loops.
  spec.metrics = {{"first_pto_ms", core::MetricMode::kSummary, /*exclude_negative=*/false,
                   &FirstPtoMs}};
  bench::Tune(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  std::printf("%10s", "RTT[ms]");
  for (clients::ClientImpl impl : clients::kAllClients) {
    std::printf("  %9s", std::string(clients::Name(impl)).c_str());
  }
  std::printf("   (improvement in ms)\n");

  for (sim::Duration rtt : spec.axes.rtts) {  // rows = the spec's own axis
    std::printf("%10.0f", sim::ToMillis(rtt));
    for (clients::ClientImpl impl : clients::kAllClients) {
      auto median = [&](quic::ServerBehavior behavior) {
        const core::PointSummary* cell = result.Find([&](const core::SweepPoint& p) {
          return p.config.client == impl && p.config.rtt == rtt &&
                 p.config.behavior == behavior;
        });
        return cell == nullptr ? -1.0 : cell->values().Median();
      };
      std::printf("  %9.1f", median(quic::ServerBehavior::kWaitForCertificate) -
                                 median(quic::ServerBehavior::kInstantAck));
    }
    std::printf("\n");
  }
  std::printf("\nShape check: per-client improvement approximately constant across RTTs\n"
              "(~3x the server-side processing delay); go-x-net noisy.\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("fig16")
