// Fig 4 — First PTO improvement according to RFC 9002: the reduction in
// units of the RTT for Δt in {1, 9, 25} ms across client-frontend RTTs, and
// the spurious-retransmission boundary (Δt > client PTO = 3 x RTT).
#include <cstdio>

#include "core/pto_model.h"
#include "core/report.h"

int main() {
  using namespace quicer;
  core::PrintTitle("Figure 4: first-PTO reduction [RTT] and spurious-retransmit zone");

  const double deltas_ms[] = {1.0, 9.0, 25.0};
  std::printf("%10s", "RTT [ms]");
  for (double delta : deltas_ms) std::printf("  %14s%2.0fms", "reduction d=", delta);
  std::printf("  %s\n", "spurious (d=25ms)");

  for (int rtt_ms = 1; rtt_ms <= 100; rtt_ms += (rtt_ms < 10 ? 1 : 5)) {
    std::printf("%10d", rtt_ms);
    bool spurious25 = false;
    for (double delta : deltas_ms) {
      const auto point = core::FirstPtoReduction(sim::Millis(static_cast<double>(rtt_ms)),
                                                 sim::Millis(delta));
      std::printf("  %18.3f", point.reduction_rtts);
      if (delta == 25.0) spurious25 = point.spurious_retransmissions;
    }
    std::printf("  %s\n", spurious25 ? "yes" : "no");
  }

  core::PrintHeading("Zone boundary: largest spurious-free delta_t per RTT (3 x RTT)");
  for (int rtt_ms : {1, 5, 9, 25, 50, 100}) {
    std::printf("  RTT %4d ms -> delta_t <= %s ms\n", rtt_ms,
                core::FormatMs(core::SpuriousBoundary(sim::Millis(static_cast<double>(rtt_ms))))
                    .c_str());
  }
  std::printf("\nShape check: reduction = 3*delta/RTT (hyperbolic per delta); lower-latency\n"
              "connections profit more, matching the paper's sweet-spot analysis.\n");
  return 0;
}
