// Fig 4 — First PTO improvement according to RFC 9002: the reduction in
// units of the RTT for Δt in {1, 9, 25} ms across client-frontend RTTs, and
// the spurious-retransmission boundary (Δt > client PTO = 3 x RTT).
//
// Sweep mapping: RTT and Δt are axes; a closed-form model runner evaluates
// FirstPtoReduction per point (no experiments run). The zone-boundary table
// registers as its own bench (fig04_zone); the standalone binary runs both,
// matching the legacy output.
#include "bench_common.h"
#include "core/pto_model.h"
#include "registry.h"

QUICER_BENCH("fig04", "Figure 4: first-PTO reduction and spurious-retransmit zone (model)") {
  using namespace quicer;
  core::PrintTitle("Figure 4: first-PTO reduction [RTT] and spurious-retransmit zone");

  core::SweepSpec spec;
  spec.name = "fig04";
  for (int rtt_ms = 1; rtt_ms <= 100; rtt_ms += (rtt_ms < 10 ? 1 : 5)) {
    spec.axes.rtts.push_back(sim::Millis(static_cast<double>(rtt_ms)));
  }
  spec.axes.cert_fetch_delays = {sim::Millis(1), sim::Millis(9), sim::Millis(25)};
  spec.repetitions = 1;
  spec.metrics = {
      {"reduction_rtts", core::MetricMode::kSummary, /*exclude_negative=*/false, nullptr},
      {"spurious", core::MetricMode::kSummary, /*exclude_negative=*/false, nullptr}};
  spec.runner = [](const core::SweepRunContext& run) {
    const core::SweetSpotPoint point = core::FirstPtoReduction(
        run.point.config.rtt, run.point.config.cert_fetch_delay);
    return std::vector<double>{point.reduction_rtts,
                               point.spurious_retransmissions ? 1.0 : 0.0};
  };
  bench::TuneObserver(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  // Rows/columns come from the spec's own axes — one source of truth with
  // the enumerated grid.
  std::printf("%10s", "RTT [ms]");
  for (sim::Duration delta : spec.axes.cert_fetch_delays) {
    std::printf("  %14s%2.0fms", "reduction d=", sim::ToMillis(delta));
  }
  std::printf("  %s\n", "spurious (d=25ms)");

  for (sim::Duration rtt : spec.axes.rtts) {
    std::printf("%10.0f", sim::ToMillis(rtt));
    bool spurious25 = false;
    for (sim::Duration delta : spec.axes.cert_fetch_delays) {
      const core::PointSummary* cell = result.Find([&](const core::SweepPoint& p) {
        return p.config.rtt == rtt && p.config.cert_fetch_delay == delta;
      });
      if (cell == nullptr) {
        std::printf("  %18s", "-");
        continue;
      }
      std::printf("  %18.3f", cell->Metric("reduction_rtts")->summary.mean());
      if (sim::ToMillis(delta) == 25.0) {
        spurious25 = cell->Metric("spurious")->summary.mean() > 0.0;
      }
    }
    std::printf("  %s\n", spurious25 ? "yes" : "no");
  }
  core::MaybeWriteSweepData(result);
  return 0;
}

QUICER_BENCH("fig04_zone", "Figure 4: largest spurious-free delta_t per RTT (model)") {
  using namespace quicer;

  core::SweepSpec spec;
  spec.name = "fig04_zone";
  spec.axes.rtts = {sim::Millis(1),  sim::Millis(5),  sim::Millis(9),
                    sim::Millis(25), sim::Millis(50), sim::Millis(100)};
  spec.repetitions = 1;
  spec.metrics = {
      {"boundary_ms", core::MetricMode::kSummary, /*exclude_negative=*/false, nullptr}};
  spec.runner = [](const core::SweepRunContext& run) {
    return std::vector<double>{sim::ToMillis(core::SpuriousBoundary(run.point.config.rtt))};
  };
  bench::TuneObserver(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  core::PrintHeading("Zone boundary: largest spurious-free delta_t per RTT (3 x RTT)");
  for (const core::PointSummary& summary : result.points) {
    std::printf("  RTT %4.0f ms -> delta_t <= %s ms\n", summary.point.rtt_ms,
                core::FormatDouble(summary.primary().summary.mean(), 1).c_str());
  }
  std::printf("\nShape check: reduction = 3*delta/RTT (hyperbolic per delta); lower-latency\n"
              "connections profit more, matching the paper's sweet-spot analysis.\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN2("fig04", "fig04_zone")
