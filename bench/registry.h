// Bench registry: figure benches register themselves by name so one driver
// (bench_suite) can list and run any subset of the paper's figures/tables on
// the shared thread pool.
//
// Suite-wide options (--scale, --progress, --shard, --budget-seconds) reach
// the benches as an explicit BenchContext argument threaded through the
// registry — not environment variables — so a bench body reads everything it
// needs from its `ctx` parameter and standalone binaries run with the
// defaults.
//
// lint:allow-file(ND002): the suite budget clock is wall time by design.
//
// A migrated bench file contains:
//
//   QUICER_BENCH("fig05", "Figure 5: TTFB under amplification limits") {
//     ...            // bench body; `ctx` is the BenchContext; returns an
//   }                // int exit code
//   QUICER_BENCH_MAIN("fig05")
//
// Compiled standalone, QUICER_BENCH_MAIN stamps a main() so the file still
// builds as its own binary; compiled with -DQUICER_BENCH_SUITE the macro is
// empty and the registration is aggregated into bench_suite.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "core/sweep.h"

namespace quicer::bench {

/// Suite-wide options handed to every bench body, replacing the former
/// QUICER_BENCH_SCALE / QUICER_BENCH_PROGRESS environment plumbing.
struct BenchContext {
  /// Repetition multiplier for experiment-driven sweeps (--scale; the
  /// paper's grids correspond to 4). Scaled runs also widen RTT/Δt axes.
  int scale = 1;
  /// Stream per-sweep progress lines to stderr (--progress).
  bool progress = false;
  /// Suite-wide wall-clock ceiling in seconds, 0 = unlimited
  /// (--budget-seconds). Each sweep receives the budget *remaining* at its
  /// start, so the whole suite lands under one ceiling.
  double budget_seconds = 0.0;
  /// When the suite (or standalone binary) started, for the budget.
  std::chrono::steady_clock::time_point suite_start = std::chrono::steady_clock::now();
  /// Grid subset this process executes (--shard=i/N, --points=ids and/or
  /// --rep-range=a:b).
  core::SweepShard shard;
  /// When non-empty, only the sweep with this spec name executes; sibling
  /// sweeps of the same bench enumerate but select nothing. The work-queue
  /// worker targets one (bench, sweep) pair per unit.
  std::string sweep_filter;
  /// When set, every sweep enumerates its grid into this sink instead of
  /// executing (the work-queue init phase and --points validation).
  core::SweepEnumerateSink enumerate;
  /// Extra per-point observer, chained before the --progress printer. The
  /// work-queue worker refreshes its lease heartbeat here.
  core::SweepObserver observer;
  /// When set, applied to every tuned spec right before execution (after
  /// --scale and the other context options). The --grid workflow overwrites
  /// the compiled-in grid data with a scenario file's here — the hook
  /// itself decides which sweep names it touches.
  std::function<void(core::SweepSpec&)> rewrite;
  /// When non-empty, every run of every executed sweep writes its qlog
  /// trace pair under this directory (--qlog-dir; forwarded into
  /// SweepSpec::qlog_dir by the context tuner).
  std::string qlog_dir;

  /// True when a scaled run should also widen its RTT/Δt axes.
  bool dense_axes() const { return scale > 1; }
  /// Seconds left of the suite budget (0 = unlimited). Once the budget is
  /// exhausted this stays at a tiny positive value, so subsequent sweeps
  /// budget-skip all of their points instead of running unbounded.
  double RemainingBudgetSeconds() const;
};

struct BenchInfo {
  std::string name;         // machine name, e.g. "fig05"
  std::string description;  // one-line human description
  std::function<int(const BenchContext&)> run;
};

class Registry {
 public:
  static Registry& Instance();

  void Add(BenchInfo info);

  /// All registered benches, sorted by name.
  std::vector<BenchInfo> Benches() const;

  /// Benches whose name contains `filter` (empty matches all), sorted.
  std::vector<BenchInfo> Match(const std::string& filter) const;

  const BenchInfo* Find(const std::string& name) const;

 private:
  std::vector<BenchInfo> benches_;
};

struct Registrar {
  Registrar(std::string name, std::string description,
            std::function<int(const BenchContext&)> run);
};

/// Runs one registered bench by exact name; returns its exit code (2 if the
/// name is unknown).
int RunByName(const std::string& name, const BenchContext& context = BenchContext{});

#define QUICER_BENCH_CONCAT_(a, b) a##b
#define QUICER_BENCH_CONCAT(a, b) QUICER_BENCH_CONCAT_(a, b)

/// Registers one bench. A file may contain several QUICER_BENCH blocks (the
/// ACK-Delay ablation registers its two sections separately); the line
/// number keeps the registrar symbols distinct. The body sees the suite
/// options as `ctx`.
#define QUICER_BENCH(name_str, description_str)                                         \
  static int QUICER_BENCH_CONCAT(QuicerBenchBody, __LINE__)(                            \
      const ::quicer::bench::BenchContext& ctx);                                        \
  static const ::quicer::bench::Registrar QUICER_BENCH_CONCAT(                          \
      quicer_bench_registrar_, __LINE__){name_str, description_str,                     \
                                         &QUICER_BENCH_CONCAT(QuicerBenchBody,          \
                                                              __LINE__)};               \
  static int QUICER_BENCH_CONCAT(QuicerBenchBody, __LINE__)(                            \
      [[maybe_unused]] const ::quicer::bench::BenchContext& ctx)

#ifdef QUICER_BENCH_SUITE
#define QUICER_BENCH_MAIN(name_str)
#define QUICER_BENCH_MAIN2(first_str, second_str)
#else
#define QUICER_BENCH_MAIN(name_str) \
  int main() { return ::quicer::bench::RunByName(name_str); }
/// Standalone main for a file registering two benches: runs both in order
/// (the legacy binary printed both sections).
#define QUICER_BENCH_MAIN2(first_str, second_str)                  \
  int main() {                                                     \
    const int first = ::quicer::bench::RunByName(first_str);       \
    const int second = ::quicer::bench::RunByName(second_str);     \
    return first != 0 ? first : second;                            \
  }
#endif

}  // namespace quicer::bench
