// Fig 2 — Calculated evolution of the Probe Timeout (PTO) assuming all
// subsequent packets arrive exactly after one RTT; the instant ACK is
// delivered Δt = 4 ms earlier. Paper: the instant ACK improves the PTO by
// 3 x Δt and the WFC curve converges within ~50 new-ACK packets.
#include <cstdio>

#include "core/pto_model.h"
#include "core/report.h"

namespace {

void PrintSeriesFor(quicer::sim::Duration rtt, quicer::sim::Duration delta) {
  using namespace quicer;
  core::PrintHeading("Client-Frontend RTT " + core::FormatMs(rtt) + " ms, delta_t " +
                     core::FormatMs(delta) + " ms");
  const auto points = core::ComputePtoEvolution(rtt, delta, 50);
  std::printf("%6s  %12s  %12s  %14s\n", "ack#", "PTO WFC [ms]", "PTO IACK [ms]",
              "reduction [ms]");
  for (const auto& point : points) {
    if (point.ack_index > 10 && point.ack_index % 5 != 0) continue;  // readable subsample
    std::printf("%6d  %12.2f  %12.2f  %14.2f\n", point.ack_index,
                sim::ToMillis(point.pto_wfc), sim::ToMillis(point.pto_iack),
                sim::ToMillis(point.pto_wfc - point.pto_iack));
  }
  const auto& first = points.front();
  std::printf("first-PTO improvement: %.2f ms (expected 3 x delta_t = %.2f ms)\n",
              sim::ToMillis(first.pto_wfc - first.pto_iack), 3 * sim::ToMillis(delta));
}

}  // namespace

int main() {
  using namespace quicer;
  core::PrintTitle("Figure 2: PTO evolution, WFC vs IACK (numerical model)");
  PrintSeriesFor(sim::Millis(9), sim::Millis(4));
  PrintSeriesFor(sim::Millis(25), sim::Millis(4));
  return 0;
}
