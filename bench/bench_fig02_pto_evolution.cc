// Fig 2 — Calculated evolution of the Probe Timeout (PTO) assuming all
// subsequent packets arrive exactly after one RTT; the instant ACK is
// delivered Δt = 4 ms earlier. Paper: the instant ACK improves the PTO by
// 3 x Δt and the WFC curve converges within ~50 new-ACK packets.
//
// Sweep mapping: RTT is an axis, the repetition index is the new-ACK packet
// number, and the WFC/IACK PTO curves are two kTrace metrics produced by a
// closed-form model runner (no experiments run).
#include "bench_common.h"
#include "core/pto_model.h"
#include "registry.h"

namespace {

using namespace quicer;

constexpr int kAckCount = 50;

}  // namespace

QUICER_BENCH("fig02", "Figure 2: PTO evolution, WFC vs IACK (numerical model)") {
  core::PrintTitle("Figure 2: PTO evolution, WFC vs IACK (numerical model)");

  core::SweepSpec spec;
  spec.name = "fig02";
  spec.base.cert_fetch_delay = sim::Millis(4);
  spec.axes.rtts = {sim::Millis(9), sim::Millis(25)};
  spec.repetitions = kAckCount;
  spec.metrics = {
      {"pto_wfc_ms", core::MetricMode::kTrace, /*exclude_negative=*/false, nullptr},
      {"pto_iack_ms", core::MetricMode::kTrace, /*exclude_negative=*/false, nullptr},
      // Computed from the integer-microsecond durations, not the ms traces:
      // the difference of the rounded doubles can land one ulp off.
      {"reduction_ms", core::MetricMode::kTrace, /*exclude_negative=*/false, nullptr}};
  spec.runner = [](const core::SweepRunContext& run) {
    const auto points = core::ComputePtoEvolution(run.point.config.rtt,
                                                  run.point.config.cert_fetch_delay, kAckCount);
    const auto& point = points[static_cast<std::size_t>(run.repetition)];
    return std::vector<double>{sim::ToMillis(point.pto_wfc), sim::ToMillis(point.pto_iack),
                               sim::ToMillis(point.pto_wfc - point.pto_iack)};
  };
  bench::TuneObserver(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  for (const core::PointSummary& summary : result.points) {
    const sim::Duration delta = summary.point.config.cert_fetch_delay;
    core::PrintHeading("Client-Frontend RTT " + core::FormatMs(summary.point.config.rtt) +
                       " ms, delta_t " + core::FormatMs(delta) + " ms");
    const std::vector<double>& wfc = summary.Metric("pto_wfc_ms")->trace;
    const std::vector<double>& iack = summary.Metric("pto_iack_ms")->trace;
    const std::vector<double>& reduction = summary.Metric("reduction_ms")->trace;
    std::printf("%6s  %12s  %12s  %14s\n", "ack#", "PTO WFC [ms]", "PTO IACK [ms]",
                "reduction [ms]");
    for (int ack = 0; ack < kAckCount; ++ack) {
      if (ack > 10 && ack % 5 != 0) continue;  // readable subsample
      const std::size_t i = static_cast<std::size_t>(ack);
      std::printf("%6d  %12.2f  %12.2f  %14.2f\n", ack, wfc[i], iack[i], reduction[i]);
    }
    std::printf("first-PTO improvement: %.2f ms (expected 3 x delta_t = %.2f ms)\n",
                reduction.front(), 3 * sim::ToMillis(delta));
  }
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("fig02")
