// Fig 11 — Number of exposed recovery:metric updates vs packets with new
// ACKs for a 10 MB transfer at 100 ms RTT under WFC.
//
// Paper shape: implementations differ widely in how many RTT samples they
// can obtain (their ack-eliciting flow-control cadence differs) and in how
// many of the resulting metric updates they expose in qlog (Appendix E).
//
// Sweep mapping: clients axis, one repetition per client (the transfer is
// deterministic per seed), three summary metrics per run — the MetricSpec
// set replaces the legacy per-client RunExperiment loop.
#include "bench_common.h"
#include "clients/profiles.h"
#include "registry.h"

QUICER_BENCH("fig11", "Figure 11: RTT samples vs exposed metric updates (10 MB)") {
  using namespace quicer;
  core::PrintTitle("Figure 11: RTT samples vs exposed metric updates, 10 MB @ 100 ms, WFC");

  core::SweepSpec spec;
  spec.name = "fig11";
  spec.base.http = http::Version::kHttp1;
  spec.base.behavior = quic::ServerBehavior::kWaitForCertificate;
  spec.base.rtt = sim::Millis(100);
  spec.base.response_body_bytes = http::kLargeFileBytes;
  spec.base.time_limit = sim::Seconds(120);
  spec.axes.clients.assign(clients::kAllClients.begin(), clients::kAllClients.end());
  spec.repetitions = 1;
  spec.metrics = {
      {"packets_with_new_acks", core::MetricMode::kSummary, /*exclude_negative=*/false,
       [](const core::ExperimentResult& r) {
         return static_cast<double>(r.client_packets_with_new_acks);
       }},
      {"metric_updates", core::MetricMode::kSummary, /*exclude_negative=*/false,
       [](const core::ExperimentResult& r) {
         return static_cast<double>(r.client_metric_updates.size());
       }},
      {"completed", core::MetricMode::kSummary, /*exclude_negative=*/false,
       [](const core::ExperimentResult& r) { return r.completed ? 1.0 : 0.0; }}};
  bench::TuneObserver(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  std::printf("%10s  %22s  %24s  %10s\n", "client", "packets w/ new ACKs",
              "recovery:metric updates", "exposed %");
  for (const core::PointSummary& summary : result.points) {
    const double packets = summary.Metric("packets_with_new_acks")->summary.mean();
    const double updates = summary.Metric("metric_updates")->summary.mean();
    const double exposed = packets == 0 ? 0.0 : 100.0 * updates / packets;
    std::printf("%10s  %22llu  %24zu  %9.1f%%%s\n", summary.point.client.c_str(),
                static_cast<unsigned long long>(packets), static_cast<std::size_t>(updates),
                exposed,
                summary.Metric("completed")->summary.mean() > 0 ? "" : "  (transfer incomplete)");
  }
  std::printf("\nShape check: flow-update cadence drives the sample counts (quiche/go-x-net\n"
              "highest); neqo/ngtcp2/picoquic/quic-go expose only a fraction of updates.\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("fig11")
