// Fig 11 — Number of exposed recovery:metric updates vs packets with new
// ACKs for a 10 MB transfer at 100 ms RTT under WFC.
//
// Paper shape: implementations differ widely in how many RTT samples they
// can obtain (their ack-eliciting flow-control cadence differs) and in how
// many of the resulting metric updates they expose in qlog (Appendix E).
#include "bench_common.h"
#include "clients/profiles.h"

int main() {
  using namespace quicer;
  core::PrintTitle("Figure 11: RTT samples vs exposed metric updates, 10 MB @ 100 ms, WFC");
  std::printf("%10s  %22s  %24s  %10s\n", "client", "packets w/ new ACKs",
              "recovery:metric updates", "exposed %");
  for (clients::ClientImpl impl : clients::kAllClients) {
    core::ExperimentConfig config;
    config.client = impl;
    config.http = http::Version::kHttp1;
    config.behavior = quic::ServerBehavior::kWaitForCertificate;
    config.rtt = sim::Millis(100);
    config.response_body_bytes = http::kLargeFileBytes;
    config.time_limit = sim::Seconds(120);
    const core::ExperimentResult result = core::RunExperiment(config);
    const double exposed =
        result.client_packets_with_new_acks == 0
            ? 0.0
            : 100.0 * static_cast<double>(result.client_metric_updates.size()) /
                  static_cast<double>(result.client_packets_with_new_acks);
    std::printf("%10s  %22llu  %24zu  %9.1f%%%s\n",
                std::string(clients::Name(impl)).c_str(),
                static_cast<unsigned long long>(result.client_packets_with_new_acks),
                result.client_metric_updates.size(), exposed,
                result.completed ? "" : "  (transfer incomplete)");
  }
  std::printf("\nShape check: flow-update cadence drives the sample counts (quiche/go-x-net\n"
              "highest); neqo/ngtcp2/picoquic/quic-go expose only a fraction of updates.\n");
  return 0;
}
