// Netem — TTFB of a 10 KB transfer under Gilbert–Elliott bursty loss
// crossed with bottleneck-queue depth, WFC vs IACK.
//
// The paper's loss figures drop *specific* datagrams; this sweep asks how
// the WFC/IACK comparison holds up under the stochastic regime real
// wireless paths show: bursty two-state loss (mild p=0.02 r=0.5, harsh
// p=0.1 r=0.25) on both directions, with the 10 Mbit/s bottleneck modeled
// as a bounded tail-drop FIFO (4 / 12 packets / unbounded). Shallow queues
// clip the server's response bursts on top of the channel losses; the link
// model is the sweep axis, so the whole grid is scenario-authorable and
// shard-mergeable like every other bench.
#include "bench_common.h"
#include "core/sweep.h"
#include "netem/model.h"
#include "registry.h"

namespace {

quicer::netem::LossModel Gilbert(double p, double r) {
  quicer::netem::LossModel loss;
  loss.kind = quicer::netem::LossModel::Kind::kGilbertElliott;
  loss.p = p;
  loss.r = r;
  return loss;
}

quicer::netem::QueueModel Fifo(std::size_t depth_pkts) {
  quicer::netem::QueueModel queue;
  queue.kind = quicer::netem::QueueModel::Kind::kFifo;
  queue.depth_pkts = depth_pkts;
  return queue;
}

}  // namespace

QUICER_BENCH("netem_burst", "Netem: TTFB under bursty loss x bottleneck queue depth") {
  using namespace quicer;
  core::PrintTitle(
      "Netem: TTFB, 10 KB @ 9 ms RTT, Gilbert-Elliott bursty loss x FIFO queue depth");

  struct LossChoice {
    const char* label;
    netem::LossModel model;
  };
  struct QueueChoice {
    const char* label;
    netem::QueueModel model;
  };
  const LossChoice loss_axis[] = {
      {"ideal", netem::LossModel{}},
      {"ge-mild", Gilbert(0.02, 0.5)},
      {"ge-harsh", Gilbert(0.1, 0.25)},
  };
  const QueueChoice queue_axis[] = {
      {"qinf", Fifo(0)},
      {"q12", Fifo(12)},
      {"q4", Fifo(4)},
  };

  core::SweepSpec spec;
  spec.name = "netem_burst";
  spec.base.http = http::Version::kHttp1;
  spec.base.rtt = sim::Millis(9);
  spec.base.response_body_bytes = http::kSmallFileBytes;
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  for (const LossChoice& loss : loss_axis) {
    for (const QueueChoice& queue : queue_axis) {
      core::SweepLink link;
      link.label = std::string(loss.label) + "+" + queue.label;
      for (int dir : {netem::kUp, netem::kDown}) link.model.loss[dir] = loss.model;
      // The bottleneck queue bounds the data-heavy downlink; the uplink
      // stays transmitter-clocked (requests never burst).
      link.model.queue[netem::kDown] = queue.model;
      spec.axes.links.push_back(std::move(link));
    }
  }
  spec.repetitions = bench::kRepetitions;
  // TTFB only sees losses of the first response datagram; the completion
  // time is where tail drops of the bounded queue and long bursts land.
  spec.metrics = {{"response_ttfb_ms", core::MetricMode::kSummary, /*exclude_negative=*/true,
                   [](const core::ExperimentResult& r) { return r.ResponseTtfbMs(); }},
                  {"response_complete_ms", core::MetricMode::kSummary,
                   /*exclude_negative=*/true, [](const core::ExperimentResult& r) {
                     return r.client.response_complete < 0
                                ? -1.0
                                : sim::ToMillis(r.client.response_complete);
                   }}};
  bench::Tune(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  const char* metric_names[] = {"response_ttfb_ms", "response_complete_ms"};
  const char* metric_titles[] = {"median response TTFB in ms",
                                 "median response completion in ms"};
  for (int m = 0; m < 2; ++m) {
    std::printf("%24s%s (aborted runs excluded)\n", "", metric_titles[m]);
    std::printf("%10s  %8s  %8s %8s %8s\n", "loss", "behavior", "qinf", "q12", "q4");
    for (const LossChoice& loss : loss_axis) {
      for (quic::ServerBehavior behavior : spec.axes.behaviors) {
        std::printf("%10s  %8s", loss.label, quic::ToString(behavior));
        for (const QueueChoice& queue : queue_axis) {
          const std::string label = std::string(loss.label) + "+" + queue.label;
          const core::PointSummary* point = result.Find([&](const core::SweepPoint& p) {
            return p.link == label && p.config.behavior == behavior;
          });
          const core::MetricSeries* series =
              point != nullptr ? point->Metric(metric_names[m]) : nullptr;
          std::printf(" %8.1f", series != nullptr ? series->MedianOrNegative() : -1.0);
        }
        std::printf("\n");
      }
    }
    std::printf("\n");
  }
  std::printf("Shape check: TTFB tracks burst harshness but not queue depth (the head of\n"
              "the response is admitted even to a full-by-tail queue); completion time\n"
              "degrades as the bounded queue clips the server's bursts. The WFC advantage\n"
              "of the deterministic-loss figures persists under stochastic bursts.\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("netem_burst")
