// Fig 8 — CDF of the delay between the first ACK and the subsequent
// ServerHello per CDN, measured from São Paulo. Coalesced ACK+SH counts as
// zero delay.
//
// Paper shape: Cloudflare's median ~3.2 ms, Amazon ~6.4 ms, Akamai ~20.9 ms
// (significantly slower), Google ~30.3 ms.
//
// Sweep mapping: CDN is an extra axis, repetition r probes the r-th domain
// of the Tranco population (scan::ProbeRunner), and the per-CDN delay vector
// is a kTrace metric — retained in population rank order, exactly the
// vector the legacy per-domain loop collected, feeding the CDF.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/report.h"
#include "registry.h"
#include "scan/sweep_runners.h"
#include "stats/stats.h"

QUICER_BENCH("fig08", "Figure 8: ACK->ServerHello delay CDF per CDN (Sao Paulo)") {
  using namespace quicer;
  core::PrintTitle("Figure 8: delay between first ACK and ServerHello (Sao Paulo)");

  auto population = std::make_shared<const scan::TrancoPopulation>(300000, 2024);

  core::SweepSpec spec;
  spec.name = "fig08";
  spec.axes.extras = {scan::CdnAxis({scan::Cdn::kAkamai, scan::Cdn::kAmazon,
                                     scan::Cdn::kCloudflare, scan::Cdn::kGoogle,
                                     scan::Cdn::kOthers})};
  spec.repetitions = static_cast<int>(population->size());
  spec.metrics = {
      {"ack_sh_delay_ms", core::MetricMode::kTrace, /*exclude_negative=*/false, nullptr}};
  spec.runner = scan::ProbeRunner(
      population, /*prober_seed=*/11, scan::MatchPointCdn(),
      {[](const core::SweepPoint&, const scan::Domain&, const scan::ProbeResult& result) {
        if (!result.success || (!result.iack_observed && !result.coalesced)) {
          return core::NoSample();
        }
        return result.ack_sh_delay_ms;
      }});
  bench::TuneObserver(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  for (const core::PointSummary& summary : result.points) {
    const std::vector<double>& delays = summary.primary().trace;
    if (delays.empty()) continue;
    // Median over IACK (non-coalesced) responses only, like the paper's
    // "IACKs arrive X ms earlier than the ServerHellos".
    std::vector<double> separate;
    for (double d : delays) {
      if (d > 0) separate.push_back(d);
    }
    core::PrintHeading(summary.point.Extra("cdn")->label + "  (n=" +
                       std::to_string(delays.size()) + ", median separate delay " +
                       core::FormatDouble(stats::Median(separate), 1) + " ms)");
    const stats::Cdf cdf(delays);
    std::printf("%12s  %8s\n", "delay [ms]", "CDF");
    for (const auto& [x, p] : cdf.SampleLogX(0.001, 1000.0, 13)) {
      std::printf("%12.3f  %8.3f\n", x, p);
    }
  }
  std::printf("\nShape check: Akamai clearly slower than the other CDNs to deliver the SH;\n"
              "Cloudflare fastest (median ~3 ms).\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("fig08")
