// Fig 8 — CDF of the delay between the first ACK and the subsequent
// ServerHello per CDN, measured from São Paulo. Coalesced ACK+SH counts as
// zero delay.
//
// Paper shape: Cloudflare's median ~3.2 ms, Amazon ~6.4 ms, Akamai ~20.9 ms
// (significantly slower), Google ~30.3 ms.
#include <cstdio>
#include <map>
#include <vector>

#include "core/report.h"
#include "scan/population.h"
#include "scan/prober.h"
#include "stats/stats.h"

int main() {
  using namespace quicer;
  core::PrintTitle("Figure 8: delay between first ACK and ServerHello (Sao Paulo)");

  scan::TrancoPopulation population(300000, 2024);
  scan::Prober prober(11);
  std::map<scan::Cdn, std::vector<double>> delays;

  for (const scan::Domain& domain : population.domains()) {
    if (!domain.speaks_quic) continue;
    const scan::ProbeResult result = prober.Probe(domain, scan::Vantage::kSaoPaulo, 0);
    if (!result.success || (!result.iack_observed && !result.coalesced)) continue;
    delays[domain.cdn].push_back(result.ack_sh_delay_ms);
  }

  for (scan::Cdn cdn : {scan::Cdn::kAkamai, scan::Cdn::kAmazon, scan::Cdn::kCloudflare,
                        scan::Cdn::kGoogle, scan::Cdn::kOthers}) {
    auto it = delays.find(cdn);
    if (it == delays.end() || it->second.empty()) continue;
    // Median over IACK (non-coalesced) responses only, like the paper's
    // "IACKs arrive X ms earlier than the ServerHellos".
    std::vector<double> separate;
    for (double d : it->second) {
      if (d > 0) separate.push_back(d);
    }
    core::PrintHeading(std::string(scan::Name(cdn)) + "  (n=" +
                       std::to_string(it->second.size()) + ", median separate delay " +
                       core::FormatDouble(stats::Median(separate), 1) + " ms)");
    const stats::Cdf cdf(it->second);
    std::printf("%12s  %8s\n", "delay [ms]", "CDF");
    for (const auto& [x, p] : cdf.SampleLogX(0.001, 1000.0, 13)) {
      std::printf("%12.3f  %8.3f\n", x, p);
    }
  }
  std::printf("\nShape check: Akamai clearly slower than the other CDNs to deliver the SH;\n"
              "Cloudflare fastest (median ~3 ms).\n");
  return 0;
}
