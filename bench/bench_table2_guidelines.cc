// Table 2 — Deployment guidelines: when should a frontend prefer WFC or
// IACK? The advisor encodes the paper's matrix; this bench cross-validates
// the cells the paper's testbed actually exercised against the packet-level
// simulator. "Measured" picks the behaviour with the lower median TTFB;
// exact ties are broken by client probe load (the paper's "futile load"
// argument for WFC when Δt exceeds the client PTO).
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/advisor.h"
#include "core/loss_scenarios.h"
#include "core/sweep.h"
#include "registry.h"

namespace {

using namespace quicer;

double ProbesMetric(const core::ExperimentResult& r) {
  return static_cast<double>(r.client.probe_datagrams_sent + r.server.probe_datagrams_sent);
}

/// Raw probe counts (negatives are impossible but the legacy loops
/// aggregated raw values).
core::MetricSpec ProbesMetricSpec() {
  return {"probe_datagrams", core::MetricMode::kSummary, /*exclude_negative=*/false,
          &ProbesMetric};
}

core::SweepSpec BaseSpec(const bench::BenchContext& ctx) {
  core::SweepSpec spec;
  spec.base.client = clients::ClientImpl::kNgtcp2;
  spec.base.rtt = sim::Millis(9);
  spec.base.response_body_bytes = http::kSmallFileBytes;
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.repetitions = 15;
  bench::Tune(spec, ctx);
  return spec;
}

struct Measurement {
  double ttfb_ms = -1.0;
  double probes = 0.0;
};

/// Extracts one (behavior) cell from the paired ttfb/probes sweeps.
Measurement Extract(const core::SweepResult& ttfb, const core::SweepResult& probes,
                    const std::function<bool(const core::SweepPoint&)>& cell,
                    quic::ServerBehavior behavior) {
  auto with_behavior = [&](const core::SweepPoint& p) {
    return p.config.behavior == behavior && cell(p);
  };
  Measurement m;
  m.ttfb_ms = ttfb.Find(with_behavior)->MedianOrNegative();
  m.probes = probes.Find(with_behavior)->values().Median();
  return m;
}

void PrintCell(std::size_t cert, core::LossCase loss, sim::Duration delta,
               const Measurement* m_wfc, const Measurement* m_iack) {
  core::DeploymentScenario scenario;
  scenario.certificate_bytes = cert;
  scenario.client_frontend_rtt = sim::Millis(9);
  scenario.frontend_cert_delay = delta;
  scenario.loss = loss;
  const core::Recommendation advised = core::Advise(scenario);

  if (m_wfc == nullptr || m_iack == nullptr) {
    std::printf("%8zu B  %-32s  dt=%6.0f ms  advised %-4s  (paper synthesis; "
                "loss+amplification cell not measured in the testbed)\n",
                cert, std::string(ToString(loss)).c_str(), sim::ToMillis(delta),
                std::string(ToString(advised)).c_str());
    return;
  }

  core::Recommendation measured;
  if (m_iack->ttfb_ms < 0) {
    measured = core::Recommendation::kWfc;
  } else if (m_wfc->ttfb_ms < 0) {
    measured = core::Recommendation::kIack;
  } else if (std::abs(m_iack->ttfb_ms - m_wfc->ttfb_ms) > 0.5) {
    measured = m_iack->ttfb_ms < m_wfc->ttfb_ms ? core::Recommendation::kIack
                                                : core::Recommendation::kWfc;
  } else {
    // TTFB tie: fewer probe datagrams (less futile load) wins.
    measured = m_iack->probes <= m_wfc->probes ? core::Recommendation::kIack
                                               : core::Recommendation::kWfc;
  }

  std::printf("%8zu B  %-32s  dt=%6.0f ms  advised %-4s  measured %-4s  "
              "(WFC %7.1f ms/%.0f probes, IACK %7.1f ms/%.0f probes)  %s\n",
              cert, std::string(ToString(loss)).c_str(), sim::ToMillis(delta),
              std::string(ToString(advised)).c_str(), std::string(ToString(measured)).c_str(),
              m_wfc->ttfb_ms, m_wfc->probes, m_iack->ttfb_ms, m_iack->probes,
              advised == measured ? "agree" : "DIFFER");
}

}  // namespace

QUICER_BENCH("table2", "Table 2: deployment guidelines (advisor vs simulator)") {
  core::PrintTitle("Table 2: deployment guidelines (advisor vs simulator)");

  // Loss grid: the two measured loss scenarios at Δt = 0 with the small
  // certificate (the large-certificate loss cells are paper synthesis).
  core::SweepSpec loss_spec = BaseSpec(ctx);
  loss_spec.name = "table2_loss";
  loss_spec.axes.losses = {
      {"first-server-flight-tail",
       [](const core::ExperimentConfig& c) {
         return core::FirstServerFlightTailLoss(c.behavior, c.certificate_bytes, c.http);
       }},
      {"second-client-flight",
       [](const core::ExperimentConfig&) {
         return core::SecondClientFlightLoss(clients::ClientImpl::kNgtcp2);
       }}};
  core::SweepSpec loss_probes = loss_spec;
  loss_probes.name = "table2_loss_probes";
  loss_probes.metrics = {ProbesMetricSpec()};

  // Δt grid: no loss, both certificate sizes, the two measured Δt values.
  core::SweepSpec delay_spec = BaseSpec(ctx);
  delay_spec.name = "table2_delay";
  delay_spec.axes.certificate_sizes = {tls::kSmallCertificateBytes,
                                       tls::kLargeCertificateBytes};
  delay_spec.axes.cert_fetch_delays = {sim::Millis(20), sim::Millis(200)};
  core::SweepSpec delay_probes = delay_spec;
  delay_probes.name = "table2_delay_probes";
  delay_probes.metrics = {ProbesMetricSpec()};

  const core::SweepResult loss_ttfb_r = core::RunSweep(loss_spec);
  const core::SweepResult loss_probes_r = core::RunSweep(loss_probes);
  const core::SweepResult delay_ttfb_r = core::RunSweep(delay_spec);
  const core::SweepResult delay_probes_r = core::RunSweep(delay_probes);
  if (bench::AnyPartialExported(
          {&loss_ttfb_r, &loss_probes_r, &delay_ttfb_r, &delay_probes_r})) {
    return 0;
  }

  auto loss_cell = [&](const std::string& label, quic::ServerBehavior behavior) {
    return Extract(loss_ttfb_r, loss_probes_r,
                   [&](const core::SweepPoint& p) { return p.loss == label; }, behavior);
  };
  auto delay_cell = [&](std::size_t cert, sim::Duration delta,
                        quic::ServerBehavior behavior) {
    return Extract(delay_ttfb_r, delay_probes_r,
                   [&](const core::SweepPoint& p) {
                     return p.certificate_bytes == cert &&
                            p.config.cert_fetch_delay == delta;
                   },
                   behavior);
  };
  using quic::ServerBehavior;

  std::printf("Certificate within the amplification limit (1,212 B):\n");
  {
    const Measurement wfc = loss_cell("first-server-flight-tail", ServerBehavior::kWaitForCertificate);
    const Measurement iack = loss_cell("first-server-flight-tail", ServerBehavior::kInstantAck);
    PrintCell(tls::kSmallCertificateBytes, core::LossCase::kFirstServerFlightTail, 0, &wfc, &iack);
  }
  {
    const Measurement wfc = loss_cell("second-client-flight", ServerBehavior::kWaitForCertificate);
    const Measurement iack = loss_cell("second-client-flight", ServerBehavior::kInstantAck);
    PrintCell(tls::kSmallCertificateBytes, core::LossCase::kSecondClientFlight, 0, &wfc, &iack);
  }
  for (const double delta_ms : {20.0, 200.0}) {
    const Measurement wfc =
        delay_cell(tls::kSmallCertificateBytes, sim::Millis(delta_ms), ServerBehavior::kWaitForCertificate);
    const Measurement iack =
        delay_cell(tls::kSmallCertificateBytes, sim::Millis(delta_ms), ServerBehavior::kInstantAck);
    PrintCell(tls::kSmallCertificateBytes, core::LossCase::kNoLoss, sim::Millis(delta_ms), &wfc, &iack);
  }
  std::printf("\nCertificate exceeding the amplification limit (5,113 B):\n");
  PrintCell(tls::kLargeCertificateBytes, core::LossCase::kFirstServerFlightTail, 0, nullptr, nullptr);
  PrintCell(tls::kLargeCertificateBytes, core::LossCase::kSecondClientFlight, 0, nullptr, nullptr);
  for (const double delta_ms : {20.0, 200.0}) {
    const Measurement wfc =
        delay_cell(tls::kLargeCertificateBytes, sim::Millis(delta_ms), ServerBehavior::kWaitForCertificate);
    const Measurement iack =
        delay_cell(tls::kLargeCertificateBytes, sim::Millis(delta_ms), ServerBehavior::kInstantAck);
    PrintCell(tls::kLargeCertificateBytes, core::LossCase::kNoLoss, sim::Millis(delta_ms), &wfc, &iack);
  }
  std::printf("\nNote: the two unmeasured cells combine per-mode loss indices with\n"
              "amplification blocking; the paper derives them analytically (row 2:\n"
              "always IACK). Our engine can measure them too — see EXPERIMENTS.md for\n"
              "the nuance it surfaces (the server-no-sample penalty persists).\n");
  core::MaybeWriteSweepData(loss_ttfb_r);
  core::MaybeWriteSweepData(loss_probes_r);
  core::MaybeWriteSweepData(delay_ttfb_r);
  core::MaybeWriteSweepData(delay_probes_r);
  return 0;
}
QUICER_BENCH_MAIN("table2")
