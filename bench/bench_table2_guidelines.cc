// Table 2 — Deployment guidelines: when should a frontend prefer WFC or
// IACK? The advisor encodes the paper's matrix; this bench cross-validates
// the cells the paper's testbed actually exercised against the packet-level
// simulator. "Measured" picks the behaviour with the lower median TTFB;
// exact ties are broken by client probe load (the paper's "futile load"
// argument for WFC when Δt exceeds the client PTO).
#include <cstdio>

#include "bench_common.h"
#include "core/advisor.h"
#include "core/loss_scenarios.h"

namespace {

using namespace quicer;

struct Measurement {
  double ttfb_ms = -1.0;
  double probes = 0.0;
};

Measurement Measure(core::ExperimentConfig config, quic::ServerBehavior behavior) {
  config.behavior = behavior;
  Measurement m;
  const auto ttfb = core::CollectTtfbMs(config, 15);
  if (!ttfb.empty()) m.ttfb_ms = stats::Median(ttfb);
  m.probes = stats::Median(core::RunRepetitions(
      config, 15,
      [](const core::ExperimentResult& r) {
        return static_cast<double>(r.client.probe_datagrams_sent +
                                   r.server.probe_datagrams_sent);
      }));
  return m;
}

void Cell(std::size_t cert, core::LossCase loss, sim::Duration delta, bool measure) {
  core::DeploymentScenario scenario;
  scenario.certificate_bytes = cert;
  scenario.client_frontend_rtt = sim::Millis(9);
  scenario.frontend_cert_delay = delta;
  scenario.loss = loss;
  const core::Recommendation advised = core::Advise(scenario);

  if (!measure) {
    std::printf("%8zu B  %-32s  dt=%6.0f ms  advised %-4s  (paper synthesis; "
                "loss+amplification cell not measured in the testbed)\n",
                cert, std::string(ToString(loss)).c_str(), sim::ToMillis(delta),
                std::string(ToString(advised)).c_str());
    return;
  }

  core::ExperimentConfig config;
  config.client = clients::ClientImpl::kNgtcp2;
  config.rtt = sim::Millis(9);
  config.certificate_bytes = cert;
  config.cert_fetch_delay = delta;
  config.response_body_bytes = http::kSmallFileBytes;

  core::ExperimentConfig wfc = config;
  core::ExperimentConfig iack = config;
  switch (loss) {
    case core::LossCase::kFirstServerFlightTail:
      wfc.loss = core::FirstServerFlightTailLoss(quic::ServerBehavior::kWaitForCertificate,
                                                 cert, config.http);
      iack.loss =
          core::FirstServerFlightTailLoss(quic::ServerBehavior::kInstantAck, cert, config.http);
      break;
    case core::LossCase::kSecondClientFlight:
      wfc.loss = core::SecondClientFlightLoss(clients::ClientImpl::kNgtcp2);
      iack.loss = wfc.loss;
      break;
    case core::LossCase::kNoLoss:
      break;
  }

  const Measurement m_wfc = Measure(wfc, quic::ServerBehavior::kWaitForCertificate);
  const Measurement m_iack = Measure(iack, quic::ServerBehavior::kInstantAck);

  core::Recommendation measured;
  if (m_iack.ttfb_ms < 0) {
    measured = core::Recommendation::kWfc;
  } else if (m_wfc.ttfb_ms < 0) {
    measured = core::Recommendation::kIack;
  } else if (std::abs(m_iack.ttfb_ms - m_wfc.ttfb_ms) > 0.5) {
    measured = m_iack.ttfb_ms < m_wfc.ttfb_ms ? core::Recommendation::kIack
                                              : core::Recommendation::kWfc;
  } else {
    // TTFB tie: fewer probe datagrams (less futile load) wins.
    measured = m_iack.probes <= m_wfc.probes ? core::Recommendation::kIack
                                             : core::Recommendation::kWfc;
  }

  std::printf("%8zu B  %-32s  dt=%6.0f ms  advised %-4s  measured %-4s  "
              "(WFC %7.1f ms/%.0f probes, IACK %7.1f ms/%.0f probes)  %s\n",
              cert, std::string(ToString(loss)).c_str(), sim::ToMillis(delta),
              std::string(ToString(advised)).c_str(), std::string(ToString(measured)).c_str(),
              m_wfc.ttfb_ms, m_wfc.probes, m_iack.ttfb_ms, m_iack.probes,
              advised == measured ? "agree" : "DIFFER");
}

}  // namespace

int main() {
  core::PrintTitle("Table 2: deployment guidelines (advisor vs simulator)");
  std::printf("Certificate within the amplification limit (1,212 B):\n");
  Cell(tls::kSmallCertificateBytes, core::LossCase::kFirstServerFlightTail, 0, true);
  Cell(tls::kSmallCertificateBytes, core::LossCase::kSecondClientFlight, 0, true);
  Cell(tls::kSmallCertificateBytes, core::LossCase::kNoLoss, sim::Millis(20), true);
  Cell(tls::kSmallCertificateBytes, core::LossCase::kNoLoss, sim::Millis(200), true);
  std::printf("\nCertificate exceeding the amplification limit (5,113 B):\n");
  Cell(tls::kLargeCertificateBytes, core::LossCase::kFirstServerFlightTail, 0, false);
  Cell(tls::kLargeCertificateBytes, core::LossCase::kSecondClientFlight, 0, false);
  Cell(tls::kLargeCertificateBytes, core::LossCase::kNoLoss, sim::Millis(20), true);
  Cell(tls::kLargeCertificateBytes, core::LossCase::kNoLoss, sim::Millis(200), true);
  std::printf("\nNote: the two unmeasured cells combine per-mode loss indices with\n"
              "amplification blocking; the paper derives them analytically (row 2:\n"
              "always IACK). Our engine can measure them too — see EXPERIMENTS.md for\n"
              "the nuance it surfaces (the server-no-sample penalty persists).\n");
  return 0;
}
