// bench_suite — runs any subset of the registered figure benches through the
// sweep engine on the shared persistent thread pool, optionally as one shard
// of a multi-process run, and merges partial results back into the exports a
// single process would have written. The queue-init / worker / collect
// subcommands drive the same benches through the file-based distributed work
// queue (src/dist/), so any pool of hosts sharing a directory executes the
// suite together.
//
// Grids are also first-class data (core/scenario.h): export-grid serializes
// any registered bench's sweeps as a scenario file, `run --grid` executes a
// (possibly hand-edited) scenario file through the identical enumerate →
// execute → merge pipeline, and `queue-init --grid` plans a distributed run
// from one — scenario authorship is a data task, not a C++ task.
//
//
// lint:allow-file(ND002): the driver times sweeps, budgets, and heartbeats
// with the wall clock; no wall-clock value reaches an exported byte.
//
//   bench_suite --list                 # names + descriptions
//   bench_suite                        # run everything
//   bench_suite --filter=fig1          # substring-select benches
//   bench_suite --threads=8            # pool size (QUICER_THREADS also works)
//   bench_suite --data-dir=out/        # per-sweep CSV + JSON exports
//   bench_suite --scale=4              # multiply repetitions, denser axes
//   bench_suite --progress             # per-sweep progress lines on stderr
//   bench_suite --budget-seconds=600   # suite-wide wall-clock ceiling
//   bench_suite --shard=0/4            # execute shard 0 of 4 (partial JSON)
//   bench_suite --points=3,17          # execute explicit point ids
//   bench_suite --rep-range=0:10       # execute a repetition window
//   bench_suite merge --out-dir=out/ PARTIAL.json...   # recombine shards
//
//   bench_suite export-grid [BENCH...] [--scale=N] [--out=FILE] [--check]
//   bench_suite run --grid=FILE [--data-dir=DIR] [--shard=I/N] [--rep-range=A:B]
//   bench_suite schema                 # scenario base-field table (markdown)
//
//   bench_suite --telemetry=FILE      # runtime counters -> per-sweep report
//   bench_suite --qlog-dir=DIR        # per-run qlog trace pairs
//
//   bench_suite queue-init --queue=Q [--filter=S]... [--grid=FILE] [--scale=N] [--unit-runs=N]
//   bench_suite worker --queue=Q [--worker-id=W] [--lease-seconds=N] [--retries=N] [--telemetry]
//   bench_suite queue-status --queue=Q [--json]
//   bench_suite collect --queue=Q [--out-dir=DIR] [--telemetry=FILE]
#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/scenario.h"
#include "core/sweep_partial.h"
#include "core/thread_pool.h"
#include "dist/collect.h"
#include "dist/work_queue.h"
#include "dist/worker.h"
#include "obs/telemetry.h"
#include "registry.h"

namespace {

using quicer::bench::BenchContext;
using quicer::bench::BenchInfo;
using quicer::bench::Registry;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Writes telemetry records as the --telemetry report file.
bool WriteTelemetryReport(const std::vector<quicer::obs::SweepRecord>& records,
                          const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << quicer::obs::TelemetryReportJson(records);
  if (!out) {
    std::fprintf(stderr, "cannot write the telemetry report to '%s'\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "telemetry report (%zu sweeps) -> %s\n", records.size(),
               path.c_str());
  return true;
}

/// Telemetry records of merged partial results (merge / collect paths):
/// the bench label is unknown to a merge process, so it stays empty unless
/// the caller fills it from a manifest.
std::vector<quicer::obs::SweepRecord> RecordsOfMerged(
    const std::vector<quicer::core::SweepResult>& merged) {
  std::vector<quicer::obs::SweepRecord> records;
  for (const quicer::core::SweepResult& result : merged) {
    if (!result.telemetry.enabled) continue;
    quicer::obs::SweepRecord record;
    record.sweep = result.name;
    record.wall_seconds = result.telemetry.wall_seconds;
    record.executed_runs = result.executed_runs;
    record.counters = result.telemetry.counters;
    records.push_back(std::move(record));
  }
  return records;
}

/// Creates --qlog-dir (so per-run traces have somewhere to land) or fails
/// loudly; an unwritable directory would silently drop every trace.
bool PrepareQlogDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create qlog dir '%s': %s\n", dir.c_str(),
                 ec.message().c_str());
    return false;
  }
  return true;
}

int Usage(const char* argv0) {
  std::printf(
      "usage: %s [--list] [--filter=SUBSTR] [--threads=N] [--data-dir=DIR]\n"
      "          [--scale=N] [--progress] [--budget-seconds=N]\n"
      "          [--shard=I/N | --points=ID,ID,...] [--rep-range=A:B]\n"
      "          [--telemetry=FILE] [--qlog-dir=DIR]\n"
      "       %s merge [--out-dir=DIR] [--telemetry=FILE] PARTIAL.json...\n"
      "       %s export-grid [BENCH...] [--scale=N] [--out=FILE] [--check]\n"
      "       %s run --grid=FILE [--data-dir=DIR] [--threads=N] [--progress]\n"
      "              [--budget-seconds=N] [--shard=I/N | --points=IDS] [--rep-range=A:B]\n"
      "              [--telemetry=FILE] [--qlog-dir=DIR]\n"
      "       %s schema\n"
      "       %s queue-init --queue=DIR [--filter=SUBSTR]... [--grid=FILE] [--scale=N]\n"
      "                 [--unit-runs=N]\n"
      "       %s worker --queue=DIR [--threads=N] [--worker-id=ID] [--progress]\n"
      "                 [--lease-seconds=N] [--poll-seconds=N] [--max-units=N]\n"
      "                 [--retries=N] [--no-wait] [--telemetry]\n"
      "       %s queue-status --queue=DIR [--json]\n"
      "       %s collect --queue=DIR [--out-dir=DIR] [--telemetry=FILE]\n"
      "  --list        list registered benches and exit\n"
      "  --filter=S    run only benches whose name contains S\n"
      "  --threads=N   size of the shared thread pool (default: hardware)\n"
      "  --data-dir=D  write per-sweep CSV/JSON into D (sets QUICER_DATA_DIR)\n"
      "  --scale=N     multiply experiment-sweep repetitions by N and widen\n"
      "                RTT/delta axes (paper grids: --scale=4; default 1)\n"
      "  --progress    per-sweep progress lines on stderr (points done,\n"
      "                runs/sec) via the SweepObserver hook\n"
      "  --budget-seconds=N  suite-wide wall-clock ceiling: once exceeded,\n"
      "                remaining sweep points are budget-skipped and listed\n"
      "                in partial-result JSON for a later --points rerun\n"
      "  --shard=I/N   execute only points with id %% N == I (I in 0..N-1);\n"
      "                every sweep then writes a partial-result JSON instead\n"
      "                of its final exports\n"
      "  --points=IDS  execute only the listed point ids (comma-separated),\n"
      "                e.g. the budget_skipped_points of an earlier partial;\n"
      "                ids are validated against the enumerated grids\n"
      "  --rep-range=A:B  execute only repetitions [A, B) of the selected\n"
      "                points (B omitted or 0 = to the end); windows of one\n"
      "                point merge back bit-identically\n"
      "  --telemetry=F  enable runtime counters (event queue, pools, netem\n"
      "                drops, recovery, phase timers) and write the per-sweep\n"
      "                telemetry report to F; counting never perturbs the\n"
      "                simulated runs, so exports stay byte-identical\n"
      "  --qlog-dir=D  write every run's qlog trace pair (client + server,\n"
      "                with recovery/drop/connectivity events) into D as\n"
      "                <sweep>_p<point>_r<rep>_{client,server}.qlog\n"
      "  merge         parse partial-result JSONs, merge per sweep name and\n"
      "                write final CSV/JSON exports (byte-identical to a\n"
      "                single-process run) into --out-dir (default \".\")\n"
      "  export-grid   serialize the named benches' sweeps (all benches when\n"
      "                none given) as a scenario file on stdout (no\n"
      "                experiments run); --check instead verifies the\n"
      "                export → parse → re-export round trip byte-identically\n"
      "  run --grid=F  execute the scenarios of file F (data-defined grids)\n"
      "                through the standard pipeline; exports are\n"
      "                byte-identical to the compiled-in run for unedited\n"
      "                export-grid output, and composable with --shard /\n"
      "                --rep-range / merge for edited grids\n"
      "  schema        print the scenario base-config field table (markdown,\n"
      "                generated from the codec's descriptor table)\n"
      "  queue-init    enumerate the selected benches' sweeps (no experiments\n"
      "                run) and populate a work-queue directory: one manifest\n"
      "                plus work units of at most --unit-runs runs each\n"
      "                (default 256; huge points split into repetition\n"
      "                windows). With --grid=FILE the plan comes from a\n"
      "                scenario file (copied into the queue), not from the\n"
      "                compiled-in grids. The directory may be local, on\n"
      "                NFS, or rsync'd between hosts.\n"
      "  worker        claim units from the queue (atomic rename leases),\n"
      "                execute them through the registered benches, publish\n"
      "                partial results; heartbeats let peers reclaim units of\n"
      "                crashed workers after --lease-seconds (default 60);\n"
      "                failed units re-queue up to --retries times\n"
      "                (default 1) before parking in failed/\n"
      "  queue-status  todo/active/done/failed unit counts, per-worker\n"
      "                heartbeat ages and the failed-unit list; --json emits\n"
      "                a machine-readable document with per-worker throughput\n"
      "                and the measured wall time of every done unit\n"
      "  collect       verify coverage (every point x repetition window\n"
      "                exactly once, spec hashes in agreement) and merge\n"
      "                every sweep's unit results into final exports under\n"
      "                --out-dir (default \".\"); --telemetry=FILE folds the\n"
      "                workers' telemetry blocks into one report\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

int RunMerge(int argc, char** argv) {
  std::string out_dir = ".";
  std::string telemetry_path;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(std::strlen("--out-dir="));
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      telemetry_path = arg.substr(std::strlen("--telemetry="));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown merge option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "merge: no partial-result files given\n");
    return 2;
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create out dir '%s': %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  std::vector<quicer::core::SweepResult> merged;
  if (!quicer::core::MergeSweepPartialFiles(files, out_dir, stderr,
                                            telemetry_path.empty() ? nullptr : &merged)) {
    return 1;
  }
  if (!telemetry_path.empty() &&
      !WriteTelemetryReport(RecordsOfMerged(merged), telemetry_path)) {
    return 1;
  }
  return 0;
}

bool ParseShard(const std::string& value, quicer::core::SweepShard& shard) {
  const std::size_t slash = value.find('/');
  if (slash == std::string::npos) return false;
  char* end = nullptr;
  const long index = std::strtol(value.c_str(), &end, 10);
  if (end != value.c_str() + slash) return false;
  const long count = std::strtol(value.c_str() + slash + 1, &end, 10);
  if (*end != '\0' || count < 1 || index < 0 || index >= count) return false;
  shard.index = static_cast<std::size_t>(index);
  shard.count = static_cast<std::size_t>(count);
  return true;
}

bool ParsePoints(const std::string& value, std::vector<std::size_t>& points) {
  const char* cursor = value.c_str();
  while (*cursor != '\0') {
    char* end = nullptr;
    const long id = std::strtol(cursor, &end, 10);
    if (end == cursor || id < 0) return false;
    points.push_back(static_cast<std::size_t>(id));
    cursor = *end == ',' ? end + 1 : end;
    if (*end != '\0' && *end != ',') return false;
  }
  return !points.empty();
}

bool ParseRepRange(const std::string& value, quicer::core::SweepShard& shard) {
  const std::size_t colon = value.find(':');
  if (colon == std::string::npos) return false;
  char* end = nullptr;
  const long begin = std::strtol(value.c_str(), &end, 10);
  if (end != value.c_str() + colon || begin < 0) return false;
  long stop = 0;  // "A:" means "A to the end"
  if (colon + 1 < value.size()) {
    stop = std::strtol(value.c_str() + colon + 1, &end, 10);
    if (*end != '\0' || stop < 0 || (stop != 0 && stop <= begin)) return false;
  }
  shard.rep_begin = static_cast<std::size_t>(begin);
  shard.rep_end = static_cast<std::size_t>(stop);
  return true;
}

using quicer::bench::CapturedSpec;
using quicer::bench::CaptureSpecs;

/// Queue inventories of captured sweeps (grid size, repetitions, spec hash).
std::vector<quicer::dist::SweepInventory> InventoriesOf(
    const std::vector<CapturedSpec>& specs) {
  std::vector<quicer::dist::SweepInventory> sweeps;
  sweeps.reserve(specs.size());
  for (const CapturedSpec& captured : specs) {
    quicer::dist::SweepInventory inventory;
    inventory.bench = captured.bench;
    inventory.sweep = captured.spec.name;
    inventory.point_count = captured.point_count;
    inventory.repetitions =
        captured.spec.repetitions > 0 ? static_cast<std::size_t>(captured.spec.repetitions)
                                      : 1;
    inventory.spec_hash = quicer::core::ScenarioHash(captured.spec);
    sweeps.push_back(std::move(inventory));
  }
  return sweeps;
}

/// Union of benches matching any of the filters (all benches when none),
/// deduplicated by name.
std::vector<BenchInfo> MatchFilters(const std::vector<std::string>& filters) {
  if (filters.empty()) return Registry::Instance().Match("");
  std::vector<BenchInfo> selected;
  for (const std::string& filter : filters) {
    for (const BenchInfo& bench : Registry::Instance().Match(filter)) {
      bool known = false;
      for (const BenchInfo& have : selected) known = known || have.name == bench.name;
      if (!known) selected.push_back(bench);
    }
  }
  return selected;
}

/// Reads a whole file; "-" reads stdin (the `export-grid B | run --grid=-`
/// pipeline).
std::optional<std::string> SlurpFile(const std::string& path) {
  std::ostringstream buffer;
  if (path == "-") {
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------------
// Scenario-file plumbing shared by export-grid --check, run --grid,
// queue-init --grid and the worker.
// ---------------------------------------------------------------------------

/// One scenario of a grid file, validated against the registry: the bench
/// exists, the sweep exists in it, and the scenario resolves cleanly onto
/// the captured live spec.
struct GridScenario {
  quicer::core::Scenario scenario;
  const CapturedSpec* live = nullptr;       // owned by GridPlan::captured
  quicer::core::SweepSpec applied;          // live spec + scenario data
  std::size_t point_count = 0;              // of the applied spec
};

struct GridPlan {
  std::vector<quicer::core::Scenario> scenarios;
  // One capture pass per distinct bench (insertion order preserved for
  // deterministic unit planning).
  std::vector<std::pair<std::string, std::vector<CapturedSpec>>> captured;
  std::vector<GridScenario> entries;
};

/// Parses `text` and validates every scenario against the compiled-in
/// benches. Returns nullopt and fills `error` on the first violation.
std::optional<GridPlan> LoadGrid(const std::string& text, std::string& error) {
  GridPlan plan;
  std::optional<std::vector<quicer::core::Scenario>> scenarios =
      quicer::core::ParseScenarioFile(text, &error);
  if (!scenarios) return std::nullopt;
  plan.scenarios = std::move(*scenarios);

  for (const quicer::core::Scenario& scenario : plan.scenarios) {
    if (scenario.bench.empty()) {
      error = "scenario for sweep '" + scenario.sweep +
              "' misses its 'bench' (the registry name that owns the sweep)";
      return std::nullopt;
    }
    const BenchInfo* bench = Registry::Instance().Find(scenario.bench);
    if (bench == nullptr) {
      error = "unknown bench '" + scenario.bench + "' (see bench_suite --list)";
      return std::nullopt;
    }
    std::vector<CapturedSpec>* specs = nullptr;
    for (auto& [name, captured] : plan.captured) {
      if (name == scenario.bench) specs = &captured;
    }
    if (specs == nullptr) {
      plan.captured.emplace_back(scenario.bench, CaptureSpecs({*bench}, /*scale=*/1));
      specs = &plan.captured.back().second;
    }
    const CapturedSpec* live = nullptr;
    for (const CapturedSpec& captured : *specs) {
      if (captured.spec.name == scenario.sweep) live = &captured;
    }
    if (live == nullptr) {
      error = "bench '" + scenario.bench + "' has no sweep '" + scenario.sweep + "' (sweeps:";
      for (const CapturedSpec& captured : *specs) error += " " + captured.spec.name;
      error += ")";
      return std::nullopt;
    }
    GridScenario entry;
    entry.scenario = scenario;
    entry.live = live;
    entry.applied = live->spec;
    if (!quicer::core::ApplyScenario(scenario, entry.applied, &error)) return std::nullopt;
    entry.point_count = quicer::core::EnumerateCount(entry.applied);
    plan.entries.push_back(std::move(entry));
  }

  // collect merges per sweep name: two scenarios for the same sweep would
  // race on the same export files.
  for (std::size_t i = 0; i < plan.entries.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.entries.size(); ++j) {
      if (plan.entries[i].scenario.sweep == plan.entries[j].scenario.sweep) {
        error = "duplicate scenario for sweep '" + plan.entries[i].scenario.sweep + "'";
        return std::nullopt;
      }
    }
  }
  return plan;
}

/// The rewrite hook a grid scenario installs: overwrites the matching
/// sweep's data with the scenario's and flips it to data-export-only mode
/// (a data-defined grid may drop the points the bench's printed analysis
/// indexes). Resolution errors deselect the sweep outright — the run then
/// produces no export for it, which the caller reports.
std::function<void(quicer::core::SweepSpec&)> GridRewrite(
    std::shared_ptr<quicer::core::Scenario> scenario) {
  return [scenario](quicer::core::SweepSpec& spec) {
    if (spec.name != scenario->sweep) return;
    std::string error;
    if (!quicer::core::ApplyScenario(*scenario, spec, &error)) {
      // Validated at load time; a failure here means the compiled grid
      // changed under us. Refuse to run anything rather than run the wrong
      // grid.
      std::fprintf(stderr, "[%s] grid rewrite failed: %s\n", spec.name.c_str(),
                   error.c_str());
      spec.only_sweep = "!grid-rewrite-failed";
      return;
    }
    spec.export_only = true;
  };
}

int RunExportGrid(int argc, char** argv) {
  std::vector<std::string> names;
  std::string out_path;
  int scale = 1;
  bool check = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      const long parsed = std::strtol(arg.c_str() + std::strlen("--scale="), nullptr, 10);
      scale = parsed >= 1 ? static_cast<int>(parsed) : 1;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg == "--check") {
      check = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown export-grid option '%s'\n", arg.c_str());
      return 2;
    } else {
      names.push_back(arg);
    }
  }
  std::vector<BenchInfo> selected;
  if (names.empty()) {
    selected = Registry::Instance().Match("");
  } else {
    for (const std::string& name : names) {
      const BenchInfo* bench = Registry::Instance().Find(name);
      if (bench == nullptr) {
        std::fprintf(stderr, "export-grid: unknown bench '%s' (see --list)\n", name.c_str());
        return 2;
      }
      selected.push_back(*bench);
    }
  }

  const std::vector<CapturedSpec> captured = CaptureSpecs(selected, scale);
  std::vector<std::pair<std::string, const quicer::core::SweepSpec*>> entries;
  entries.reserve(captured.size());
  for (const CapturedSpec& spec : captured) entries.emplace_back(spec.bench, &spec.spec);
  const std::string json = quicer::core::ScenarioFileJson(entries);

  if (check) {
    // export → parse → apply-to-live → re-export must reproduce the bytes.
    std::string error;
    const std::optional<GridPlan> plan = LoadGrid(json, error);
    if (!plan) {
      std::fprintf(stderr, "export-grid --check: exported file does not parse back: %s\n",
                   error.c_str());
      return 1;
    }
    std::vector<std::pair<std::string, const quicer::core::SweepSpec*>> reexport;
    reexport.reserve(plan->entries.size());
    for (const GridScenario& entry : plan->entries) {
      reexport.emplace_back(entry.scenario.bench, &entry.applied);
    }
    const std::string second = quicer::core::ScenarioFileJson(reexport);
    if (second != json) {
      std::size_t at = 0;
      while (at < json.size() && at < second.size() && json[at] == second[at]) ++at;
      std::fprintf(stderr,
                   "export-grid --check: re-export differs from the export at byte %zu:\n"
                   "  first:  %.60s\n  second: %.60s\n",
                   at, json.c_str() + (at < 30 ? 0 : at - 30),
                   second.c_str() + (at < 30 ? 0 : at - 30));
      return 1;
    }
    std::printf("export-grid --check: %zu sweeps of %zu benches round-trip byte-identically\n",
                captured.size(), selected.size());
    return 0;
  }

  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "export-grid: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::fprintf(stderr, "export-grid: wrote %zu sweeps of %zu benches to '%s'\n",
               captured.size(), selected.size(), out_path.c_str());
  return 0;
}

int RunGrid(int argc, char** argv) {
  std::string grid_path;
  std::string telemetry_path;
  BenchContext context;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--grid=", 0) == 0) {
      grid_path = arg.substr(std::strlen("--grid="));
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      telemetry_path = arg.substr(std::strlen("--telemetry="));
    } else if (arg.rfind("--qlog-dir=", 0) == 0) {
      context.qlog_dir = arg.substr(std::strlen("--qlog-dir="));
      if (!PrepareQlogDir(context.qlog_dir)) return 2;
    } else if (arg.rfind("--threads=", 0) == 0) {
      setenv("QUICER_THREADS", arg.c_str() + std::strlen("--threads="), 1);
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      const char* dir = arg.c_str() + std::strlen("--data-dir=");
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        std::fprintf(stderr, "cannot create data dir '%s': %s\n", dir, ec.message().c_str());
        return 2;
      }
      setenv("QUICER_DATA_DIR", dir, 1);
    } else if (arg == "--progress") {
      context.progress = true;
    } else if (arg.rfind("--budget-seconds=", 0) == 0) {
      context.budget_seconds =
          std::strtod(arg.c_str() + std::strlen("--budget-seconds="), nullptr);
    } else if (arg.rfind("--shard=", 0) == 0) {
      if (!ParseShard(arg.substr(std::strlen("--shard=")), context.shard)) {
        std::fprintf(stderr, "invalid --shard '%s' (expected I/N with 0 <= I < N)\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--points=", 0) == 0) {
      if (!ParsePoints(arg.substr(std::strlen("--points=")), context.shard.points)) {
        std::fprintf(stderr, "invalid --points '%s' (expected ID,ID,...)\n", arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--rep-range=", 0) == 0) {
      if (!ParseRepRange(arg.substr(std::strlen("--rep-range=")), context.shard)) {
        std::fprintf(stderr, "invalid --rep-range '%s' (expected A:B with 0 <= A < B,"
                     " or A: for 'to the end')\n", arg.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown run option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (grid_path.empty()) {
    std::fprintf(stderr, "run: pass --grid=FILE (a scenario file; see export-grid)\n");
    return 2;
  }
  const std::optional<std::string> text = SlurpFile(grid_path);
  if (!text) {
    std::fprintf(stderr, "run: cannot read '%s'\n", grid_path.c_str());
    return 2;
  }
  std::string error;
  std::optional<GridPlan> plan = LoadGrid(*text, error);
  if (!plan) {
    std::fprintf(stderr, "run: %s: %s\n", grid_path.c_str(), error.c_str());
    return 2;
  }
  if (!context.shard.all() && std::getenv("QUICER_DATA_DIR") == nullptr) {
    std::fprintf(stderr,
                 "--shard/--points/--rep-range produce partial-result files: pass "
                 "--data-dir=DIR (or set QUICER_DATA_DIR)\n");
    return 2;
  }
  // --points ids must exist in some scenario's grid.
  for (std::size_t id : context.shard.points) {
    bool known = false;
    for (const GridScenario& entry : plan->entries) known = known || id < entry.point_count;
    if (!known) {
      std::fprintf(stderr, "--points: unknown point id %zu — no scenario grid has that"
                   " many points\n", id);
      for (const GridScenario& entry : plan->entries) {
        std::fprintf(stderr, "  %-24s %zu points\n", entry.scenario.sweep.c_str(),
                     entry.point_count);
      }
      return 2;
    }
  }

  struct Timing {
    std::string sweep;
    double seconds;
    int exit_code;
  };
  std::vector<Timing> timings;
  context.suite_start = std::chrono::steady_clock::now();
  if (!telemetry_path.empty()) quicer::obs::EnableProcess();
  int failures = 0;
  for (const GridScenario& entry : plan->entries) {
    BenchContext scenario_context = context;
    scenario_context.sweep_filter = entry.scenario.sweep;
    scenario_context.rewrite =
        GridRewrite(std::make_shared<quicer::core::Scenario>(entry.scenario));
    quicer::obs::SetCurrentBench(entry.scenario.bench);
    const auto start = std::chrono::steady_clock::now();
    const int code = quicer::bench::RunByName(entry.scenario.bench, scenario_context);
    timings.push_back({entry.scenario.sweep, SecondsSince(start), code});
    if (code != 0) ++failures;
  }
  quicer::obs::SetCurrentBench("");
  if (!telemetry_path.empty() &&
      !WriteTelemetryReport(quicer::obs::TakeSweepRecords(), telemetry_path)) {
    return 1;
  }

  std::printf("\n%-24s %10s  %s\n", "sweep", "wall [s]", "status");
  for (const Timing& timing : timings) {
    std::printf("%-24s %10.2f  %s\n", timing.sweep.c_str(), timing.seconds,
                timing.exit_code == 0 ? "ok" : "FAILED");
  }
  std::printf("%-24s %10.2f  (%zu scenarios from '%s', pool of %u threads)\n", "total",
              SecondsSince(context.suite_start), timings.size(), grid_path.c_str(),
              quicer::core::ThreadPool::Global().size());
  return failures == 0 ? 0 : 1;
}

int RunSchema() {
  std::fputs(quicer::core::ScenarioSchemaMarkdown().c_str(), stdout);
  return 0;
}

int RunQueueInit(int argc, char** argv) {
  std::string queue_dir;
  std::string grid_path;
  std::vector<std::string> filters;
  int scale = 1;
  bool scale_given = false;
  std::size_t unit_runs = 256;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--queue=", 0) == 0) {
      queue_dir = arg.substr(std::strlen("--queue="));
    } else if (arg.rfind("--filter=", 0) == 0) {
      filters.push_back(arg.substr(std::strlen("--filter=")));
    } else if (arg.rfind("--grid=", 0) == 0) {
      grid_path = arg.substr(std::strlen("--grid="));
    } else if (arg.rfind("--scale=", 0) == 0) {
      const long parsed = std::strtol(arg.c_str() + std::strlen("--scale="), nullptr, 10);
      scale = parsed >= 1 ? static_cast<int>(parsed) : 1;
      scale_given = true;
    } else if (arg.rfind("--unit-runs=", 0) == 0) {
      const long parsed = std::strtol(arg.c_str() + std::strlen("--unit-runs="), nullptr, 10);
      if (parsed < 1) {
        std::fprintf(stderr, "invalid --unit-runs '%s' (expected a positive integer)\n",
                     arg.c_str());
        return 2;
      }
      unit_runs = static_cast<std::size_t>(parsed);
    } else {
      std::fprintf(stderr, "unknown queue-init option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (queue_dir.empty()) {
    std::fprintf(stderr, "queue-init: pass --queue=DIR\n");
    return 2;
  }

  std::vector<quicer::dist::SweepInventory> sweeps;
  std::string grid_text;
  std::size_t bench_count = 0;
  if (!grid_path.empty()) {
    // Data-defined plan: the scenario file is the single source of truth
    // for grids and repetitions; --filter/--scale would contradict it.
    if (!filters.empty() || scale_given) {
      std::fprintf(stderr, "queue-init: --grid excludes --filter and --scale (the scenario"
                   " file defines the grids)\n");
      return 2;
    }
    const std::optional<std::string> text = SlurpFile(grid_path);
    if (!text) {
      std::fprintf(stderr, "queue-init: cannot read '%s'\n", grid_path.c_str());
      return 2;
    }
    grid_text = *text;
    std::string error;
    const std::optional<GridPlan> plan = LoadGrid(grid_text, error);
    if (!plan) {
      std::fprintf(stderr, "queue-init: %s: %s\n", grid_path.c_str(), error.c_str());
      return 2;
    }
    std::vector<std::string> benches_seen;
    for (const GridScenario& entry : plan->entries) {
      quicer::dist::SweepInventory inventory;
      inventory.bench = entry.scenario.bench;
      inventory.sweep = entry.scenario.sweep;
      inventory.point_count = entry.point_count;
      inventory.repetitions =
          entry.applied.repetitions > 0
              ? static_cast<std::size_t>(entry.applied.repetitions)
              : 1;
      inventory.spec_hash = quicer::core::ScenarioHash(entry.applied);
      sweeps.push_back(std::move(inventory));
      bool seen = false;
      for (const std::string& name : benches_seen) seen = seen || name == entry.scenario.bench;
      if (!seen) benches_seen.push_back(entry.scenario.bench);
    }
    bench_count = benches_seen.size();
  } else {
    const std::vector<BenchInfo> selected = MatchFilters(filters);
    if (selected.empty()) {
      std::fprintf(stderr, "queue-init: no benches match the filters\n");
      return 2;
    }
    sweeps = InventoriesOf(CaptureSpecs(selected, scale));
    bench_count = selected.size();
  }

  const std::vector<quicer::dist::WorkUnit> units =
      quicer::dist::PlanUnits(sweeps, unit_runs);

  quicer::dist::WorkQueue::Manifest manifest;
  manifest.scale = grid_path.empty() ? scale : 1;
  manifest.filters = filters;
  manifest.max_runs_per_unit = unit_runs;
  manifest.unit_count = units.size();
  manifest.sweeps = sweeps;
  if (!grid_path.empty()) {
    // The scenario file rides inside the queue, so every worker — on any
    // host — runs exactly the grid this plan hashed. It must land before
    // the manifest (whose presence marks the queue ready) — but never on
    // top of an existing queue's grid: WorkQueue::Init would reject the
    // directory only after the copy had already clobbered the evidence of
    // what a live (or interrupted) queue was running.
    const std::filesystem::path queue_root(queue_dir);
    if (std::filesystem::exists(queue_root / "manifest.json") ||
        std::filesystem::exists(queue_root / "grid.json")) {
      std::fprintf(stderr,
                   "queue-init: '%s' already holds a queue (or the wreck of one); remove "
                   "the directory and re-initialise\n",
                   queue_dir.c_str());
      return 1;
    }
    manifest.grid_file = "grid.json";
    std::error_code ec;
    std::filesystem::create_directories(queue_dir, ec);
    if (ec) {
      std::fprintf(stderr, "queue-init: cannot create '%s': %s\n", queue_dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
    std::ofstream grid_copy(std::filesystem::path(queue_dir) / "grid.json", std::ios::trunc);
    if (!grid_copy.is_open() || !(grid_copy << grid_text)) {
      std::fprintf(stderr, "queue-init: cannot copy the grid into '%s'\n", queue_dir.c_str());
      return 1;
    }
  }
  std::string error;
  if (!quicer::dist::WorkQueue::Init(queue_dir, manifest, units, &error)) {
    std::fprintf(stderr, "queue-init: %s\n", error.c_str());
    return 1;
  }

  std::size_t total_runs = 0;
  std::size_t windowed = 0;
  for (const quicer::dist::WorkUnit& unit : units) {
    total_runs += unit.runs;
    if (unit.windowed()) ++windowed;
  }
  std::printf("queue '%s': %zu benches, %zu sweeps, %zu units (%zu repetition-window"
              " units), %zu scheduled runs at scale %d%s\n",
              queue_dir.c_str(), bench_count, sweeps.size(), units.size(), windowed,
              total_runs, manifest.scale,
              grid_path.empty() ? "" : (" from grid '" + grid_path + "'").c_str());
  std::printf("next: run `bench_suite worker --queue=%s` on any host sharing the"
              " directory, then `bench_suite collect --queue=%s --out-dir=OUT`\n",
              queue_dir.c_str(), queue_dir.c_str());
  return 0;
}

int RunWorkerCommand(int argc, char** argv) {
  std::string queue_dir;
  quicer::dist::WorkerOptions options;
  bool progress = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--queue=", 0) == 0) {
      queue_dir = arg.substr(std::strlen("--queue="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      setenv("QUICER_THREADS", arg.c_str() + std::strlen("--threads="), 1);
    } else if (arg.rfind("--worker-id=", 0) == 0) {
      options.worker_id = arg.substr(std::strlen("--worker-id="));
    } else if (arg.rfind("--lease-seconds=", 0) == 0) {
      char* end = nullptr;
      options.lease_timeout_seconds =
          std::strtod(arg.c_str() + std::strlen("--lease-seconds="), &end);
      if (*end != '\0' || !(options.lease_timeout_seconds > 0.0)) {
        // A zero/garbage timeout would make every peer's lease instantly
        // reclaimable and the pool thrash re-running each other's units.
        std::fprintf(stderr, "invalid --lease-seconds '%s' (expected a positive number)\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--poll-seconds=", 0) == 0) {
      char* end = nullptr;
      options.poll_seconds = std::strtod(arg.c_str() + std::strlen("--poll-seconds="), &end);
      if (*end != '\0' || !(options.poll_seconds > 0.0)) {
        std::fprintf(stderr, "invalid --poll-seconds '%s' (expected a positive number)\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--max-units=", 0) == 0) {
      char* end = nullptr;
      const long parsed = std::strtol(arg.c_str() + std::strlen("--max-units="), &end, 10);
      if (*end != '\0' || parsed < 0) {
        std::fprintf(stderr, "invalid --max-units '%s' (expected a non-negative integer)\n",
                     arg.c_str());
        return 2;
      }
      options.max_units = static_cast<std::size_t>(parsed);
    } else if (arg.rfind("--retries=", 0) == 0) {
      char* end = nullptr;
      const long parsed = std::strtol(arg.c_str() + std::strlen("--retries="), &end, 10);
      if (*end != '\0' || parsed < 0) {
        std::fprintf(stderr, "invalid --retries '%s' (expected a non-negative integer)\n",
                     arg.c_str());
        return 2;
      }
      options.retry_budget = static_cast<std::size_t>(parsed);
    } else if (arg == "--no-wait") {
      options.wait_for_stragglers = false;
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--telemetry") {
      // Published partials then carry per-sweep telemetry blocks, which
      // collect --telemetry=FILE folds into the fleet-wide report.
      quicer::obs::EnableProcess();
    } else {
      std::fprintf(stderr, "unknown worker option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (queue_dir.empty()) {
    std::fprintf(stderr, "worker: pass --queue=DIR\n");
    return 2;
  }
  std::string error;
  std::optional<quicer::dist::WorkQueue> queue =
      quicer::dist::WorkQueue::Open(queue_dir, &error);
  if (!queue) {
    std::fprintf(stderr, "worker: %s\n", error.c_str());
    return 1;
  }
  const std::string worker_id = quicer::dist::WorkQueue::SanitizeWorkerId(
      options.worker_id.empty() ? quicer::dist::DefaultWorkerId() : options.worker_id);
  options.worker_id = worker_id;

  // A grid-planned queue carries its scenario file: every unit's spec is
  // rewritten from it, so this worker executes the same data-defined grid
  // the plan hashed — validated up front, before any unit is claimed.
  std::shared_ptr<GridPlan> grid;
  if (!queue->manifest().grid_file.empty()) {
    const std::string grid_path =
        (std::filesystem::path(queue_dir) / queue->manifest().grid_file).string();
    const std::optional<std::string> text = SlurpFile(grid_path);
    if (!text) {
      std::fprintf(stderr, "worker: cannot read the queue's grid '%s'\n", grid_path.c_str());
      return 1;
    }
    std::optional<GridPlan> plan = LoadGrid(*text, error);
    if (!plan) {
      std::fprintf(stderr, "worker: %s: %s\n", grid_path.c_str(), error.c_str());
      return 1;
    }
    grid = std::make_shared<GridPlan>(std::move(*plan));
  }

  // Executes one unit through the registry: the unit's points / repetition
  // window select the grid subset, sweep_filter deselects sibling sweeps of
  // the same bench, and the partial files land in the claim's private stage
  // directory (published atomically by the worker loop). The per-point
  // observer refreshes the lease heartbeat at most once a second, so a long
  // unit never looks stale while it makes progress.
  quicer::dist::UnitRunner runner = [&](const quicer::dist::WorkUnit& unit,
                                        const std::string& stage_dir) {
    setenv("QUICER_DATA_DIR", stage_dir.c_str(), 1);
    BenchContext context;
    context.scale = queue->manifest().scale;
    context.progress = progress;
    context.shard.points = unit.points;
    context.shard.rep_begin = unit.rep_begin;
    context.shard.rep_end = unit.rep_end;
    context.sweep_filter = unit.sweep;
    if (grid) {
      const GridScenario* entry = nullptr;
      for (const GridScenario& candidate : grid->entries) {
        if (candidate.scenario.bench == unit.bench && candidate.scenario.sweep == unit.sweep) {
          entry = &candidate;
        }
      }
      if (entry == nullptr) {
        std::fprintf(stderr, "[%s] unit %s targets sweep '%s' of bench '%s', which the"
                     " queue's grid does not define\n", worker_id.c_str(), unit.id.c_str(),
                     unit.sweep.c_str(), unit.bench.c_str());
        return 1;
      }
      context.rewrite =
          GridRewrite(std::make_shared<quicer::core::Scenario>(entry->scenario));
    }
    auto last_beat = std::make_shared<std::chrono::steady_clock::time_point>(
        std::chrono::steady_clock::now());
    context.observer = [&queue, worker_id, last_beat](const quicer::core::SweepProgress&) {
      const auto now = std::chrono::steady_clock::now();
      if (now - *last_beat < std::chrono::seconds(1)) return;
      *last_beat = now;
      queue->Heartbeat(worker_id);
    };
    return quicer::bench::RunByName(unit.bench, context);
  };

  const quicer::dist::WorkerStats stats = RunWorker(*queue, options, runner, stderr);
  return stats.units_failed == 0 ? 0 : 1;
}

int RunQueueStatus(int argc, char** argv) {
  std::string queue_dir;
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--queue=", 0) == 0) {
      queue_dir = arg.substr(std::strlen("--queue="));
    } else if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "unknown queue-status option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (queue_dir.empty()) {
    std::fprintf(stderr, "queue-status: pass --queue=DIR\n");
    return 2;
  }
  std::string error;
  const std::optional<quicer::dist::WorkQueue> queue =
      quicer::dist::WorkQueue::Open(queue_dir, &error);
  if (!queue) {
    std::fprintf(stderr, "queue-status: %s\n", error.c_str());
    return 1;
  }
  if (json) {
    std::fputs(quicer::dist::QueueStatusJson(*queue).c_str(), stdout);
    return 0;
  }
  const quicer::dist::WorkQueue::Status status = queue->GetStatus();
  std::printf("queue '%s': %zu units planned (%zu sweeps, scale %d%s)\n", queue_dir.c_str(),
              queue->manifest().unit_count, queue->manifest().sweeps.size(),
              queue->manifest().scale,
              queue->manifest().grid_file.empty()
                  ? ""
                  : (", grid " + queue->manifest().grid_file).c_str());
  std::printf("  todo %zu | active %zu | done %zu | failed %zu | results %zu\n",
              status.todo, status.active, status.done, status.failed, status.results);

  const std::vector<quicer::dist::WorkQueue::HeartbeatAge> workers = queue->HeartbeatAges();
  if (workers.empty()) {
    std::printf("  no worker heartbeats yet\n");
  } else {
    std::printf("  workers:\n");
    for (const quicer::dist::WorkQueue::HeartbeatAge& worker : workers) {
      std::printf("    %-24s last beat %7.1fs ago, %zu active unit%s\n",
                  worker.worker.c_str(), worker.age_seconds, worker.active_units,
                  worker.active_units == 1 ? "" : "s");
    }
  }
  if (status.failed > 0) {
    std::printf("  failed units:\n");
    for (const quicer::dist::WorkUnit& unit : queue->Units()) {
      const std::string state = queue->UnitState(unit.id);
      if (state.rfind("failed", 0) == 0) {
        std::printf("    %s [%s] bench %s sweep %s, attempt %zu\n", unit.id.c_str(),
                    state.c_str(), unit.bench.c_str(), unit.sweep.c_str(), unit.attempt);
      }
    }
  }
  return 0;
}

int RunCollect(int argc, char** argv) {
  std::string queue_dir;
  std::string out_dir = ".";
  std::string telemetry_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--queue=", 0) == 0) {
      queue_dir = arg.substr(std::strlen("--queue="));
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(std::strlen("--out-dir="));
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      telemetry_path = arg.substr(std::strlen("--telemetry="));
    } else {
      std::fprintf(stderr, "unknown collect option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (queue_dir.empty()) {
    std::fprintf(stderr, "collect: pass --queue=DIR\n");
    return 2;
  }
  std::string error;
  const std::optional<quicer::dist::WorkQueue> queue =
      quicer::dist::WorkQueue::Open(queue_dir, &error);
  if (!queue) {
    std::fprintf(stderr, "collect: %s\n", error.c_str());
    return 1;
  }
  quicer::dist::CollectReport report;
  const bool ok = quicer::dist::Collect(*queue, out_dir, &report, stderr, telemetry_path);
  std::printf("collect '%s': %zu/%zu units with results — %s\n", queue_dir.c_str(),
              report.units_with_results, report.units_total,
              ok ? ("exports written to '" + out_dir + "'").c_str() : "INCOMPLETE");
  return ok ? 0 : 1;
}

/// --points ids are validated against the enumerated grids of the selected
/// benches: an id no sweep can serve is an error, not a silent no-op.
int ValidatePoints(const std::vector<BenchInfo>& selected, const BenchContext& context) {
  const std::vector<quicer::dist::SweepInventory> sweeps =
      InventoriesOf(CaptureSpecs(selected, context.scale));
  std::size_t max_points = 0;
  for (const quicer::dist::SweepInventory& sweep : sweeps) {
    max_points = std::max(max_points, sweep.point_count);
  }
  std::string unknown;
  for (std::size_t id : context.shard.points) {
    if (id >= max_points) {
      if (!unknown.empty()) unknown += ',';
      unknown += std::to_string(id);
    }
  }
  if (unknown.empty()) return 0;
  std::fprintf(stderr,
               "--points: unknown point id(s) %s — no selected sweep has that many "
               "points. Enumerated grids:\n",
               unknown.c_str());
  for (const quicer::dist::SweepInventory& sweep : sweeps) {
    std::fprintf(stderr, "  %-24s %zu points (ids 0..%zu)\n", sweep.sweep.c_str(),
                 sweep.point_count, sweep.point_count > 0 ? sweep.point_count - 1 : 0);
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "merge") == 0) return RunMerge(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "export-grid") == 0) return RunExportGrid(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "run") == 0) return RunGrid(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "schema") == 0) return RunSchema();
  if (argc > 1 && std::strcmp(argv[1], "queue-init") == 0) return RunQueueInit(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "worker") == 0) return RunWorkerCommand(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "queue-status") == 0) return RunQueueStatus(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "collect") == 0) return RunCollect(argc, argv);

  bool list = false;
  std::string filter;
  std::string telemetry_path;
  BenchContext context;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg.rfind("--filter=", 0) == 0) {
      filter = arg.substr(std::strlen("--filter="));
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      telemetry_path = arg.substr(std::strlen("--telemetry="));
    } else if (arg.rfind("--qlog-dir=", 0) == 0) {
      context.qlog_dir = arg.substr(std::strlen("--qlog-dir="));
      if (!PrepareQlogDir(context.qlog_dir)) return 2;
    } else if (arg.rfind("--threads=", 0) == 0) {
      // Must be set before the first ThreadPool::Global() use.
      setenv("QUICER_THREADS", arg.c_str() + std::strlen("--threads="), 1);
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      const char* dir = arg.c_str() + std::strlen("--data-dir=");
      // CsvWriter silently deactivates when the directory is missing.
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        std::fprintf(stderr, "cannot create data dir '%s': %s\n", dir, ec.message().c_str());
        return 2;
      }
      setenv("QUICER_DATA_DIR", dir, 1);
    } else if (arg.rfind("--scale=", 0) == 0) {
      const long parsed = std::strtol(arg.c_str() + std::strlen("--scale="), nullptr, 10);
      context.scale = parsed >= 1 ? static_cast<int>(parsed) : 1;
    } else if (arg == "--progress") {
      context.progress = true;
    } else if (arg.rfind("--budget-seconds=", 0) == 0) {
      context.budget_seconds =
          std::strtod(arg.c_str() + std::strlen("--budget-seconds="), nullptr);
    } else if (arg.rfind("--shard=", 0) == 0) {
      if (!ParseShard(arg.substr(std::strlen("--shard=")), context.shard)) {
        std::fprintf(stderr, "invalid --shard '%s' (expected I/N with 0 <= I < N)\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--points=", 0) == 0) {
      if (!ParsePoints(arg.substr(std::strlen("--points=")), context.shard.points)) {
        std::fprintf(stderr, "invalid --points '%s' (expected ID,ID,...)\n", arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--rep-range=", 0) == 0) {
      if (!ParseRepRange(arg.substr(std::strlen("--rep-range=")), context.shard)) {
        std::fprintf(stderr, "invalid --rep-range '%s' (expected A:B with 0 <= A < B,"
                     " or A: for 'to the end')\n", arg.c_str());
        return 2;
      }
    } else {
      return Usage(argv[0]);
    }
  }

  // A sharded run's only useful product is its partial-result files; without
  // a data dir the whole run would be silently discarded.
  if (!context.shard.all() && std::getenv("QUICER_DATA_DIR") == nullptr) {
    std::fprintf(stderr,
                 "--shard/--points/--rep-range produce partial-result files: pass "
                 "--data-dir=DIR (or set QUICER_DATA_DIR)\n");
    return 2;
  }

  const std::vector<BenchInfo> selected = Registry::Instance().Match(filter);
  if (list) {
    for (const BenchInfo& bench : selected) {
      std::printf("%-24s %s\n", bench.name.c_str(), bench.description.c_str());
    }
    return 0;
  }
  if (selected.empty()) {
    std::fprintf(stderr, "no benches match filter '%s'\n", filter.c_str());
    return 2;
  }
  if (!context.shard.points.empty()) {
    const int invalid = ValidatePoints(selected, context);
    if (invalid != 0) return invalid;
  }

  struct Timing {
    std::string name;
    double seconds;
    int exit_code;
  };
  std::vector<Timing> timings;
  context.suite_start = std::chrono::steady_clock::now();
  if (!telemetry_path.empty()) quicer::obs::EnableProcess();
  int failures = 0;
  for (const BenchInfo& bench : selected) {
    quicer::obs::SetCurrentBench(bench.name);
    const auto start = std::chrono::steady_clock::now();
    const int code = bench.run(context);
    timings.push_back({bench.name, SecondsSince(start), code});
    if (code != 0) ++failures;
  }
  quicer::obs::SetCurrentBench("");
  if (!telemetry_path.empty() &&
      !WriteTelemetryReport(quicer::obs::TakeSweepRecords(), telemetry_path)) {
    return 1;
  }

  std::printf("\n%-24s %10s  %s\n", "bench", "wall [s]", "status");
  for (const Timing& timing : timings) {
    std::printf("%-24s %10.2f  %s\n", timing.name.c_str(), timing.seconds,
                timing.exit_code == 0 ? "ok" : "FAILED");
  }
  std::printf("%-24s %10.2f  (%zu benches, pool of %u threads)\n", "total",
              SecondsSince(context.suite_start), timings.size(),
              quicer::core::ThreadPool::Global().size());
  return failures == 0 ? 0 : 1;
}
