// bench_suite — runs any subset of the registered figure benches through the
// sweep engine on the shared persistent thread pool, optionally as one shard
// of a multi-process run, and merges partial results back into the exports a
// single process would have written.
//
//   bench_suite --list                 # names + descriptions
//   bench_suite                        # run everything
//   bench_suite --filter=fig1          # substring-select benches
//   bench_suite --threads=8            # pool size (QUICER_THREADS also works)
//   bench_suite --data-dir=out/        # per-sweep CSV + JSON exports
//   bench_suite --scale=4              # multiply repetitions, denser axes
//   bench_suite --progress             # per-sweep progress lines on stderr
//   bench_suite --budget-seconds=600   # suite-wide wall-clock ceiling
//   bench_suite --shard=0/4            # execute shard 0 of 4 (partial JSON)
//   bench_suite --points=3,17          # execute explicit point ids
//   bench_suite merge --out-dir=out/ PARTIAL.json...   # recombine shards
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/sweep_partial.h"
#include "core/thread_pool.h"
#include "registry.h"

namespace {

using quicer::bench::BenchContext;
using quicer::bench::BenchInfo;
using quicer::bench::Registry;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

int Usage(const char* argv0) {
  std::printf(
      "usage: %s [--list] [--filter=SUBSTR] [--threads=N] [--data-dir=DIR]\n"
      "          [--scale=N] [--progress] [--budget-seconds=N]\n"
      "          [--shard=I/N | --points=ID,ID,...]\n"
      "       %s merge [--out-dir=DIR] PARTIAL.json...\n"
      "  --list        list registered benches and exit\n"
      "  --filter=S    run only benches whose name contains S\n"
      "  --threads=N   size of the shared thread pool (default: hardware)\n"
      "  --data-dir=D  write per-sweep CSV/JSON into D (sets QUICER_DATA_DIR)\n"
      "  --scale=N     multiply experiment-sweep repetitions by N and widen\n"
      "                RTT/delta axes (paper grids: --scale=4; default 1)\n"
      "  --progress    per-sweep progress lines on stderr (points done,\n"
      "                runs/sec) via the SweepObserver hook\n"
      "  --budget-seconds=N  suite-wide wall-clock ceiling: once exceeded,\n"
      "                remaining sweep points are budget-skipped and listed\n"
      "                in partial-result JSON for a later --points rerun\n"
      "  --shard=I/N   execute only points with id %% N == I (I in 0..N-1);\n"
      "                every sweep then writes a partial-result JSON instead\n"
      "                of its final exports\n"
      "  --points=IDS  execute only the listed point ids (comma-separated),\n"
      "                e.g. the budget_skipped_points of an earlier partial\n"
      "  merge         parse partial-result JSONs, merge per sweep name and\n"
      "                write final CSV/JSON exports (byte-identical to a\n"
      "                single-process run) into --out-dir (default \".\")\n",
      argv0, argv0);
  return 2;
}

int RunMerge(int argc, char** argv) {
  std::string out_dir = ".";
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(std::strlen("--out-dir="));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown merge option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "merge: no partial-result files given\n");
    return 2;
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create out dir '%s': %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  return quicer::core::MergeSweepPartialFiles(files, out_dir, stderr) ? 0 : 1;
}

bool ParseShard(const std::string& value, quicer::core::SweepShard& shard) {
  const std::size_t slash = value.find('/');
  if (slash == std::string::npos) return false;
  char* end = nullptr;
  const long index = std::strtol(value.c_str(), &end, 10);
  if (end != value.c_str() + slash) return false;
  const long count = std::strtol(value.c_str() + slash + 1, &end, 10);
  if (*end != '\0' || count < 1 || index < 0 || index >= count) return false;
  shard.index = static_cast<std::size_t>(index);
  shard.count = static_cast<std::size_t>(count);
  return true;
}

bool ParsePoints(const std::string& value, std::vector<std::size_t>& points) {
  const char* cursor = value.c_str();
  while (*cursor != '\0') {
    char* end = nullptr;
    const long id = std::strtol(cursor, &end, 10);
    if (end == cursor || id < 0) return false;
    points.push_back(static_cast<std::size_t>(id));
    cursor = *end == ',' ? end + 1 : end;
    if (*end != '\0' && *end != ',') return false;
  }
  return !points.empty();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "merge") == 0) return RunMerge(argc, argv);

  bool list = false;
  std::string filter;
  BenchContext context;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg.rfind("--filter=", 0) == 0) {
      filter = arg.substr(std::strlen("--filter="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      // Must be set before the first ThreadPool::Global() use.
      setenv("QUICER_THREADS", arg.c_str() + std::strlen("--threads="), 1);
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      const char* dir = arg.c_str() + std::strlen("--data-dir=");
      // CsvWriter silently deactivates when the directory is missing.
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        std::fprintf(stderr, "cannot create data dir '%s': %s\n", dir, ec.message().c_str());
        return 2;
      }
      setenv("QUICER_DATA_DIR", dir, 1);
    } else if (arg.rfind("--scale=", 0) == 0) {
      const long parsed = std::strtol(arg.c_str() + std::strlen("--scale="), nullptr, 10);
      context.scale = parsed >= 1 ? static_cast<int>(parsed) : 1;
    } else if (arg == "--progress") {
      context.progress = true;
    } else if (arg.rfind("--budget-seconds=", 0) == 0) {
      context.budget_seconds =
          std::strtod(arg.c_str() + std::strlen("--budget-seconds="), nullptr);
    } else if (arg.rfind("--shard=", 0) == 0) {
      if (!ParseShard(arg.substr(std::strlen("--shard=")), context.shard)) {
        std::fprintf(stderr, "invalid --shard '%s' (expected I/N with 0 <= I < N)\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--points=", 0) == 0) {
      if (!ParsePoints(arg.substr(std::strlen("--points=")), context.shard.points)) {
        std::fprintf(stderr, "invalid --points '%s' (expected ID,ID,...)\n", arg.c_str());
        return 2;
      }
    } else {
      return Usage(argv[0]);
    }
  }

  // A sharded run's only useful product is its partial-result files; without
  // a data dir the whole run would be silently discarded.
  if (!context.shard.all() && std::getenv("QUICER_DATA_DIR") == nullptr) {
    std::fprintf(stderr,
                 "--shard/--points produce partial-result files: pass --data-dir=DIR "
                 "(or set QUICER_DATA_DIR)\n");
    return 2;
  }

  const std::vector<BenchInfo> selected = Registry::Instance().Match(filter);
  if (list) {
    for (const BenchInfo& bench : selected) {
      std::printf("%-24s %s\n", bench.name.c_str(), bench.description.c_str());
    }
    return 0;
  }
  if (selected.empty()) {
    std::fprintf(stderr, "no benches match filter '%s'\n", filter.c_str());
    return 2;
  }

  struct Timing {
    std::string name;
    double seconds;
    int exit_code;
  };
  std::vector<Timing> timings;
  context.suite_start = std::chrono::steady_clock::now();
  int failures = 0;
  for (const BenchInfo& bench : selected) {
    const auto start = std::chrono::steady_clock::now();
    const int code = bench.run(context);
    timings.push_back({bench.name, SecondsSince(start), code});
    if (code != 0) ++failures;
  }

  std::printf("\n%-24s %10s  %s\n", "bench", "wall [s]", "status");
  for (const Timing& timing : timings) {
    std::printf("%-24s %10.2f  %s\n", timing.name.c_str(), timing.seconds,
                timing.exit_code == 0 ? "ok" : "FAILED");
  }
  std::printf("%-24s %10.2f  (%zu benches, pool of %u threads)\n", "total",
              SecondsSince(context.suite_start), timings.size(),
              quicer::core::ThreadPool::Global().size());
  return failures == 0 ? 0 : 1;
}
