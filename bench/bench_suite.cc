// bench_suite — runs any subset of the registered figure benches through the
// sweep engine on the shared persistent thread pool.
//
//   bench_suite --list                 # names + descriptions
//   bench_suite                        # run everything
//   bench_suite --filter=fig1         # substring-select benches
//   bench_suite --threads=8            # pool size (QUICER_THREADS also works)
//   bench_suite --data-dir=out/        # per-sweep CSV + JSON exports
//   bench_suite --scale=4              # multiply repetitions, denser axes
//   bench_suite --progress             # per-sweep progress lines on stderr
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "registry.h"

namespace {

using quicer::bench::BenchInfo;
using quicer::bench::Registry;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

int Usage(const char* argv0) {
  std::printf(
      "usage: %s [--list] [--filter=SUBSTR] [--threads=N] [--data-dir=DIR]\n"
      "          [--scale=N] [--progress]\n"
      "  --list        list registered benches and exit\n"
      "  --filter=S    run only benches whose name contains S\n"
      "  --threads=N   size of the shared thread pool (default: hardware)\n"
      "  --data-dir=D  write per-sweep CSV/JSON into D (sets QUICER_DATA_DIR)\n"
      "  --scale=N     multiply experiment-sweep repetitions by N and widen\n"
      "                RTT/delta axes (paper grids: --scale=4; default 1)\n"
      "  --progress    per-sweep progress lines on stderr (points done,\n"
      "                runs/sec) via the SweepObserver hook\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  std::string filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg.rfind("--filter=", 0) == 0) {
      filter = arg.substr(std::strlen("--filter="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      // Must be set before the first ThreadPool::Global() use.
      setenv("QUICER_THREADS", arg.c_str() + std::strlen("--threads="), 1);
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      const char* dir = arg.c_str() + std::strlen("--data-dir=");
      // CsvWriter silently deactivates when the directory is missing.
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        std::fprintf(stderr, "cannot create data dir '%s': %s\n", dir, ec.message().c_str());
        return 2;
      }
      setenv("QUICER_DATA_DIR", dir, 1);
    } else if (arg.rfind("--scale=", 0) == 0) {
      // Read by bench::ScaleFactor() before each sweep is built.
      setenv("QUICER_BENCH_SCALE", arg.c_str() + std::strlen("--scale="), 1);
    } else if (arg == "--progress") {
      setenv("QUICER_BENCH_PROGRESS", "1", 1);
    } else {
      return Usage(argv[0]);
    }
  }

  const std::vector<BenchInfo> selected = Registry::Instance().Match(filter);
  if (list) {
    for (const BenchInfo& bench : selected) {
      std::printf("%-24s %s\n", bench.name.c_str(), bench.description.c_str());
    }
    return 0;
  }
  if (selected.empty()) {
    std::fprintf(stderr, "no benches match filter '%s'\n", filter.c_str());
    return 2;
  }

  struct Timing {
    std::string name;
    double seconds;
    int exit_code;
  };
  std::vector<Timing> timings;
  const auto suite_start = std::chrono::steady_clock::now();
  int failures = 0;
  for (const BenchInfo& bench : selected) {
    const auto start = std::chrono::steady_clock::now();
    const int code = bench.run();
    timings.push_back({bench.name, SecondsSince(start), code});
    if (code != 0) ++failures;
  }

  std::printf("\n%-24s %10s  %s\n", "bench", "wall [s]", "status");
  for (const Timing& timing : timings) {
    std::printf("%-24s %10.2f  %s\n", timing.name.c_str(), timing.seconds,
                timing.exit_code == 0 ? "ok" : "FAILED");
  }
  std::printf("%-24s %10.2f  (%zu benches, pool of %u threads)\n", "total",
              SecondsSince(suite_start), timings.size(),
              quicer::core::ThreadPool::Global().size());
  return failures == 0 ? 0 : 1;
}
