// bench_suite — runs any subset of the registered figure benches through the
// sweep engine on the shared persistent thread pool, optionally as one shard
// of a multi-process run, and merges partial results back into the exports a
// single process would have written. The queue-init / worker / collect
// subcommands drive the same benches through the file-based distributed work
// queue (src/dist/), so any pool of hosts sharing a directory executes the
// suite together.
//
//   bench_suite --list                 # names + descriptions
//   bench_suite                        # run everything
//   bench_suite --filter=fig1          # substring-select benches
//   bench_suite --threads=8            # pool size (QUICER_THREADS also works)
//   bench_suite --data-dir=out/        # per-sweep CSV + JSON exports
//   bench_suite --scale=4              # multiply repetitions, denser axes
//   bench_suite --progress             # per-sweep progress lines on stderr
//   bench_suite --budget-seconds=600   # suite-wide wall-clock ceiling
//   bench_suite --shard=0/4            # execute shard 0 of 4 (partial JSON)
//   bench_suite --points=3,17          # execute explicit point ids
//   bench_suite --rep-range=0:10       # execute a repetition window
//   bench_suite merge --out-dir=out/ PARTIAL.json...   # recombine shards
//
//   bench_suite queue-init --queue=Q [--filter=S]... [--scale=N] [--unit-runs=N]
//   bench_suite worker --queue=Q [--worker-id=W] [--lease-seconds=N] [--max-units=N]
//   bench_suite collect --queue=Q [--out-dir=DIR]
#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/sweep_partial.h"
#include "core/thread_pool.h"
#include "dist/collect.h"
#include "dist/work_queue.h"
#include "dist/worker.h"
#include "registry.h"

namespace {

using quicer::bench::BenchContext;
using quicer::bench::BenchInfo;
using quicer::bench::Registry;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

int Usage(const char* argv0) {
  std::printf(
      "usage: %s [--list] [--filter=SUBSTR] [--threads=N] [--data-dir=DIR]\n"
      "          [--scale=N] [--progress] [--budget-seconds=N]\n"
      "          [--shard=I/N | --points=ID,ID,...] [--rep-range=A:B]\n"
      "       %s merge [--out-dir=DIR] PARTIAL.json...\n"
      "       %s queue-init --queue=DIR [--filter=SUBSTR]... [--scale=N] [--unit-runs=N]\n"
      "       %s worker --queue=DIR [--threads=N] [--worker-id=ID] [--progress]\n"
      "                 [--lease-seconds=N] [--poll-seconds=N] [--max-units=N] [--no-wait]\n"
      "       %s collect --queue=DIR [--out-dir=DIR]\n"
      "  --list        list registered benches and exit\n"
      "  --filter=S    run only benches whose name contains S\n"
      "  --threads=N   size of the shared thread pool (default: hardware)\n"
      "  --data-dir=D  write per-sweep CSV/JSON into D (sets QUICER_DATA_DIR)\n"
      "  --scale=N     multiply experiment-sweep repetitions by N and widen\n"
      "                RTT/delta axes (paper grids: --scale=4; default 1)\n"
      "  --progress    per-sweep progress lines on stderr (points done,\n"
      "                runs/sec) via the SweepObserver hook\n"
      "  --budget-seconds=N  suite-wide wall-clock ceiling: once exceeded,\n"
      "                remaining sweep points are budget-skipped and listed\n"
      "                in partial-result JSON for a later --points rerun\n"
      "  --shard=I/N   execute only points with id %% N == I (I in 0..N-1);\n"
      "                every sweep then writes a partial-result JSON instead\n"
      "                of its final exports\n"
      "  --points=IDS  execute only the listed point ids (comma-separated),\n"
      "                e.g. the budget_skipped_points of an earlier partial;\n"
      "                ids are validated against the enumerated grids\n"
      "  --rep-range=A:B  execute only repetitions [A, B) of the selected\n"
      "                points (B omitted or 0 = to the end); windows of one\n"
      "                point merge back bit-identically\n"
      "  merge         parse partial-result JSONs, merge per sweep name and\n"
      "                write final CSV/JSON exports (byte-identical to a\n"
      "                single-process run) into --out-dir (default \".\")\n"
      "  queue-init    enumerate the selected benches' sweeps (no experiments\n"
      "                run) and populate a work-queue directory: one manifest\n"
      "                plus work units of at most --unit-runs runs each\n"
      "                (default 256; huge points split into repetition\n"
      "                windows). The directory may be local, on NFS, or\n"
      "                rsync'd between hosts.\n"
      "  worker        claim units from the queue (atomic rename leases),\n"
      "                execute them through the registered benches, publish\n"
      "                partial results; heartbeats let peers reclaim units of\n"
      "                crashed workers after --lease-seconds (default 60)\n"
      "  collect       verify coverage (every point x repetition window\n"
      "                exactly once) and merge every sweep's unit results\n"
      "                into final exports under --out-dir (default \".\")\n",
      argv0, argv0, argv0, argv0, argv0);
  return 2;
}

int RunMerge(int argc, char** argv) {
  std::string out_dir = ".";
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(std::strlen("--out-dir="));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown merge option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "merge: no partial-result files given\n");
    return 2;
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create out dir '%s': %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  return quicer::core::MergeSweepPartialFiles(files, out_dir, stderr) ? 0 : 1;
}

bool ParseShard(const std::string& value, quicer::core::SweepShard& shard) {
  const std::size_t slash = value.find('/');
  if (slash == std::string::npos) return false;
  char* end = nullptr;
  const long index = std::strtol(value.c_str(), &end, 10);
  if (end != value.c_str() + slash) return false;
  const long count = std::strtol(value.c_str() + slash + 1, &end, 10);
  if (*end != '\0' || count < 1 || index < 0 || index >= count) return false;
  shard.index = static_cast<std::size_t>(index);
  shard.count = static_cast<std::size_t>(count);
  return true;
}

bool ParsePoints(const std::string& value, std::vector<std::size_t>& points) {
  const char* cursor = value.c_str();
  while (*cursor != '\0') {
    char* end = nullptr;
    const long id = std::strtol(cursor, &end, 10);
    if (end == cursor || id < 0) return false;
    points.push_back(static_cast<std::size_t>(id));
    cursor = *end == ',' ? end + 1 : end;
    if (*end != '\0' && *end != ',') return false;
  }
  return !points.empty();
}

bool ParseRepRange(const std::string& value, quicer::core::SweepShard& shard) {
  const std::size_t colon = value.find(':');
  if (colon == std::string::npos) return false;
  char* end = nullptr;
  const long begin = std::strtol(value.c_str(), &end, 10);
  if (end != value.c_str() + colon || begin < 0) return false;
  long stop = 0;  // "A:" means "A to the end"
  if (colon + 1 < value.size()) {
    stop = std::strtol(value.c_str() + colon + 1, &end, 10);
    if (*end != '\0' || stop < 0 || (stop != 0 && stop <= begin)) return false;
  }
  shard.rep_begin = static_cast<std::size_t>(begin);
  shard.rep_end = static_cast<std::size_t>(stop);
  return true;
}

/// Runs the selected benches in enumerate-only mode — no experiments, no
/// exports — collecting every sweep's grid size and repetition count. Bench
/// bodies still print their human-readable headings, so stdout is parked on
/// /dev/null for the duration.
std::vector<quicer::dist::SweepInventory> EnumerateSweeps(
    const std::vector<BenchInfo>& benches, int scale) {
  std::vector<quicer::dist::SweepInventory> sweeps;
  BenchContext context;
  context.scale = scale;
  const std::string* current_bench = nullptr;
  context.enumerate = [&](const quicer::core::SweepSpec& spec,
                          const quicer::core::SweepResult& result) {
    quicer::dist::SweepInventory inventory;
    inventory.bench = *current_bench;
    inventory.sweep = spec.name;
    inventory.point_count = result.points.size();
    inventory.repetitions =
        result.repetitions > 0 ? static_cast<std::size_t>(result.repetitions) : 1;
    sweeps.push_back(std::move(inventory));
  };

  std::fflush(stdout);
  const int saved_stdout = dup(STDOUT_FILENO);
  const int null_fd = open("/dev/null", O_WRONLY);
  if (null_fd >= 0) dup2(null_fd, STDOUT_FILENO);
  for (const BenchInfo& bench : benches) {
    current_bench = &bench.name;
    bench.run(context);
  }
  std::fflush(stdout);
  if (saved_stdout >= 0) {
    dup2(saved_stdout, STDOUT_FILENO);
    close(saved_stdout);
  }
  if (null_fd >= 0) close(null_fd);
  return sweeps;
}

/// Union of benches matching any of the filters (all benches when none),
/// deduplicated by name.
std::vector<BenchInfo> MatchFilters(const std::vector<std::string>& filters) {
  if (filters.empty()) return Registry::Instance().Match("");
  std::vector<BenchInfo> selected;
  for (const std::string& filter : filters) {
    for (const BenchInfo& bench : Registry::Instance().Match(filter)) {
      bool known = false;
      for (const BenchInfo& have : selected) known = known || have.name == bench.name;
      if (!known) selected.push_back(bench);
    }
  }
  return selected;
}

int RunQueueInit(int argc, char** argv) {
  std::string queue_dir;
  std::vector<std::string> filters;
  int scale = 1;
  std::size_t unit_runs = 256;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--queue=", 0) == 0) {
      queue_dir = arg.substr(std::strlen("--queue="));
    } else if (arg.rfind("--filter=", 0) == 0) {
      filters.push_back(arg.substr(std::strlen("--filter=")));
    } else if (arg.rfind("--scale=", 0) == 0) {
      const long parsed = std::strtol(arg.c_str() + std::strlen("--scale="), nullptr, 10);
      scale = parsed >= 1 ? static_cast<int>(parsed) : 1;
    } else if (arg.rfind("--unit-runs=", 0) == 0) {
      const long parsed = std::strtol(arg.c_str() + std::strlen("--unit-runs="), nullptr, 10);
      if (parsed < 1) {
        std::fprintf(stderr, "invalid --unit-runs '%s' (expected a positive integer)\n",
                     arg.c_str());
        return 2;
      }
      unit_runs = static_cast<std::size_t>(parsed);
    } else {
      std::fprintf(stderr, "unknown queue-init option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (queue_dir.empty()) {
    std::fprintf(stderr, "queue-init: pass --queue=DIR\n");
    return 2;
  }
  const std::vector<BenchInfo> selected = MatchFilters(filters);
  if (selected.empty()) {
    std::fprintf(stderr, "queue-init: no benches match the filters\n");
    return 2;
  }

  const std::vector<quicer::dist::SweepInventory> sweeps = EnumerateSweeps(selected, scale);
  const std::vector<quicer::dist::WorkUnit> units =
      quicer::dist::PlanUnits(sweeps, unit_runs);

  quicer::dist::WorkQueue::Manifest manifest;
  manifest.scale = scale;
  manifest.filters = filters;
  manifest.max_runs_per_unit = unit_runs;
  manifest.unit_count = units.size();
  manifest.sweeps = sweeps;
  std::string error;
  if (!quicer::dist::WorkQueue::Init(queue_dir, manifest, units, &error)) {
    std::fprintf(stderr, "queue-init: %s\n", error.c_str());
    return 1;
  }

  std::size_t total_runs = 0;
  std::size_t windowed = 0;
  for (const quicer::dist::WorkUnit& unit : units) {
    total_runs += unit.runs;
    if (unit.windowed()) ++windowed;
  }
  std::printf("queue '%s': %zu benches, %zu sweeps, %zu units (%zu repetition-window"
              " units), %zu scheduled runs at scale %d\n",
              queue_dir.c_str(), selected.size(), sweeps.size(), units.size(), windowed,
              total_runs, scale);
  std::printf("next: run `bench_suite worker --queue=%s` on any host sharing the"
              " directory, then `bench_suite collect --queue=%s --out-dir=OUT`\n",
              queue_dir.c_str(), queue_dir.c_str());
  return 0;
}

int RunWorkerCommand(int argc, char** argv) {
  std::string queue_dir;
  quicer::dist::WorkerOptions options;
  bool progress = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--queue=", 0) == 0) {
      queue_dir = arg.substr(std::strlen("--queue="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      setenv("QUICER_THREADS", arg.c_str() + std::strlen("--threads="), 1);
    } else if (arg.rfind("--worker-id=", 0) == 0) {
      options.worker_id = arg.substr(std::strlen("--worker-id="));
    } else if (arg.rfind("--lease-seconds=", 0) == 0) {
      char* end = nullptr;
      options.lease_timeout_seconds =
          std::strtod(arg.c_str() + std::strlen("--lease-seconds="), &end);
      if (*end != '\0' || !(options.lease_timeout_seconds > 0.0)) {
        // A zero/garbage timeout would make every peer's lease instantly
        // reclaimable and the pool thrash re-running each other's units.
        std::fprintf(stderr, "invalid --lease-seconds '%s' (expected a positive number)\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--poll-seconds=", 0) == 0) {
      char* end = nullptr;
      options.poll_seconds = std::strtod(arg.c_str() + std::strlen("--poll-seconds="), &end);
      if (*end != '\0' || !(options.poll_seconds > 0.0)) {
        std::fprintf(stderr, "invalid --poll-seconds '%s' (expected a positive number)\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--max-units=", 0) == 0) {
      char* end = nullptr;
      const long parsed = std::strtol(arg.c_str() + std::strlen("--max-units="), &end, 10);
      if (*end != '\0' || parsed < 0) {
        std::fprintf(stderr, "invalid --max-units '%s' (expected a non-negative integer)\n",
                     arg.c_str());
        return 2;
      }
      options.max_units = static_cast<std::size_t>(parsed);
    } else if (arg == "--no-wait") {
      options.wait_for_stragglers = false;
    } else if (arg == "--progress") {
      progress = true;
    } else {
      std::fprintf(stderr, "unknown worker option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (queue_dir.empty()) {
    std::fprintf(stderr, "worker: pass --queue=DIR\n");
    return 2;
  }
  std::string error;
  std::optional<quicer::dist::WorkQueue> queue =
      quicer::dist::WorkQueue::Open(queue_dir, &error);
  if (!queue) {
    std::fprintf(stderr, "worker: %s\n", error.c_str());
    return 1;
  }
  const std::string worker_id = quicer::dist::WorkQueue::SanitizeWorkerId(
      options.worker_id.empty() ? quicer::dist::DefaultWorkerId() : options.worker_id);
  options.worker_id = worker_id;

  // Executes one unit through the registry: the unit's points / repetition
  // window select the grid subset, sweep_filter deselects sibling sweeps of
  // the same bench, and the partial files land in the claim's private stage
  // directory (published atomically by the worker loop). The per-point
  // observer refreshes the lease heartbeat at most once a second, so a long
  // unit never looks stale while it makes progress.
  quicer::dist::UnitRunner runner = [&](const quicer::dist::WorkUnit& unit,
                                        const std::string& stage_dir) {
    setenv("QUICER_DATA_DIR", stage_dir.c_str(), 1);
    BenchContext context;
    context.scale = queue->manifest().scale;
    context.progress = progress;
    context.shard.points = unit.points;
    context.shard.rep_begin = unit.rep_begin;
    context.shard.rep_end = unit.rep_end;
    context.sweep_filter = unit.sweep;
    auto last_beat = std::make_shared<std::chrono::steady_clock::time_point>(
        std::chrono::steady_clock::now());
    context.observer = [&queue, worker_id, last_beat](const quicer::core::SweepProgress&) {
      const auto now = std::chrono::steady_clock::now();
      if (now - *last_beat < std::chrono::seconds(1)) return;
      *last_beat = now;
      queue->Heartbeat(worker_id);
    };
    return quicer::bench::RunByName(unit.bench, context);
  };

  const quicer::dist::WorkerStats stats = RunWorker(*queue, options, runner, stderr);
  return stats.units_failed == 0 ? 0 : 1;
}

int RunCollect(int argc, char** argv) {
  std::string queue_dir;
  std::string out_dir = ".";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--queue=", 0) == 0) {
      queue_dir = arg.substr(std::strlen("--queue="));
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(std::strlen("--out-dir="));
    } else {
      std::fprintf(stderr, "unknown collect option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (queue_dir.empty()) {
    std::fprintf(stderr, "collect: pass --queue=DIR\n");
    return 2;
  }
  std::string error;
  const std::optional<quicer::dist::WorkQueue> queue =
      quicer::dist::WorkQueue::Open(queue_dir, &error);
  if (!queue) {
    std::fprintf(stderr, "collect: %s\n", error.c_str());
    return 1;
  }
  quicer::dist::CollectReport report;
  const bool ok = quicer::dist::Collect(*queue, out_dir, &report, stderr);
  std::printf("collect '%s': %zu/%zu units with results — %s\n", queue_dir.c_str(),
              report.units_with_results, report.units_total,
              ok ? ("exports written to '" + out_dir + "'").c_str() : "INCOMPLETE");
  return ok ? 0 : 1;
}

/// --points ids are validated against the enumerated grids of the selected
/// benches: an id no sweep can serve is an error, not a silent no-op.
int ValidatePoints(const std::vector<BenchInfo>& selected, const BenchContext& context) {
  const std::vector<quicer::dist::SweepInventory> sweeps =
      EnumerateSweeps(selected, context.scale);
  std::size_t max_points = 0;
  for (const quicer::dist::SweepInventory& sweep : sweeps) {
    max_points = std::max(max_points, sweep.point_count);
  }
  std::string unknown;
  for (std::size_t id : context.shard.points) {
    if (id >= max_points) {
      if (!unknown.empty()) unknown += ',';
      unknown += std::to_string(id);
    }
  }
  if (unknown.empty()) return 0;
  std::fprintf(stderr,
               "--points: unknown point id(s) %s — no selected sweep has that many "
               "points. Enumerated grids:\n",
               unknown.c_str());
  for (const quicer::dist::SweepInventory& sweep : sweeps) {
    std::fprintf(stderr, "  %-24s %zu points (ids 0..%zu)\n", sweep.sweep.c_str(),
                 sweep.point_count, sweep.point_count > 0 ? sweep.point_count - 1 : 0);
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "merge") == 0) return RunMerge(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "queue-init") == 0) return RunQueueInit(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "worker") == 0) return RunWorkerCommand(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "collect") == 0) return RunCollect(argc, argv);

  bool list = false;
  std::string filter;
  BenchContext context;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg.rfind("--filter=", 0) == 0) {
      filter = arg.substr(std::strlen("--filter="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      // Must be set before the first ThreadPool::Global() use.
      setenv("QUICER_THREADS", arg.c_str() + std::strlen("--threads="), 1);
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      const char* dir = arg.c_str() + std::strlen("--data-dir=");
      // CsvWriter silently deactivates when the directory is missing.
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        std::fprintf(stderr, "cannot create data dir '%s': %s\n", dir, ec.message().c_str());
        return 2;
      }
      setenv("QUICER_DATA_DIR", dir, 1);
    } else if (arg.rfind("--scale=", 0) == 0) {
      const long parsed = std::strtol(arg.c_str() + std::strlen("--scale="), nullptr, 10);
      context.scale = parsed >= 1 ? static_cast<int>(parsed) : 1;
    } else if (arg == "--progress") {
      context.progress = true;
    } else if (arg.rfind("--budget-seconds=", 0) == 0) {
      context.budget_seconds =
          std::strtod(arg.c_str() + std::strlen("--budget-seconds="), nullptr);
    } else if (arg.rfind("--shard=", 0) == 0) {
      if (!ParseShard(arg.substr(std::strlen("--shard=")), context.shard)) {
        std::fprintf(stderr, "invalid --shard '%s' (expected I/N with 0 <= I < N)\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--points=", 0) == 0) {
      if (!ParsePoints(arg.substr(std::strlen("--points=")), context.shard.points)) {
        std::fprintf(stderr, "invalid --points '%s' (expected ID,ID,...)\n", arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--rep-range=", 0) == 0) {
      if (!ParseRepRange(arg.substr(std::strlen("--rep-range=")), context.shard)) {
        std::fprintf(stderr, "invalid --rep-range '%s' (expected A:B with 0 <= A < B,"
                     " or A: for 'to the end')\n", arg.c_str());
        return 2;
      }
    } else {
      return Usage(argv[0]);
    }
  }

  // A sharded run's only useful product is its partial-result files; without
  // a data dir the whole run would be silently discarded.
  if (!context.shard.all() && std::getenv("QUICER_DATA_DIR") == nullptr) {
    std::fprintf(stderr,
                 "--shard/--points/--rep-range produce partial-result files: pass "
                 "--data-dir=DIR (or set QUICER_DATA_DIR)\n");
    return 2;
  }

  const std::vector<BenchInfo> selected = Registry::Instance().Match(filter);
  if (list) {
    for (const BenchInfo& bench : selected) {
      std::printf("%-24s %s\n", bench.name.c_str(), bench.description.c_str());
    }
    return 0;
  }
  if (selected.empty()) {
    std::fprintf(stderr, "no benches match filter '%s'\n", filter.c_str());
    return 2;
  }
  if (!context.shard.points.empty()) {
    const int invalid = ValidatePoints(selected, context);
    if (invalid != 0) return invalid;
  }

  struct Timing {
    std::string name;
    double seconds;
    int exit_code;
  };
  std::vector<Timing> timings;
  context.suite_start = std::chrono::steady_clock::now();
  int failures = 0;
  for (const BenchInfo& bench : selected) {
    const auto start = std::chrono::steady_clock::now();
    const int code = bench.run(context);
    timings.push_back({bench.name, SecondsSince(start), code});
    if (code != 0) ++failures;
  }

  std::printf("\n%-24s %10s  %s\n", "bench", "wall [s]", "status");
  for (const Timing& timing : timings) {
    std::printf("%-24s %10.2f  %s\n", timing.name.c_str(), timing.seconds,
                timing.exit_code == 0 ? "ok" : "FAILED");
  }
  std::printf("%-24s %10.2f  (%zu benches, pool of %u threads)\n", "total",
              SecondsSince(context.suite_start), timings.size(),
              quicer::core::ThreadPool::Global().size());
  return failures == 0 ? 0 : 1;
}
