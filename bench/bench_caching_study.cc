// §4.3 "The instant ACK deployment at Cloudflare" — certificate caching by
// popularity. The paper compares coalesced-ACK+SH shares across domains of
// different request rates: discord.com 91.9 %, cloudflare.com 50.5 %,
// tinyurl.com 17.7 %, docker.com 0.7 %; its own domains probed at 1/min
// almost never coalesce (0.1 %), at 60/min slightly more (7.5 %).
//
// Reproduced with the frontend certificate-cache model: one cluster, domains
// with different organic request rates, plus probe streams at the paper's
// two rates.
//
// Sweep mapping: the domain is an extra axis; the cache simulation threads
// one RNG through all domains minute by minute, so it runs once as a
// SharedOutcomeRunner and every point extracts its domain's coalesced share
// — identical values to the legacy single-pass loop.
#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "registry.h"
#include "scan/frontend_cache.h"

namespace {

using namespace quicer;

struct DomainLoad {
  const char* name;
  double organic_per_minute;  // background traffic keeping the cert hot
  double paper_share;         // observed coalesced share
};

constexpr DomainLoad kDomains[] = {
    {"discord.example", 20000.0, 91.9},
    {"cloudflare.example", 600.0, 50.5},
    {"tinyurl.example", 160.0, 17.7},
    {"docker.example", 6.0, 0.7},
    {"own-domain (1/min probes)", 0.0, 0.1},
    {"own-domain (60/min probes)", 0.0, 7.5},
};
constexpr int kDomainCount = 6;

struct CacheOutcome {
  int probe_hits[kDomainCount] = {0};
  int probe_total[kDomainCount] = {0};
};

/// Simulate 3 hours; organic traffic arrives uniformly, probes on their
/// schedule. Coalesced share is measured on the 1-per-minute probe stream
/// (as the paper measures), except for the fast-probe row.
CacheOutcome SimulateCluster() {
  scan::FrontendCertCache::Config config;
  config.capacity = 1 << 16;
  config.ttl = sim::Seconds(300);
  config.frontends_per_cluster = 4096;  // one metro colo (many metals)
  scan::FrontendCertCache cache(config, sim::Rng(11));

  CacheOutcome outcome;
  const int minutes = 3 * 60;
  sim::Rng rng(23);

  for (int minute = 0; minute < minutes; ++minute) {
    const sim::Time base = sim::Seconds(minute * 60);
    for (int d = 0; d < kDomainCount; ++d) {
      // Organic load.
      const double rate = kDomains[d].organic_per_minute;
      const int arrivals = static_cast<int>(rate) +
                           (rng.Bernoulli(rate - static_cast<int>(rate)) ? 1 : 0);
      for (int a = 0; a < arrivals; ++a) {
        cache.OnConnection(kDomains[d].name, base + rng.UniformInt(0, 59) * sim::kSecond);
      }
      // Probe stream.
      const int probes = d == 5 ? 60 : 1;
      for (int p = 0; p < probes; ++p) {
        ++outcome.probe_total[d];
        if (cache.OnConnection(kDomains[d].name, base + p * sim::kSecond)) {
          ++outcome.probe_hits[d];
        }
      }
    }
  }
  return outcome;
}

}  // namespace

QUICER_BENCH("caching_study", "Cloudflare certificate caching by domain popularity") {
  core::PrintTitle("Cloudflare certificate caching by domain popularity (Fig 9 context)");

  core::SweepSpec spec;
  spec.name = "caching_study";
  core::SweepExtraAxis domains;
  domains.name = "domain";
  for (int d = 0; d < kDomainCount; ++d) domains.values.push_back({kDomains[d].name, d});
  spec.axes.extras = {domains};
  spec.repetitions = 1;
  spec.metrics = {
      {"coalesced_share_pct", core::MetricMode::kSummary, /*exclude_negative=*/false, nullptr}};
  spec.runner = core::SharedOutcomeRunner<CacheOutcome>(
      &SimulateCluster, [](const CacheOutcome& outcome, const core::SweepRunContext& ctx) {
        const auto d = static_cast<std::size_t>(ctx.point.Extra("domain")->value);
        return std::vector<double>{100.0 * outcome.probe_hits[d] / outcome.probe_total[d]};
      });
  bench::TuneObserver(spec);
  const core::SweepResult result = core::RunSweep(spec);

  std::printf("%28s  %18s  %18s\n", "domain (load)", "coalesced [%]", "paper [%]");
  for (const core::PointSummary& summary : result.points) {
    const auto d = static_cast<std::size_t>(summary.point.Extra("domain")->value);
    std::printf("%28s  %18.1f  %18.1f\n", kDomains[d].name, summary.values().mean(),
                kDomains[d].paper_share);
  }
  std::printf("\nShape check: coalesced (cached-certificate) share grows monotonically with\n"
              "the domain's request rate; probe-only domains stay cold except when probed\n"
              "fast enough to warm a few machines of the cluster.\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("caching_study")
