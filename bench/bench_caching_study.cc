// §4.3 "The instant ACK deployment at Cloudflare" — certificate caching by
// popularity. The paper compares coalesced-ACK+SH shares across domains of
// different request rates: discord.com 91.9 %, cloudflare.com 50.5 %,
// tinyurl.com 17.7 %, docker.com 0.7 %; its own domains probed at 1/min
// almost never coalesce (0.1 %), at 60/min slightly more (7.5 %).
//
// Reproduced with the frontend certificate-cache model: one cluster, domains
// with different organic request rates, plus probe streams at the paper's
// two rates.
#include <cstdio>

#include "core/report.h"
#include "scan/frontend_cache.h"

namespace {

using namespace quicer;

struct DomainLoad {
  const char* name;
  double organic_per_minute;  // background traffic keeping the cert hot
  double paper_share;         // observed coalesced share
};

}  // namespace

int main() {
  core::PrintTitle("Cloudflare certificate caching by domain popularity (Fig 9 context)");

  scan::FrontendCertCache::Config config;
  config.capacity = 1 << 16;
  config.ttl = sim::Seconds(300);
  config.frontends_per_cluster = 4096;  // one metro colo (many metals)
  scan::FrontendCertCache cache(config, sim::Rng(11));

  const DomainLoad domains[] = {
      {"discord.example", 20000.0, 91.9},
      {"cloudflare.example", 600.0, 50.5},
      {"tinyurl.example", 160.0, 17.7},
      {"docker.example", 6.0, 0.7},
      {"own-domain (1/min probes)", 0.0, 0.1},
      {"own-domain (60/min probes)", 0.0, 7.5},
  };

  // Simulate 3 hours; organic traffic arrives uniformly, probes on their
  // schedule. Coalesced share is measured on the 1-per-minute probe stream
  // (as the paper measures), except for the fast-probe row.
  const int minutes = 3 * 60;
  int probe_hits[6] = {0};
  int probe_total[6] = {0};
  sim::Rng rng(23);

  for (int minute = 0; minute < minutes; ++minute) {
    const sim::Time base = sim::Seconds(minute * 60);
    for (int d = 0; d < 6; ++d) {
      // Organic load.
      const double rate = domains[d].organic_per_minute;
      const int arrivals = static_cast<int>(rate) +
                           (rng.Bernoulli(rate - static_cast<int>(rate)) ? 1 : 0);
      for (int a = 0; a < arrivals; ++a) {
        cache.OnConnection(domains[d].name, base + rng.UniformInt(0, 59) * sim::kSecond);
      }
      // Probe stream.
      const int probes = d == 5 ? 60 : 1;
      for (int p = 0; p < probes; ++p) {
        ++probe_total[d];
        if (cache.OnConnection(domains[d].name, base + p * sim::kSecond)) ++probe_hits[d];
      }
    }
  }

  std::printf("%28s  %18s  %18s\n", "domain (load)", "coalesced [%]", "paper [%]");
  for (int d = 0; d < 6; ++d) {
    const double share = 100.0 * probe_hits[d] / probe_total[d];
    std::printf("%28s  %18.1f  %18.1f\n", domains[d].name, share, domains[d].paper_share);
  }
  std::printf("\nShape check: coalesced (cached-certificate) share grows monotonically with\n"
              "the domain's request rate; probe-only domains stay cold except when probed\n"
              "fast enough to warm a few machines of the cluster.\n");
  return 0;
}
