// §4.3 "The instant ACK deployment at Cloudflare" — certificate caching by
// popularity. The paper compares coalesced-ACK+SH shares across domains of
// different request rates: discord.com 91.9 %, cloudflare.com 50.5 %,
// tinyurl.com 17.7 %, docker.com 0.7 %; its own domains probed at 1/min
// almost never coalesce (0.1 %), at 60/min slightly more (7.5 %).
//
// Reproduced with the frontend certificate-cache model: one cluster, domains
// with different organic request rates, plus probe streams at the paper's
// two rates.
//
// Sweep mapping: domain, frontend-cache capacity, TTL, cluster size
// (frontends_per_cluster) and probe rate are extra axes — the full §4.3
// sensitivity grids. One cluster simulation threads one RNG through all
// domains minute by minute, so it runs once per (capacity, ttl, frontends,
// probe-rate) tuple — core::KeyedOutcomeRunner memoizes the simulation per
// tuple and every domain point extracts its coalesced share from it. The
// paper-comparison column reads the base tuple (capacity 65536, TTL 300 s,
// 4096 frontends, 1 probe/min), which reproduces the pre-axis values
// exactly.
#include <cstdio>
#include <tuple>
#include <utility>

#include "bench_common.h"
#include "core/report.h"
#include "registry.h"
#include "scan/frontend_cache.h"

namespace {

using namespace quicer;

struct DomainLoad {
  const char* name;
  double organic_per_minute;  // background traffic keeping the cert hot
  double paper_share;         // observed coalesced share
};

constexpr DomainLoad kDomains[] = {
    {"discord.example", 20000.0, 91.9},
    {"cloudflare.example", 600.0, 50.5},
    {"tinyurl.example", 160.0, 17.7},
    {"docker.example", 6.0, 0.7},
    {"own-domain (1/min probes)", 0.0, 0.1},
    {"own-domain (60/min probes)", 0.0, 7.5},
};
constexpr int kDomainCount = 6;

/// The base cluster the paper comparison reads; the sensitivity axes sweep
/// around it.
constexpr std::int64_t kBaseCapacity = 1 << 16;
constexpr std::int64_t kBaseTtlSeconds = 300;
constexpr std::int64_t kBaseFrontends = 4096;
constexpr std::int64_t kBaseProbePerMin = 1;

struct CacheOutcome {
  int probe_hits[kDomainCount] = {0};
  int probe_total[kDomainCount] = {0};
};

/// (capacity, ttl, frontends_per_cluster, probes/min) of one simulation.
using ClusterKey = std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t>;

/// Simulate 3 hours; organic traffic arrives uniformly, probes on their
/// schedule. Coalesced share is measured on the probe stream at
/// `probe_per_min` connections/minute (the paper measures at 1/min), except
/// for the fast-probe row, whose 60/min rate is its identity. Self-contained
/// per key: fixed seeds, so the outcome is independent of which other keys
/// run (or of sharding).
CacheOutcome SimulateCluster(const ClusterKey& key) {
  const auto [capacity, ttl_seconds, frontends, probe_per_min] = key;
  scan::FrontendCertCache::Config config;
  config.capacity = static_cast<std::size_t>(capacity);
  config.ttl = sim::Seconds(ttl_seconds);
  config.frontends_per_cluster = static_cast<int>(frontends);
  scan::FrontendCertCache cache(config, sim::Rng(11));

  CacheOutcome outcome;
  const int minutes = 3 * 60;
  sim::Rng rng(23);

  for (int minute = 0; minute < minutes; ++minute) {
    const sim::Time base = sim::Seconds(minute * 60);
    for (int d = 0; d < kDomainCount; ++d) {
      // Organic load.
      const double rate = kDomains[d].organic_per_minute;
      const int arrivals = static_cast<int>(rate) +
                           (rng.Bernoulli(rate - static_cast<int>(rate)) ? 1 : 0);
      for (int a = 0; a < arrivals; ++a) {
        cache.OnConnection(kDomains[d].name, base + rng.UniformInt(0, 59) * sim::kSecond);
      }
      // Probe stream.
      const int probes = d == 5 ? 60 : static_cast<int>(probe_per_min);
      for (int p = 0; p < probes; ++p) {
        ++outcome.probe_total[d];
        if (cache.OnConnection(kDomains[d].name, base + p * sim::kSecond)) {
          ++outcome.probe_hits[d];
        }
      }
    }
  }
  return outcome;
}

double Share(const core::PointSummary& summary) { return summary.values().mean(); }

}  // namespace

QUICER_BENCH("caching_study", "Cloudflare certificate caching by domain popularity") {
  core::PrintTitle("Cloudflare certificate caching by domain popularity (Fig 9 context)");

  core::SweepSpec spec;
  spec.name = "caching_study";
  // Sensitivity axes around the base cluster: a capacity below the domain
  // count forces LRU evictions of the cold domains; shorter/longer TTLs
  // shift how much organic load a domain needs to stay hot; fewer machines
  // behind the VIP make every stream (organic and probes) far more likely
  // to land on a warm machine; faster probing warms machines on its own.
  core::SweepExtraAxis capacities{"cache_capacity",
                                  {{"2", 2}, {"4", 4}, {"65536", kBaseCapacity}}};
  core::SweepExtraAxis ttls{"cache_ttl_s",
                            {{"60s", 60}, {"300s", kBaseTtlSeconds}, {"900s", 900}}};
  core::SweepExtraAxis frontends{
      "frontends_per_cluster",
      {{"64", 64}, {"4096", kBaseFrontends}, {"16384", 16384}}};
  core::SweepExtraAxis probe_rates{"probe_per_min",
                                   {{"1/min", kBaseProbePerMin}, {"60/min", 60}}};
  core::SweepExtraAxis domains;
  domains.name = "domain";
  for (int d = 0; d < kDomainCount; ++d) domains.values.push_back({kDomains[d].name, d});
  spec.axes.extras = {capacities, ttls, frontends, probe_rates, domains};
  spec.repetitions = 1;
  spec.metrics = {
      {"coalesced_share_pct", core::MetricMode::kSummary, /*exclude_negative=*/false, nullptr}};
  spec.runner = core::KeyedOutcomeRunner<CacheOutcome, ClusterKey>(
      [](const core::SweepRunContext& run) {
        return ClusterKey{run.point.Extra("cache_capacity")->value,
                          run.point.Extra("cache_ttl_s")->value,
                          run.point.Extra("frontends_per_cluster")->value,
                          run.point.Extra("probe_per_min")->value};
      },
      [](const ClusterKey& key, const core::SweepRunContext&) {
        return SimulateCluster(key);
      },
      [](const CacheOutcome& outcome, const core::SweepRunContext& run) {
        const auto d = static_cast<std::size_t>(run.point.Extra("domain")->value);
        return std::vector<double>{100.0 * outcome.probe_hits[d] / outcome.probe_total[d]};
      });
  bench::TuneObserver(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  auto cell = [&](std::int64_t capacity, std::int64_t ttl_s, std::int64_t machines,
                  std::int64_t probe_rate, int domain) {
    return result.Find([&](const core::SweepPoint& p) {
      return p.Extra("cache_capacity")->value == capacity &&
             p.Extra("cache_ttl_s")->value == ttl_s &&
             p.Extra("frontends_per_cluster")->value == machines &&
             p.Extra("probe_per_min")->value == probe_rate &&
             p.Extra("domain")->value == domain;
    });
  };
  auto base_cell = [&](std::int64_t capacity, std::int64_t ttl_s, int domain) {
    return cell(capacity, ttl_s, kBaseFrontends, kBaseProbePerMin, domain);
  };

  std::printf("%28s  %18s  %18s\n", "domain (load)", "coalesced [%]", "paper [%]");
  for (int d = 0; d < kDomainCount; ++d) {
    std::printf("%28s  %18.1f  %18.1f\n", kDomains[d].name,
                Share(*base_cell(kBaseCapacity, kBaseTtlSeconds, d)), kDomains[d].paper_share);
  }
  std::printf("\nShape check: coalesced (cached-certificate) share grows monotonically with\n"
              "the domain's request rate; probe-only domains stay cold except when probed\n"
              "fast enough to warm a few machines of the cluster.\n");

  core::PrintHeading("Sensitivity: coalesced share [%] across cache capacity x TTL");
  std::printf("%28s", "domain \\ (capacity, ttl)");
  for (const core::SweepAxisValue& capacity : capacities.values) {
    for (const core::SweepAxisValue& ttl : ttls.values) {
      std::printf("  %6s/%-4s", capacity.label.c_str(), ttl.label.c_str());
    }
  }
  std::printf("\n");
  for (int d = 0; d < kDomainCount; ++d) {
    std::printf("%28s", kDomains[d].name);
    for (const core::SweepAxisValue& capacity : capacities.values) {
      for (const core::SweepAxisValue& ttl : ttls.values) {
        std::printf("  %11.1f", Share(*base_cell(capacity.value, ttl.value, d)));
      }
    }
    std::printf("\n");
  }
  std::printf("\nShape check: a capacity below the domain count evicts the cold domains\n"
              "entirely; longer TTLs mostly help the mid-popularity domains (enough\n"
              "organic load to touch machines, not enough to keep them hot at 60 s).\n");

  core::PrintHeading(
      "Sensitivity: coalesced share [%] across cluster size x probe rate");
  std::printf("%28s", "domain \\ (machines, rate)");
  for (const core::SweepAxisValue& machines : frontends.values) {
    for (const core::SweepAxisValue& rate : probe_rates.values) {
      std::printf("  %5s@%-6s", machines.label.c_str(), rate.label.c_str());
    }
  }
  std::printf("\n");
  for (int d = 0; d < kDomainCount; ++d) {
    std::printf("%28s", kDomains[d].name);
    for (const core::SweepAxisValue& machines : frontends.values) {
      for (const core::SweepAxisValue& rate : probe_rates.values) {
        std::printf("  %12.1f", Share(*cell(kBaseCapacity, kBaseTtlSeconds, machines.value,
                                            rate.value, d)));
      }
    }
    std::printf("\n");
  }
  std::printf("\nShape check: shrinking the cluster concentrates both organic and probe\n"
              "traffic on fewer machines, so even cold domains warm up; on large\n"
              "clusters only a fast probe stream lifts its own hit share (the paper's\n"
              "60/min observation), and popular domains stay hot regardless.\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("caching_study")
