// Fig 14 — CDF of the ACK->ServerHello delay per CDN from all four vantage
// points (Tranco Top-1M probe).
//
// Paper shape: IACK latency distributions are similar across locations;
// Google's IACK-enabled frontends are only significantly reachable from
// São Paulo.
//
// Sweep mapping: vantage × CDN extra axes over one probe sweep; percentiles
// come straight from each point's accumulator (the reservoir is sized to the
// population, so they are exact — identical to stats::Percentile over the
// legacy per-domain vectors).
#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "registry.h"
#include "scan/sweep_runners.h"

QUICER_BENCH("fig14", "Figure 14: ACK->SH delay per CDN from four vantage points") {
  using namespace quicer;
  core::PrintTitle("Figure 14: ACK->SH delay CDF per CDN from four vantage points");

  auto population = std::make_shared<const scan::TrancoPopulation>(50000, 2024);
  const std::vector<scan::Cdn> cdns = {scan::Cdn::kAkamai, scan::Cdn::kAmazon,
                                       scan::Cdn::kCloudflare, scan::Cdn::kGoogle,
                                       scan::Cdn::kOthers};

  core::SweepSpec spec;
  spec.name = "fig14";
  spec.axes.extras = {
      scan::VantageAxis({scan::kAllVantages.begin(), scan::kAllVantages.end()}),
      scan::CdnAxis(cdns)};
  spec.repetitions = static_cast<int>(population->size());
  spec.reservoir_capacity = population->size();  // exact percentiles
  spec.metrics = {
      {"ack_sh_delay_ms", core::MetricMode::kSummary, /*exclude_negative=*/false, nullptr}};
  spec.runner = scan::ProbeRunner(
      population, /*prober_seed=*/13, scan::MatchPointCdn(),
      {[](const core::SweepPoint&, const scan::Domain&, const scan::ProbeResult& result) {
        if (!result.success || !result.iack_observed) return core::NoSample();
        return result.ack_sh_delay_ms;
      }});
  bench::TuneObserver(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  for (scan::Vantage vantage : scan::kAllVantages) {
    core::PrintHeading(std::string(scan::Name(vantage)));
    std::printf("%12s  %8s  %10s  %10s  %10s\n", "CDN", "n", "p25 [ms]", "median", "p75 [ms]");
    for (scan::Cdn cdn : cdns) {
      const core::PointSummary* cell = result.Find([&](const core::SweepPoint& p) {
        return scan::PointVantage(p) == vantage && scan::PointCdn(p) == cdn;
      });
      const std::string name(scan::Name(cdn));
      if (cell == nullptr || cell->values().count() < 3) {
        std::printf("%12s  %8s\n", name.c_str(), "(none)");
        continue;
      }
      std::printf("%12s  %8zu  %10.2f  %10.2f  %10.2f\n", name.c_str(),
                  cell->values().count(), cell->values().Percentile(25),
                  cell->values().Median(), cell->values().Percentile(75));
    }
  }
  std::printf("\nShape check: per-CDN medians stable across vantage points.\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("fig14")
