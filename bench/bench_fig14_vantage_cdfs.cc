// Fig 14 — CDF of the ACK->ServerHello delay per CDN from all four vantage
// points (Tranco Top-1M probe).
//
// Paper shape: IACK latency distributions are similar across locations;
// Google's IACK-enabled frontends are only significantly reachable from
// São Paulo.
#include <cstdio>
#include <map>
#include <vector>

#include "core/report.h"
#include "scan/population.h"
#include "scan/prober.h"
#include "stats/stats.h"

int main() {
  using namespace quicer;
  core::PrintTitle("Figure 14: ACK->SH delay CDF per CDN from four vantage points");

  scan::TrancoPopulation population(50000, 2024);
  scan::Prober prober(13);

  for (scan::Vantage vantage : scan::kAllVantages) {
    core::PrintHeading(std::string(scan::Name(vantage)));
    std::map<scan::Cdn, std::vector<double>> delays;
    for (const scan::Domain& domain : population.domains()) {
      if (!domain.speaks_quic) continue;
      const scan::ProbeResult result = prober.Probe(domain, vantage, 0);
      if (!result.success || !result.iack_observed) continue;
      delays[domain.cdn].push_back(result.ack_sh_delay_ms);
    }
    std::printf("%12s  %8s  %10s  %10s  %10s\n", "CDN", "n", "p25 [ms]", "median", "p75 [ms]");
    for (scan::Cdn cdn : {scan::Cdn::kAkamai, scan::Cdn::kAmazon, scan::Cdn::kCloudflare,
                          scan::Cdn::kGoogle, scan::Cdn::kOthers}) {
      auto it = delays.find(cdn);
      if (it == delays.end() || it->second.size() < 3) {
        std::printf("%12s  %8s\n", std::string(scan::Name(cdn)).c_str(), "(none)");
        continue;
      }
      std::printf("%12s  %8zu  %10.2f  %10.2f  %10.2f\n",
                  std::string(scan::Name(cdn)).c_str(), it->second.size(),
                  stats::Percentile(it->second, 25), stats::Median(it->second),
                  stats::Percentile(it->second, 75));
    }
  }
  std::printf("\nShape check: per-CDN medians stable across vantage points.\n");
  return 0;
}
