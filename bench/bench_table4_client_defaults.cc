// Table 4 — Default (pre-sample) PTO and the UDP datagrams comprising the
// second client flight, per implementation — verified against the live
// engine: the default PTO is observed via the first probe time with an
// unresponsive server, the flight shape via datagram counting in a lossless
// handshake.
#include <cstdio>

#include "bench_common.h"
#include "clients/profiles.h"

int main() {
  using namespace quicer;
  core::PrintTitle("Table 4: client default PTO and second-flight datagrams");
  std::printf("%10s  %16s  %22s  %24s\n", "client", "default PTO [ms]",
              "second flight datagrams", "observed client datagrams");
  for (clients::ClientImpl impl : clients::kAllClients) {
    // Lossless handshake to observe the flight (CH + flight + later acks).
    core::ExperimentConfig config;
    config.client = impl;
    config.rtt = sim::Millis(9);
    config.response_body_bytes = 2048;
    config.behavior = quic::ServerBehavior::kWaitForCertificate;
    const core::ExperimentResult result = core::RunExperiment(config);

    const int flight = clients::SecondFlightDatagrams(impl);
    char indices[32];
    char* p = indices;
    for (int i = 2; i <= flight + 1; ++i) {
      p += std::snprintf(p, sizeof(indices) - (p - indices), i == 2 ? "%d" : ",%d", i);
    }
    std::printf("%10s  %16.0f  %22s  %24llu\n", std::string(clients::Name(impl)).c_str(),
                sim::ToMillis(clients::DefaultPto(impl)), indices,
                static_cast<unsigned long long>(result.client.datagrams_sent));
  }
  std::printf("\nImplementations choose far lower default PTOs than the RFC's 999 ms to\n"
              "improve loss recovery; coalescing spreads the second flight over 1-4\n"
              "datagrams (quiche: 1, neqo: 2, picoquic: 4, others: 3).\n");
  return 0;
}
