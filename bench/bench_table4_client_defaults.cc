// Table 4 — Default (pre-sample) PTO and the UDP datagrams comprising the
// second client flight, per implementation — verified against the live
// engine: the default PTO is observed via the first probe time with an
// unresponsive server, the flight shape via datagram counting in a lossless
// handshake.
//
// Sweep mapping: clients axis, one deterministic lossless handshake per
// client through the default experiment runner; the profile constants
// (default PTO, flight shape) print alongside the measured datagram count.
#include <cstdio>

#include "bench_common.h"
#include "clients/profiles.h"
#include "registry.h"

QUICER_BENCH("table4", "Table 4: client default PTO and second-flight datagrams") {
  using namespace quicer;
  core::PrintTitle("Table 4: client default PTO and second-flight datagrams");

  core::SweepSpec spec;
  spec.name = "table4";
  spec.base.rtt = sim::Millis(9);
  spec.base.response_body_bytes = 2048;
  spec.base.behavior = quic::ServerBehavior::kWaitForCertificate;
  spec.axes.clients.assign(clients::kAllClients.begin(), clients::kAllClients.end());
  spec.repetitions = 1;
  spec.metrics = {{"datagrams_sent", core::MetricMode::kSummary, /*exclude_negative=*/false,
                   [](const core::ExperimentResult& r) {
                     return static_cast<double>(r.client.datagrams_sent);
                   }}};
  bench::TuneObserver(spec, ctx);
  const core::SweepResult result = core::RunSweep(spec);
  if (bench::PartialExported(result)) return 0;

  std::printf("%10s  %16s  %22s  %24s\n", "client", "default PTO [ms]",
              "second flight datagrams", "observed client datagrams");
  for (const core::PointSummary& summary : result.points) {
    const clients::ClientImpl impl = summary.point.config.client;
    const int flight = clients::SecondFlightDatagrams(impl);
    char indices[32];
    char* p = indices;
    for (int i = 2; i <= flight + 1; ++i) {
      p += std::snprintf(p, sizeof(indices) - (p - indices), i == 2 ? "%d" : ",%d", i);
    }
    std::printf("%10s  %16.0f  %22s  %24llu\n", summary.point.client.c_str(),
                sim::ToMillis(clients::DefaultPto(impl)), indices,
                static_cast<unsigned long long>(summary.values().mean()));
  }
  std::printf("\nImplementations choose far lower default PTOs than the RFC's 999 ms to\n"
              "improve loss recovery; coalescing spreads the second flight over 1-4\n"
              "datagrams (quiche: 1, neqo: 2, picoquic: 4, others: 3).\n");
  core::MaybeWriteSweepData(result);
  return 0;
}
QUICER_BENCH_MAIN("table4")
