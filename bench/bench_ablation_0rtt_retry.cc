// §5 generalisation ablation — instant ACK across handshake types:
// 1-RTT, 0-RTT (request rides with the ClientHello) and Retry (token round
// trip first; the Retry may seed the client's RTT estimate).
#include "bench_common.h"

namespace {

using namespace quicer;

double Run(core::HandshakeMode mode, quic::ServerBehavior behavior, double delta_ms,
           bool retry_rtt_sample = true) {
  core::ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.mode = mode;
  config.behavior = behavior;
  config.client_use_retry_rtt_sample = retry_rtt_sample;
  config.rtt = sim::Millis(9);
  config.cert_fetch_delay = sim::Millis(delta_ms);
  config.response_body_bytes = http::kSmallFileBytes;
  const auto values = core::CollectTtfbMs(config, bench::kRepetitions);
  return values.empty() ? -1.0 : stats::Median(values);
}

double FirstPto(core::HandshakeMode mode, quic::ServerBehavior behavior, double delta_ms) {
  core::ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.mode = mode;
  config.behavior = behavior;
  config.rtt = sim::Millis(9);
  config.cert_fetch_delay = sim::Millis(delta_ms);
  config.response_body_bytes = http::kSmallFileBytes;
  return stats::Median(core::RunRepetitions(config, bench::kRepetitions,
                                            [](const core::ExperimentResult& r) {
                                              return sim::ToMillis(r.client.first_pto_period);
                                            }));
}

}  // namespace

int main() {
  core::PrintTitle("Ablation: instant ACK under 1-RTT, 0-RTT and Retry handshakes");
  std::printf("(9 ms RTT, 10 KB transfer, delta_t = 25 ms)\n\n");

  std::printf("%10s  %12s  %12s  %16s  %16s\n", "handshake", "WFC TTFB", "IACK TTFB",
              "WFC 1st PTO", "IACK 1st PTO");
  struct Row {
    const char* label;
    core::HandshakeMode mode;
  };
  for (const Row& row : {Row{"1-RTT", core::HandshakeMode::k1Rtt},
                         Row{"0-RTT", core::HandshakeMode::k0Rtt},
                         Row{"Retry", core::HandshakeMode::kRetry}}) {
    std::printf("%10s  %12.1f  %12.1f  %16.1f  %16.1f\n", row.label,
                Run(row.mode, quic::ServerBehavior::kWaitForCertificate, 25.0),
                Run(row.mode, quic::ServerBehavior::kInstantAck, 25.0),
                FirstPto(row.mode, quic::ServerBehavior::kWaitForCertificate, 25.0),
                FirstPto(row.mode, quic::ServerBehavior::kInstantAck, 25.0));
  }

  core::PrintHeading("Retry as first RTT estimate (delta_t = 100 ms, WFC)");
  std::printf("with Retry RTT sample:    TTFB %7.1f ms\n",
              Run(core::HandshakeMode::kRetry, quic::ServerBehavior::kWaitForCertificate, 100.0,
                  true));
  std::printf("without Retry RTT sample: TTFB %7.1f ms\n",
              Run(core::HandshakeMode::kRetry, quic::ServerBehavior::kWaitForCertificate, 100.0,
                  false));

  std::printf("\nShape check: 0-RTT saves ~1 RTT of TTFB and keeps the full IACK PTO\n"
              "benefit; a Retry costs ~1 RTT but validates the address (no amplification\n"
              "blocking) and can seed an accurate first RTT estimate, after which the\n"
              "instant ACK still reduces the RTT variance (paper §5).\n");
  return 0;
}
