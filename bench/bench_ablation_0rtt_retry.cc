// §5 generalisation ablation — instant ACK across handshake types:
// 1-RTT, 0-RTT (request rides with the ClientHello) and Retry (token round
// trip first; the Retry may seed the client's RTT estimate).
#include "bench_common.h"
#include "core/sweep.h"
#include "registry.h"

QUICER_BENCH("ablation_0rtt_retry", "Ablation: instant ACK under 1-RTT/0-RTT/Retry") {
  using namespace quicer;
  core::PrintTitle("Ablation: instant ACK under 1-RTT, 0-RTT and Retry handshakes");
  std::printf("(9 ms RTT, 10 KB transfer, delta_t = 25 ms)\n\n");

  core::SweepSpec spec;
  spec.name = "ablation_0rtt_retry";
  spec.base.client = clients::ClientImpl::kQuicGo;
  spec.base.rtt = sim::Millis(9);
  spec.base.cert_fetch_delay = sim::Millis(25);
  spec.base.response_body_bytes = http::kSmallFileBytes;
  spec.axes.modes = {core::HandshakeMode::k1Rtt, core::HandshakeMode::k0Rtt,
                     core::HandshakeMode::kRetry};
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.repetitions = bench::kRepetitions;
  bench::Tune(spec, ctx);
  const core::SweepResult ttfb = core::RunSweep(spec);

  core::SweepSpec pto_spec = spec;
  pto_spec.name = "ablation_0rtt_retry_pto";
  // Raw values, negatives included: the legacy loops aggregated the sentinel.
  pto_spec.metrics = {{"first_pto_ms", core::MetricMode::kSummary, /*exclude_negative=*/false,
                       [](const core::ExperimentResult& r) {
                         return sim::ToMillis(r.client.first_pto_period);
                       }}};
  const core::SweepResult first_pto = core::RunSweep(pto_spec);

  // Retry as the client's first RTT estimate, Δt = 100 ms, WFC only: the
  // retry-sample flag is not a first-class axis, so it sweeps as a variant.
  core::SweepSpec retry_spec;
  retry_spec.name = "ablation_retry_rtt_sample";
  retry_spec.base = spec.base;
  retry_spec.base.mode = core::HandshakeMode::kRetry;
  retry_spec.base.behavior = quic::ServerBehavior::kWaitForCertificate;
  retry_spec.base.cert_fetch_delay = sim::Millis(100);
  retry_spec.axes.variants = {
      {"retry-rtt-sample", [](core::ExperimentConfig& c) { c.client_use_retry_rtt_sample = true; }},
      {"no-retry-rtt-sample",
       [](core::ExperimentConfig& c) { c.client_use_retry_rtt_sample = false; }}};
  retry_spec.repetitions = bench::kRepetitions;
  bench::Tune(retry_spec, ctx);
  const core::SweepResult retry = core::RunSweep(retry_spec);
  if (bench::AnyPartialExported({&ttfb, &first_pto, &retry})) return 0;

  std::printf("%10s  %12s  %12s  %16s  %16s\n", "handshake", "WFC TTFB", "IACK TTFB",
              "WFC 1st PTO", "IACK 1st PTO");
  for (core::HandshakeMode mode : spec.axes.modes) {
    auto median = [&](const core::SweepResult& result, quic::ServerBehavior behavior) {
      const core::PointSummary* cell = result.Find([&](const core::SweepPoint& p) {
        return p.config.mode == mode && p.config.behavior == behavior;
      });
      return cell->MedianOrNegative();
    };
    std::printf("%10s  %12.1f  %12.1f  %16.1f  %16.1f\n",
                std::string(core::ToString(mode)).c_str(),
                median(ttfb, quic::ServerBehavior::kWaitForCertificate),
                median(ttfb, quic::ServerBehavior::kInstantAck),
                median(first_pto, quic::ServerBehavior::kWaitForCertificate),
                median(first_pto, quic::ServerBehavior::kInstantAck));
  }

  core::PrintHeading("Retry as first RTT estimate (delta_t = 100 ms, WFC)");
  auto variant_median = [&](const std::string& label) {
    return retry.Find([&](const core::SweepPoint& p) { return p.variant == label; })
        ->MedianOrNegative();
  };
  std::printf("with Retry RTT sample:    TTFB %7.1f ms\n", variant_median("retry-rtt-sample"));
  std::printf("without Retry RTT sample: TTFB %7.1f ms\n",
              variant_median("no-retry-rtt-sample"));

  std::printf("\nShape check: 0-RTT saves ~1 RTT of TTFB and keeps the full IACK PTO\n"
              "benefit; a Retry costs ~1 RTT but validates the address (no amplification\n"
              "blocking) and can seed an accurate first RTT estimate, after which the\n"
              "instant ACK still reduces the RTT variance (paper §5).\n");
  core::MaybeWriteSweepData(ttfb);
  core::MaybeWriteSweepData(first_pto);
  core::MaybeWriteSweepData(retry);
  return 0;
}
QUICER_BENCH_MAIN("ablation_0rtt_retry")
