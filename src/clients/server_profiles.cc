#include "clients/server_profiles.h"

namespace quicer::clients {
namespace {

// Table 3: "Delay of the first acknowledgment received from server" —
// medians of the three repetitions, in the Initial and Handshake spaces.
constexpr std::optional<sim::Duration> kNone = std::nullopt;

const ServerAckDelayProfile kProfiles[] = {
    {ServerImpl::kAioquic, "aioquic", sim::Millis(3.3), kNone},
    {ServerImpl::kGoXNet, "go-x-net", sim::Millis(0.0), kNone},
    {ServerImpl::kHaproxy, "haproxy", sim::Millis(1.0), sim::Millis(0.0)},
    {ServerImpl::kKwik, "kwik", sim::Millis(0.0), kNone},
    {ServerImpl::kLsquic, "lsquic", sim::Millis(1.2), sim::Millis(0.2)},
    {ServerImpl::kMsquic, "msquic", kNone, kNone},  // sends no Initial/Handshake ACKs
    {ServerImpl::kMvfst, "mvfst", sim::Millis(0.8), sim::Millis(0.2)},
    {ServerImpl::kNeqo, "neqo", sim::Millis(0.0), sim::Millis(0.0)},
    {ServerImpl::kNginx, "nginx", sim::Millis(0.0), kNone},
    {ServerImpl::kNgtcp2, "ngtcp2", sim::Millis(0.0), kNone},
    {ServerImpl::kPicoquic, "picoquic", sim::Millis(0.8), kNone},
    {ServerImpl::kQuicGo, "quic-go", sim::Millis(0.0), kNone},
    {ServerImpl::kQuiche, "quiche", sim::Millis(1.4), kNone},
    {ServerImpl::kQuinn, "quinn", sim::Millis(0.4), kNone},
    {ServerImpl::kS2nQuic, "s2n-quic", sim::Millis(14.4), kNone},  // exceeds the RTT
    {ServerImpl::kXquic, "xquic", sim::Millis(1.2), sim::Millis(0.5)},
};

}  // namespace

const ServerAckDelayProfile& GetServerAckDelayProfile(ServerImpl impl) {
  return kProfiles[static_cast<int>(impl)];
}

std::string_view Name(ServerImpl impl) { return GetServerAckDelayProfile(impl).name; }

quic::AckPolicy MakeAckPolicy(ServerImpl impl) {
  const ServerAckDelayProfile& profile = GetServerAckDelayProfile(impl);
  quic::AckPolicy policy;
  if (!profile.initial_ack_delay.has_value() || *profile.initial_ack_delay == 0) {
    policy.report_mode = quic::AckDelayReportMode::kZero;
  } else {
    policy.report_mode = quic::AckDelayReportMode::kFixed;
    policy.fixed_report_value = *profile.initial_ack_delay;
  }
  return policy;
}

}  // namespace quicer::clients
