// Client implementation profiles.
//
// The paper emulates eight QUIC client implementations against a modified
// quic-go server. The observed differences are driven by a small set of
// documented parameters and quirks, which these profiles encode:
//
//  * Table 4: default (pre-sample) PTO and how many UDP datagrams the second
//    client flight occupies;
//  * §4.1/§4.2: picoquic ignores Initial-space RTT samples; mvfst/picoquic
//    do not probe in response to an instant ACK; go-x-net sometimes
//    mis-initialises its smoothed RTT; quiche defers handshake ACKs into a
//    single coalesced flight, drops a coalesced datagram acking its PING
//    probes (HTTP/1.1), and aborts on duplicate CID retirement (HTTP/1.1);
//    aioquic uses a non-standard rttvar formula;
//  * Appendix E: per-implementation qlog metric exposure and whether rttvar
//    is logged at all (Fig 11 / Fig 16 methodology).
#pragma once

#include <array>
#include <string_view>

#include "http/http.h"
#include "quic/connection.h"

namespace quicer::clients {

enum class ClientImpl {
  kAioquic,
  kGoXNet,
  kMvfst,
  kNeqo,
  kNgtcp2,
  kPicoquic,
  kQuicGo,
  kQuiche,
};

inline constexpr std::array<ClientImpl, 8> kAllClients = {
    ClientImpl::kAioquic, ClientImpl::kGoXNet, ClientImpl::kMvfst,  ClientImpl::kNeqo,
    ClientImpl::kNgtcp2,  ClientImpl::kPicoquic, ClientImpl::kQuicGo, ClientImpl::kQuiche,
};

std::string_view Name(ClientImpl impl);

/// go-x-net has no HTTP/3 support (§3).
bool SupportsHttp3(ClientImpl impl);

/// Default PTO from Table 4 (ms).
sim::Duration DefaultPto(ClientImpl impl);

/// Number of UDP datagrams of the second client flight (Table 4).
int SecondFlightDatagrams(ClientImpl impl);

/// Full connection configuration for a client implementation under the given
/// HTTP version (HTTP/1.1 enables the quiche-only quirks the paper observed
/// there).
quic::ConnectionConfig MakeClientConfig(ClientImpl impl, http::Version version);

}  // namespace quicer::clients
