#include "clients/profiles.h"

namespace quicer::clients {

std::string_view Name(ClientImpl impl) {
  switch (impl) {
    case ClientImpl::kAioquic: return "aioquic";
    case ClientImpl::kGoXNet: return "go-x-net";
    case ClientImpl::kMvfst: return "mvfst";
    case ClientImpl::kNeqo: return "neqo";
    case ClientImpl::kNgtcp2: return "ngtcp2";
    case ClientImpl::kPicoquic: return "picoquic";
    case ClientImpl::kQuicGo: return "quic-go";
    case ClientImpl::kQuiche: return "quiche";
  }
  return "?";
}

bool SupportsHttp3(ClientImpl impl) { return impl != ClientImpl::kGoXNet; }

sim::Duration DefaultPto(ClientImpl impl) {
  // Table 4, "Default PTO [ms]".
  switch (impl) {
    case ClientImpl::kAioquic: return sim::Millis(200);
    case ClientImpl::kGoXNet: return sim::Millis(999);
    case ClientImpl::kMvfst: return sim::Millis(100);
    case ClientImpl::kNeqo: return sim::Millis(300);
    case ClientImpl::kNgtcp2: return sim::Millis(300);
    case ClientImpl::kPicoquic: return sim::Millis(250);
    case ClientImpl::kQuicGo: return sim::Millis(200);
    case ClientImpl::kQuiche: return sim::Millis(999);
  }
  return sim::Millis(999);
}

int SecondFlightDatagrams(ClientImpl impl) {
  // Table 4, "Second flight datagram(s)": indices 2..n+1 after the CH.
  switch (impl) {
    case ClientImpl::kAioquic: return 3;
    case ClientImpl::kGoXNet: return 3;
    case ClientImpl::kMvfst: return 3;
    case ClientImpl::kNeqo: return 2;
    case ClientImpl::kNgtcp2: return 3;
    case ClientImpl::kPicoquic: return 4;
    case ClientImpl::kQuicGo: return 3;
    case ClientImpl::kQuiche: return 1;
  }
  return 3;
}

quic::ConnectionConfig MakeClientConfig(ClientImpl impl, http::Version version) {
  quic::ConnectionConfig config;
  config.http_version = version;
  config.pto.default_pto = DefaultPto(impl);
  config.second_flight_datagrams = SecondFlightDatagrams(impl);

  switch (impl) {
    case ClientImpl::kAioquic:
      // Appendix E: aioquic computes the RTT variance differently.
      config.rttvar_formula = recovery::RttVarFormula::kAioquicLegacy;
      config.processing_delay = sim::Millis(0.5);
      config.flow_update_interval_bytes = 16 * 1024;
      config.trace.metrics_exposure = 1.0;
      break;
    case ClientImpl::kGoXNet:
      // §4.1: "go-x-net introduces high variations in individual
      // measurements (median 0.1 ms to 12.7 ms) and partly reports erroneous
      // values"; §4.1: smoothed RTT sometimes initialised at 90 ms.
      config.processing_delay = sim::Millis(0.1);
      config.processing_jitter = sim::Millis(12.6);
      config.wrong_first_srtt = sim::Millis(90);
      config.wrong_first_srtt_probability = 0.4;
      config.flow_update_interval_bytes = 8 * 1024;
      config.trace.metrics_exposure = 1.0;
      break;
    case ClientImpl::kMvfst:
      // §4.1: receiving an instant ACK does not trigger probe packets.
      config.rearm_pto_on_empty_inflight = false;
      config.processing_delay = sim::Millis(1.5);
      config.flow_update_interval_bytes = 24 * 1024;
      config.trace.metrics_exposure = 1.0;
      config.trace.logs_rttvar = false;  // Appendix E
      break;
    case ClientImpl::kNeqo:
      config.processing_delay = sim::Millis(0.3);
      config.flow_update_interval_bytes = 48 * 1024;
      config.trace.metrics_exposure = 0.35;  // Appendix E: fewer updates
      config.trace.logs_rttvar = false;
      break;
    case ClientImpl::kNgtcp2:
      config.processing_delay = sim::Millis(0.3);
      config.flow_update_interval_bytes = 32 * 1024;
      config.trace.metrics_exposure = 0.5;
      break;
    case ClientImpl::kPicoquic:
      // §4.2: picoquic ignores the lower RTT induced by IACK and does not
      // probe in response to an instant ACK; it also never coalesces ACKs.
      config.use_initial_space_rtt_samples = false;
      config.rearm_pto_on_empty_inflight = false;
      config.coalesce_acks = false;
      config.processing_delay = sim::Millis(0.4);
      config.flow_update_interval_bytes = 64 * 1024;
      config.trace.metrics_exposure = 0.3;
      config.trace.logs_rttvar = false;
      break;
    case ClientImpl::kQuicGo:
      config.processing_delay = sim::Millis(0.5);
      config.flow_update_interval_bytes = 32 * 1024;
      config.trace.metrics_exposure = 0.4;
      break;
    case ClientImpl::kQuiche:
      // Table 4: the whole second flight in one datagram (ACKs deferred).
      config.defer_acks_until_flight = true;
      config.processing_delay = sim::Millis(0.8);
      config.flow_update_interval_bytes = 5 * 1024;
      config.trace.metrics_exposure = 1.0;
      if (version == http::Version::kHttp1) {
        // §4.1: drops replies to PING frames together with coalesced
        // packets; §4.2: aborts when the same CID is retired twice. Neither
        // was encountered in the paper's HTTP/3 measurements.
        config.drop_coalesced_ping_reply = true;
        config.abort_on_duplicate_cid_retirement = true;
      }
      break;
  }
  return config;
}

}  // namespace quicer::clients
