// Server implementation ACK Delay profiles (Table 3, Appendix D).
//
// The paper verifies, across the 14+2 server implementations of the public
// QUIC Interop Runner, what value each reports in the ACK Delay field of its
// first Initial- and Handshake-space acknowledgments. These values decide
// whether "ACK Delay" could substitute for instant ACK (it cannot: many
// servers report 0, and PTO initialisation ignores the field anyway).
#pragma once

#include <array>
#include <optional>
#include <string_view>

#include "quic/ack_manager.h"
#include "sim/time.h"

namespace quicer::clients {

enum class ServerImpl {
  kAioquic,
  kGoXNet,
  kHaproxy,
  kKwik,
  kLsquic,
  kMsquic,
  kMvfst,
  kNeqo,
  kNginx,
  kNgtcp2,
  kPicoquic,
  kQuicGo,
  kQuiche,
  kQuinn,
  kS2nQuic,
  kXquic,
};

inline constexpr std::array<ServerImpl, 16> kAllServers = {
    ServerImpl::kAioquic, ServerImpl::kGoXNet,  ServerImpl::kHaproxy, ServerImpl::kKwik,
    ServerImpl::kLsquic,  ServerImpl::kMsquic,  ServerImpl::kMvfst,   ServerImpl::kNeqo,
    ServerImpl::kNginx,   ServerImpl::kNgtcp2,  ServerImpl::kPicoquic, ServerImpl::kQuicGo,
    ServerImpl::kQuiche,  ServerImpl::kQuinn,   ServerImpl::kS2nQuic, ServerImpl::kXquic,
};

/// What a server reports in the ACK Delay field of its first ACKs.
struct ServerAckDelayProfile {
  ServerImpl impl;
  std::string_view name;
  /// Reported delay of the first Initial-space ACK; nullopt when the server
  /// sends no Initial ACK at all (msquic).
  std::optional<sim::Duration> initial_ack_delay;
  /// Same for the Handshake space; most servers send none.
  std::optional<sim::Duration> handshake_ack_delay;
};

const ServerAckDelayProfile& GetServerAckDelayProfile(ServerImpl impl);

std::string_view Name(ServerImpl impl);

/// Ack-delay report mode implied by the profile (zero vs. actual/fixed),
/// usable to configure an emulated server's AckPolicy.
quic::AckPolicy MakeAckPolicy(ServerImpl impl);

}  // namespace quicer::clients
