// Fixed-bin histogram used for latency distributions in reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace quicer::stats {

/// Linear-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin so no sample is silently discarded.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double value);

  /// Folds `other` into this histogram. With identical geometry (lo, hi,
  /// bin count) the per-bin counts add exactly — the sweep-merge case of two
  /// shards binning the same range. Otherwise each of other's non-empty bins
  /// is remapped by its center (clamped into [lo, hi) like Add), so the
  /// total is preserved and any error is bounded by the two bin widths.
  void Merge(const Histogram& other);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }

  /// Midpoint of a bin (for plotting).
  double BinCenter(std::size_t bin) const;

  /// Lower edge of a bin.
  double BinLow(std::size_t bin) const;

  /// Renders a fixed-width ASCII bar chart, one row per non-empty bin.
  std::string Render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace quicer::stats
