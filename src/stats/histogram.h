// Fixed-bin histogram used for latency distributions in reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace quicer::stats {

/// Linear-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin so no sample is silently discarded.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double value);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }

  /// Midpoint of a bin (for plotting).
  double BinCenter(std::size_t bin) const;

  /// Lower edge of a bin.
  double BinLow(std::size_t bin) const;

  /// Renders a fixed-width ASCII bar chart, one row per non-empty bin.
  std::string Render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace quicer::stats
