#include "stats/accumulator.h"

#include <algorithm>
#include <cmath>

namespace quicer::stats {

Accumulator::Accumulator(std::size_t reservoir_capacity)
    : capacity_(reservoir_capacity == 0 ? 1 : reservoir_capacity) {}

void Accumulator::Add(double x) {
  ++count_;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);

  if (!overflowed_) {
    if (reservoir_.size() < capacity_) {
      reservoir_.push_back(x);
      sorted_valid_ = false;
      return;
    }
    Overflow();
  }
  const double width = histo_hi_ - histo_lo_;
  std::size_t bin = 0;
  if (width > 0.0) {
    const double pos = (x - histo_lo_) / width * static_cast<double>(bins_.size());
    bin = pos <= 0.0 ? 0
                     : std::min(bins_.size() - 1, static_cast<std::size_t>(pos));
  }
  ++bins_[bin];
}

void Accumulator::Overflow() {
  overflowed_ = true;
  histo_lo_ = min_;
  histo_hi_ = max_ > min_ ? max_ : min_ + 1.0;
  bins_.assign(kHistogramBins, 0);
  const double width = histo_hi_ - histo_lo_;
  for (double v : reservoir_) {
    const double pos = (v - histo_lo_) / width * static_cast<double>(bins_.size());
    const std::size_t bin =
        pos <= 0.0 ? 0 : std::min(bins_.size() - 1, static_cast<std::size_t>(pos));
    ++bins_[bin];
  }
  reservoir_.clear();
  reservoir_.shrink_to_fit();
  sorted_.clear();
  sorted_.shrink_to_fit();
  sorted_valid_ = false;
}

void Accumulator::Merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (!other.overflowed_) {
    // Sequential replay: bit-identical to single-stream accumulation.
    for (double v : other.reservoir_) Add(v);
    return;
  }

  // `other` lost its samples to its histogram; combine moments (Chan) and
  // remap its bins. Force our own overflow first so both sides are in
  // histogram mode — Overflow() derives the bin range from *our* min/max,
  // which must happen before they absorb other's.
  if (!overflowed_) Overflow();
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;

  const double width = histo_hi_ - histo_lo_;
  for (std::size_t b = 0; b < other.bins_.size(); ++b) {
    if (other.bins_[b] == 0) continue;
    const double center = other.histo_lo_ + (static_cast<double>(b) + 0.5) *
                                                (other.histo_hi_ - other.histo_lo_) /
                                                static_cast<double>(other.bins_.size());
    std::size_t bin = 0;
    if (width > 0.0) {
      const double pos = (center - histo_lo_) / width * static_cast<double>(bins_.size());
      bin = pos <= 0.0 ? 0 : std::min(bins_.size() - 1, static_cast<std::size_t>(pos));
    }
    bins_[bin] += other.bins_[b];
  }
}

AccumulatorState Accumulator::state() const {
  AccumulatorState s;
  s.capacity = capacity_;
  s.overflowed = overflowed_;
  s.samples = reservoir_;
  s.count = count_;
  s.mean = mean_;
  s.m2 = m2_;
  s.min = min_;
  s.max = max_;
  s.histo_lo = histo_lo_;
  s.histo_hi = histo_hi_;
  s.bins = bins_;
  return s;
}

Accumulator Accumulator::FromState(const AccumulatorState& state) {
  Accumulator acc(state.capacity);
  if (!state.overflowed) {
    for (double v : state.samples) acc.Add(v);
    return acc;
  }
  acc.overflowed_ = true;
  acc.count_ = state.count;
  acc.mean_ = state.mean;
  acc.m2_ = state.m2;
  acc.min_ = state.min;
  acc.max_ = state.max;
  acc.histo_lo_ = state.histo_lo;
  acc.histo_hi_ = state.histo_hi;
  acc.bins_ = state.bins;
  if (acc.bins_.empty()) acc.bins_.assign(kHistogramBins, 0);
  return acc;
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  if (!overflowed_) {
    if (!sorted_valid_) {
      sorted_ = reservoir_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_valid_ = true;
    }
    // Same interpolation as stats::Percentile (numpy default), on the
    // cached sorted view.
    const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted_.size()) return sorted_.back();
    return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
  }

  // Histogram interpolation: find the bin containing the target rank and
  // interpolate linearly inside it.
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  const double bin_width =
      (histo_hi_ - histo_lo_) / static_cast<double>(bins_.size());
  double cumulative = 0.0;
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    const double in_bin = static_cast<double>(bins_[b]);
    if (in_bin == 0.0) continue;
    if (cumulative + in_bin > rank) {
      const double frac = (rank - cumulative) / in_bin;
      const double lo = histo_lo_ + static_cast<double>(b) * bin_width;
      return std::clamp(lo + frac * bin_width, min_, max_);
    }
    cumulative += in_bin;
  }
  return max_;
}

Summary Accumulator::Summarize() const {
  Summary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.min = min_;
  s.max = max_;
  s.p25 = Percentile(25.0);
  s.median = Percentile(50.0);
  s.p75 = Percentile(75.0);
  s.mean = mean();
  s.stddev = stddev();
  return s;
}

}  // namespace quicer::stats
