#include "stats/histogram.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace quicer::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::Add(double value) {
  std::ptrdiff_t bin = static_cast<std::ptrdiff_t>((value - lo_) / bin_width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::Merge(const Histogram& other) {
  if (other.lo_ == lo_ && other.hi_ == hi_ && other.counts_.size() == counts_.size()) {
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    return;
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    if (other.counts_[i] == 0) continue;
    std::ptrdiff_t bin = static_cast<std::ptrdiff_t>((other.BinCenter(i) - lo_) / bin_width_);
    bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    counts_[static_cast<std::size_t>(bin)] += other.counts_[i];
    total_ += other.counts_[i];
  }
}

double Histogram::BinCenter(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * bin_width_;
}

double Histogram::BinLow(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * bin_width_;
}

std::string Histogram::Render(std::size_t width) const {
  std::uint64_t max_count = 0;
  for (std::uint64_t c : counts_) max_count = std::max(max_count, c);
  if (max_count == 0) return "(empty histogram)\n";

  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::size_t bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) / static_cast<double>(max_count) *
                                 static_cast<double>(width));
    std::snprintf(line, sizeof(line), "%10.3f | %-*s %llu\n", BinLow(i), static_cast<int>(width),
                  std::string(bar, '#').c_str(),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

}  // namespace quicer::stats
