#include "stats/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sim/rng.h"

namespace quicer::stats {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  if (p <= 0.0) return *std::min_element(values.begin(), values.end());
  if (p >= 100.0) return *std::max_element(values.begin(), values.end());
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double Median(std::vector<double> values) { return Percentile(std::move(values), 50.0); }

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double Min(const std::vector<double>& values) {
  return values.empty() ? 0.0 : *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  return values.empty() ? 0.0 : *std::max_element(values.begin(), values.end());
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = Min(values);
  s.max = Max(values);
  s.p25 = Percentile(values, 25.0);
  s.median = Percentile(values, 50.0);
  s.p75 = Percentile(values, 75.0);
  s.mean = Mean(values);
  s.stddev = StdDev(values);
  return s;
}

Interval BootstrapMedianCI(const std::vector<double>& values, double confidence,
                           int resamples, std::uint64_t seed) {
  Interval interval;
  if (values.empty()) return interval;
  if (values.size() == 1) {
    interval.lo = interval.hi = values[0];
    return interval;
  }
  sim::Rng rng(seed);
  std::vector<double> medians;
  medians.reserve(static_cast<std::size_t>(resamples));
  std::vector<double> sample(values.size());
  for (int r = 0; r < resamples; ++r) {
    for (double& v : sample) {
      v = values[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(values.size()) - 1))];
    }
    medians.push_back(Median(sample));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  interval.lo = Percentile(medians, alpha * 100.0);
  interval.hi = Percentile(std::move(medians), (1.0 - alpha) * 100.0);
  return interval;
}

Cdf::Cdf(std::vector<double> values) : sorted_(std::move(values)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::At(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Cdf::Quantile(double q) const {
  if (sorted_.empty()) return 0.0;
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  const std::size_t index =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(sorted_.size()))) - 1;
  return sorted_[std::min(index, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> Cdf::SampleLogX(double lo, double hi,
                                                       std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (points < 2 || lo <= 0.0 || hi <= lo) return out;
  out.reserve(points);
  const double log_lo = std::log10(lo);
  const double log_hi = std::log10(hi);
  for (std::size_t i = 0; i < points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points - 1);
    const double x = std::pow(10.0, log_lo + frac * (log_hi - log_lo));
    out.emplace_back(x, At(x));
  }
  return out;
}

void Running::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Running::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Running::stddev() const { return std::sqrt(variance()); }

}  // namespace quicer::stats
