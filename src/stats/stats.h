// Descriptive statistics used by the benchmark harness and the scan study.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace quicer::stats {

/// Median of `values` (linear interpolation between the two middle elements
/// for even sizes). Returns 0 for an empty input.
double Median(std::vector<double> values);

/// p-th percentile (p in [0,100]) with linear interpolation, matching
/// numpy.percentile's default. Returns 0 for an empty input.
double Percentile(std::vector<double> values, double p);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double StdDev(const std::vector<double>& values);

double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);

/// Five-number-style summary for report rows.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

Summary Summarize(const std::vector<double>& values);

/// Bootstrap confidence interval for the median (percentile bootstrap with
/// `resamples` draws; deterministic in `seed`). Returns {lo, hi} at the
/// given confidence level — the percentile bands of Fig 9/15.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

Interval BootstrapMedianCI(const std::vector<double>& values, double confidence = 0.9,
                           int resamples = 500, std::uint64_t seed = 1);

/// Empirical CDF: sorted (value, cumulative probability) points.
class Cdf {
 public:
  explicit Cdf(std::vector<double> values);

  /// P(X <= x).
  double At(double x) const;

  /// Smallest value v with P(X <= v) >= q, q in (0, 1].
  double Quantile(double q) const;

  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  /// Evaluates the CDF at `points` x-locations, equally spaced in log10 space
  /// between lo and hi (both > 0); used for the paper's log-x CDF figures.
  std::vector<std::pair<double, double>> SampleLogX(double lo, double hi,
                                                    std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Running mean/variance accumulator (Welford) for streaming statistics.
class Running {
 public:
  void Add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace quicer::stats
