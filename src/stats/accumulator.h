// Streaming per-point statistics accumulator for the sweep engine.
//
// A sweep aggregates each grid point's repetitions into count / min / max /
// mean / stddev / percentiles without retaining every sample of the whole
// grid. Moments use Welford's algorithm. Percentiles come from a bounded
// reservoir: exact while the sample count stays within the reservoir
// capacity (every bench today runs 9-100 repetitions per point, far below
// the default 4096), and estimated from a fixed-bin histogram built over the
// observed range once the reservoir overflows — memory stays O(capacity)
// regardless of how many repetitions a point runs.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/stats.h"

namespace quicer::stats {

/// The complete internal state of an Accumulator, exposed so sweep partials
/// can serialise a per-point accumulator and rebuild it bit-identically in a
/// merge process. While `overflowed` is false only `samples` matters (the
/// moments are replayed); afterwards the moments and histogram are restored
/// verbatim.
struct AccumulatorState {
  std::size_t capacity = 0;
  bool overflowed = false;
  /// Retained samples in insertion order (exact mode only).
  std::vector<double> samples;
  // Overflow-mode fields.
  std::size_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;
  double histo_lo = 0.0;
  double histo_hi = 0.0;
  std::vector<std::size_t> bins;
};

class Accumulator {
 public:
  static constexpr std::size_t kDefaultReservoirCapacity = 4096;
  static constexpr std::size_t kHistogramBins = 512;

  explicit Accumulator(std::size_t reservoir_capacity = kDefaultReservoirCapacity);

  void Add(double x);

  /// Folds `other` into this accumulator, as if other's samples had been
  /// added after this one's. Equivalence with single-stream accumulation:
  ///  * count / min / max — always exact;
  ///  * while `other.exact()`, its retained samples are replayed through
  ///    Add, so *every* statistic (moments, percentiles, retained samples)
  ///    is bit-identical to the single-stream result — the case the sweep
  ///    merge relies on for byte-identical exports;
  ///  * once `other` has overflowed, mean/variance combine by Chan's
  ///    parallel formulas (exact up to floating-point rounding) and other's
  ///    histogram bins are remapped into this histogram by bin center —
  ///    percentile error is bounded by the bin widths involved plus any
  ///    clamping into this histogram's [lo, hi] range.
  void Merge(const Accumulator& other);

  /// Snapshot / restore for the sweep partial-result files. Restoring a
  /// snapshot reproduces the accumulator bit-identically: exact-mode
  /// snapshots replay their samples in insertion order, overflowed ones
  /// restore the moments and histogram verbatim.
  AccumulatorState state() const;
  static Accumulator FromState(const AccumulatorState& state);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 values.
  double variance() const;
  double stddev() const;

  /// p in [0, 100]. Exact (numpy-style linear interpolation, identical to
  /// stats::Percentile) while exact(); histogram-interpolated afterwards.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// True while every added sample is still retained, i.e. percentiles are
  /// exact and samples() returns the full input.
  bool exact() const { return !overflowed_; }

  /// The retained samples, in insertion order (all of them while exact();
  /// empty after overflow). Feeds the ASCII scatter strips.
  const std::vector<double>& samples() const { return reservoir_; }

  /// Five-number summary in the stats::Summary shape used by report rows.
  Summary Summarize() const;

 private:
  void Overflow();

  std::size_t capacity_;
  std::vector<double> reservoir_;
  bool overflowed_ = false;
  // Sorted view of reservoir_, rebuilt lazily: percentile queries come in
  // bursts (Summarize + CSV + JSON per point) and must not re-sort each
  // time. Invalidated by Add.
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;

  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;

  // Histogram mode (after overflow): fixed bins over [histo_lo_, histo_hi_],
  // out-of-range values clamp into the edge bins (min_/max_ stay exact).
  std::vector<std::size_t> bins_;
  double histo_lo_ = 0.0;
  double histo_hi_ = 0.0;
};

}  // namespace quicer::stats
