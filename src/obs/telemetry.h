// Cross-layer runtime telemetry: a static registry of named counters.
//
// The engine's hot layers (event queue, packet pools, netem queues, loss
// recovery, the sweep pipeline) bump process-wide counters through this
// registry so a run can report *why* it was fast or slow — events executed,
// pool hit rates, queue drops by cause, PTO fires, per-phase wall time —
// without perturbing the run itself.
//
// Overhead contract:
//  * Disabled (the default), every instrumentation site is a single branch
//    on a trivially-initialised thread-local pointer — no TLS init guard, no
//    atomic, no call. Benchmarks compiled with telemetry in pay one
//    predictable not-taken branch per site.
//  * Enabled, a site is that branch plus one add into a fixed-size
//    per-thread array. No allocation ever happens on a counting path; the
//    per-thread registry is allocated once, on the first EnsureThisThread()
//    after enabling, and owned by a process-wide list (so snapshots survive
//    thread exit). The steady-state zero-allocation guarantee of
//    tests/core/run_context_alloc_test.cc holds with telemetry enabled.
//  * Counting never draws randomness and never reorders events, so enabling
//    telemetry cannot change any exported byte.
//
// Aggregation: Snapshot() folds every thread's registry — kSum counters add,
// kMax counters (high-water marks) take the maximum. ResetAll() zeroes all
// registries; the sweep engine brackets each sweep with ResetAll/Snapshot to
// attribute counts per (bench, sweep).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace quicer::obs {

/// Every counter the registry knows. Directional netem counters come in
/// up/down pairs at adjacent values so call sites can offset by direction.
enum Counter : std::size_t {
  // sim::EventQueue
  kEventsScheduled = 0,  // ScheduleImpl calls
  kEventsCancelled,      // live handles cancelled
  kEventsRun,            // callbacks executed
  kEventsWheel,          // entries stored in a wheel bucket (or the ready run)
  kEventsOverflow,       // entries spilled to the overflow heap
  // quic::pool — per pooled container kind: acquires, acquires served from
  // the free list (hits), releases, and the free list's high-water depth.
  kPoolFrameAcquire,
  kPoolFrameHit,
  kPoolFrameRelease,
  kPoolFrameHighWater,
  kPoolPacketAcquire,
  kPoolPacketHit,
  kPoolPacketRelease,
  kPoolPacketHighWater,
  kPoolPnRangeAcquire,
  kPoolPnRangeHit,
  kPoolPnRangeRelease,
  kPoolPnRangeHighWater,
  // netem / link, per direction (Up = client->server). kNetemEnqueued counts
  // datagrams offered to the line (busy clock or FIFO) after loss models.
  kNetemEnqueuedUp,
  kNetemEnqueuedDown,
  kNetemDropPatternUp,
  kNetemDropPatternDown,
  kNetemDropStochasticUp,
  kNetemDropStochasticDown,
  kNetemDropQueueUp,
  kNetemDropQueueDown,
  kNetemMaxQueuePktsUp,
  kNetemMaxQueuePktsDown,
  kNetemMaxQueueBytesUp,
  kNetemMaxQueueBytesDown,
  // recovery
  kRecoveryPtoFired,          // PTO expiries (probes sent)
  kRecoveryLossDetectionRuns, // DetectLossInto passes (ack- and timer-driven)
  kRecoveryPacketsLost,       // packets declared lost
  kRecoveryLossTimerUpdates,  // SetLossDetectionTimer recomputations
  // sweep pipeline phase timers (wall microseconds)
  kSweepEnumerateMicros,
  kSweepExecuteMicros,
  kSweepMergeMicros,

  kCounterCount
};

/// How a counter folds across threads (Snapshot) and across partial results
/// (telemetry merge).
enum class MergeMode { kSum, kMax };

struct CounterDesc {
  const char* name;  // stable dotted name, e.g. "sim.events_run"
  MergeMode merge;
};

/// Descriptor of one counter; `Descriptors()` lists all kCounterCount in
/// enum order.
const CounterDesc& Describe(Counter counter);
const std::array<CounterDesc, kCounterCount>& Descriptors();

/// Merge mode of a counter *name* — kSum for names the registry does not
/// know (forward compatibility with reports from newer binaries).
MergeMode MergeModeForName(std::string_view name);

/// One thread's counter block. Each thread bumps only its own registry, but
/// Snapshot()/ResetAll() read and zero every registry cross-thread, so the
/// cells are relaxed atomics: the owning thread's read-modify-write compiles
/// to the same unguarded add as a plain uint64 (no lock prefix — only this
/// thread writes), while cross-thread snapshots are race-free even if a
/// future caller reads mid-sweep instead of behind ParallelFor's completion
/// edge the way RunSweep's end-of-sweep snapshot does.
struct Registry {
  std::array<std::atomic<std::uint64_t>, kCounterCount> values{};
};

namespace detail {
// The single-branch disabled path: trivially (zero-) initialised so access
// compiles to a raw TLS load — no per-access init guard.
extern thread_local Registry* tls_registry;
}  // namespace detail

/// True after EnableProcess(); checked by coarse-grained code (the sweep
/// engine) to decide whether to enable worker threads and snapshot.
bool ProcessEnabled();

/// Turns telemetry on for the process and enables the calling thread.
/// Sticky — there is no disable (tests and tools enable once up front).
void EnableProcess();

/// Ensures the calling thread has a registered registry when the process
/// has telemetry enabled (no-op otherwise). Called once per sweep job, not
/// per counter bump.
void EnsureThisThread();

/// True when the calling thread is recording.
inline bool Enabled() { return detail::tls_registry != nullptr; }

/// Adds `n` to a kSum counter. The disabled path is one branch; enabled,
/// the relaxed load/store pair is a plain add (single-writer cell).
inline void Count(Counter counter, std::uint64_t n = 1) {
  if (Registry* r = detail::tls_registry) {
    std::atomic<std::uint64_t>& cell = r->values[counter];
    cell.store(cell.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }
}

/// Raises a kMax (high-water) counter to at least `v`.
inline void CountMax(Counter counter, std::uint64_t v) {
  if (Registry* r = detail::tls_registry) {
    std::atomic<std::uint64_t>& cell = r->values[counter];
    if (v > cell.load(std::memory_order_relaxed)) {
      cell.store(v, std::memory_order_relaxed);
    }
  }
}

/// Cross-thread fold of every registered registry (sum / max per counter).
std::array<std::uint64_t, kCounterCount> Snapshot();

/// Zeroes every registered registry (between sweeps; sweeps never overlap).
void ResetAll();

/// Per-(bench, sweep) telemetry record, assembled by the sweep engine and
/// drained by bench_suite into the --telemetry report.
struct SweepRecord {
  std::string bench;   // current bench label (may be empty for merge/collect)
  std::string sweep;   // SweepSpec::name
  double wall_seconds = 0.0;
  std::uint64_t executed_runs = 0;
  /// (name, value) pairs, non-zero counters only, in enum order; merged
  /// reports may append names this binary does not know.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Label stamped on SweepRecords the engine appends (bench_suite sets it
/// before running each bench; empty outside a bench).
void SetCurrentBench(std::string bench);
const std::string& CurrentBench();

/// Appends a record to the process-wide report; TakeSweepRecords drains it.
void AppendSweepRecord(SweepRecord record);
std::vector<SweepRecord> TakeSweepRecords();

/// Looks up `name` among counters of `record`; 0 when absent.
std::uint64_t RecordCounter(const SweepRecord& record, std::string_view name);

/// Serialises records as the telemetry report document
/// ("quicer-telemetry-v1"): per record wall time, executed runs, derived
/// events/sec, and the raw counters object.
std::string TelemetryReportJson(const std::vector<SweepRecord>& records);

}  // namespace quicer::obs
