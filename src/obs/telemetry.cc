#include "obs/telemetry.h"

#include <atomic>
#include <memory>
#include <mutex>

#include "core/json.h"

namespace quicer::obs {

namespace detail {
thread_local Registry* tls_registry = nullptr;
}  // namespace detail

namespace {

constexpr std::array<CounterDesc, kCounterCount> kDescriptors = {{
    {"sim.events_scheduled", MergeMode::kSum},
    {"sim.events_cancelled", MergeMode::kSum},
    {"sim.events_run", MergeMode::kSum},
    {"sim.events_wheel", MergeMode::kSum},
    {"sim.events_overflow", MergeMode::kSum},
    {"quic.pool.frame_acquire", MergeMode::kSum},
    {"quic.pool.frame_hit", MergeMode::kSum},
    {"quic.pool.frame_release", MergeMode::kSum},
    {"quic.pool.frame_highwater", MergeMode::kMax},
    {"quic.pool.packet_acquire", MergeMode::kSum},
    {"quic.pool.packet_hit", MergeMode::kSum},
    {"quic.pool.packet_release", MergeMode::kSum},
    {"quic.pool.packet_highwater", MergeMode::kMax},
    {"quic.pool.pnrange_acquire", MergeMode::kSum},
    {"quic.pool.pnrange_hit", MergeMode::kSum},
    {"quic.pool.pnrange_release", MergeMode::kSum},
    {"quic.pool.pnrange_highwater", MergeMode::kMax},
    {"netem.up.enqueued", MergeMode::kSum},
    {"netem.down.enqueued", MergeMode::kSum},
    {"netem.up.drop_pattern", MergeMode::kSum},
    {"netem.down.drop_pattern", MergeMode::kSum},
    {"netem.up.drop_stochastic", MergeMode::kSum},
    {"netem.down.drop_stochastic", MergeMode::kSum},
    {"netem.up.drop_queue", MergeMode::kSum},
    {"netem.down.drop_queue", MergeMode::kSum},
    {"netem.up.max_queue_pkts", MergeMode::kMax},
    {"netem.down.max_queue_pkts", MergeMode::kMax},
    {"netem.up.max_queue_bytes", MergeMode::kMax},
    {"netem.down.max_queue_bytes", MergeMode::kMax},
    {"recovery.pto_fired", MergeMode::kSum},
    {"recovery.loss_detection_runs", MergeMode::kSum},
    {"recovery.packets_lost", MergeMode::kSum},
    {"recovery.loss_timer_updates", MergeMode::kSum},
    {"sweep.enumerate_micros", MergeMode::kSum},
    {"sweep.execute_micros", MergeMode::kSum},
    {"sweep.merge_micros", MergeMode::kSum},
}};

// Registries are owned here and never freed: a thread that exits leaves its
// counts readable for the end-of-sweep snapshot, and tls_registry can never
// dangle into Snapshot/ResetAll.
struct Global {
  std::atomic<bool> enabled{false};
  std::mutex mu;
  std::vector<std::unique_ptr<Registry>> registries;
  std::string current_bench;
  std::vector<SweepRecord> records;
};

Global& G() {
  static Global* g = new Global();  // leaked: outlives exiting threads
  return *g;
}

}  // namespace

const CounterDesc& Describe(Counter counter) { return kDescriptors[counter]; }

const std::array<CounterDesc, kCounterCount>& Descriptors() {
  return kDescriptors;
}

MergeMode MergeModeForName(std::string_view name) {
  for (const CounterDesc& d : kDescriptors) {
    if (name == d.name) return d.merge;
  }
  return MergeMode::kSum;
}

bool ProcessEnabled() { return G().enabled.load(std::memory_order_relaxed); }

void EnableProcess() {
  G().enabled.store(true, std::memory_order_relaxed);
  EnsureThisThread();
}

void EnsureThisThread() {
  if (detail::tls_registry != nullptr || !ProcessEnabled()) return;
  auto registry = std::make_unique<Registry>();
  detail::tls_registry = registry.get();
  std::lock_guard<std::mutex> lock(G().mu);
  G().registries.push_back(std::move(registry));
}

std::array<std::uint64_t, kCounterCount> Snapshot() {
  std::array<std::uint64_t, kCounterCount> out{};
  std::lock_guard<std::mutex> lock(G().mu);
  for (const auto& registry : G().registries) {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      const std::uint64_t v = registry->values[i].load(std::memory_order_relaxed);
      if (kDescriptors[i].merge == MergeMode::kMax) {
        if (v > out[i]) out[i] = v;
      } else {
        out[i] += v;
      }
    }
  }
  return out;
}

void ResetAll() {
  std::lock_guard<std::mutex> lock(G().mu);
  for (const auto& registry : G().registries) {
    for (auto& cell : registry->values) cell.store(0, std::memory_order_relaxed);
  }
}

void SetCurrentBench(std::string bench) {
  std::lock_guard<std::mutex> lock(G().mu);
  G().current_bench = std::move(bench);
}

const std::string& CurrentBench() {
  // Callers (the sweep engine, single-threaded between sweeps) read this
  // only from the thread that sets it; the lock in SetCurrentBench covers
  // the record list instead.
  return G().current_bench;
}

void AppendSweepRecord(SweepRecord record) {
  std::lock_guard<std::mutex> lock(G().mu);
  G().records.push_back(std::move(record));
}

std::vector<SweepRecord> TakeSweepRecords() {
  std::lock_guard<std::mutex> lock(G().mu);
  std::vector<SweepRecord> out = std::move(G().records);
  G().records.clear();
  return out;
}

std::uint64_t RecordCounter(const SweepRecord& record, std::string_view name) {
  for (const auto& [counter_name, value] : record.counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

std::string TelemetryReportJson(const std::vector<SweepRecord>& records) {
  std::string out;
  out += "{\n  \"format\": \"quicer-telemetry-v1\",\n  \"sweeps\": [";
  bool first_record = true;
  for (const SweepRecord& record : records) {
    out += first_record ? "\n" : ",\n";
    first_record = false;
    out += "    {\n";
    out += "      \"bench\": \"" + core::JsonEscape(record.bench) + "\",\n";
    out += "      \"sweep\": \"" + core::JsonEscape(record.sweep) + "\",\n";
    out += "      \"wall_seconds\": " + core::JsonNumber(record.wall_seconds) +
           ",\n";
    out += "      \"executed_runs\": " + std::to_string(record.executed_runs) +
           ",\n";
    double events_per_sec = 0.0;
    std::uint64_t events_run = RecordCounter(record, "sim.events_run");
    if (record.wall_seconds > 0.0) {
      events_per_sec = static_cast<double>(events_run) / record.wall_seconds;
    }
    out += "      \"events_per_sec\": " + core::JsonNumber(events_per_sec) +
           ",\n";
    out += "      \"counters\": {";
    bool first_counter = true;
    for (const auto& [name, value] : record.counters) {
      out += first_counter ? "\n" : ",\n";
      first_counter = false;
      out += "        \"" + core::JsonEscape(name) +
             "\": " + std::to_string(value);
    }
    out += first_counter ? "}" : "\n      }";
    out += "\n    }";
  }
  out += first_record ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

}  // namespace quicer::obs
