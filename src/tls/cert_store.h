// Certificate store model.
//
// In the CDN deployments the paper studies (Fig 1), the frontend server must
// fetch the customer's TLS certificate from a backend certificate store
// before it can send the ServerHello flight. The fetch delay Δt is the core
// parameter of the whole study. A cached certificate resolves (nearly)
// immediately — this is what the paper observes for popular Cloudflare
// domains, which receive *coalesced* ACK+ServerHello.
#pragma once

#include <cstddef>
#include <functional>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace quicer::tls {

/// Asynchronous certificate provider with a configurable fetch delay.
class CertStore {
 public:
  struct Config {
    /// Backend fetch delay Δt (frontend -> certificate store -> frontend).
    sim::Duration fetch_delay = 0;
    /// Jitter standard deviation applied to the fetch delay (normal, >= 0
    /// after clamping).
    sim::Duration fetch_jitter = 0;
    /// Certificate chain size in bytes as it appears in the CRYPTO stream.
    std::size_t certificate_bytes = 1212;
    /// When true, the certificate is already present on the frontend: the
    /// fetch resolves with zero delay regardless of `fetch_delay`.
    bool cached = false;
  };

  struct Result {
    std::size_t certificate_bytes = 0;
    /// The actual delay this fetch took (after jitter/caching).
    sim::Duration delay = 0;
  };

  CertStore(sim::EventQueue& queue, Config config, sim::Rng rng);

  /// Rewinds to freshly-constructed state for context reuse between
  /// repetitions (new config, re-forked rng, fetch counter cleared).
  void Reset(Config config, sim::Rng rng);

  /// Requests the certificate; `done` runs when it is available.
  void Fetch(std::function<void(const Result&)> done);

  const Config& config() const { return config_; }

  /// Number of fetches issued (frontends re-fetch per connection unless
  /// caching is modelled).
  std::uint64_t fetch_count() const { return fetch_count_; }

 private:
  sim::EventQueue& queue_;
  Config config_;
  sim::Rng rng_;
  std::uint64_t fetch_count_ = 0;
};

}  // namespace quicer::tls
