#include "tls/cert_store.h"

#include <algorithm>
#include <utility>

namespace quicer::tls {

CertStore::CertStore(sim::EventQueue& queue, Config config, sim::Rng rng)
    : queue_(queue), config_(config), rng_(rng) {}

void CertStore::Reset(Config config, sim::Rng rng) {
  config_ = config;
  rng_ = rng;
  fetch_count_ = 0;
}

void CertStore::Fetch(std::function<void(const Result&)> done) {
  ++fetch_count_;
  sim::Duration delay = 0;
  if (!config_.cached) {
    delay = config_.fetch_delay;
    if (config_.fetch_jitter > 0) {
      const double jittered = rng_.Normal(static_cast<double>(delay),
                                          static_cast<double>(config_.fetch_jitter));
      delay = std::max<sim::Duration>(0, static_cast<sim::Duration>(jittered));
    }
  }
  Result result;
  result.certificate_bytes = config_.certificate_bytes;
  result.delay = delay;
  queue_.Schedule(delay, [done = std::move(done), result] { done(result); });
}

}  // namespace quicer::tls
