#include "tls/messages.h"

#include <cmath>

namespace quicer::tls {

std::string_view ToString(MessageType type) {
  switch (type) {
    case MessageType::kClientHello: return "ClientHello";
    case MessageType::kServerHello: return "ServerHello";
    case MessageType::kEncryptedExtensions: return "EncryptedExtensions";
    case MessageType::kCertificate: return "Certificate";
    case MessageType::kCertificateVerify: return "CertificateVerify";
    case MessageType::kFinished: return "Finished";
  }
  return "?";
}

std::size_t HandshakeSizes::SizeOf(MessageType type) const {
  switch (type) {
    case MessageType::kClientHello: return client_hello;
    case MessageType::kServerHello: return server_hello;
    case MessageType::kEncryptedExtensions: return encrypted_extensions;
    case MessageType::kCertificate: return certificate;
    case MessageType::kCertificateVerify: return certificate_verify;
    case MessageType::kFinished: return finished;
  }
  return 0;
}

sim::Duration SigningModel::Sample(sim::Rng& rng) const {
  if (sigma <= 0.0 || median <= 0) return median;
  const double mu = std::log(static_cast<double>(median));
  const double value = rng.LogNormal(mu, sigma);
  return static_cast<sim::Duration>(value);
}

}  // namespace quicer::tls
