// Size-accurate TLS 1.3 handshake message emulation.
//
// The experiments never need cryptographic content — only (a) how many bytes
// each handshake message contributes to CRYPTO frames (which determines
// whether the first server flight exceeds the QUIC anti-amplification limit)
// and (b) how long the server takes to produce them (certificate fetch delay
// Δt plus signing time). Sizes follow the paper's setup: a 1,212 B
// certificate chain that permits a 1-RTT handshake and a 5,113 B chain that
// exceeds the amplification limit.
#pragma once

#include <cstddef>
#include <string_view>

#include "sim/rng.h"
#include "sim/time.h"

namespace quicer::tls {

/// TLS handshake messages carried in QUIC CRYPTO frames.
enum class MessageType {
  kClientHello,
  kServerHello,
  kEncryptedExtensions,
  kCertificate,
  kCertificateVerify,
  kFinished,
};

std::string_view ToString(MessageType type);

/// Certificate chain used by the paper's server that fits within the
/// amplification budget of a single padded client Initial.
inline constexpr std::size_t kSmallCertificateBytes = 1212;

/// Certificate chain used by the paper's server that exceeds the
/// anti-amplification limit (3 x 1200 B).
inline constexpr std::size_t kLargeCertificateBytes = 5113;

/// Byte sizes of the handshake messages as they appear in CRYPTO frames.
struct HandshakeSizes {
  std::size_t client_hello = 280;
  std::size_t server_hello = 123;
  std::size_t encrypted_extensions = 98;
  std::size_t certificate = kSmallCertificateBytes;
  std::size_t certificate_verify = 304;  // ~ECDSA P-256 sig + transcript framing
  std::size_t finished = 36;

  std::size_t SizeOf(MessageType type) const;

  /// Total CRYPTO bytes the server must deliver in its first flight
  /// (ServerHello .. Finished).
  std::size_t ServerFlightBytes() const {
    return server_hello + encrypted_extensions + certificate + certificate_verify + finished;
  }
};

/// Latency model for the server-side asymmetric signing operation — the
/// paper's profiling found signature calculation to be the single most
/// CPU-consuming function of the handshake (§4.1).
struct SigningModel {
  /// Median signing latency.
  sim::Duration median = sim::Millis(2.5);
  /// Log-normal sigma; 0 makes the delay deterministic.
  double sigma = 0.25;

  sim::Duration Sample(sim::Rng& rng) const;
};

}  // namespace quicer::tls
