// Collect phase of the distributed sweep queue: coverage verification and
// the final merge.
//
// Before touching any data, Collect proves the queue's results are exactly
// the planned grid: every unit present in the manifest has published its
// results directory, the units of each sweep tile every point's repetition
// range [0, repetitions) exactly once (no gap, no overlap), and each unit's
// partial file executed exactly the points the unit claimed. Only then are
// the partials merged — per sweep, ordered by repetition window so split
// points concatenate in repetition order — through core::MergeSweepResults
// into the same byte-identical CSV/JSON exports a single-process run
// writes.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "dist/work_queue.h"

namespace quicer::dist {

struct CollectReport {
  /// True when every unit had published results and coverage verified.
  bool complete = false;
  std::size_t units_total = 0;
  std::size_t units_with_results = 0;
  /// "u00012 [active (worker-3)]" — units without results, with the current
  /// location of their lease.
  std::vector<std::string> missing_units;
  /// First coverage / consistency / merge failure (empty when none).
  std::string error;
};

/// Verifies coverage and merges every sweep's partials into final exports
/// under `out_dir`. Returns true when the exports were written; on failure
/// `report` (optional) and `log` (optional) say what is missing or wrong.
/// When `telemetry_file` is non-empty, the telemetry blocks the workers'
/// partials carried are folded per sweep and written there as a
/// "quicer-telemetry-v1" report (bench labels come from the manifest's
/// sweep inventories). Sweeps whose partials carry no telemetry are simply
/// absent from the report.
bool Collect(const WorkQueue& queue, const std::string& out_dir,
             CollectReport* report = nullptr, std::FILE* log = nullptr,
             const std::string& telemetry_file = "");

}  // namespace quicer::dist
