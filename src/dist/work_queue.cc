#include "dist/work_queue.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <system_error>

#include "core/json.h"
#include "core/scenario.h"

namespace quicer::dist {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kManifestFormat = "quicer-dist-queue-v1";

std::string ManifestJson(const WorkQueue::Manifest& manifest) {
  std::string out = "{\n";
  out += "  \"format\": \"" + std::string(kManifestFormat) + "\",\n";
  out += "  \"scale\": " + std::to_string(manifest.scale) + ",\n";
  out += "  \"filters\": [";
  for (std::size_t i = 0; i < manifest.filters.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + core::JsonEscape(manifest.filters[i]) + "\"";
  }
  out += "],\n";
  out += "  \"max_runs_per_unit\": " + std::to_string(manifest.max_runs_per_unit) + ",\n";
  out += "  \"unit_count\": " + std::to_string(manifest.unit_count) + ",\n";
  if (!manifest.grid_file.empty()) {
    out += "  \"grid_file\": \"" + core::JsonEscape(manifest.grid_file) + "\",\n";
  }
  out += "  \"sweeps\": [\n";
  for (std::size_t i = 0; i < manifest.sweeps.size(); ++i) {
    const SweepInventory& sweep = manifest.sweeps[i];
    out += "    {\"bench\": \"" + core::JsonEscape(sweep.bench) + "\", \"sweep\": \"" +
           core::JsonEscape(sweep.sweep) +
           "\", \"points\": " + std::to_string(sweep.point_count) +
           ", \"repetitions\": " + std::to_string(sweep.repetitions);
    if (sweep.spec_hash != 0) {
      out += ", \"spec_hash\": \"" + core::ScenarioHashHex(sweep.spec_hash) + "\"";
    }
    out += "}";
    out += i + 1 < manifest.sweeps.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::optional<WorkQueue::Manifest> ParseManifestJson(std::string_view json,
                                                     std::string* error) {
  auto fail = [error](std::string message) -> std::optional<WorkQueue::Manifest> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  std::string parse_error;
  const std::optional<core::JsonValue> doc = core::JsonValue::Parse(json, &parse_error);
  if (!doc) return fail("invalid JSON: " + parse_error);
  if (doc->GetString("format") != kManifestFormat) {
    return fail("not a queue manifest (format '" + doc->GetString("format") + "')");
  }
  WorkQueue::Manifest manifest;
  manifest.scale = static_cast<int>(doc->GetNumber("scale", 1.0));
  if (const core::JsonValue* filters = doc->Get("filters")) {
    for (const core::JsonValue& filter : filters->Items()) {
      manifest.filters.push_back(filter.AsString());
    }
  }
  manifest.max_runs_per_unit =
      static_cast<std::size_t>(doc->GetNumber("max_runs_per_unit"));
  manifest.unit_count = static_cast<std::size_t>(doc->GetNumber("unit_count"));
  const core::JsonValue* sweeps = doc->Get("sweeps");
  if (sweeps == nullptr) return fail("manifest misses its 'sweeps' array");
  manifest.grid_file = doc->GetString("grid_file");
  for (const core::JsonValue& entry : sweeps->Items()) {
    SweepInventory sweep;
    sweep.bench = entry.GetString("bench");
    sweep.sweep = entry.GetString("sweep");
    sweep.point_count = static_cast<std::size_t>(entry.GetNumber("points"));
    sweep.repetitions = static_cast<std::size_t>(entry.GetNumber("repetitions"));
    sweep.spec_hash = std::strtoull(entry.GetString("spec_hash").c_str(), nullptr, 16);
    manifest.sweeps.push_back(std::move(sweep));
  }
  return manifest;
}

std::optional<std::string> Slurp(const fs::path& path) {
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool Spill(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return false;
  out << content;
  return static_cast<bool>(out);
}

/// Sorted file names (not paths) of a directory; missing directories list
/// as empty.
std::vector<std::string> ListDir(const fs::path& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

/// "u00042@worker.json" -> {"u00042", "worker"}; nullopt for other shapes.
std::optional<std::pair<std::string, std::string>> SplitLeaseName(const std::string& name) {
  if (name.size() < 5 || name.substr(name.size() - 5) != ".json") return std::nullopt;
  const std::string stem = name.substr(0, name.size() - 5);
  const std::size_t at = stem.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= stem.size()) return std::nullopt;
  return std::make_pair(stem.substr(0, at), stem.substr(at + 1));
}

/// Seconds between `now` and the file's last write; a huge value when the
/// file is missing (treat as maximally stale).
double AgeSeconds(const fs::path& path, fs::file_time_type now) {
  std::error_code ec;
  const fs::file_time_type written = fs::last_write_time(path, ec);
  if (ec) return 1e18;
  return std::chrono::duration<double>(now - written).count();
}

}  // namespace

std::string WorkQueue::SanitizeWorkerId(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out += ok ? c : '-';
  }
  return out.empty() ? "worker" : out;
}

bool WorkQueue::Init(const std::string& root, const Manifest& manifest,
                     const std::vector<WorkUnit>& units, std::string* error) {
  auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  const fs::path base(root);
  if (fs::exists(base / "manifest.json")) {
    return fail("'" + root + "' already holds a queue (manifest.json exists)");
  }
  // A manifest-less root with populated state directories is the wreck of an
  // interrupted init (the manifest lands last): a fresh plan must not
  // inherit its stale units.
  for (const char* dir : {"todo", "active", "done", "failed", "results"}) {
    if (!ListDir(base / dir).empty()) {
      return fail("'" + root + "' holds leftover state in " + dir +
                  "/ but no manifest (an interrupted queue-init?); remove the "
                  "directory and re-initialise");
    }
  }
  if (units.empty()) return fail("refusing to initialise an empty queue (no units)");

  std::set<std::string> sweep_names;
  for (const SweepInventory& sweep : manifest.sweeps) {
    if (!sweep_names.insert(sweep.sweep).second) {
      return fail("duplicate sweep name '" + sweep.sweep +
                  "' across benches; collect merges by sweep name, which must be "
                  "unique queue-wide");
    }
  }

  std::error_code ec;
  for (const char* dir : {"todo", "active", "done", "failed", "heartbeat", "results", "tmp"}) {
    fs::create_directories(base / dir, ec);
    if (ec) return fail("cannot create '" + (base / dir).string() + "': " + ec.message());
  }
  for (const WorkUnit& unit : units) {
    if (!Spill(base / "todo" / (unit.id + ".json"), WorkUnitJson(unit))) {
      return fail("cannot write unit '" + unit.id + "'");
    }
  }
  // The manifest lands last, atomically: its presence marks the queue ready.
  const fs::path staged = base / "manifest.json.tmp";
  if (!Spill(staged, ManifestJson(manifest))) return fail("cannot write the manifest");
  fs::rename(staged, base / "manifest.json", ec);
  if (ec) return fail("cannot finalise the manifest: " + ec.message());
  return true;
}

std::optional<WorkQueue> WorkQueue::Open(const std::string& root, std::string* error) {
  auto fail = [error](std::string message) -> std::optional<WorkQueue> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  const std::optional<std::string> text = Slurp(fs::path(root) / "manifest.json");
  if (!text) return fail("no queue at '" + root + "' (cannot read manifest.json)");
  std::string parse_error;
  std::optional<Manifest> manifest = ParseManifestJson(*text, &parse_error);
  if (!manifest) return fail("queue manifest at '" + root + "': " + parse_error);
  WorkQueue queue(root);
  queue.manifest_ = std::move(*manifest);
  return queue;
}

std::optional<WorkQueue::Claim> WorkQueue::TryClaim(const std::string& worker_id) const {
  const std::string worker = SanitizeWorkerId(worker_id);
  const fs::path base(root_);
  for (const std::string& name : ListDir(base / "todo")) {
    if (name.size() < 5 || name.substr(name.size() - 5) != ".json") continue;
    const std::string unit_id = name.substr(0, name.size() - 5);
    const fs::path lease = base / "active" / (unit_id + "@" + worker + ".json");
    std::error_code ec;
    fs::rename(base / "todo" / name, lease, ec);
    if (ec) continue;  // another worker won the rename — try the next unit
    const std::optional<std::string> text = Slurp(lease);
    std::optional<WorkUnit> unit =
        text ? ParseWorkUnitJson(*text) : std::nullopt;
    if (!unit || unit->id != unit_id) {
      // Corrupt unit file: park it in failed/ so the claim loop never spins
      // on it, and keep looking.
      fs::rename(lease, base / "failed" / (unit_id + "@" + worker + ".json"), ec);
      continue;
    }
    return Claim{std::move(*unit), worker};
  }
  return std::nullopt;
}

bool WorkQueue::Heartbeat(const std::string& worker_id,
                          const WorkerProgress* progress) const {
  const std::string worker = SanitizeWorkerId(worker_id);
  std::string content;
  if (progress != nullptr) {
    content = "{\"worker\": \"" + core::JsonEscape(worker) +
              "\", \"units_done\": " + std::to_string(progress->units_done) +
              ", \"wall_seconds_total\": " + core::JsonNumber(progress->wall_seconds_total) +
              ", \"runs_per_second\": " + core::JsonNumber(progress->runs_per_second) + "}\n";
  } else {
    content = worker + "\n";
  }
  return Spill(fs::path(root_) / "heartbeat" / worker, content);
}

std::string WorkQueue::StageDir(const Claim& claim) const {
  const fs::path dir = fs::path(root_) / "tmp" / (claim.unit.id + "@" + claim.worker);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir.string();
}

bool WorkQueue::Publish(const Claim& claim, const UnitTiming* timing) const {
  const fs::path base(root_);
  const fs::path staged = base / "tmp" / (claim.unit.id + "@" + claim.worker);
  const fs::path target = base / "results" / claim.unit.id;
  std::error_code ec;
  fs::rename(staged, target, ec);
  if (ec) {
    // Lost the publish race (the unit was reclaimed and finished elsewhere):
    // results are deterministic, so the other copy is identical — discard
    // ours. Anything else (staging missing, target absent) is a failure.
    if (!fs::exists(target)) return false;
    fs::remove_all(staged, ec);
  }
  const fs::path lease = base / "active" / (claim.unit.id + "@" + claim.worker + ".json");
  const fs::path done = base / "done" / (claim.unit.id + ".json");
  if (timing != nullptr && timing->wall_seconds > 0.0) {
    // Stamp the measured cost into the done/ marker: write the augmented
    // unit next to it and rename in, so the marker appears atomically with
    // its telemetry (a plain lease rename would lose the measurement).
    WorkUnit stamped = claim.unit;
    stamped.wall_seconds = timing->wall_seconds;
    stamped.runs_per_second = timing->runs_per_second;
    stamped.worker = claim.worker;
    const fs::path marker_tmp = base / "done" / (claim.unit.id + ".stamp");
    if (Spill(marker_tmp, WorkUnitJson(stamped))) {
      fs::rename(marker_tmp, done, ec);
      if (!ec) {
        fs::remove(lease, ec);  // the lease served its purpose
        return true;
      }
      fs::remove(marker_tmp, ec);
    }
    // Fall through to the plain rename on any staging failure: the done/
    // marker matters more than its telemetry.
  }
  // Completion marker; fails harmlessly when the lease was reclaimed.
  fs::rename(lease, done, ec);
  return true;
}

bool WorkQueue::Fail(const Claim& claim) const {
  const fs::path base(root_);
  std::error_code ec;
  fs::remove_all(base / "tmp" / (claim.unit.id + "@" + claim.worker), ec);
  fs::rename(base / "active" / (claim.unit.id + "@" + claim.worker + ".json"),
             base / "failed" / (claim.unit.id + "@" + claim.worker + ".json"), ec);
  return !ec;
}

bool WorkQueue::Retry(const Claim& claim) const {
  const fs::path base(root_);
  const fs::path lease = base / "active" / (claim.unit.id + "@" + claim.worker + ".json");
  std::error_code ec;
  fs::remove_all(base / "tmp" / (claim.unit.id + "@" + claim.worker), ec);
  if (!fs::exists(lease, ec)) return false;  // reclaimed by a peer meanwhile
  // Stage the bumped unit next to todo/ and rename it in: claimants only
  // consider *.json names, so the .retry staging file is never claimable,
  // and the rename makes the re-queue atomic.
  WorkUnit bumped = claim.unit;
  ++bumped.attempt;
  const fs::path staged = base / "todo" / (claim.unit.id + ".retry");
  if (!Spill(staged, WorkUnitJson(bumped))) return false;
  fs::rename(staged, base / "todo" / (claim.unit.id + ".json"), ec);
  if (ec) return false;
  fs::remove(lease, ec);
  return true;
}

std::vector<WorkQueue::HeartbeatAge> WorkQueue::HeartbeatAges() const {
  const fs::path base(root_);
  const fs::file_time_type now = fs::file_time_type::clock::now();
  std::vector<HeartbeatAge> ages;
  for (const std::string& worker : ListDir(base / "heartbeat")) {
    HeartbeatAge age;
    age.worker = worker;
    age.age_seconds = AgeSeconds(base / "heartbeat" / worker, now);
    ages.push_back(std::move(age));
  }
  for (const std::string& name : ListDir(base / "active")) {
    const auto lease = SplitLeaseName(name);
    if (!lease) continue;
    bool known = false;
    for (HeartbeatAge& age : ages) {
      if (age.worker == lease->second) {
        ++age.active_units;
        known = true;
      }
    }
    if (!known) {
      // A lease whose holder never heartbeated still deserves a row.
      HeartbeatAge age;
      age.worker = lease->second;
      age.age_seconds = AgeSeconds(base / "active" / name, now);
      age.active_units = 1;
      ages.push_back(std::move(age));
    }
  }
  std::sort(ages.begin(), ages.end(),
            [](const HeartbeatAge& a, const HeartbeatAge& b) { return a.worker < b.worker; });
  return ages;
}

std::size_t WorkQueue::ReclaimStale(double timeout_seconds, const std::string& self_worker,
                                    std::FILE* log) const {
  const fs::path base(root_);
  // "Now" is the mtime of our own just-touched heartbeat when we have one:
  // then both sides of every age comparison were stamped by the shared
  // filesystem and host clock skew cannot cause spurious reclaims (or keep
  // dead leases alive). The local clock is the single-host fallback.
  fs::file_time_type now = fs::file_time_type::clock::now();
  if (!self_worker.empty() && Heartbeat(self_worker)) {
    std::error_code ec;
    const fs::file_time_type own = fs::last_write_time(
        base / "heartbeat" / SanitizeWorkerId(self_worker), ec);
    if (!ec) now = own;
  }
  std::size_t reclaimed = 0;
  for (const std::string& name : ListDir(base / "active")) {
    const auto lease = SplitLeaseName(name);
    if (!lease) continue;
    const auto& [unit_id, worker] = *lease;
    // Freshness is the newer of the worker's heartbeat and the lease file
    // itself (a claim whose worker never heartbeated still ages out).
    const double age = std::min(AgeSeconds(base / "heartbeat" / worker, now),
                                AgeSeconds(base / "active" / name, now));
    if (age <= timeout_seconds) continue;
    std::error_code ec;
    fs::rename(base / "active" / name, base / "todo" / (unit_id + ".json"), ec);
    if (ec) continue;  // someone else reclaimed it first
    ++reclaimed;
    if (log != nullptr) {
      std::fprintf(log, "reclaimed %s from stale worker %s (idle %.1fs > %.1fs)\n",
                   unit_id.c_str(), worker.c_str(), age, timeout_seconds);
    }
  }
  return reclaimed;
}

WorkQueue::Status WorkQueue::GetStatus() const {
  const fs::path base(root_);
  Status status;
  status.todo = ListDir(base / "todo").size();
  status.active = ListDir(base / "active").size();
  status.done = ListDir(base / "done").size();
  status.failed = ListDir(base / "failed").size();
  status.results = ListDir(base / "results").size();
  return status;
}

std::vector<WorkUnit> WorkQueue::Units(std::string* error) const {
  const fs::path base(root_);
  std::vector<WorkUnit> units;
  std::set<std::string> seen;
  for (const char* dir : {"todo", "active", "done", "failed"}) {
    for (const std::string& name : ListDir(base / dir)) {
      const std::optional<std::string> text = Slurp(base / dir / name);
      if (!text) continue;
      std::string parse_error;
      std::optional<WorkUnit> unit = ParseWorkUnitJson(*text, &parse_error);
      if (!unit) {
        if (error != nullptr && error->empty()) {
          *error = (base / dir / name).string() + ": " + parse_error;
        }
        continue;
      }
      if (!seen.insert(unit->id).second) continue;  // rename race: same unit twice
      units.push_back(std::move(*unit));
    }
  }
  std::sort(units.begin(), units.end(),
            [](const WorkUnit& a, const WorkUnit& b) { return a.id < b.id; });
  return units;
}

bool WorkQueue::HasResult(const std::string& unit_id) const {
  std::error_code ec;
  return fs::is_directory(fs::path(root_) / "results" / unit_id, ec);
}

std::string WorkQueue::ResultDir(const std::string& unit_id) const {
  return (fs::path(root_) / "results" / unit_id).string();
}

std::string QueueStatusJson(const WorkQueue& queue) {
  const fs::path base(queue.root());
  const WorkQueue::Status status = queue.GetStatus();
  std::string out = "{\n";
  out += "  \"format\": \"quicer-queue-status-v1\",\n";
  out += "  \"todo\": " + std::to_string(status.todo) + ",\n";
  out += "  \"active\": " + std::to_string(status.active) + ",\n";
  out += "  \"done\": " + std::to_string(status.done) + ",\n";
  out += "  \"failed\": " + std::to_string(status.failed) + ",\n";
  out += "  \"results\": " + std::to_string(status.results) + ",\n";

  out += "  \"workers\": [\n";
  const std::vector<WorkQueue::HeartbeatAge> ages = queue.HeartbeatAges();
  for (std::size_t i = 0; i < ages.size(); ++i) {
    const WorkQueue::HeartbeatAge& age = ages[i];
    out += "    {\"worker\": \"" + core::JsonEscape(age.worker) + "\"";
    out += ", \"age_seconds\": " + core::JsonNumber(age.age_seconds);
    out += ", \"active_units\": " + std::to_string(age.active_units);
    // Progress-carrying heartbeats (JSON content) surface the worker's own
    // throughput report; legacy plain-text heartbeats just skip the fields.
    if (const std::optional<std::string> beat = Slurp(base / "heartbeat" / age.worker)) {
      if (const std::optional<core::JsonValue> doc = core::JsonValue::Parse(*beat)) {
        out += ", \"units_done\": " +
               std::to_string(static_cast<std::size_t>(doc->GetNumber("units_done")));
        out += ", \"wall_seconds_total\": " +
               core::JsonNumber(doc->GetNumber("wall_seconds_total"));
        out += ", \"runs_per_second\": " + core::JsonNumber(doc->GetNumber("runs_per_second"));
      }
    }
    out += "}";
    out += i + 1 < ages.size() ? ",\n" : "\n";
  }
  out += "  ],\n";

  // Done markers that carry measured unit cost (timing-stamped publishes).
  std::string units_out;
  double wall_total = 0.0;
  std::size_t measured = 0;
  for (const std::string& name : ListDir(base / "done")) {
    if (name.size() < 5 || name.substr(name.size() - 5) != ".json") continue;
    const std::optional<std::string> text = Slurp(base / "done" / name);
    if (!text) continue;
    const std::optional<WorkUnit> unit = ParseWorkUnitJson(*text);
    if (!unit || unit->wall_seconds <= 0.0) continue;
    if (measured != 0) units_out += ",\n";
    units_out += "    {\"id\": \"" + core::JsonEscape(unit->id) + "\"";
    units_out += ", \"wall_seconds\": " + core::JsonNumber(unit->wall_seconds);
    units_out += ", \"runs_per_second\": " + core::JsonNumber(unit->runs_per_second);
    if (!unit->worker.empty()) {
      units_out += ", \"worker\": \"" + core::JsonEscape(unit->worker) + "\"";
    }
    units_out += "}";
    wall_total += unit->wall_seconds;
    ++measured;
  }
  out += "  \"done_units\": [\n" + units_out + (measured != 0 ? "\n  ],\n" : "  ],\n");
  out += "  \"measured_units\": " + std::to_string(measured) + ",\n";
  out += "  \"measured_wall_seconds\": " + core::JsonNumber(wall_total) + "\n";
  out += "}\n";
  return out;
}

std::string WorkQueue::UnitState(const std::string& unit_id) const {
  const fs::path base(root_);
  std::error_code ec;
  if (fs::exists(base / "todo" / (unit_id + ".json"), ec)) return "todo";
  if (fs::exists(base / "done" / (unit_id + ".json"), ec)) return "done";
  for (const char* dir : {"active", "failed"}) {
    for (const std::string& name : ListDir(base / dir)) {
      const auto lease = SplitLeaseName(name);
      if (lease && lease->first == unit_id) {
        return std::string(dir) + " (" + lease->second + ")";
      }
    }
  }
  return "lost";
}

}  // namespace quicer::dist
