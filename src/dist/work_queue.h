// Coordinator-free, file-based work queue over a shared directory.
//
// Any pool of hosts that can see one directory — local disk, NFS, or a
// directory rsync'd between runs — can execute a sweep suite together
// without a coordinator process. The queue is a set of subdirectories whose
// entries move between states by POSIX rename(2), which is atomic on one
// filesystem, so exactly one worker wins any claim:
//
//   manifest.json            queue-wide facts: scale, filters, the sweep
//                            inventories (grid sizes, repetitions) and the
//                            unit count — written last during Init, so a
//                            queue without a manifest is still initialising
//   todo/<unit>.json         unclaimed units
//   active/<unit>@<w>.json   claimed by worker <w> (rename from todo/)
//   done/<unit>.json         completed units (rename from active/)
//   failed/<unit>@<w>.json   units whose runner returned non-zero
//   heartbeat/<w>            touched by worker <w> while it makes progress;
//                            a stale heartbeat lets any worker reclaim the
//                            holder's active units back to todo/
//   results/<unit>/          the unit's partial-result files, published by
//                            renaming the worker's private tmp directory —
//                            a unit either has its complete results or none
//   tmp/<unit>@<w>/          in-progress result staging
//
// Crash recovery: a killed worker stops heartbeating; after the lease
// timeout any other worker renames its active units back to todo/ and
// re-executes them. If the "crashed" worker was merely slow and later
// publishes, the rename into results/<unit> fails for the second publisher
// and its (deterministically identical) copy is discarded — every unit's
// results appear exactly once.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "dist/work_unit.h"

namespace quicer::dist {

class WorkQueue {
 public:
  /// Queue-wide facts recorded at Init and read back by workers (so every
  /// process runs the benches with the same --scale and the collect phase
  /// can verify coverage against the planned grids).
  struct Manifest {
    int scale = 1;
    std::vector<std::string> filters;  // bench name filters of queue-init
    std::size_t max_runs_per_unit = 0;
    std::size_t unit_count = 0;
    std::vector<SweepInventory> sweeps;
    /// Name of the scenario file (relative to the queue root) this queue
    /// was planned from; empty for compiled-in grids. Workers parse it and
    /// rewrite every unit's spec with the scenario data, so every host runs
    /// the same data-defined grid.
    std::string grid_file;
  };

  /// A successfully claimed unit, held by `worker`.
  struct Claim {
    WorkUnit unit;
    std::string worker;
  };

  struct Status {
    std::size_t todo = 0;
    std::size_t active = 0;
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t results = 0;
  };

  /// Creates the queue layout under `root` (which must not already contain
  /// a queue), writes every unit into todo/ and the manifest last. Fails on
  /// duplicate sweep names across benches — the collect phase merges by
  /// sweep name, so names must be unique queue-wide.
  static bool Init(const std::string& root, const Manifest& manifest,
                   const std::vector<WorkUnit>& units, std::string* error = nullptr);

  /// Opens an initialised queue (fails when the manifest is missing or
  /// malformed).
  static std::optional<WorkQueue> Open(const std::string& root,
                                       std::string* error = nullptr);

  const std::string& root() const { return root_; }
  const Manifest& manifest() const { return manifest_; }

  /// Claims one todo unit for `worker_id` by renaming it into active/.
  /// Returns nullopt when todo/ is empty (or every candidate was claimed by
  /// someone else first).
  std::optional<Claim> TryClaim(const std::string& worker_id) const;

  /// Cumulative progress a worker reports alongside its heartbeat. The
  /// heartbeat file's mtime stays the liveness signal (HeartbeatAges and
  /// ReclaimStale never read the content), so progress-carrying and legacy
  /// plain-text heartbeats age identically.
  struct WorkerProgress {
    std::size_t units_done = 0;        // units this worker has published
    double wall_seconds_total = 0.0;   // summed measured unit wall time
    double runs_per_second = 0.0;      // throughput over the measured units
  };

  /// Refreshes the worker's heartbeat file. With `progress`, the file
  /// carries a small JSON document that queue-status surfaces as per-worker
  /// throughput; without it the legacy plain-text content is written.
  bool Heartbeat(const std::string& worker_id,
                 const WorkerProgress* progress = nullptr) const;

  /// The claim's private result-staging directory (created empty).
  std::string StageDir(const Claim& claim) const;

  /// Measured cost of one executed unit, stamped into its done/ marker.
  struct UnitTiming {
    double wall_seconds = 0.0;
    double runs_per_second = 0.0;
  };

  /// Publishes the staged results of a claim: rename(tmp -> results/<unit>)
  /// and move the lease to done/. Returns true when the unit's results are
  /// in place afterwards — also when another worker (a reclaim race)
  /// published the identical results first and ours were discarded. With
  /// `timing`, the done/ marker is rewritten to carry the measured
  /// wall_seconds / runs_per_second / worker fields (the adaptive-planning
  /// and queue-status inputs) instead of the plain lease rename.
  bool Publish(const Claim& claim, const UnitTiming* timing = nullptr) const;

  /// Moves a claim whose runner failed into failed/ (kept for inspection).
  bool Fail(const Claim& claim) const;

  /// Re-queues a claim whose runner failed: the unit returns to todo/ with
  /// its attempt count incremented (persisted in the unit file, so the
  /// budget holds across workers and hosts). Returns false when the lease
  /// is gone (reclaimed by a peer) — nothing to retry then.
  bool Retry(const Claim& claim) const;

  /// One worker's heartbeat freshness, for queue-status.
  struct HeartbeatAge {
    std::string worker;
    double age_seconds = 0.0;
    std::size_t active_units = 0;  // leases currently held in active/
  };

  /// Every worker with a heartbeat file, sorted by name, with the age of
  /// its last beat (against this process's clock — same filesystem) and its
  /// live lease count.
  std::vector<HeartbeatAge> HeartbeatAges() const;

  /// Renames every active unit whose worker's heartbeat (or, if absent, the
  /// lease file itself) is older than `timeout_seconds` back into todo/.
  /// Returns the number of reclaimed units. When `self_worker` is given its
  /// heartbeat is touched first and its resulting mtime is "now", so every
  /// timestamp in the comparison was stamped by the shared filesystem —
  /// cross-host clock skew (NFS server vs worker clocks) cancels out.
  std::size_t ReclaimStale(double timeout_seconds, const std::string& self_worker = "",
                           std::FILE* log = nullptr) const;

  Status GetStatus() const;

  /// Every unit known to the queue (todo, active, done and failed),
  /// deduplicated by id and sorted by id.
  std::vector<WorkUnit> Units(std::string* error = nullptr) const;

  bool HasResult(const std::string& unit_id) const;
  std::string ResultDir(const std::string& unit_id) const;

  /// "todo" / "active (<worker>)" / "done" / "failed (<worker>)" /
  /// "lost" — where a unit's lease currently lives, for diagnostics.
  std::string UnitState(const std::string& unit_id) const;

  /// Worker ids become file-name components: everything outside
  /// [A-Za-z0-9._-] is replaced by '-', '@' included (it separates unit
  /// from worker in lease names).
  static std::string SanitizeWorkerId(const std::string& raw);

 private:
  explicit WorkQueue(std::string root) : root_(std::move(root)) {}

  std::string root_;
  Manifest manifest_;
};

/// Machine-readable queue status for `queue-status --json`: the state
/// counts, every worker's heartbeat age / lease count / reported progress,
/// and the measured wall time of each done unit that carries one. The
/// document round-trips through core::JsonValue::Parse.
std::string QueueStatusJson(const WorkQueue& queue);

}  // namespace quicer::dist
