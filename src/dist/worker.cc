#include "dist/worker.h"

#include <unistd.h>

#include <chrono>
#include <thread>

namespace quicer::dist {

WorkerStats RunWorker(const WorkQueue& queue, const WorkerOptions& options,
                      const UnitRunner& runner, std::FILE* log) {
  const std::string worker = WorkQueue::SanitizeWorkerId(
      options.worker_id.empty() ? DefaultWorkerId() : options.worker_id);
  WorkerStats stats;
  for (;;) {
    if (options.max_units > 0 &&
        stats.units_done + stats.units_failed >= options.max_units) {
      break;
    }
    // Progress-carrying heartbeat: same mtime semantics as the plain one,
    // but queue-status can surface this worker's cumulative throughput.
    WorkQueue::WorkerProgress progress;
    progress.units_done = stats.units_done;
    progress.wall_seconds_total = stats.wall_seconds_total;
    progress.runs_per_second = stats.wall_seconds_total > 0.0
                                   ? static_cast<double>(stats.runs_total) /
                                         stats.wall_seconds_total
                                   : 0.0;
    queue.Heartbeat(worker, &progress);
    if (std::optional<WorkQueue::Claim> claim = queue.TryClaim(worker)) {
      const std::string stage = queue.StageDir(*claim);
      if (log != nullptr) {
        const std::string rep_end = claim->unit.rep_end == 0
                                        ? "end"
                                        : std::to_string(claim->unit.rep_end);
        std::fprintf(log, "[%s] unit %s: bench %s sweep %s, %zu points, reps [%zu, %s)\n",
                     worker.c_str(), claim->unit.id.c_str(), claim->unit.bench.c_str(),
                     claim->unit.sweep.c_str(), claim->unit.points.size(),
                     claim->unit.rep_begin, rep_end.c_str());
      }
      const auto run_start = std::chrono::steady_clock::now();  // lint:allow(ND002): unit wall timing for the queue report
      const int code = runner(claim->unit, stage);
      WorkQueue::UnitTiming timing;
      timing.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)  // lint:allow(ND002): unit wall timing
              .count();
      timing.runs_per_second = timing.wall_seconds > 0.0
                                   ? static_cast<double>(claim->unit.runs) /
                                         timing.wall_seconds
                                   : 0.0;
      if (code == 0 && queue.Publish(*claim, &timing)) {
        ++stats.units_done;
        stats.wall_seconds_total += timing.wall_seconds;
        stats.runs_total += claim->unit.runs;
      } else if (claim->unit.attempt < options.retry_budget && queue.Retry(*claim)) {
        ++stats.units_retried;
        if (log != nullptr) {
          std::fprintf(log, "[%s] unit %s failed (exit %d), re-queued (attempt %zu of %zu)\n",
                       worker.c_str(), claim->unit.id.c_str(), code,
                       claim->unit.attempt + 1, options.retry_budget);
        }
      } else {
        queue.Fail(*claim);
        ++stats.units_failed;
        if (log != nullptr) {
          std::fprintf(log, "[%s] unit %s FAILED (exit %d, attempt %zu, budget spent)\n",
                       worker.c_str(), claim->unit.id.c_str(), code, claim->unit.attempt);
        }
      }
      continue;
    }

    stats.units_reclaimed += queue.ReclaimStale(options.lease_timeout_seconds, worker, log);
    const WorkQueue::Status status = queue.GetStatus();
    if (status.todo > 0) continue;  // a reclaim (or a peer's return) refilled todo
    if (status.active == 0 || !options.wait_for_stragglers) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(options.poll_seconds));
  }
  if (log != nullptr) {
    std::fprintf(log, "[%s] done: %zu units executed, %zu failed, %zu retried, %zu reclaimed\n",
                 worker.c_str(), stats.units_done, stats.units_failed, stats.units_retried,
                 stats.units_reclaimed);
  }
  return stats;
}

std::string DefaultWorkerId() {
  char host[256] = "host";
  gethostname(host, sizeof(host) - 1);
  host[sizeof(host) - 1] = '\0';
  return WorkQueue::SanitizeWorkerId(std::string(host) + "-" + std::to_string(getpid()));
}

}  // namespace quicer::dist
