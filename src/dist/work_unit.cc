#include "dist/work_unit.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/json.h"
#include "core/scenario.h"

namespace quicer::dist {
namespace {

constexpr std::string_view kFormat = "quicer-dist-unit-v1";

}  // namespace

std::string WorkUnitJson(const WorkUnit& unit) {
  std::string out = "{\n";
  out += "  \"format\": \"" + std::string(kFormat) + "\",\n";
  out += "  \"id\": \"" + core::JsonEscape(unit.id) + "\",\n";
  out += "  \"bench\": \"" + core::JsonEscape(unit.bench) + "\",\n";
  out += "  \"sweep\": \"" + core::JsonEscape(unit.sweep) + "\",\n";
  out += "  \"points\": ";
  core::AppendJsonSizeArray(out, unit.points);
  out += ",\n";
  out += "  \"rep_begin\": " + std::to_string(unit.rep_begin) + ",\n";
  out += "  \"rep_end\": " + std::to_string(unit.rep_end) + ",\n";
  out += "  \"runs\": " + std::to_string(unit.runs) + ",\n";
  if (unit.spec_hash != 0) {
    out += "  \"spec_hash\": \"" + core::ScenarioHashHex(unit.spec_hash) + "\",\n";
  }
  // Measured-cost fields appear only on published (done/) units, so queue
  // documents from before the telemetry era keep their exact bytes.
  if (unit.wall_seconds > 0.0) {
    out += "  \"wall_seconds\": " + core::JsonNumber(unit.wall_seconds) + ",\n";
    out += "  \"runs_per_second\": " + core::JsonNumber(unit.runs_per_second) + ",\n";
    if (!unit.worker.empty()) {
      out += "  \"worker\": \"" + core::JsonEscape(unit.worker) + "\",\n";
    }
  }
  out += "  \"attempt\": " + std::to_string(unit.attempt) + "\n";
  out += "}\n";
  return out;
}

std::optional<WorkUnit> ParseWorkUnitJson(std::string_view json, std::string* error) {
  auto fail = [error](std::string message) -> std::optional<WorkUnit> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  std::string parse_error;
  const std::optional<core::JsonValue> doc = core::JsonValue::Parse(json, &parse_error);
  if (!doc) return fail("invalid JSON: " + parse_error);
  if (doc->GetString("format") != kFormat) {
    return fail("not a work-unit document (format '" + doc->GetString("format") + "')");
  }
  WorkUnit unit;
  unit.id = doc->GetString("id");
  unit.bench = doc->GetString("bench");
  unit.sweep = doc->GetString("sweep");
  if (unit.id.empty() || unit.bench.empty() || unit.sweep.empty()) {
    return fail("work unit misses id/bench/sweep");
  }
  const core::JsonValue* points = doc->Get("points");
  if (points == nullptr) return fail("work unit misses its 'points' array");
  for (const core::JsonValue& point : points->Items()) {
    unit.points.push_back(static_cast<std::size_t>(point.AsNumber()));
  }
  unit.rep_begin = static_cast<std::size_t>(doc->GetNumber("rep_begin"));
  unit.rep_end = static_cast<std::size_t>(doc->GetNumber("rep_end"));
  unit.runs = static_cast<std::size_t>(doc->GetNumber("runs"));
  unit.spec_hash = std::strtoull(doc->GetString("spec_hash").c_str(), nullptr, 16);
  unit.attempt = static_cast<std::size_t>(doc->GetNumber("attempt"));
  unit.wall_seconds = doc->GetNumber("wall_seconds");
  unit.runs_per_second = doc->GetNumber("runs_per_second");
  unit.worker = doc->GetString("worker");
  return unit;
}

std::vector<WorkUnit> PlanUnits(const std::vector<SweepInventory>& sweeps,
                                std::size_t max_runs_per_unit) {
  const std::size_t max_runs = std::max<std::size_t>(max_runs_per_unit, 1);
  std::vector<WorkUnit> units;
  auto emit = [&units](WorkUnit unit) {
    char id[16];
    std::snprintf(id, sizeof(id), "u%05zu", units.size());
    unit.id = id;
    units.push_back(std::move(unit));
  };

  for (const SweepInventory& sweep : sweeps) {
    const std::size_t reps = std::max<std::size_t>(sweep.repetitions, 1);
    WorkUnit open;  // the unit currently accumulating whole points
    open.bench = sweep.bench;
    open.sweep = sweep.sweep;
    open.spec_hash = sweep.spec_hash;
    auto flush = [&] {
      if (open.points.empty()) return;
      open.runs = open.points.size() * reps;
      emit(open);
      open.points.clear();
    };

    if (reps > max_runs) {
      // Repetition-range sharding: every point is split into windows of at
      // most max_runs repetitions.
      for (std::size_t p = 0; p < sweep.point_count; ++p) {
        for (std::size_t begin = 0; begin < reps; begin += max_runs) {
          WorkUnit unit;
          unit.bench = sweep.bench;
          unit.sweep = sweep.sweep;
          unit.spec_hash = sweep.spec_hash;
          unit.points = {p};
          unit.rep_begin = begin;
          unit.rep_end = std::min(begin + max_runs, reps);
          unit.runs = unit.rep_end - unit.rep_begin;
          emit(std::move(unit));
        }
      }
      continue;
    }

    const std::size_t points_per_unit = std::max<std::size_t>(max_runs / reps, 1);
    for (std::size_t p = 0; p < sweep.point_count; ++p) {
      open.points.push_back(p);
      if (open.points.size() >= points_per_unit) flush();
    }
    flush();
  }
  return units;
}

}  // namespace quicer::dist
