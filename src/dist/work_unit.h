// Work units of the distributed sweep queue.
//
// A unit is the claimable quantum of a distributed run: a (bench, sweep,
// point-id set, repetition window) tuple small enough that losing one to a
// crashed host wastes little work. PlanUnits splits a suite's enumerated
// sweeps into units so no unit exceeds a target run count: cheap points are
// chunked together, and a single point whose repetitions alone exceed the
// target is split into repetition windows (the seed schedule depends only on
// the absolute repetition index, so the windows merge bit-identically).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace quicer::dist {

/// One claimable unit of work. `runs` is the cost estimate the planner
/// balanced (points x repetition window; runners that memoize whole-grid
/// computations cost less in practice, which only makes units finish early).
struct WorkUnit {
  std::string id;     // "u00042": stable, zero-padded, unique per queue
  std::string bench;  // registry name the worker invokes
  std::string sweep;  // SweepSpec::name the unit targets (== bench when the
                      // bench runs a single sweep)
  std::vector<std::size_t> points;  // explicit point ids of the sweep's grid
  std::size_t rep_begin = 0;        // repetition window [rep_begin, rep_end)
  std::size_t rep_end = 0;          // 0 = all repetitions
  std::size_t runs = 0;
  /// Content-hash of the sweep's spec (core::ScenarioHash) at planning
  /// time; the collect phase requires every published partial to carry the
  /// same hash, so results of a different grid definition never merge in.
  /// 0 = unknown (pre-hash queues).
  std::uint64_t spec_hash = 0;
  /// How many times this unit's runner has already failed; the worker's
  /// retry budget re-queues a failed unit (attempt + 1) until the budget is
  /// spent, then parks it in failed/.
  std::size_t attempt = 0;

  /// Measured execution telemetry, stamped by the worker when it publishes
  /// the unit into done/ (absent — 0 / empty — in todo/ and active/ units).
  /// This is the ROADMAP's adaptive-unit-planning prerequisite: a
  /// queue-rebalance pass can split by observed cost instead of
  /// points × window, and `queue-status --json` reports per-worker
  /// throughput from it.
  double wall_seconds = 0.0;
  double runs_per_second = 0.0;
  std::string worker;  // sanitized id of the worker that ran it

  /// True when the unit covers a strict repetition window (a split point).
  bool windowed() const { return rep_begin != 0 || rep_end != 0; }
};

std::string WorkUnitJson(const WorkUnit& unit);
std::optional<WorkUnit> ParseWorkUnitJson(std::string_view json, std::string* error = nullptr);

/// One sweep's enumeration facts, reported by the enumerate pass (the
/// SweepEnumerateSink of queue-init) and recorded in the queue manifest for
/// collect-time coverage verification.
struct SweepInventory {
  std::string bench;
  std::string sweep;
  std::size_t point_count = 0;
  std::size_t repetitions = 0;
  /// Content-hash of the sweep's spec (core::ScenarioHash) as enumerated by
  /// queue-init; copied into every planned unit. 0 = unknown.
  std::uint64_t spec_hash = 0;
};

/// Splits the inventories into units of at most `max_runs_per_unit` runs
/// (clamped to >= 1): consecutive points group together while their combined
/// repetitions fit, and a point whose repetitions alone exceed the target is
/// split into repetition windows. Unit ids are assigned sequentially in
/// inventory order, so the plan is deterministic.
std::vector<WorkUnit> PlanUnits(const std::vector<SweepInventory>& sweeps,
                                std::size_t max_runs_per_unit);

}  // namespace quicer::dist
