#include "dist/collect.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "core/scenario.h"
#include "core/sweep.h"
#include "core/sweep_partial.h"
#include "obs/telemetry.h"

namespace quicer::dist {
namespace {

namespace fs = std::filesystem;

/// The units of one sweep with the partials they published.
struct SweepGroup {
  const SweepInventory* inventory = nullptr;
  std::vector<const WorkUnit*> units;  // manifest-planned, in id order
};

/// Checks that the group's units tile every point's repetition range
/// exactly once. Returns an empty string on success.
std::string VerifyCoverage(const std::string& sweep, const SweepGroup& group) {
  const std::size_t reps = std::max<std::size_t>(group.inventory->repetitions, 1);
  // point id -> covering repetition windows
  std::map<std::size_t, std::vector<std::pair<std::size_t, std::size_t>>> windows;
  for (const WorkUnit* unit : group.units) {
    const std::size_t end = unit->rep_end == 0 ? reps : unit->rep_end;
    if (unit->rep_begin >= end || end > reps) {
      return "unit " + unit->id + " of sweep '" + sweep + "' has repetition window [" +
             std::to_string(unit->rep_begin) + ", " + std::to_string(end) +
             ") outside [0, " + std::to_string(reps) + ")";
    }
    for (std::size_t point : unit->points) {
      if (point >= group.inventory->point_count) {
        return "unit " + unit->id + " of sweep '" + sweep + "' references point " +
               std::to_string(point) + " beyond the " +
               std::to_string(group.inventory->point_count) + "-point grid";
      }
      windows[point].emplace_back(unit->rep_begin, end);
    }
  }
  for (std::size_t point = 0; point < group.inventory->point_count; ++point) {
    auto it = windows.find(point);
    if (it == windows.end()) {
      return "sweep '" + sweep + "': point " + std::to_string(point) +
             " is covered by no unit";
    }
    std::sort(it->second.begin(), it->second.end());
    std::size_t cursor = 0;
    for (const auto& [begin, end] : it->second) {
      if (begin != cursor) {
        return "sweep '" + sweep + "': point " + std::to_string(point) +
               " repetitions are " + (begin > cursor ? "uncovered" : "covered twice") +
               " around index " + std::to_string(std::min(begin, cursor));
      }
      cursor = end;
    }
    if (cursor != reps) {
      return "sweep '" + sweep + "': point " + std::to_string(point) +
             " repetitions [" + std::to_string(cursor) + ", " + std::to_string(reps) +
             ") are uncovered";
    }
  }
  return "";
}

/// Reads the unit's published partial for its target sweep. A unit's result
/// directory may also hold empty partials of sibling sweeps (the bench body
/// runs them deselected); only the target sweep's file counts.
std::optional<core::SweepResult> ReadUnitPartial(const WorkQueue& queue,
                                                 const WorkUnit& unit,
                                                 std::string* error) {
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(queue.ResultDir(unit.id), ec)) {
    if (entry.path().extension() != ".json") continue;
    std::string read_error;
    std::optional<core::SweepResult> partial =
        core::ReadSweepPartialFile(entry.path().string(), &read_error);
    if (!partial) continue;  // not a partial document (stray export)
    if (partial->name == unit.sweep) return partial;
  }
  *error = "unit " + unit.id + " published no partial for sweep '" + unit.sweep + "'";
  return std::nullopt;
}

/// The unit's partial must have executed exactly the unit's points —
/// anything else means the results directory holds output of a different
/// plan (a stale or hand-edited queue).
std::string VerifyUnitPartial(const WorkUnit& unit, const core::SweepResult& partial) {
  // The spec content-hash pins the grid's serializable data: a partial
  // produced from a different scenario file, or from a binary whose
  // compiled-in axes/base/metric set changed, must never merge into this
  // queue's exports. (It cannot see closure *bodies* — a binary that
  // changed only a loss/variant lambda under the same label hashes
  // identically; keep worker binaries at one revision per queue.) Hash 0
  // means "unknown" and is tolerated for pre-hash documents.
  if (unit.spec_hash != 0 && partial.spec_hash != 0 && unit.spec_hash != partial.spec_hash) {
    return "unit " + unit.id + " published results with spec hash " +
           core::ScenarioHashHex(partial.spec_hash) + " but the plan expects " +
           core::ScenarioHashHex(unit.spec_hash) +
           " — the results come from a different grid definition";
  }
  std::vector<std::size_t> expected = unit.points;
  std::sort(expected.begin(), expected.end());
  std::vector<std::size_t> executed;
  for (const core::PointSummary& summary : partial.points) {
    if (summary.executed) executed.push_back(summary.point.index);
  }
  if (executed != expected) {
    return "unit " + unit.id + " executed " + std::to_string(executed.size()) +
           " points of sweep '" + unit.sweep + "' but the plan assigned " +
           std::to_string(expected.size());
  }
  if (partial.shard.rep_begin != unit.rep_begin || partial.shard.rep_end != unit.rep_end) {
    return "unit " + unit.id + " executed repetition window [" +
           std::to_string(partial.shard.rep_begin) + ", " +
           std::to_string(partial.shard.rep_end) + ") but the plan assigned [" +
           std::to_string(unit.rep_begin) + ", " + std::to_string(unit.rep_end) + ")";
  }
  return "";
}

}  // namespace

bool Collect(const WorkQueue& queue, const std::string& out_dir, CollectReport* report,
             std::FILE* log, const std::string& telemetry_file) {
  CollectReport local;
  CollectReport& r = report != nullptr ? *report : local;
  r = CollectReport{};
  auto fail = [&](std::string message) {
    r.error = std::move(message);
    if (log != nullptr && !r.error.empty()) {
      std::fprintf(log, "collect: %s\n", r.error.c_str());
    }
    return false;
  };

  std::string units_error;
  const std::vector<WorkUnit> units = queue.Units(&units_error);
  if (!units_error.empty()) return fail("unreadable unit: " + units_error);
  r.units_total = units.size();
  if (units.size() != queue.manifest().unit_count) {
    return fail("queue holds " + std::to_string(units.size()) + " units but the manifest " +
                "planned " + std::to_string(queue.manifest().unit_count));
  }

  // Group the units per sweep and verify the plan tiles every grid.
  std::map<std::string, SweepGroup> groups;
  for (const SweepInventory& inventory : queue.manifest().sweeps) {
    groups[inventory.sweep].inventory = &inventory;
  }
  for (const WorkUnit& unit : units) {
    auto it = groups.find(unit.sweep);
    if (it == groups.end()) {
      return fail("unit " + unit.id + " targets sweep '" + unit.sweep +
                  "', which the manifest does not list");
    }
    it->second.units.push_back(&unit);
  }
  for (const auto& [sweep, group] : groups) {
    if (group.inventory->point_count == 0) continue;
    std::string coverage = VerifyCoverage(sweep, group);
    if (!coverage.empty()) return fail(std::move(coverage));
  }

  // Every unit must have published its results.
  for (const WorkUnit& unit : units) {
    if (queue.HasResult(unit.id)) {
      ++r.units_with_results;
    } else {
      r.missing_units.push_back(unit.id + " [" + queue.UnitState(unit.id) + "]");
    }
  }
  if (!r.missing_units.empty()) {
    std::string names;
    for (const std::string& missing : r.missing_units) {
      if (!names.empty()) names += ", ";
      names += missing;
    }
    return fail(std::to_string(r.missing_units.size()) + " of " +
                std::to_string(r.units_total) + " units have no results yet: " + names);
  }

  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec) return fail("cannot create '" + out_dir + "': " + ec.message());

  // Merge per sweep. Units are already in id order; a stable sort by window
  // start makes every split point's partials concatenate in repetition
  // order, which the byte-identity of trace series relies on.
  std::vector<obs::SweepRecord> telemetry_records;
  for (const auto& [sweep, group] : groups) {
    if (group.units.empty()) continue;
    std::vector<const WorkUnit*> ordered = group.units;
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const WorkUnit* a, const WorkUnit* b) {
                       return a->rep_begin < b->rep_begin;
                     });
    std::vector<core::SweepResult> partials;
    partials.reserve(ordered.size());
    for (const WorkUnit* unit : ordered) {
      std::string read_error;
      std::optional<core::SweepResult> partial = ReadUnitPartial(queue, *unit, &read_error);
      if (!partial) return fail(std::move(read_error));
      std::string mismatch = VerifyUnitPartial(*unit, *partial);
      if (!mismatch.empty()) return fail(std::move(mismatch));
      partials.push_back(std::move(*partial));
    }
    std::string merge_error;
    const std::optional<core::SweepResult> merged =
        core::MergeSweepResults(partials, &merge_error);
    if (!merged) return fail("sweep '" + sweep + "': " + merge_error);
    if (!core::WriteSweepData(*merged, out_dir)) {
      return fail("cannot write merged exports for sweep '" + sweep + "' into '" +
                  out_dir + "'");
    }
    if (log != nullptr) {
      std::fprintf(log, "[%s] merged %zu units: %zu points, %zu runs\n", sweep.c_str(),
                   partials.size(), merged->points.size(), merged->executed_runs);
    }
    if (!telemetry_file.empty() && merged->telemetry.enabled) {
      obs::SweepRecord record;
      record.bench = group.inventory->bench;
      record.sweep = merged->name;
      record.wall_seconds = merged->telemetry.wall_seconds;
      record.executed_runs = merged->executed_runs;
      record.counters = merged->telemetry.counters;
      telemetry_records.push_back(std::move(record));
    }
  }
  if (!telemetry_file.empty()) {
    std::ofstream out(telemetry_file, std::ios::trunc);
    out << obs::TelemetryReportJson(telemetry_records);
    if (!out) return fail("cannot write the telemetry report to '" + telemetry_file + "'");
    if (log != nullptr) {
      std::fprintf(log, "telemetry report (%zu sweeps) -> %s\n", telemetry_records.size(),
                   telemetry_file.c_str());
    }
  }
  r.complete = true;
  return true;
}

}  // namespace quicer::dist
