// The claim → execute → publish loop of a distributed sweep worker.
//
// A worker owns no state beyond its id: it claims units from the queue via
// atomic renames, executes each through a pluggable UnitRunner (bench_suite
// wires the bench registry in; tests wire synthetic sweeps), stages the
// partial-result files privately and publishes them with one rename. While
// the todo directory is empty but other workers still hold leases, the
// worker polls — reclaiming stale leases — so a crashed peer's units are
// re-executed instead of lost, and the queue always drains.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "dist/work_queue.h"

namespace quicer::dist {

struct WorkerOptions {
  /// File-name-safe identity; must be unique per live worker (the default
  /// host-pid id from DefaultWorkerId is).
  std::string worker_id;
  /// A lease whose worker has not heartbeated for this long is reclaimable.
  double lease_timeout_seconds = 60.0;
  /// Idle poll interval while waiting for stragglers.
  double poll_seconds = 0.5;
  /// Stop after this many executed units (0 = run until the queue drains).
  std::size_t max_units = 0;
  /// When false, exit as soon as todo/ is empty instead of waiting for
  /// (and potentially reclaiming from) workers still holding leases.
  bool wait_for_stragglers = true;
  /// How many automatic re-queues a failed unit gets before parking in
  /// failed/. The attempt count persists in the unit file, so the budget
  /// holds across workers and hosts (a transiently-OOMing host's unit can
  /// succeed on a bigger peer). 0 = park on first failure.
  std::size_t retry_budget = 1;
};

struct WorkerStats {
  std::size_t units_done = 0;
  std::size_t units_failed = 0;
  std::size_t units_reclaimed = 0;
  std::size_t units_retried = 0;  // failed but re-queued within the budget
  /// Measured wall time summed over the executed (published) units; the
  /// same numbers are stamped into each done/ marker and the worker's
  /// heartbeat, so queue-status reports live per-worker throughput.
  double wall_seconds_total = 0.0;
  std::size_t runs_total = 0;  // planned runs of the published units
};

/// Executes one claimed unit, writing its partial-result files into
/// `stage_dir`; returns a process-style exit code (0 = success).
using UnitRunner = std::function<int(const WorkUnit& unit, const std::string& stage_dir)>;

/// Runs the worker loop until the queue drains (todo empty and, with
/// wait_for_stragglers, no active leases left) or max_units is reached.
/// Diagnostics go to `log` (may be null).
WorkerStats RunWorker(const WorkQueue& queue, const WorkerOptions& options,
                      const UnitRunner& runner, std::FILE* log = nullptr);

/// "<hostname>-<pid>", sanitized for file names.
std::string DefaultWorkerId();

}  // namespace quicer::dist
