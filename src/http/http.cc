#include "http/http.h"

namespace quicer::http {

std::string_view ToString(Version version) {
  return version == Version::kHttp1 ? "HTTP/1.1" : "HTTP/3";
}

std::size_t RequestBytes(Version version, std::size_t path_length) {
  switch (version) {
    case Version::kHttp1:
      // "GET /<path> HTTP/1.1\r\nHost: ...\r\n\r\n"
      return 24 + path_length + 40;
    case Version::kHttp3:
      // QPACK-compressed HEADERS frame.
      return 2 + 1 + 30 + path_length;
  }
  return 0;
}

std::size_t ResponseHeadBytes(Version version) {
  switch (version) {
    case Version::kHttp1:
      return 110;  // status line + typical header block
    case Version::kHttp3:
      return 2 + 40;  // HEADERS frame with QPACK static-table entries
  }
  return 0;
}

}  // namespace quicer::http
