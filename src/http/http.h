// Minimal HTTP-over-QUIC semantics.
//
// The paper runs one GET request/response per connection over HTTP/1.1 and
// HTTP/3. Only two protocol properties matter to the results:
//
//  * HTTP/3 servers open a control stream and send a SETTINGS frame
//    *immediately after the handshake completes*, so the client's
//    time-to-first-(stream)-byte is roughly one RTT lower than with HTTP/1.1,
//    where the first server stream bytes are the response itself (Fig 5).
//  * Request and response sizes determine how many packets each flight needs.
//
// This module provides the stream-id conventions, frame overheads and size
// helpers; the connection state machines consume them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace quicer::http {

enum class Version { kHttp1, kHttp3 };

std::string_view ToString(Version version);

/// Client-initiated bidirectional stream carrying the GET request/response.
inline constexpr std::uint64_t kRequestStreamId = 0;
/// Client's unidirectional HTTP/3 control stream.
inline constexpr std::uint64_t kClientControlStreamId = 2;
/// Server's unidirectional HTTP/3 control stream (first server stream bytes).
inline constexpr std::uint64_t kServerControlStreamId = 3;

/// Wire size of an HTTP/3 SETTINGS frame plus stream-type byte.
inline constexpr std::size_t kH3SettingsBytes = 9;

/// File sizes used throughout the paper's evaluation (§3).
inline constexpr std::size_t kSmallFileBytes = 10 * 1024;          // "10 KB"
inline constexpr std::size_t kLargeFileBytes = 10 * 1024 * 1024;   // "10 MB"

/// Byte size of the GET request as it appears in STREAM frames.
std::size_t RequestBytes(Version version, std::size_t path_length = 16);

/// Byte size of the response head (status line / HEADERS frame) preceding the
/// body.
std::size_t ResponseHeadBytes(Version version);

}  // namespace quicer::http
