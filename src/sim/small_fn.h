// Small-buffer-optimized move-only callable.
//
// The event loop schedules hundreds of callbacks per simulated run;
// std::function heap-allocates any capture larger than two pointers, which
// made Schedule the single largest allocation source in the engine. SmallFn
// stores captures up to kInlineBytes inline (most event captures are a
// `this` pointer plus a datagram) and only falls back to the heap for
// oversized callables, so the steady-state hot loop never allocates.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace quicer::sim {

/// Move-only `void()` callable with `kInlineBytes` of inline capture storage.
template <std::size_t kInlineBytes>
class SmallFn {
 public:
  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn> &&
                                        !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    Emplace(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept { MoveFrom(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) {
    Destroy();
    return *this;
  }

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn> &&
                                        !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  SmallFn& operator=(F&& f) {
    Destroy();
    Emplace(std::forward<F>(f));
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { Destroy(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(&storage_); }

  /// Invokes the callable exactly once and destroys it, leaving `*this`
  /// empty. The callable is relocated to the callee's stack *before* it
  /// runs, so the invocation may safely overwrite, reuse or free the storage
  /// that held this SmallFn (e.g. an event-loop slot released back to its
  /// pool before dispatch). One indirect call instead of the three a
  /// move-out / invoke / destroy sequence costs.
  void ConsumeInvoke() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->consume_invoke(&storage_);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*relocate)(void* from, void* to);  // move-construct into `to`, destroy `from`
    void (*destroy)(void* storage);
    void (*consume_invoke)(void* storage);  // relocate to callee stack, destroy, invoke
  };

  template <typename F>
  struct InlineModel {
    static void Invoke(void* storage) { (*static_cast<F*>(storage))(); }
    static void Relocate(void* from, void* to) {
      F* source = static_cast<F*>(from);
      ::new (to) F(std::move(*source));
      source->~F();
    }
    static void Destroy(void* storage) { static_cast<F*>(storage)->~F(); }
    static void ConsumeInvoke(void* storage) {
      F* source = static_cast<F*>(storage);
      F local(std::move(*source));
      source->~F();
      local();
    }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy, &ConsumeInvoke};
  };

  template <typename F>
  struct HeapModel {
    static void Invoke(void* storage) { (**static_cast<F**>(storage))(); }
    static void Relocate(void* from, void* to) {
      *static_cast<F**>(to) = *static_cast<F**>(from);
    }
    static void Destroy(void* storage) { delete *static_cast<F**>(storage); }
    static void ConsumeInvoke(void* storage) {
      F* heap = *static_cast<F**>(storage);
      (*heap)();
      delete heap;
    }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy, &ConsumeInvoke};
  };

  template <typename F>
  void Emplace(F&& f) {
    using Decayed = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Decayed&>, "SmallFn requires a void() callable");
    if constexpr (sizeof(Decayed) <= kInlineBytes &&
                  alignof(Decayed) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(&storage_)) Decayed(std::forward<F>(f));
      ops_ = &InlineModel<Decayed>::kOps;
    } else {
      *reinterpret_cast<Decayed**>(&storage_) = new Decayed(std::forward<F>(f));
      ops_ = &HeapModel<Decayed>::kOps;
    }
  }

  void MoveFrom(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(&other.storage_, &storage_);
      other.ops_ = nullptr;
    }
  }

  void Destroy() {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace quicer::sim
