// Discrete-event scheduler.
//
// The simulator is single-threaded: every network delivery, timer expiry and
// endpoint action is a callback scheduled at an absolute time. Events at the
// same time run in insertion order, which keeps runs fully deterministic.
//
// The queue is slot-based: each pending event lives in a reusable slot whose
// handle carries a generation tag, and the time-ordered heap stores only
// (time, seq, handle) triples. Cancellation just releases the slot — the
// heap entry is skipped lazily on pop when its generation no longer matches.
// Combined with the small-buffer callables this makes Schedule/Cancel
// allocation-free in steady state: slots and heap storage are reused across
// events, and Reset() lets a whole run context be replayed without freeing.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/small_fn.h"
#include "sim/time.h"

namespace quicer::sim {

/// Min-heap driven event loop with cancellable events.
class EventQueue {
 public:
  /// Inline capture budget: sized for the largest hot-path capture (the
  /// link's delivery wrapper embedding a moved datagram) so scheduling it
  /// never allocates.
  using Callback = SmallFn<88>;

  /// Opaque handle identifying a scheduled event; used for cancellation.
  /// The low half addresses a slot (offset by one so zero stays "invalid"),
  /// the high half is the slot's generation at scheduling time, so stale
  /// handles from executed or cancelled events can never hit a reused slot.
  struct Handle {
    std::uint64_t id = 0;
    bool valid() const { return id != 0; }
  };

  /// Current simulation time. Advances only while events run.
  Time now() const { return now_; }

  /// Schedules `cb` to run `delay` from now (clamped to >= 0).
  Handle Schedule(Duration delay, Callback cb);

  /// Schedules `cb` at absolute time `at` (clamped to >= now).
  Handle ScheduleAt(Time at, Callback cb);

  /// Cancels a pending event. Cancelling an already-run or invalid handle is
  /// a no-op.
  void Cancel(Handle handle);

  /// Runs the earliest pending event. Returns false if the queue is empty.
  bool RunOne();

  /// Runs events until the queue is empty.
  void RunUntilIdle();

  /// Runs all events with time <= deadline; afterwards now() == deadline
  /// (unless the queue emptied earlier, in which case now() is the later of
  /// the last event time and the previous now()).
  void RunUntil(Time deadline);

  /// Drops every pending event and rewinds the clock to zero while keeping
  /// slot and heap capacity, so a reused queue schedules without allocating.
  /// All outstanding handles are invalidated (their generations advance).
  void Reset();

  /// Number of pending (non-cancelled) events.
  std::size_t PendingCount() const { return live_count_; }

  /// Total number of events executed so far.
  std::uint64_t executed_count() const { return executed_; }

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  struct Slot {
    Callback cb;
    std::uint32_t generation = 1;  // generations start at 1: gen-0 handles never match
    std::uint32_t next_free = kNilSlot;
    bool live = false;
  };

  struct HeapEntry {
    Time at = 0;
    std::uint64_t seq = 0;  // tie-breaker: FIFO among equal times
    std::uint64_t id = 0;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static std::uint32_t SlotIndex(std::uint64_t id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t Generation(std::uint64_t id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static std::uint64_t EncodeId(std::uint32_t slot_index, std::uint32_t generation) {
    return (static_cast<std::uint64_t>(generation) << 32) |
           (static_cast<std::uint64_t>(slot_index) + 1);
  }

  /// True when `id` addresses a slot whose event is still pending.
  bool IsLive(std::uint64_t id) const {
    const std::uint32_t index = SlotIndex(id);
    return index < slots_.size() && slots_[index].live && slots_[index].generation == Generation(id);
  }

  /// Returns the slot to the free list and invalidates outstanding handles.
  void ReleaseSlot(std::uint32_t index);

  /// Pops stale heap entries until the top references a live event.
  void DropStaleTop();

  std::vector<HeapEntry> heap_;  // manual binary heap (std::push_heap/pop_heap)
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_count_ = 0;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

/// A single re-armable timer on top of EventQueue, as used for PTO and
/// delayed-ACK deadlines. Re-arming cancels the previous deadline.
class Timer {
 public:
  Timer(EventQueue& queue, EventQueue::Callback on_fire)
      : queue_(queue), on_fire_(std::move(on_fire)) {}

  /// Arms (or re-arms) the timer at absolute time `at`. `kNever` disarms.
  void SetDeadline(Time at);

  /// Like SetDeadline, but when the timer is already armed for an *earlier*
  /// time it keeps that event and defers: on the early wake-up it silently
  /// re-arms for the true deadline instead of firing. For timers that are
  /// pushed later far more often than they fire (e.g. an idle timer reset by
  /// every received datagram), this replaces a cancel+reschedule pair per
  /// push with a plain store.
  void SetDeadlineLazy(Time at);

  /// Disarms the timer if armed.
  void Cancel();

  /// Absolute expiry time, or kNever when disarmed.
  Time deadline() const { return deadline_; }

  bool armed() const { return deadline_ != kNever; }

 private:
  EventQueue& queue_;
  EventQueue::Callback on_fire_;
  EventQueue::Handle handle_{};
  Time deadline_ = kNever;
  /// Time the underlying event is actually scheduled for; equals deadline_
  /// except while a lazy re-arm is pending (then scheduled_at_ < deadline_).
  Time scheduled_at_ = kNever;
};

}  // namespace quicer::sim
