// Discrete-event scheduler.
//
// The simulator is single-threaded: every network delivery, timer expiry and
// endpoint action is a callback scheduled at an absolute time. Events at the
// same time run in insertion order, which keeps runs fully deterministic.
//
// The queue is slot-based: each pending event lives in a reusable slot whose
// handle carries a generation tag, and the time-ordered structures store only
// (time, seq, handle) triples. Cancellation just releases the slot — the
// pending entry is skipped lazily when it surfaces. Combined with the
// small-buffer callables this makes Schedule/Cancel allocation-free in steady
// state: slots and entry storage are reused across events, and Reset() lets a
// whole run context be replayed without freeing.
//
// Storage is a hierarchical timing wheel instead of a single binary heap:
//
//  * a short-horizon wheel of kNumBuckets buckets, each kBucketWidth wide
//    (256 x 512 us = ~134 ms of horizon), holds the hot-path events — link
//    deliveries, processing delays, ack timers. Scheduling into the wheel is
//    O(1): a push into the bucket addressed by `at / width mod buckets`.
//  * a small binary min-heap ("overflow") holds deadlines beyond the wheel
//    horizon — PTO backoffs, 30 s idle timers — which are few and usually
//    cancelled, so the log-n cost never sits on the per-event path.
//  * buckets drain into a sorted `ready` run: when the cursor reaches a
//    bucket, its entries (plus matured overflow entries) are sorted by
//    (time, seq) once and then consumed front to back. Sorting at drain time
//    preserves the exact FIFO-within-same-time contract of the old heap —
//    the global execution order is the total order on (time, seq) either
//    way, so exports stay byte-identical.
//
// Events scheduled at or before the bucket being drained (immediate
// callbacks, zero-delay chains) merge into the ready run at their sorted
// position; everything later lands in a wheel bucket or the overflow heap.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/small_fn.h"
#include "sim/time.h"

namespace quicer::sim {

/// Timing-wheel driven event loop with cancellable events.
class EventQueue {
 public:
  EventQueue();

  /// Inline capture budget: sized for the largest hot-path capture (the
  /// link's delivery wrapper embedding a moved datagram) so scheduling it
  /// never allocates.
  using Callback = SmallFn<88>;

  /// Opaque handle identifying a scheduled event; used for cancellation.
  /// The low half addresses a slot (offset by one so zero stays "invalid"),
  /// the high half is the slot's generation at scheduling time, so stale
  /// handles from executed or cancelled events can never hit a reused slot.
  struct Handle {
    std::uint64_t id = 0;
    bool valid() const { return id != 0; }
  };

  /// Current simulation time. Advances only while events run.
  Time now() const { return now_; }

  /// Schedules `cb` to run `delay` from now (clamped to >= 0).
  Handle Schedule(Duration delay, Callback cb);

  /// Schedules `cb` at absolute time `at` (clamped to >= now).
  Handle ScheduleAt(Time at, Callback cb);

  /// Cancels a pending event. Cancelling an already-run or invalid handle is
  /// a no-op.
  void Cancel(Handle handle);

  /// Runs the earliest pending event. Returns false if the queue is empty.
  bool RunOne();

  /// Runs events until the queue is empty.
  void RunUntilIdle();

  /// Runs all events with time <= deadline; afterwards now() == deadline
  /// (unless the deadline precedes the current time).
  void RunUntil(Time deadline);

  /// Drops every pending event and rewinds the clock to zero while keeping
  /// slot, bucket and heap capacity, so a reused queue schedules without
  /// allocating. All outstanding handles are invalidated (their generations
  /// advance).
  void Reset();

  /// Number of pending (non-cancelled) events.
  std::size_t PendingCount() const { return live_count_; }

  /// Total number of events executed so far.
  std::uint64_t executed_count() const { return executed_; }

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  // Wheel geometry: 256 buckets of 2^9 us = 512 us, ~134 ms of horizon.
  static constexpr int kBucketShift = 9;
  static constexpr std::uint32_t kNumBuckets = 256;
  static constexpr std::uint32_t kBucketMask = kNumBuckets - 1;
  static constexpr std::uint32_t kNumWords = kNumBuckets / 64;

  struct Slot {
    // Metadata first: the liveness check that guards every drained entry
    // touches only the leading bytes, keeping the 88-byte callback out of
    // that cache line until the event actually runs.
    std::uint32_t generation = 1;  // generations start at 1: gen-0 handles never match
    std::uint32_t next_free = kNilSlot;
    bool live = false;
    Callback cb;
  };

  struct Entry {
    Time at = 0;
    std::uint64_t seq = 0;  // tie-breaker: FIFO among equal times
    std::uint64_t id = 0;
  };
  /// Min-heap order for the overflow heap (std::push_heap is a max-heap).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  /// Ascending (time, seq) order for the ready run.
  struct Earlier {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
  };

  static std::uint32_t SlotIndex(std::uint64_t id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t Generation(std::uint64_t id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static std::uint64_t EncodeId(std::uint32_t slot_index, std::uint32_t generation) {
    return (static_cast<std::uint64_t>(generation) << 32) |
           (static_cast<std::uint64_t>(slot_index) + 1);
  }

  /// Absolute bucket index of a deadline.
  static std::int64_t BucketOf(Time at) { return at >> kBucketShift; }
  /// Exclusive end time of an absolute bucket (saturating near kNever).
  static Time BucketEnd(std::int64_t abucket) {
    if (abucket >= (kNever >> kBucketShift)) return kNever;
    return (abucket + 1) << kBucketShift;
  }

  /// True when `id` addresses a slot whose event is still pending.
  bool IsLive(std::uint64_t id) const {
    const std::uint32_t index = SlotIndex(id);
    return index < slots_.size() && slots_[index].live && slots_[index].generation == Generation(id);
  }

  /// Returns the slot to the free list and invalidates outstanding handles.
  void ReleaseSlot(std::uint32_t index);

  /// Shared implementation: places an already-clamped deadline. Takes the
  /// callback by rvalue reference so Schedule's forwarding hop costs no
  /// extra relocate.
  Handle ScheduleImpl(Time at, Callback&& cb);

  /// Smallest absolute bucket index > cursor_ with a non-empty wheel slot,
  /// or -1 when the wheel is empty.
  std::int64_t WheelCandidate() const;

  /// Refills the ready run from the wheel/overflow when it is consumed.
  /// Returns false when no entries remain anywhere.
  bool PrepareReady();

  /// Positions ready_pos_ on the next live (non-cancelled) entry, refilling
  /// the ready run as needed. Returns false when the queue is empty.
  bool AdvanceToLiveFront();

  /// Sorted (time, seq) run currently being consumed; entries at or before
  /// bucket `cursor_`. ready_pos_ is the consumption cursor.
  std::vector<Entry> ready_;
  std::size_t ready_pos_ = 0;
  /// Wheel buckets: entries with absolute bucket in (cursor_, cursor_ + 256].
  std::array<std::vector<Entry>, kNumBuckets> buckets_;
  /// One occupancy bit per bucket, for O(1) skip over empty buckets.
  std::array<std::uint64_t, kNumWords> occupied_{};
  /// Binary min-heap of entries beyond the wheel horizon.
  std::vector<Entry> overflow_;
  /// Absolute index of the bucket the ready run was drained from.
  std::int64_t cursor_ = 0;
  /// Entries resident anywhere (ready run unconsumed + buckets + overflow),
  /// including cancelled ones not yet skipped.
  std::size_t stored_ = 0;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_count_ = 0;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

/// A single re-armable timer on top of EventQueue, as used for PTO and
/// delayed-ACK deadlines. Re-arming cancels the previous deadline.
class Timer {
 public:
  Timer(EventQueue& queue, EventQueue::Callback on_fire)
      : queue_(queue), on_fire_(std::move(on_fire)) {}

  /// Arms (or re-arms) the timer at absolute time `at`. `kNever` disarms.
  void SetDeadline(Time at);

  /// Like SetDeadline, but when the timer is already armed for an *earlier*
  /// time it keeps that event and defers: on the early wake-up it silently
  /// re-arms for the true deadline instead of firing. For timers that are
  /// pushed later far more often than they fire (e.g. an idle timer reset by
  /// every received datagram), this replaces a cancel+reschedule pair per
  /// push with a plain store.
  void SetDeadlineLazy(Time at);

  /// Disarms the timer if armed.
  void Cancel();

  /// Forgets the timer's state without touching the queue — for reuse after
  /// EventQueue::Reset() already invalidated every handle.
  void ResetForReuse() {
    handle_ = {};
    deadline_ = kNever;
    scheduled_at_ = kNever;
  }

  /// Absolute expiry time, or kNever when disarmed.
  Time deadline() const { return deadline_; }

  bool armed() const { return deadline_ != kNever; }

 private:
  EventQueue& queue_;
  EventQueue::Callback on_fire_;
  EventQueue::Handle handle_{};
  Time deadline_ = kNever;
  /// Time the underlying event is actually scheduled for; equals deadline_
  /// except while a lazy re-arm is pending (then scheduled_at_ < deadline_).
  Time scheduled_at_ = kNever;
};

}  // namespace quicer::sim
