// Discrete-event scheduler.
//
// The simulator is single-threaded: every network delivery, timer expiry and
// endpoint action is a callback scheduled at an absolute time. Events at the
// same time run in insertion order, which keeps runs fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace quicer::sim {

/// Min-heap driven event loop with cancellable events.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle identifying a scheduled event; used for cancellation.
  struct Handle {
    std::uint64_t id = 0;
    bool valid() const { return id != 0; }
  };

  /// Current simulation time. Advances only while events run.
  Time now() const { return now_; }

  /// Schedules `cb` to run `delay` from now (clamped to >= 0).
  Handle Schedule(Duration delay, Callback cb);

  /// Schedules `cb` at absolute time `at` (clamped to >= now).
  Handle ScheduleAt(Time at, Callback cb);

  /// Cancels a pending event. Cancelling an already-run or invalid handle is
  /// a no-op.
  void Cancel(Handle handle);

  /// Runs the earliest pending event. Returns false if the queue is empty.
  bool RunOne();

  /// Runs events until the queue is empty.
  void RunUntilIdle();

  /// Runs all events with time <= deadline; afterwards now() == deadline
  /// (unless the queue emptied earlier, in which case now() is the later of
  /// the last event time and the previous now()).
  void RunUntil(Time deadline);

  /// Number of pending (non-cancelled) events.
  std::size_t PendingCount() const { return live_.size(); }

  /// Total number of events executed so far.
  std::uint64_t executed_count() const { return executed_; }

 private:
  struct Event {
    Time at = 0;
    std::uint64_t seq = 0;  // tie-breaker: FIFO among equal times
    std::uint64_t id = 0;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  /// Ids scheduled but not yet executed or cancelled. Cancel consults this,
  /// so cancelling an already-executed (or never-issued) handle is a true
  /// no-op: nothing is inserted into cancelled_, which therefore only holds
  /// ids whose events are still in the heap and is popped alongside them —
  /// neither set grows unboundedly over a long run.
  std::unordered_set<std::uint64_t> live_;
  std::unordered_set<std::uint64_t> cancelled_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
};

/// A single re-armable timer on top of EventQueue, as used for PTO and
/// delayed-ACK deadlines. Re-arming cancels the previous deadline.
class Timer {
 public:
  Timer(EventQueue& queue, EventQueue::Callback on_fire)
      : queue_(queue), on_fire_(std::move(on_fire)) {}

  /// Arms (or re-arms) the timer at absolute time `at`. `kNever` disarms.
  void SetDeadline(Time at);

  /// Disarms the timer if armed.
  void Cancel();

  /// Absolute expiry time, or kNever when disarmed.
  Time deadline() const { return deadline_; }

  bool armed() const { return deadline_ != kNever; }

 private:
  EventQueue& queue_;
  EventQueue::Callback on_fire_;
  EventQueue::Handle handle_{};
  Time deadline_ = kNever;
};

}  // namespace quicer::sim
