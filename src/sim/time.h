// Time representation for the discrete-event simulator.
//
// All simulation time is an integer count of microseconds since the start of
// the simulation. Integer time keeps the simulator deterministic across
// platforms and makes event ordering exact.
#pragma once

#include <cstdint>
#include <limits>

namespace quicer::sim {

/// Absolute simulation time in microseconds since simulation start.
using Time = std::int64_t;

/// A span of simulation time in microseconds.
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1'000;
inline constexpr Duration kSecond = 1'000'000;

/// Sentinel for "no deadline" / "never fires".
inline constexpr Time kNever = std::numeric_limits<Time>::max();

/// Converts a duration to fractional milliseconds (for reporting only).
constexpr double ToMillis(Duration d) { return static_cast<double>(d) / 1000.0; }

/// Converts a duration to fractional seconds (for reporting only).
constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / 1'000'000.0; }

/// Builds a duration from (possibly fractional) milliseconds.
constexpr Duration Millis(double ms) { return static_cast<Duration>(ms * 1000.0); }

/// Builds a duration from whole seconds.
constexpr Duration Seconds(std::int64_t s) { return s * kSecond; }

}  // namespace quicer::sim
