// Per-repetition bump arena.
//
// The send/ack/loss hot path parks small, trivially-destructible records —
// a sent packet's retransmittable frames, per-ACK scratch — for the duration
// of one simulated repetition. A bump allocator fits exactly: allocation is
// a pointer increment, nothing is freed individually, and Reset() rewinds
// the whole arena between repetitions while keeping every chunk, so steady
// state after the first repetition allocates nothing.
//
// Rules:
//  * Objects placed in the arena are never destroyed — only memory is
//    reclaimed. Callers must only park objects whose destructor at reset
//    time is a no-op (POD records, or variants currently holding a
//    trivially-destructible alternative).
//  * Reset() invalidates every pointer handed out since the previous
//    Reset(). The owner (core::RunContext) resets endpoints first, so no
//    ledger span survives into the next repetition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace quicer::sim {

/// Chunked bump allocator; Reset() reuses chunk storage.
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t min_chunk_bytes = kDefaultChunkBytes)
      : min_chunk_bytes_(min_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `alignment` (which must not
  /// exceed alignof(std::max_align_t)). Never fails short of OOM.
  void* Allocate(std::size_t bytes, std::size_t alignment) {
    unsigned char* aligned = AlignUp(cursor_, alignment);
    if (aligned + bytes <= limit_) {
      cursor_ = aligned + bytes;
      return aligned;
    }
    return AllocateSlow(bytes, alignment);
  }

  /// Typed convenience: uninitialized storage for `n` objects of T. The
  /// caller placement-constructs; nothing is ever destroyed (see rules).
  template <typename T>
  T* AllocateUninitialized(std::size_t n) {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "Arena chunks are max_align_t aligned");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds the arena to empty, keeping all chunks for reuse. Every pointer
  /// previously returned by Allocate is invalidated.
  void Reset() {
    chunk_index_ = 0;
    if (!chunks_.empty()) {
      cursor_ = chunks_.front().data.get();
      limit_ = cursor_ + chunks_.front().size;
    }
  }

  /// Total chunk capacity held (reserved, not live) — for tests/diagnostics.
  std::size_t BytesReserved() const {
    std::size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
  };

  static unsigned char* AlignUp(unsigned char* p, std::size_t alignment) {
    const std::uintptr_t value = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t aligned = (value + alignment - 1) & ~(alignment - 1);
    return p + (aligned - value);
  }

  /// Out-of-line growth: advance into the next retained chunk, or append a
  /// fresh one big enough for the request.
  void* AllocateSlow(std::size_t bytes, std::size_t alignment);

  std::vector<Chunk> chunks_;
  /// Index of the chunk cursor_/limit_ point into (chunks_.size() when none).
  std::size_t chunk_index_ = 0;
  unsigned char* cursor_ = nullptr;
  unsigned char* limit_ = nullptr;
  std::size_t min_chunk_bytes_;
};

}  // namespace quicer::sim
