#include "sim/loss.h"

namespace quicer::sim {

LossPattern& LossPattern::DropIndices(Direction direction, std::initializer_list<int> indices) {
  for (int index : indices) indexed_.emplace(direction, index);
  return *this;
}

LossPattern& LossPattern::DropRandom(Direction direction, double rate) {
  random_rate_[static_cast<int>(direction)] = rate;
  return *this;
}

LossPattern& LossPattern::DropWindow(Direction direction, Time start, Time end) {
  windows_[static_cast<int>(direction)].emplace_back(start, end);
  return *this;
}

bool LossPattern::ShouldDrop(Direction direction, std::uint64_t index, Time now,
                             Rng& rng) const {
  if (indexed_.count({direction, static_cast<int>(index)}) != 0) return true;
  for (const auto& [start, end] : windows_[static_cast<int>(direction)]) {
    if (now >= start && now < end) return true;
  }
  const double rate = random_rate_[static_cast<int>(direction)];
  return rate > 0.0 && rng.Bernoulli(rate);
}

std::size_t LossPattern::IndexedDropCount(Direction direction) const {
  std::size_t n = 0;
  for (const auto& [dir, index] : indexed_) {
    if (dir == direction) ++n;
  }
  return n;
}

}  // namespace quicer::sim
