#include "sim/rng.h"

#include <cmath>

namespace quicer::sim {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(Next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(Next() % range);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::StandardNormal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * StandardNormal(); }

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double mean) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

Rng Rng::Fork(std::uint64_t label) const {
  // Mix the original seed with the label so forks are independent of how many
  // draws were taken from the parent.
  std::uint64_t s = seed_ ^ (label * 0x94d049bb133111ebULL + 0x2545f4914f6cdd1dULL);
  return Rng(SplitMix64(s));
}

}  // namespace quicer::sim
