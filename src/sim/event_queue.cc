#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace quicer::sim {

EventQueue::Handle EventQueue::Schedule(Duration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(cb));
}

EventQueue::Handle EventQueue::ScheduleAt(Time at, Callback cb) {
  if (at < now_) at = now_;
  std::uint32_t index;
  if (free_head_ != kNilSlot) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.cb = std::move(cb);
  slot.live = true;
  slot.next_free = kNilSlot;
  const std::uint64_t id = EncodeId(index, slot.generation);
  heap_.push_back(HeapEntry{at, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
  return Handle{id};
}

void EventQueue::ReleaseSlot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.live = false;
  if (++slot.generation == 0) slot.generation = 1;  // keep gen-0 unmatchable on wrap
  slot.next_free = free_head_;
  free_head_ = index;
  --live_count_;
}

void EventQueue::Cancel(Handle handle) {
  // Only a live (scheduled, not yet run) event has a slot to release;
  // cancelling an executed, cancelled or invalid handle finds a generation
  // mismatch and is a true no-op. The heap entry stays behind and is skipped
  // lazily when it reaches the top.
  if (!handle.valid() || !IsLive(handle.id)) return;
  const std::uint32_t index = SlotIndex(handle.id);
  slots_[index].cb = nullptr;  // destroy the capture now, not at pop time
  ReleaseSlot(index);
}

void EventQueue::DropStaleTop() {
  while (!heap_.empty() && !IsLive(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::RunOne() {
  DropStaleTop();
  if (heap_.empty()) return false;
  const HeapEntry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();

  const std::uint32_t index = SlotIndex(top.id);
  // Release the slot before invoking: the callback may Schedule, which can
  // grow slots_ and would invalidate any reference into it.
  Callback cb = std::move(slots_[index].cb);
  slots_[index].cb = nullptr;
  ReleaseSlot(index);

  now_ = top.at;
  ++executed_;
  cb();
  return true;
}

void EventQueue::RunUntilIdle() {
  while (RunOne()) {
  }
}

void EventQueue::RunUntil(Time deadline) {
  for (;;) {
    DropStaleTop();
    if (heap_.empty() || heap_.front().at > deadline) break;
    RunOne();
  }
  if (now_ < deadline) now_ = deadline;
}

void EventQueue::Reset() {
  heap_.clear();
  free_head_ = kNilSlot;
  for (std::uint32_t index = static_cast<std::uint32_t>(slots_.size()); index-- > 0;) {
    Slot& slot = slots_[index];
    slot.cb = nullptr;
    slot.live = false;
    if (++slot.generation == 0) slot.generation = 1;
    slot.next_free = free_head_;
    free_head_ = index;
  }
  live_count_ = 0;
  now_ = 0;
  next_seq_ = 0;
  executed_ = 0;
}

void Timer::SetDeadline(Time at) {
  // Re-arming at the unchanged deadline keeps the already-scheduled event
  // (same firing time; the event's FIFO rank among equal timestamps can only
  // matter if another event lands at the exact same tick between the two
  // arms, which the deterministic-export suite guards against).
  if (at == deadline_ && at == scheduled_at_ && handle_.valid()) return;
  Cancel();
  if (at == kNever) return;
  deadline_ = at;
  scheduled_at_ = at;
  handle_ = queue_.ScheduleAt(at, [this] {
    handle_ = {};
    // A lazy push (SetDeadlineLazy) moved the logical deadline past this
    // event's time: re-arm for the real deadline instead of firing.
    if (deadline_ > queue_.now()) {
      const Time real = deadline_;
      deadline_ = kNever;
      scheduled_at_ = kNever;
      SetDeadline(real);
      return;
    }
    deadline_ = kNever;
    scheduled_at_ = kNever;
    on_fire_();
  });
}

void Timer::SetDeadlineLazy(Time at) {
  if (at == kNever) {
    Cancel();
    return;
  }
  if (handle_.valid() && scheduled_at_ <= at) {
    deadline_ = at;  // keep the earlier event; it will defer on wake-up
    return;
  }
  SetDeadline(at);
}

void Timer::Cancel() {
  if (handle_.valid()) queue_.Cancel(handle_);
  handle_ = {};
  deadline_ = kNever;
  scheduled_at_ = kNever;
}

}  // namespace quicer::sim
