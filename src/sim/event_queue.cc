#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "obs/telemetry.h"

namespace quicer::sim {

EventQueue::EventQueue() {
  // Seed every bucket with a little capacity up front (~24 KB total) so the
  // clock sweeping into a bucket for the first time never allocates: steady
  // state is allocation-free from the first wheel rotation, not the second.
  for (std::vector<Entry>& bucket : buckets_) bucket.reserve(4);
}

EventQueue::Handle EventQueue::Schedule(Duration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return ScheduleImpl(now_ + delay, std::move(cb));
}

EventQueue::Handle EventQueue::ScheduleAt(Time at, Callback cb) {
  if (at < now_) at = now_;
  return ScheduleImpl(at, std::move(cb));
}

EventQueue::Handle EventQueue::ScheduleImpl(Time at, Callback&& cb) {
  std::uint32_t index;
  if (free_head_ != kNilSlot) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.cb = std::move(cb);
  slot.live = true;
  slot.next_free = kNilSlot;
  const std::uint64_t id = EncodeId(index, slot.generation);

  const Entry entry{at, next_seq_++, id};
  obs::Count(obs::kEventsScheduled);
  const std::int64_t abucket = BucketOf(at);
  if (abucket <= cursor_) {
    obs::Count(obs::kEventsWheel);
    // At or before the bucket being drained: merge into the ready run at its
    // (time, seq) position. Monotone seq means equal-time inserts append
    // after their peers, preserving FIFO. Chains scheduled in ascending time
    // order — the overwhelmingly common shape — append in O(1).
    if (ready_pos_ == ready_.size()) {
      ready_.clear();
      ready_pos_ = 0;
      ready_.push_back(entry);
    } else if (!Earlier{}(entry, ready_.back())) {
      ready_.push_back(entry);
    } else {
      const auto it = std::upper_bound(ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_),
                                       ready_.end(), entry, Earlier{});
      ready_.insert(it, entry);
    }
  } else if (abucket - cursor_ <= static_cast<std::int64_t>(kNumBuckets)) {
    obs::Count(obs::kEventsWheel);
    const std::uint32_t s = static_cast<std::uint32_t>(abucket) & kBucketMask;
    buckets_[s].push_back(entry);
    occupied_[s >> 6] |= 1ULL << (s & 63);
  } else {
    obs::Count(obs::kEventsOverflow);
    overflow_.push_back(entry);
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  }
  ++stored_;
  ++live_count_;
  return Handle{id};
}

void EventQueue::ReleaseSlot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.live = false;
  if (++slot.generation == 0) slot.generation = 1;  // keep gen-0 unmatchable on wrap
  slot.next_free = free_head_;
  free_head_ = index;
  --live_count_;
}

void EventQueue::Cancel(Handle handle) {
  // Only a live (scheduled, not yet run) event has a slot to release;
  // cancelling an executed, cancelled or invalid handle finds a generation
  // mismatch and is a true no-op. The entry stays behind in whichever
  // structure holds it and is skipped lazily when it surfaces.
  if (!handle.valid() || !IsLive(handle.id)) return;
  obs::Count(obs::kEventsCancelled);
  const std::uint32_t index = SlotIndex(handle.id);
  slots_[index].cb = nullptr;  // destroy the capture now, not at drain time
  ReleaseSlot(index);
}

std::int64_t EventQueue::WheelCandidate() const {
  // Occupied slots all map to absolute buckets in (cursor_, cursor_ + 256];
  // the first set bit in cyclic order from (cursor_ + 1) is therefore the
  // earliest one. Scan whole 64-bit words, splitting the start word into its
  // high (i == 0) and wrapped low (i == kNumWords) halves.
  const std::uint32_t start = static_cast<std::uint32_t>(cursor_ + 1) & kBucketMask;
  for (std::uint32_t i = 0; i <= kNumWords; ++i) {
    const std::uint32_t w = ((start >> 6) + i) % kNumWords;
    std::uint64_t bits = occupied_[w];
    if (i == 0) {
      bits &= ~0ULL << (start & 63);
    } else if (i == kNumWords) {
      const std::uint32_t r = start & 63;
      bits &= r ? (1ULL << r) - 1 : 0ULL;
    }
    if (bits != 0) {
      const std::uint32_t s = (w << 6) | static_cast<std::uint32_t>(__builtin_ctzll(bits));
      const std::uint32_t dist = (s - start) & kBucketMask;
      return cursor_ + 1 + static_cast<std::int64_t>(dist);
    }
  }
  return -1;
}

bool EventQueue::PrepareReady() {
  if (ready_pos_ < ready_.size()) return true;
  ready_.clear();
  ready_pos_ = 0;
  while (stored_ > 0) {
    // Jump the cursor straight to the earliest populated bucket, whether it
    // lives on the wheel or (still) in the overflow heap.
    std::int64_t cand = WheelCandidate();
    if (!overflow_.empty()) {
      const std::int64_t ocand = BucketOf(overflow_.front().at);
      if (cand < 0 || ocand < cand) cand = ocand;
    }
    if (cand < 0) return false;  // unreachable while stored_ > 0
    cursor_ = cand;

    const Time bucket_end = BucketEnd(cursor_);
    while (!overflow_.empty() && overflow_.front().at < bucket_end) {
      std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
      ready_.push_back(overflow_.back());
      overflow_.pop_back();
    }
    const std::uint32_t s = static_cast<std::uint32_t>(cursor_) & kBucketMask;
    if (occupied_[s >> 6] & (1ULL << (s & 63))) {
      std::vector<Entry>& bucket = buckets_[s];
      ready_.insert(ready_.end(), bucket.begin(), bucket.end());
      bucket.clear();
      occupied_[s >> 6] &= ~(1ULL << (s & 63));
    }
    if (!ready_.empty()) {
      if (ready_.size() > 1) std::sort(ready_.begin(), ready_.end(), Earlier{});
      return true;
    }
  }
  return false;
}

bool EventQueue::AdvanceToLiveFront() {
  for (;;) {
    if (!PrepareReady()) return false;
    while (ready_pos_ < ready_.size()) {
      if (IsLive(ready_[ready_pos_].id)) return true;
      ++ready_pos_;  // cancelled: skip the stale entry
      --stored_;
    }
  }
}

bool EventQueue::RunOne() {
  if (!AdvanceToLiveFront()) return false;
  const Entry top = ready_[ready_pos_++];
  --stored_;

  const std::uint32_t index = SlotIndex(top.id);
  // Release the slot before invoking: the callback may Schedule, and must be
  // free to reuse this slot or grow slots_. ConsumeInvoke relocates the
  // callable to its own stack before running it, which makes that safe.
  ReleaseSlot(index);

  now_ = top.at;
  ++executed_;
  obs::Count(obs::kEventsRun);
  slots_[index].cb.ConsumeInvoke();
  return true;
}

void EventQueue::RunUntilIdle() {
  while (RunOne()) {
  }
}

void EventQueue::RunUntil(Time deadline) {
  while (AdvanceToLiveFront() && ready_[ready_pos_].at <= deadline) {
    RunOne();
  }
  if (now_ < deadline) now_ = deadline;
}

void EventQueue::Reset() {
  ready_.clear();
  ready_pos_ = 0;
  overflow_.clear();
  for (std::uint32_t w = 0; w < kNumWords; ++w) {
    std::uint64_t bits = occupied_[w];
    while (bits != 0) {
      const std::uint32_t s = (w << 6) + static_cast<std::uint32_t>(__builtin_ctzll(bits));
      buckets_[s].clear();
      bits &= bits - 1;
    }
    occupied_[w] = 0;
  }
  cursor_ = 0;
  stored_ = 0;
  free_head_ = kNilSlot;
  for (std::uint32_t index = static_cast<std::uint32_t>(slots_.size()); index-- > 0;) {
    Slot& slot = slots_[index];
    slot.cb = nullptr;
    slot.live = false;
    if (++slot.generation == 0) slot.generation = 1;
    slot.next_free = free_head_;
    free_head_ = index;
  }
  live_count_ = 0;
  now_ = 0;
  next_seq_ = 0;
  executed_ = 0;
}

void Timer::SetDeadline(Time at) {
  // Re-arming at the unchanged deadline keeps the already-scheduled event
  // (same firing time; the event's FIFO rank among equal timestamps can only
  // matter if another event lands at the exact same tick between the two
  // arms, which the deterministic-export suite guards against).
  if (at == deadline_ && at == scheduled_at_ && handle_.valid()) return;
  Cancel();
  if (at == kNever) return;
  deadline_ = at;
  scheduled_at_ = at;
  handle_ = queue_.ScheduleAt(at, [this] {
    handle_ = {};
    // A lazy push (SetDeadlineLazy) moved the logical deadline past this
    // event's time: re-arm for the real deadline instead of firing.
    if (deadline_ > queue_.now()) {
      const Time real = deadline_;
      deadline_ = kNever;
      scheduled_at_ = kNever;
      SetDeadline(real);
      return;
    }
    deadline_ = kNever;
    scheduled_at_ = kNever;
    on_fire_();
  });
}

void Timer::SetDeadlineLazy(Time at) {
  if (at == kNever) {
    Cancel();
    return;
  }
  if (handle_.valid() && scheduled_at_ <= at) {
    deadline_ = at;  // keep the earlier event; it will defer on wake-up
    return;
  }
  SetDeadline(at);
}

void Timer::Cancel() {
  if (handle_.valid()) queue_.Cancel(handle_);
  handle_ = {};
  deadline_ = kNever;
  scheduled_at_ = kNever;
}

}  // namespace quicer::sim
