#include "sim/event_queue.h"

#include <utility>

namespace quicer::sim {

EventQueue::Handle EventQueue::Schedule(Duration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(cb));
}

EventQueue::Handle EventQueue::ScheduleAt(Time at, Callback cb) {
  if (at < now_) at = now_;
  Event event;
  event.at = at;
  event.seq = next_seq_++;
  event.id = next_id_++;
  event.cb = std::move(cb);
  const Handle handle{event.id};
  live_.insert(event.id);
  heap_.push(std::move(event));
  return handle;
}

void EventQueue::Cancel(Handle handle) {
  // Only a live (scheduled, not yet run) event needs a tombstone; cancelling
  // an executed or invalid handle must not leak into cancelled_.
  if (handle.valid() && live_.erase(handle.id) != 0) cancelled_.insert(handle.id);
}

bool EventQueue::RunOne() {
  while (!heap_.empty()) {
    Event event = heap_.top();
    heap_.pop();
    if (auto it = cancelled_.find(event.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    live_.erase(event.id);
    now_ = event.at;
    ++executed_;
    event.cb();
    return true;
  }
  return false;
}

void EventQueue::RunUntilIdle() {
  while (RunOne()) {
  }
}

void EventQueue::RunUntil(Time deadline) {
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      heap_.pop();
      continue;
    }
    if (top.at > deadline) break;
    RunOne();
  }
  if (now_ < deadline) now_ = deadline;
}

void Timer::SetDeadline(Time at) {
  Cancel();
  if (at == kNever) return;
  deadline_ = at;
  handle_ = queue_.ScheduleAt(at, [this] {
    deadline_ = kNever;
    handle_ = {};
    on_fire_();
  });
}

void Timer::Cancel() {
  if (handle_.valid()) queue_.Cancel(handle_);
  handle_ = {};
  deadline_ = kNever;
}

}  // namespace quicer::sim
