// Deterministic datagram loss patterns.
//
// The paper (§3) deliberately avoids stochastic loss: it drops *specific*
// UDP datagrams (by per-direction index) so that root causes can be traced.
// LossPattern reproduces that: indices are 1-based counts of datagrams sent
// in one direction since connection start. A stochastic mode is also
// provided for robustness tests.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <set>
#include <utility>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace quicer::sim {

/// Direction of travel across the emulated path.
enum class Direction { kClientToServer = 0, kServerToClient = 1 };

constexpr const char* ToString(Direction d) {
  return d == Direction::kClientToServer ? "client->server" : "server->client";
}

/// Decides which datagrams the path drops.
class LossPattern {
 public:
  /// No loss at all.
  LossPattern() = default;

  /// Drops the datagrams with the given 1-based indices in `direction`.
  LossPattern& DropIndices(Direction direction, std::initializer_list<int> indices);

  /// Same, from any iterable container.
  template <typename Container>
  LossPattern& DropIndexRange(Direction direction, const Container& indices) {
    for (int index : indices) indexed_.emplace(direction, index);
    return *this;
  }

  /// Adds independent random loss with probability `rate` per datagram in
  /// `direction` (applied on top of any indexed drops).
  LossPattern& DropRandom(Direction direction, double rate);

  /// Drops every datagram sent in `direction` during [start, end) — a path
  /// blackout (persistent-congestion scenarios).
  LossPattern& DropWindow(Direction direction, Time start, Time end);

  /// Returns true if the `index`-th datagram (1-based) sent at `now` in
  /// `direction` must be dropped. `rng` is only consulted when random loss
  /// is configured.
  bool ShouldDrop(Direction direction, std::uint64_t index, Time now, Rng& rng) const;

  /// Back-compat overload for time-independent patterns (now = 0).
  bool ShouldDrop(Direction direction, std::uint64_t index, Rng& rng) const {
    return ShouldDrop(direction, index, 0, rng);
  }

  /// True if no drops are configured at all.
  bool empty() const {
    return indexed_.empty() && random_rate_[0] == 0.0 && random_rate_[1] == 0.0 &&
           windows_[0].empty() && windows_[1].empty();
  }

  /// Number of indexed drops configured for `direction`.
  std::size_t IndexedDropCount(Direction direction) const;

 private:
  std::set<std::pair<Direction, int>> indexed_;
  double random_rate_[2] = {0.0, 0.0};
  std::vector<std::pair<Time, Time>> windows_[2];
};

}  // namespace quicer::sim
