// Deterministic pseudo-random number generation for simulations.
//
// Every experiment owns an Rng seeded from its configuration, so a run is a
// pure function of its parameters. The generator is xoshiro256**, seeded via
// splitmix64, which is fast and has no measurable bias for our use.
#pragma once

#include <array>
#include <cstdint>

namespace quicer::sim {

/// Deterministic random number generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with equal seeds produce
  /// identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (mean 0, stddev 1).
  double StandardNormal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu, sigma)). Median is exp(mu).
  double LogNormal(double mu, double sigma);

  /// Exponential with the given mean (> 0).
  double Exponential(double mean);

  /// Forks an independent child generator; deterministic in (seed, label).
  Rng Fork(std::uint64_t label) const;

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace quicer::sim
