// Emulated bidirectional network path.
//
// Mirrors the QUIC Interop Runner setup the paper uses: symmetric one-way
// delay, a configurable bottleneck bandwidth (10 Mbit/s in all paper
// experiments), and a deterministic datagram-loss pattern. Payloads are
// opaque: the sender passes the datagram size plus a delivery closure, so the
// link has no dependency on the QUIC layer.
//
// The path is composed from netem models (Config::model): per-direction
// stochastic loss (Bernoulli / Gilbert–Elliott) layered after the
// deterministic patterns, a bounded FIFO bottleneck queue with tail-drop
// AQM instead of the free transmitter-busy clock, and per-direction
// overrides of bandwidth / one-way delay / jitter. The default model
// reproduces the legacy symmetric pipe bit for bit — same arithmetic, same
// RNG draws.
#pragma once

#include <cstdint>
#include <functional>

#include "netem/loss_process.h"
#include "netem/model.h"
#include "netem/queue.h"
#include "sim/event_queue.h"
#include "sim/loss.h"
#include "sim/rng.h"
#include "sim/small_fn.h"
#include "sim/time.h"

namespace quicer::sim {

/// Point-to-point path between a client and a server.
class Link {
 public:
  /// Delivery closure type. Sized so a moved-in datagram (vector + index)
  /// plus the receiving endpoint pointer stay inline — the link's own
  /// delivery wrapper then also fits the event queue's inline budget, so a
  /// datagram in flight costs no heap allocation.
  using DeliverFn = SmallFn<48>;
  struct Config {
    /// Symmetric one-way delay (paper: 0.5 ms .. 150 ms).
    Duration one_way_delay = Millis(4.5);
    /// Bottleneck bandwidth in bits per second (paper: 10 Mbit/s).
    double bandwidth_bps = 10e6;
    /// Fixed per-datagram overhead added to serialisation (IP+UDP headers).
    std::size_t header_overhead_bytes = 28;
    /// Uniform per-datagram extra delay in [0, jitter]; values above the
    /// inter-datagram spacing reorder deliveries (robustness testing).
    Duration jitter = 0;
    /// Emulation models; the default is the legacy symmetric pipe. Path
    /// overrides in the model replace the symmetric values above per
    /// direction.
    netem::LinkModel model;
  };

  struct DirectionStats {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_dropped = 0;
    std::uint64_t datagrams_delivered = 0;
    std::uint64_t bytes_sent = 0;
    /// Breakdown of datagrams_dropped by cause.
    std::uint64_t dropped_pattern = 0;     // deterministic index patterns
    std::uint64_t dropped_stochastic = 0;  // Bernoulli / Gilbert–Elliott
    std::uint64_t dropped_queue = 0;       // bottleneck-queue AQM
    /// Bottleneck-queue occupancy high-water marks (0 under the legacy
    /// transmitter-clock model).
    std::uint64_t max_queue_pkts = 0;
    std::uint64_t max_queue_bytes = 0;
  };

  /// Which emulation stage dropped a datagram (for the drop hook / qlog).
  enum class DropCause { kPattern, kStochastic, kQueue };

  /// Observer invoked for every dropped datagram with the direction, cause
  /// and payload size. Null by default (the drop paths pay one branch);
  /// installed by qlog capture, cleared by ResetForRun. Must not draw
  /// randomness — the link's RNG stream is part of the deterministic
  /// scenario contract.
  using DropHook = std::function<void(Direction, DropCause, std::size_t)>;

  Link(EventQueue& queue, Config config, Rng rng);

  /// Rewinds the path to freshly-constructed state for context reuse between
  /// repetitions: new config and rng, datagram indices restarted, stats and
  /// queues emptied, loss pattern cleared (re-install via set_loss_pattern).
  void ResetForRun(const Config& config, Rng rng);

  /// Installs the loss pattern applied to subsequent sends.
  void set_loss_pattern(LossPattern pattern) { loss_ = std::move(pattern); }

  /// Installs (or clears, with nullptr) the drop observer.
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  /// Round trip time implied by the configured one-way delay.
  Duration rtt() const { return 2 * config_.one_way_delay; }

  const Config& config() const { return config_; }

  /// Transmits a datagram of `bytes` payload bytes in `direction`. On
  /// successful delivery, `deliver` runs at the arrival time. Returns the
  /// 1-based per-direction datagram index (assigned whether or not the
  /// datagram is dropped, matching how the paper counts datagrams).
  std::uint64_t Send(Direction direction, std::size_t bytes, DeliverFn deliver);

  /// The index the next Send in `direction` will assign — lets a sender
  /// stamp the datagram before moving it into the delivery closure.
  std::uint64_t PeekNextIndex(Direction direction) const {
    return next_index_[static_cast<int>(direction)];
  }

  const DirectionStats& stats(Direction direction) const {
    return stats_[static_cast<int>(direction)];
  }

 private:
  /// Resolves the per-direction path parameters from config_ (symmetric
  /// values with the model's overrides applied). Shared by the constructor
  /// and ResetForRun.
  void ApplyModel();

  EventQueue& queue_;
  Config config_;
  Rng rng_;
  LossPattern loss_;
  DropHook drop_hook_;
  // Per-direction resolved path parameters (symmetric config with the
  // model's overrides applied).
  double bandwidth_bps_[2];
  Duration one_way_delay_[2];
  Duration jitter_[2];
  netem::LossProcess loss_process_[2];
  netem::BottleneckQueue bottleneck_[2];
  // Earliest time the transmitter in each direction is free again; models the
  // bottleneck queue under the legacy transmitter-clock model.
  Time tx_free_[2] = {0, 0};
  std::uint64_t next_index_[2] = {1, 1};
  DirectionStats stats_[2];
};

}  // namespace quicer::sim
