#include "sim/arena.h"

namespace quicer::sim {

void* Arena::AllocateSlow(std::size_t bytes, std::size_t alignment) {
  // Advance into retained chunks first — after a Reset the later chunks are
  // all empty and simply waiting to be reused.
  while (chunk_index_ + 1 < chunks_.size()) {
    ++chunk_index_;
    cursor_ = chunks_[chunk_index_].data.get();
    limit_ = cursor_ + chunks_[chunk_index_].size;
    unsigned char* aligned = AlignUp(cursor_, alignment);
    if (aligned + bytes <= limit_) {
      cursor_ = aligned + bytes;
      return aligned;
    }
  }
  const std::size_t want = bytes + alignment;
  const std::size_t size = want > min_chunk_bytes_ ? want : min_chunk_bytes_;
  chunks_.push_back(Chunk{std::make_unique<unsigned char[]>(size), size});
  chunk_index_ = chunks_.size() - 1;
  cursor_ = chunks_.back().data.get();
  limit_ = cursor_ + size;
  unsigned char* aligned = AlignUp(cursor_, alignment);
  cursor_ = aligned + bytes;
  return aligned;
}

}  // namespace quicer::sim
