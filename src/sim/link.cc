#include "sim/link.h"

#include <utility>

namespace quicer::sim {

Link::Link(EventQueue& queue, Config config, Rng rng)
    : queue_(queue), config_(config), rng_(rng) {}

Duration Link::SerialisationDelay(std::size_t bytes) const {
  const double bits = static_cast<double>(bytes + config_.header_overhead_bytes) * 8.0;
  return static_cast<Duration>(bits / config_.bandwidth_bps * static_cast<double>(kSecond));
}

std::uint64_t Link::Send(Direction direction, std::size_t bytes, DeliverFn deliver) {
  const int dir = static_cast<int>(direction);
  const std::uint64_t index = next_index_[dir]++;
  auto& stats = stats_[dir];
  ++stats.datagrams_sent;
  stats.bytes_sent += bytes;

  if (loss_.ShouldDrop(direction, index, queue_.now(), rng_)) {
    ++stats.datagrams_dropped;
    return index;
  }

  // The transmitter serialises datagrams back to back; a datagram queued while
  // the transmitter is busy waits for the line to free up.
  const Time start = std::max(queue_.now(), tx_free_[dir]);
  const Time serialised = start + SerialisationDelay(bytes);
  tx_free_[dir] = serialised;
  Time arrival = serialised + config_.one_way_delay;
  if (config_.jitter > 0) {
    arrival += static_cast<Duration>(rng_.Uniform(0.0, static_cast<double>(config_.jitter)));
  }

  queue_.ScheduleAt(arrival, [this, dir, deliver = std::move(deliver)]() mutable {
    ++stats_[dir].datagrams_delivered;
    deliver();
  });
  return index;
}

}  // namespace quicer::sim
