#include "sim/link.h"

#include <algorithm>
#include <utility>

#include "obs/telemetry.h"

namespace quicer::sim {

Link::Link(EventQueue& queue, Config config, Rng rng)
    : queue_(queue), config_(config), rng_(rng) {
  ApplyModel();
}

void Link::ApplyModel() {
  for (int dir : {netem::kUp, netem::kDown}) {
    const netem::PathOverride& path = config_.model.path[dir];
    bandwidth_bps_[dir] = path.bandwidth_bps.value_or(config_.bandwidth_bps);
    one_way_delay_[dir] = path.one_way_delay.value_or(config_.one_way_delay);
    jitter_[dir] = path.jitter.value_or(config_.jitter);
    loss_process_[dir] = netem::LossProcess(config_.model.loss[dir]);
    // Reset (not reassignment) so the deque keeps its allocated blocks.
    bottleneck_[dir].Reset(config_.model.queue[dir]);
  }
}

void Link::ResetForRun(const Config& config, Rng rng) {
  config_ = config;
  rng_ = rng;
  loss_ = LossPattern();
  drop_hook_ = nullptr;
  ApplyModel();
  for (int dir : {netem::kUp, netem::kDown}) {
    tx_free_[dir] = 0;
    next_index_[dir] = 1;
    stats_[dir] = DirectionStats{};
  }
}

std::uint64_t Link::Send(Direction direction, std::size_t bytes, DeliverFn deliver) {
  const int dir = static_cast<int>(direction);
  const std::uint64_t index = next_index_[dir]++;
  auto& stats = stats_[dir];
  ++stats.datagrams_sent;
  stats.bytes_sent += bytes;

  if (loss_.ShouldDrop(direction, index, queue_.now(), rng_)) {
    ++stats.datagrams_dropped;
    ++stats.dropped_pattern;
    obs::Count(static_cast<obs::Counter>(obs::kNetemDropPatternUp + dir));
    if (drop_hook_) drop_hook_(direction, DropCause::kPattern, bytes);
    return index;
  }
  // Stochastic loss layers after the deterministic patterns; an inert
  // process draws nothing, keeping the legacy RNG stream intact.
  if (!loss_process_[dir].inert() && loss_process_[dir].ShouldDrop(rng_)) {
    ++stats.datagrams_dropped;
    ++stats.dropped_stochastic;
    obs::Count(static_cast<obs::Counter>(obs::kNetemDropStochasticUp + dir));
    if (drop_hook_) drop_hook_(direction, DropCause::kStochastic, bytes);
    return index;
  }
  obs::Count(static_cast<obs::Counter>(obs::kNetemEnqueuedUp + dir));

  const double bits =
      static_cast<double>(bytes + config_.header_overhead_bytes) * 8.0;
  Time serialised;
  if (bottleneck_[dir].active()) {
    const std::size_t wire = bytes + config_.header_overhead_bytes;
    const std::optional<Time> departure =
        bottleneck_[dir].Enqueue(queue_.now(), wire, bandwidth_bps_[dir]);
    const netem::BottleneckQueue::Stats& queue_stats = bottleneck_[dir].stats();
    stats.max_queue_pkts = queue_stats.max_pkts;
    stats.max_queue_bytes = queue_stats.max_bytes;
    obs::CountMax(static_cast<obs::Counter>(obs::kNetemMaxQueuePktsUp + dir),
                  queue_stats.max_pkts);
    obs::CountMax(static_cast<obs::Counter>(obs::kNetemMaxQueueBytesUp + dir),
                  queue_stats.max_bytes);
    if (!departure) {
      ++stats.datagrams_dropped;
      ++stats.dropped_queue;
      obs::Count(static_cast<obs::Counter>(obs::kNetemDropQueueUp + dir));
      if (drop_hook_) drop_hook_(direction, DropCause::kQueue, bytes);
      return index;
    }
    serialised = *departure;
  } else {
    // The transmitter serialises datagrams back to back; a datagram queued
    // while the transmitter is busy waits for the line to free up.
    const Time start = std::max(queue_.now(), tx_free_[dir]);
    serialised = start + static_cast<Duration>(bits / bandwidth_bps_[dir] *
                                               static_cast<double>(kSecond));
    tx_free_[dir] = serialised;
  }
  Time arrival = serialised + one_way_delay_[dir];
  if (jitter_[dir] > 0) {
    arrival += static_cast<Duration>(rng_.Uniform(0.0, static_cast<double>(jitter_[dir])));
  }

  queue_.ScheduleAt(arrival, [this, dir, deliver = std::move(deliver)]() mutable {
    ++stats_[dir].datagrams_delivered;
    deliver();
  });
  return index;
}

}  // namespace quicer::sim
