// QScanner-style prober and vantage points.
//
// One probe = one QUIC handshake + HTTP/3 HEAD request to a domain from a
// vantage point; the classifier mirrors the paper's: "instant ACK" means the
// ClientHello is followed by a separate server ACK preceding the TLS
// ServerHello; an ACK coalesced with the ServerHello counts as non-IACK
// (or as the cached fast path in the Cloudflare study).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "scan/cdn_model.h"
#include "scan/population.h"
#include "sim/rng.h"

namespace quicer::scan {

/// Measurement locations (§3: Hamburg, Los Angeles, São Paulo, Hong Kong).
enum class Vantage { kHamburg, kLosAngeles, kSaoPaulo, kHongKong };

inline constexpr std::array<Vantage, 4> kAllVantages = {
    Vantage::kHamburg, Vantage::kLosAngeles, Vantage::kSaoPaulo, Vantage::kHongKong};

std::string_view Name(Vantage vantage);

/// Median RTT [ms] from a vantage to a CDN's nearest frontend. Same-city
/// anycast keeps these low; Google's IACK deployment is mostly reachable
/// from São Paulo (Appendix G).
double MedianRttMs(Vantage vantage, Cdn cdn);

/// Outcome of one probe.
struct ProbeResult {
  bool success = false;        // domain answered over QUIC
  bool iack_observed = false;  // separate ACK preceding the ServerHello
  bool coalesced = false;      // ACK arrived coalesced with the ServerHello
  double rtt_ms = 0.0;
  double ack_sh_delay_ms = 0.0;       // Fig 8 metric (0 when coalesced)
  double reported_ack_delay_ms = 0.0; // Fig 10 metric
  Cdn cdn = Cdn::kOthers;
};

/// Stateless prober; deterministic in (seed, domain, vantage, day).
class Prober {
 public:
  explicit Prober(std::uint64_t seed) : seed_(seed) {}

  ProbeResult Probe(const Domain& domain, Vantage vantage, std::uint64_t day) const;

 private:
  std::uint64_t seed_;
};

}  // namespace quicer::scan
