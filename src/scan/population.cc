#include "scan/population.h"

#include <algorithm>
#include <cmath>

#include "scan/prober.h"

namespace quicer::scan {

TrancoPopulation::TrancoPopulation(std::size_t size, std::uint64_t seed) {
  sim::Rng rng(seed);
  domains_.resize(size);
  scale_ = static_cast<double>(size) / 1'000'000.0;

  // Build the pool of CDN slots scaled from Table 1, then deal them onto
  // ranks; popular ranks preferentially land on the big CDNs, coarsely
  // matching reality (Cloudflare dominates the long tail too).
  std::vector<Cdn> slots;
  for (Cdn cdn : kAllCdns) {
    const CdnProfile& profile = GetCdnProfile(cdn);
    const int count = std::max(1, static_cast<int>(std::lround(profile.domain_count * scale_)));
    for (int i = 0; i < count; ++i) slots.push_back(cdn);
  }
  // Deterministic shuffle.
  for (std::size_t i = slots.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.UniformInt(0, static_cast<int>(i - 1)));
    std::swap(slots[i - 1], slots[j]);
  }

  std::size_t slot = 0;
  for (std::size_t i = 0; i < size; ++i) {
    Domain& domain = domains_[i];
    domain.rank = static_cast<int>(i) + 1;
    // Spread QUIC-speaking domains uniformly over the ranked list.
    const bool gets_cdn = slot < slots.size() &&
                          rng.Bernoulli(static_cast<double>(slots.size()) /
                                        static_cast<double>(size));
    if (!gets_cdn) continue;

    const CdnProfile& profile = GetCdnProfile(slots[slot++]);
    domain.speaks_quic = true;
    domain.cdn = profile.cdn;
    domain.asn = profile.as_numbers.empty()
                     ? static_cast<std::uint32_t>(64512 + rng.UniformInt(0, 1023))
                     : profile.as_numbers[static_cast<std::size_t>(
                           rng.UniformInt(0, static_cast<int>(profile.as_numbers.size()) - 1))];
    domain.iack_enabled = rng.Bernoulli(profile.iack_share);
    // Popularity-dependent certificate caching: only genuinely hot domains
    // (the discord.com case: 91.9 % coalesced) keep their certificate on the
    // frontend; a cold 1M scan almost always sees the fetch path, which is
    // why the paper still measures 99.9 % separate IACKs for Cloudflare.
    const double hot = std::exp(-static_cast<double>(domain.rank) /
                                (0.0005 * static_cast<double>(size) + 1.0));
    domain.cache_probability =
        std::clamp(profile.coalesce_share * 3.5 * hot + 0.001, 0.0, 0.95);
  }
  // Assign any remaining slots to the tail (rounding slack).
  for (std::size_t i = 0; i < size && slot < slots.size(); ++i) {
    if (domains_[i].speaks_quic) continue;
    Domain& domain = domains_[i];
    const CdnProfile& profile = GetCdnProfile(slots[slot++]);
    domain.speaks_quic = true;
    domain.cdn = profile.cdn;
    domain.asn = profile.as_numbers.empty() ? 64512u : profile.as_numbers.front();
    domain.iack_enabled = rng.Bernoulli(profile.iack_share);
    domain.cache_probability = 0.001;
  }
}

int TrancoPopulation::CountQuic(Cdn cdn) const {
  int count = 0;
  for (const Domain& domain : domains_) {
    if (domain.speaks_quic && domain.cdn == cdn) ++count;
  }
  return count;
}

bool ObservedIackState(const Domain& domain, std::uint64_t day, std::uint64_t vantage,
                       std::uint64_t seed) {
  const CdnProfile& profile = GetCdnProfile(domain.cdn);

  // Appendix G: Google's IACK-enabled frontends are only significantly
  // reachable from São Paulo — which is why Google's max variation (11.5 %)
  // equals its whole deployment share.
  if (domain.cdn == Cdn::kGoogle && domain.iack_enabled &&
      vantage != static_cast<std::uint64_t>(Vantage::kSaoPaulo)) {
    sim::Rng far(seed ^ (static_cast<std::uint64_t>(domain.rank) * 0xd6e8feb86659fd93ULL) ^
                 (day * 0x2545f4914f6cdd1dULL) ^ vantage);
    if (far.Bernoulli(0.9)) return false;
  }

  if (profile.iack_variation <= 0.0) return domain.iack_enabled;
  // Google's published variation (11.5 % = its whole share) is entirely the
  // vantage effect handled above; no additional per-measurement churn.
  if (domain.cdn == Cdn::kGoogle) return domain.iack_enabled;

  // The observed variation is *per measurement*, not per domain: anycast
  // routes whole frontend clusters differently by day and vantage (Amazon:
  // up to 18 percentage points across measurements). Draw one downward bias
  // per (cdn, day, vantage) — the stable ground truth is the maximum, as in
  // Table 1's "enabled (max.)" column — and flip a correlated share of the
  // enabled domains off, scaled so the published variation is reachable.
  if (!domain.iack_enabled) return false;
  sim::Rng measurement(seed ^ (static_cast<std::uint64_t>(domain.cdn) * 0x9e3779b97f4a7c15ULL) ^
                       (day * 0xb5297a4d3a2d9fefULL) ^ (vantage * 0x68e31da4bb794b45ULL));
  const double bias = measurement.Uniform(0.0, 1.0);
  const double flip_probability =
      std::min(1.0, bias * profile.iack_variation / std::max(profile.iack_share, 0.01));

  sim::Rng domain_rng(seed ^ (static_cast<std::uint64_t>(domain.rank) * 0x94d049bb133111ebULL) ^
                      (day * 0xbf58476d1ce4e5b9ULL) ^ (vantage * 0x68e31da4bb794b45ULL));
  return !domain_rng.Bernoulli(flip_probability);
}

}  // namespace quicer::scan
