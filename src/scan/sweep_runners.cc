#include "scan/sweep_runners.h"

#include <utility>

namespace quicer::scan {

core::SweepExtraAxis VantageAxis(const std::vector<Vantage>& vantages) {
  core::SweepExtraAxis axis;
  axis.name = "vantage";
  axis.values.reserve(vantages.size());
  for (Vantage vantage : vantages) {
    axis.values.push_back(
        {std::string(Name(vantage)), static_cast<std::int64_t>(vantage)});
  }
  return axis;
}

core::SweepExtraAxis CdnAxis(const std::vector<Cdn>& cdns) {
  core::SweepExtraAxis axis;
  axis.name = "cdn";
  axis.values.reserve(cdns.size());
  for (Cdn cdn : cdns) {
    axis.values.push_back({std::string(Name(cdn)), static_cast<std::int64_t>(cdn)});
  }
  return axis;
}

core::SweepExtraAxis DayAxis(int days) {
  core::SweepExtraAxis axis;
  axis.name = "day";
  axis.values.reserve(static_cast<std::size_t>(days > 0 ? days : 0));
  for (int day = 0; day < days; ++day) {
    axis.values.push_back({std::to_string(day), day});
  }
  return axis;
}

Vantage PointVantage(const core::SweepPoint& point, Vantage fallback) {
  const core::SweepAxisValue* value = point.Extra("vantage");
  return value != nullptr ? static_cast<Vantage>(value->value) : fallback;
}

std::optional<Cdn> PointCdn(const core::SweepPoint& point) {
  const core::SweepAxisValue* value = point.Extra("cdn");
  if (value == nullptr) return std::nullopt;
  return static_cast<Cdn>(value->value);
}

std::uint64_t PointDay(const core::SweepPoint& point) {
  const core::SweepAxisValue* value = point.Extra("day");
  return value != nullptr ? static_cast<std::uint64_t>(value->value) : 0;
}

ProbeFilter MatchPointCdn() {
  return [](const core::SweepPoint& point, const Domain& domain) {
    const std::optional<Cdn> cdn = PointCdn(point);
    return !cdn.has_value() || domain.cdn == *cdn;
  };
}

core::SweepRunner ProbeRunner(std::shared_ptr<const TrancoPopulation> population,
                              std::uint64_t prober_seed, ProbeFilter filter,
                              std::vector<ProbeMetricFn> metrics) {
  return [population = std::move(population), prober_seed, filter = std::move(filter),
          metrics = std::move(metrics)](const core::SweepRunContext& ctx) {
    std::vector<double> values(metrics.size(), core::NoSample());
    const auto& domains = population->domains();
    const std::size_t index = static_cast<std::size_t>(ctx.repetition);
    if (index >= domains.size()) return values;
    const Domain& domain = domains[index];
    if (filter && !filter(ctx.point, domain)) return values;

    const Prober prober(prober_seed);
    const ProbeResult result =
        prober.Probe(domain, PointVantage(ctx.point), PointDay(ctx.point));
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      values[m] = metrics[m](ctx.point, domain, result);
    }
    return values;
  };
}

core::SweepRunner StudyRunner(
    std::function<CloudflareStudyConfig(const core::SweepPoint&)> make_config,
    std::vector<StudyMetricFn> metrics) {
  // One study per point, shared by its repetitions: the generic keyed memo
  // (per-key once_flag) keyed by the stable point id. The config depends
  // only on the point, so the outcome depends only on the key, as the memo
  // requires.
  return core::KeyedOutcomeRunner<StudyOutcome, std::size_t>(
      [](const core::SweepRunContext& ctx) { return ctx.point.index; },
      [make_config = std::move(make_config)](const std::size_t&,
                                             const core::SweepRunContext& ctx) {
        StudyOutcome outcome;
        outcome.points = RunCloudflareStudy(make_config(ctx.point));
        outcome.summary = SummarizeStudy(outcome.points);
        return outcome;
      },
      [metrics = std::move(metrics)](const StudyOutcome& outcome,
                                     const core::SweepRunContext& ctx) {
        std::vector<double> values;
        values.reserve(metrics.size());
        for (const StudyMetricFn& metric : metrics) {
          values.push_back(metric(outcome, ctx));
        }
        return values;
      });
}

}  // namespace quicer::scan
