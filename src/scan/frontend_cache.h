// Frontend certificate cache model.
//
// CDN frontends provision customer certificates on demand and keep them hot
// for a while (§4.3: popular Cloudflare domains like discord.com answer with
// *coalesced* ACK+SH — the certificate was cached — while cold domains take
// the Δt fetch path; the paper's own domains probed at 60 connections/minute
// saw 7.5 % coalesced responses).
//
// The model: a frontend cluster holds an LRU cache of certificate entries
// with a TTL; each incoming connection either hits (coalesced ACK+SH, Δt≈0)
// or misses (fetch, then insert). A cluster serves many domains, and one
// domain's probes spread over `frontends_per_cluster` machines, which is why
// even fast probing doesn't guarantee a hit.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace quicer::scan {

/// LRU + TTL certificate cache of one frontend cluster.
class FrontendCertCache {
 public:
  struct Config {
    /// Entries the cluster keeps hot (per domain; machine slots inside).
    std::size_t capacity = 1024;
    /// Per-machine entry lifetime after the last touch on that machine.
    sim::Duration ttl = sim::Seconds(300);
    /// Machines behind the cluster VIP: a connection lands on one at random
    /// and each machine caches independently. Large clusters are why even
    /// 60 probes/minute only saw 7.5 % coalesced responses in the paper,
    /// while organically popular domains (discord.com: 91.9 %) are hot on
    /// every machine.
    int frontends_per_cluster = 4;
  };

  FrontendCertCache(Config config, sim::Rng rng) : config_(config), rng_(rng) {}

  /// Records a connection for `domain` at `now`. Returns true on a cache hit
  /// (the frontend answers with a coalesced ACK+SH); on a miss the entry is
  /// inserted (certificate fetched).
  bool OnConnection(const std::string& domain, sim::Time now);

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double HitRate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  struct Entry {
    std::string domain;
    sim::Time last_touch = 0;                  // newest touch on any machine
    std::vector<sim::Time> machine_touch;      // per-machine last touch (-1 = cold)
  };

  void EvictExpired(sim::Time now);

  Config config_;
  sim::Rng rng_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace quicer::scan
