#include "scan/prober.h"

#include <algorithm>

namespace quicer::scan {

std::string_view Name(Vantage vantage) {
  switch (vantage) {
    case Vantage::kHamburg: return "Hamburg, DE";
    case Vantage::kLosAngeles: return "Los Angeles, US";
    case Vantage::kSaoPaulo: return "Sao Paulo, BR";
    case Vantage::kHongKong: return "Hong Kong, HK";
  }
  return "?";
}

double MedianRttMs(Vantage vantage, Cdn cdn) {
  // Anycast CDNs answer from nearby PoPs; "Others" are often origin-hosted
  // and farther away. Google's IACK-enabled frontends are significantly
  // reachable only from São Paulo (Appendix G / Fig 14).
  double base = 0.0;
  switch (vantage) {
    case Vantage::kHamburg: base = 6.0; break;
    case Vantage::kLosAngeles: base = 7.0; break;
    case Vantage::kSaoPaulo: base = 8.0; break;
    case Vantage::kHongKong: base = 9.0; break;
  }
  switch (cdn) {
    case Cdn::kCloudflare: return base * 0.3;  // same-city anycast (~2 ms)
    case Cdn::kFastly: return base * 0.6;
    case Cdn::kAkamai: return base * 0.8;
    case Cdn::kAmazon: return base * 1.2;
    case Cdn::kGoogle: return vantage == Vantage::kSaoPaulo ? base * 0.9 : base * 2.5;
    case Cdn::kMeta: return base * 0.9;
    case Cdn::kMicrosoft: return base * 1.4;
    case Cdn::kOthers: return base * 6.0;
  }
  return base;
}

ProbeResult Prober::Probe(const Domain& domain, Vantage vantage, std::uint64_t day) const {
  ProbeResult result;
  if (!domain.speaks_quic) return result;

  sim::Rng rng(seed_ ^ (static_cast<std::uint64_t>(domain.rank) * 0x2545f4914f6cdd1dULL) ^
               (static_cast<std::uint64_t>(vantage) * 0x9e3779b97f4a7c15ULL) ^
               (day * 0xd6e8feb86659fd93ULL));

  const CdnProfile& profile = GetCdnProfile(domain.cdn);
  result.success = true;
  result.cdn = domain.cdn;
  const double rtt_median = MedianRttMs(vantage, domain.cdn);
  result.rtt_ms = std::max(0.3, rng.Normal(rtt_median, rtt_median * 0.15));

  const bool frontend_iack = ObservedIackState(domain, day, static_cast<std::uint64_t>(vantage),
                                               seed_);
  if (!frontend_iack) {
    // WFC frontend (or cached cert): the client sees ACK+SH coalesced.
    result.coalesced = true;
    result.reported_ack_delay_ms =
        SampleReportedAckDelayMs(profile, result.rtt_ms, rng, /*coalesced=*/true);
    return result;
  }

  // IACK frontend: cached certificates still coalesce (the Fig 9 signal).
  const bool cached = rng.Bernoulli(domain.cache_probability);
  if (cached) {
    result.coalesced = true;
    result.reported_ack_delay_ms =
        SampleReportedAckDelayMs(profile, result.rtt_ms, rng, /*coalesced=*/true);
    return result;
  }

  result.iack_observed = true;
  result.ack_sh_delay_ms = SampleAckShDelayMs(profile, rng, /*coalesced=*/false);
  result.reported_ack_delay_ms =
      SampleReportedAckDelayMs(profile, result.rtt_ms, rng, /*coalesced=*/false);
  return result;
}

}  // namespace quicer::scan
