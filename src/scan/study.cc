#include "scan/study.h"

#include <cmath>

#include "core/experiment.h"
#include "stats/stats.h"

namespace quicer::scan {

double DiurnalFactor(int hour_of_day, double amplitude) {
  // Load ramps up from ~07:00, peaks mid-afternoon, falls off by ~19:00.
  if (hour_of_day < 7 || hour_of_day > 19) return 1.0;
  const double phase = (static_cast<double>(hour_of_day) - 7.0) / 12.0;  // 0..1
  return 1.0 + amplitude * std::sin(phase * M_PI);
}

std::vector<HourlyPoint> RunCloudflareStudy(const CloudflareStudyConfig& config) {
  std::vector<HourlyPoint> points;
  points.reserve(static_cast<std::size_t>(config.hours));
  sim::Rng rng(config.seed);
  const double rtt_ms = MedianRttMs(config.vantage, Cdn::kCloudflare);

  for (int hour = 0; hour < config.hours; ++hour) {
    std::vector<double> ack_times;
    std::vector<double> sh_times;
    std::vector<double> coalesced_times;

    const double factor = DiurnalFactor(hour % 24, config.diurnal_amplitude);

    for (int s = 0; s < config.samples_per_hour; ++s) {
      core::ExperimentConfig experiment;
      experiment.client = clients::ClientImpl::kQuicGo;  // QScanner is quic-go based
      experiment.http = http::Version::kHttp3;
      experiment.behavior = quic::ServerBehavior::kInstantAck;
      experiment.rtt = sim::Millis(std::max(0.4, rng.Normal(rtt_ms, rtt_ms * 0.1)));
      experiment.certificate_bytes = tls::kSmallCertificateBytes;
      experiment.cert_cached = rng.Bernoulli(config.cache_probability);
      const double delay_ms =
          rng.LogNormal(std::log(config.base_cert_delay_ms * factor), 0.35);
      experiment.cert_fetch_delay = sim::Millis(delay_ms);
      experiment.signing = tls::SigningModel{sim::Millis(0.6), 0.2};  // tuned frontends
      experiment.response_body_bytes = 1024;  // HEAD-like exchange
      experiment.seed = rng.Next();
      experiment.time_limit = sim::Seconds(5);

      const core::ExperimentResult result = core::RunExperiment(experiment);
      if (result.client.first_ack_received < 0) continue;  // packet loss filter (§3)

      const double ack_ms = sim::ToMillis(result.client.first_ack_received);
      const double sh_ms = result.client.first_crypto_received < 0
                               ? -1.0
                               : sim::ToMillis(result.client.first_crypto_received);
      const bool coalesced =
          sh_ms >= 0 && std::abs(sh_ms - ack_ms) < 0.1;  // same-datagram arrival
      if (coalesced) {
        coalesced_times.push_back(ack_ms);
      } else {
        ack_times.push_back(ack_ms);
        if (sh_ms >= 0) sh_times.push_back(sh_ms);
      }
    }

    HourlyPoint point;
    point.hour = hour;
    if (!ack_times.empty()) {
      point.median_ack_ms = stats::Median(ack_times);
      point.p25_ack_ms = stats::Percentile(ack_times, 25.0);
      point.p75_ack_ms = stats::Percentile(ack_times, 75.0);
    }
    if (!sh_times.empty()) point.median_sh_ms = stats::Median(sh_times);
    if (!coalesced_times.empty()) point.median_coalesced_ms = stats::Median(coalesced_times);
    point.ack_samples = static_cast<int>(ack_times.size());
    point.coalesced_samples = static_cast<int>(coalesced_times.size());
    points.push_back(point);
  }
  return points;
}

StudySummary SummarizeStudy(const std::vector<HourlyPoint>& points) {
  StudySummary summary;
  std::vector<double> acks;
  std::vector<double> shs;
  std::vector<double> gaps;
  int ack_total = 0;
  int coalesced_total = 0;
  for (const HourlyPoint& point : points) {
    if (point.median_ack_ms >= 0) acks.push_back(point.median_ack_ms);
    if (point.median_sh_ms >= 0) shs.push_back(point.median_sh_ms);
    if (point.median_ack_ms >= 0 && point.median_sh_ms >= 0) {
      gaps.push_back(point.median_sh_ms - point.median_ack_ms);
    }
    ack_total += point.ack_samples;
    coalesced_total += point.coalesced_samples;
  }
  summary.median_ack_ms = stats::Median(acks);
  summary.median_sh_ms = stats::Median(shs);
  summary.median_gap_ms = stats::Median(gaps);
  summary.avoided_pto_inflation_ms = 3.0 * summary.median_gap_ms;
  const int total = ack_total + coalesced_total;
  summary.coalesced_share = total > 0 ? static_cast<double>(coalesced_total) / total : 0.0;
  return summary;
}

}  // namespace quicer::scan
