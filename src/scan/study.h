// Week-long Cloudflare study (Fig 9 / Fig 15, §3 "Macroscopic view").
//
// The paper schedules one connection per minute to its own Free-Tier
// domains and to popular Tranco domains served by Cloudflare, from four
// vantage points, for one week — measuring the time from ClientHello to
// (a) a separate instant ACK, (b) the following ServerHello, and (c) a
// coalesced ACK+ServerHello (certificate cached on the frontend).
//
// Here every sampled connection is an actual handshake through the QUIC
// engine: Δt is drawn from a diurnally modulated distribution (daytime load
// increases the frontend -> cert-store delay, Appendix G) and certificate
// caching follows the domain's popularity.
#pragma once

#include <cstdint>
#include <vector>

#include "scan/prober.h"
#include "sim/time.h"

namespace quicer::scan {

struct CloudflareStudyConfig {
  int hours = 168;           // one week
  int samples_per_hour = 6;  // scaled from the paper's 1/min cadence
  Vantage vantage = Vantage::kSaoPaulo;
  std::uint64_t seed = 42;
  /// Probability a probe hits a frontend with the certificate cached
  /// (higher for the paper's popular Tranco domains; ~7.5 % for its own
  /// fast-probed domains).
  double cache_probability = 0.075;
  /// Median frontend -> cert-store delay at night [ms]; daytime load
  /// multiplies this (Appendix G).
  double base_cert_delay_ms = 1.1;
  /// Peak daytime multiplier.
  double diurnal_amplitude = 0.8;
};

/// One hour of aggregated samples (Fig 9 rows).
struct HourlyPoint {
  int hour = 0;                  // hours since study start
  double median_ack_ms = -1.0;   // separate instant ACK, time since CH
  double median_sh_ms = -1.0;    // ServerHello following a separate ACK
  double median_coalesced_ms = -1.0;  // coalesced ACK+SH
  double p25_ack_ms = -1.0;
  double p75_ack_ms = -1.0;
  int ack_samples = 0;
  int coalesced_samples = 0;
};

/// Daytime load factor for a given hour-of-day (local time).
double DiurnalFactor(int hour_of_day, double amplitude);

/// Runs the study; each sample is a full engine handshake.
std::vector<HourlyPoint> RunCloudflareStudy(const CloudflareStudyConfig& config);

/// Summary across the whole study: the median gap between instant ACK and
/// ServerHello (the PTO inflation WFC would have caused — §4.3 reports 6.3
/// to 7.2 ms of avoided inflation).
struct StudySummary {
  double median_ack_ms = 0.0;
  double median_sh_ms = 0.0;
  double median_gap_ms = 0.0;        // SH - ACK
  double avoided_pto_inflation_ms = 0.0;  // 3x gap
  double coalesced_share = 0.0;
};

StudySummary SummarizeStudy(const std::vector<HourlyPoint>& points);

}  // namespace quicer::scan
