// Sweep runners backed by the scan layer (QScanner prober, Cloudflare
// study), so the measurement-study benches (Fig 8/10/14, Table 1, Fig 9/15)
// declare axes — vantage, CDN, day, hour — exactly like testbed benches and
// run on the shared sweep engine: global scheduling, streaming aggregation,
// trace-mode CDFs and time series, CSV/JSON export.
//
// Conventions: scan dimensions ride on the generic SweepExtraAxis mechanism
// under the canonical axis names "vantage", "cdn" and "day" (the axis
// factories below). A runner reads the point's extras; absent axes fall back
// to São Paulo / day 0, the paper's main vantage.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/sweep.h"
#include "scan/population.h"
#include "scan/prober.h"
#include "scan/study.h"

namespace quicer::scan {

/// Extra axis "vantage" over the given vantage points.
core::SweepExtraAxis VantageAxis(const std::vector<Vantage>& vantages);

/// Extra axis "cdn" over the given CDNs.
core::SweepExtraAxis CdnAxis(const std::vector<Cdn>& cdns);

/// Extra axis "day" over days 0 .. days-1.
core::SweepExtraAxis DayAxis(int days);

/// The point's vantage ("vantage" extra), or `fallback`.
Vantage PointVantage(const core::SweepPoint& point, Vantage fallback = Vantage::kSaoPaulo);

/// The point's CDN ("cdn" extra), or nullopt when the axis is absent.
std::optional<Cdn> PointCdn(const core::SweepPoint& point);

/// The point's day ("day" extra), or 0.
std::uint64_t PointDay(const core::SweepPoint& point);

/// Decides whether a domain participates in a point's repetitions at all
/// (false = every metric records "no sample" and the probe is skipped, which
/// is what keeps a CDN axis as cheap as the legacy single-pass loops).
using ProbeFilter = std::function<bool(const core::SweepPoint&, const Domain&)>;

/// Filter: only domains hosted by the point's "cdn" extra (pass-through
/// when the axis is absent).
ProbeFilter MatchPointCdn();

/// Extracts one metric value from one probe. Return core::NoSample() to
/// skip the repetition for this metric.
using ProbeMetricFn =
    std::function<double(const core::SweepPoint&, const Domain&, const ProbeResult&)>;

/// Runner: repetition r probes population->domains()[r] from the point's
/// vantage/day extras and applies the per-metric extractors (aligned with
/// the spec's MetricSpec set). Use repetitions == population->size(); the
/// trace of a metric then follows population rank order, exactly like the
/// legacy per-domain loops.
core::SweepRunner ProbeRunner(std::shared_ptr<const TrancoPopulation> population,
                              std::uint64_t prober_seed, ProbeFilter filter,
                              std::vector<ProbeMetricFn> metrics);

/// One Cloudflare study, run once per point and shared by its repetitions.
struct StudyOutcome {
  std::vector<HourlyPoint> points;
  StudySummary summary;
};

/// Extracts one metric value from the point's study outcome. For time-series
/// sweeps the repetition index is the study hour
/// (outcome.points[ctx.repetition]); for per-vantage summary sweeps use one
/// repetition and read outcome.summary.
using StudyMetricFn =
    std::function<double(const StudyOutcome&, const core::SweepRunContext&)>;

/// Runner: lazily runs RunCloudflareStudy(make_config(point)) once per point
/// (memoized; concurrent repetitions of the point share the outcome) and
/// applies the per-metric extractors.
core::SweepRunner StudyRunner(
    std::function<CloudflareStudyConfig(const core::SweepPoint&)> make_config,
    std::vector<StudyMetricFn> metrics);

}  // namespace quicer::scan
