#include "scan/cdn_model.h"

#include <algorithm>
#include <cmath>

namespace quicer::scan {
namespace {

// Table 1 (counts, IACK shares, variation), Table 5 (AS numbers), Fig 8
// (ACK->SH delay medians: Cloudflare 3.2 ms, Amazon 6.4 ms, Google 30.3 ms,
// Akamai 20.9 ms), Fig 10 (ACK Delay vs RTT behaviour).
const CdnProfile kProfiles[] = {
    {Cdn::kAkamai, "Akamai", {16625, 20940}, 533, 0.322, 0.129, 20.9, 0.9, 0.10, 0.998, 0.39},
    {Cdn::kAmazon, "Amazon", {14618, 16509}, 4338, 0.410, 0.180, 6.4, 0.8, 0.15, 0.873, 0.80},
    {Cdn::kCloudflare, "Cloudflare", {13335, 209242}, 247407, 0.999, 0.001, 3.2, 0.6, 0.25,
     0.999, 0.90},
    {Cdn::kFastly, "Fastly", {54113}, 3960, 0.0, 0.0, 0.0, 0.0, 0.0, 0.605, 0.0},
    {Cdn::kGoogle, "Google", {15169, 396982}, 6062, 0.115, 0.115, 30.3, 1.0, 0.05, 0.348, 0.70},
    {Cdn::kMeta, "Meta", {32934}, 112, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0},
    {Cdn::kMicrosoft, "Microsoft", {8075}, 34, 0.0, 0.0, 0.0, 0.0, 0.0, 0.8, 0.0},
    {Cdn::kOthers, "Others", {}, 26404, 0.215, 0.023, 10.0, 1.1, 0.10, 0.779, 0.209},
};

}  // namespace

std::string_view Name(Cdn cdn) { return GetCdnProfile(cdn).name; }

const CdnProfile& GetCdnProfile(Cdn cdn) { return kProfiles[static_cast<int>(cdn)]; }

Cdn CdnFromAsn(std::uint32_t asn) {
  for (const CdnProfile& profile : kProfiles) {
    if (std::find(profile.as_numbers.begin(), profile.as_numbers.end(), asn) !=
        profile.as_numbers.end()) {
      return profile.cdn;
    }
  }
  return Cdn::kOthers;
}

double SampleAckShDelayMs(const CdnProfile& profile, sim::Rng& rng, bool coalesced) {
  if (coalesced) return 0.0;
  if (profile.ack_sh_delay_median_ms <= 0.0) return 0.0;
  const double mu = std::log(profile.ack_sh_delay_median_ms);
  return rng.LogNormal(mu, profile.ack_sh_delay_sigma);
}

double SampleReportedAckDelayMs(const CdnProfile& profile, double rtt_ms, sim::Rng& rng,
                                bool coalesced) {
  const double exceed_share = coalesced ? profile.ack_delay_exceeds_rtt_coalesced
                                        : profile.ack_delay_exceeds_rtt_iack;
  if (rng.Bernoulli(exceed_share)) {
    // Fig 10: for coalesced ACK+SH the overshoot hugs the RTT (99.8 % of
    // domains within 1 ms); separate IACKs overshoot more broadly.
    const double overshoot = coalesced ? rng.Uniform(0.0, 1.0) : rng.Exponential(15.0);
    return rtt_ms + overshoot;
  }
  return rng.Uniform(0.0, std::max(rtt_ms - 0.1, 0.1));
}

}  // namespace quicer::scan
