// CDN deployment models for the macroscopic measurements (§4.3, Appendix G).
//
// The paper scans the Tranco Top-1M with QScanner, maps responding IPs to
// CDNs via origin AS (Table 5), and classifies instant-ACK behaviour per
// CDN (Table 1), the ACK->ServerHello delay distribution (Fig 8/14), and
// the reported ACK Delay relative to the RTT (Fig 10). Since the real
// Internet is not available here, these published distributions are encoded
// as the *ground truth* of a synthetic population; the prober then measures
// them back through the same classification pipeline.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace quicer::scan {

enum class Cdn {
  kAkamai,
  kAmazon,
  kCloudflare,
  kFastly,
  kGoogle,
  kMeta,
  kMicrosoft,
  kOthers,
};

inline constexpr std::array<Cdn, 8> kAllCdns = {
    Cdn::kAkamai, Cdn::kAmazon, Cdn::kCloudflare, Cdn::kFastly,
    Cdn::kGoogle, Cdn::kMeta,   Cdn::kMicrosoft,  Cdn::kOthers,
};

std::string_view Name(Cdn cdn);

/// Ground-truth behaviour of one CDN's QUIC frontends.
struct CdnProfile {
  Cdn cdn;
  std::string_view name;
  /// Origin AS numbers (Table 5). "Others" matches anything unlisted.
  std::vector<std::uint32_t> as_numbers;
  /// Tranco Top-1M domains responding over QUIC (Table 1, "Domains #").
  int domain_count;
  /// Share of those domains with instant ACK enabled (Table 1, %).
  double iack_share;
  /// Maximum observed variation across vantage points/days (Table 1, %).
  double iack_variation;
  /// Median delay between instant ACK and ServerHello [ms] (Fig 8) and the
  /// log-normal sigma of that delay.
  double ack_sh_delay_median_ms;
  double ack_sh_delay_sigma;
  /// Share of IACK-enabled responses arriving as *coalesced* ACK+SH
  /// (certificate already cached on the frontend).
  double coalesce_share;
  /// Fig 10: share of coalesced ACK+SH whose reported ACK Delay exceeds the
  /// RTT, and the same for separate instant ACKs.
  double ack_delay_exceeds_rtt_coalesced;
  double ack_delay_exceeds_rtt_iack;
};

const CdnProfile& GetCdnProfile(Cdn cdn);

/// Maps an origin AS number to a CDN (Table 5); unlisted ASes are "Others".
Cdn CdnFromAsn(std::uint32_t asn);

/// Samples an ACK->ServerHello delay (ms) for a domain of this CDN. A
/// coalesced response returns 0 (plotted as zero delay in Fig 8).
double SampleAckShDelayMs(const CdnProfile& profile, sim::Rng& rng, bool coalesced);

/// Samples the ACK Delay field value [ms] a frontend reports, given the
/// path RTT and whether the response was coalesced (Fig 10 behaviour).
double SampleReportedAckDelayMs(const CdnProfile& profile, double rtt_ms, sim::Rng& rng,
                                bool coalesced);

}  // namespace quicer::scan
