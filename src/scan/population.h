// Synthetic Tranco-style domain population.
//
// Builds a ranked list of domains, assigns the CDN-hosted subset according
// to the per-CDN counts of Table 1 (scaled to the population size), and
// derives per-domain ground truth: origin AS, instant-ACK deployment (with
// the day/vantage variation the paper observed, up to 18 % for Amazon), and
// certificate-cache popularity (popular domains are more likely served a
// coalesced ACK+SH — the effect behind Fig 9's discord.com vs tinyurl.com
// difference).
#pragma once

#include <cstdint>
#include <vector>

#include "scan/cdn_model.h"
#include "sim/rng.h"

namespace quicer::scan {

struct Domain {
  int rank = 0;              // 1-based Tranco rank
  bool speaks_quic = false;  // non-CDN, non-QUIC domains fail the probe
  Cdn cdn = Cdn::kOthers;
  std::uint32_t asn = 0;
  /// Stable per-domain IACK deployment decision.
  bool iack_enabled = false;
  /// Probability the certificate is cached on the frontend at probe time.
  double cache_probability = 0.0;
};

class TrancoPopulation {
 public:
  /// Builds a population of `size` ranked domains with `seed` determinism.
  TrancoPopulation(std::size_t size, std::uint64_t seed);

  const std::vector<Domain>& domains() const { return domains_; }

  /// Domains hosted by `cdn` that respond over QUIC.
  int CountQuic(Cdn cdn) const;

  std::size_t size() const { return domains_.size(); }

  /// Scale factor applied to Table 1 counts (population / 1M).
  double scale() const { return scale_; }

 private:
  std::vector<Domain> domains_;
  double scale_ = 1.0;
};

/// Per-day / per-vantage deployment flip: with probability derived from the
/// CDN's observed variation, the measured IACK state differs from the
/// stable ground truth (load balancing across heterogeneous frontends).
bool ObservedIackState(const Domain& domain, std::uint64_t day, std::uint64_t vantage,
                       std::uint64_t seed);

}  // namespace quicer::scan
