#include "scan/frontend_cache.h"

#include <algorithm>

namespace quicer::scan {

void FrontendCertCache::EvictExpired(sim::Time now) {
  while (!lru_.empty() && lru_.back().last_touch + config_.ttl < now) {
    entries_.erase(lru_.back().domain);
    lru_.pop_back();
  }
}

bool FrontendCertCache::OnConnection(const std::string& domain, sim::Time now) {
  EvictExpired(now);

  const int frontend =
      static_cast<int>(rng_.UniformInt(0, std::max(1, config_.frontends_per_cluster) - 1));

  auto it = entries_.find(domain);
  if (it != entries_.end()) {
    Entry entry = std::move(*it->second);
    lru_.erase(it->second);
    const sim::Time machine_touch =
        entry.machine_touch[static_cast<std::size_t>(frontend)];
    const bool hot = machine_touch >= 0 && machine_touch + config_.ttl >= now;
    entry.machine_touch[static_cast<std::size_t>(frontend)] = now;
    entry.last_touch = now;
    lru_.push_front(std::move(entry));
    entries_[domain] = lru_.begin();
    if (hot) {
      ++hits_;
      return true;
    }
    // The cluster knows the domain but this machine fetched the certificate.
    ++misses_;
    return false;
  }

  ++misses_;
  Entry entry;
  entry.domain = domain;
  entry.last_touch = now;
  entry.machine_touch.assign(static_cast<std::size_t>(config_.frontends_per_cluster), -1);
  entry.machine_touch[static_cast<std::size_t>(frontend)] = now;
  lru_.push_front(std::move(entry));
  entries_[domain] = lru_.begin();

  if (entries_.size() > config_.capacity) {
    entries_.erase(lru_.back().domain);
    lru_.pop_back();
  }
  return false;
}

}  // namespace quicer::scan
