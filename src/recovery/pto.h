// Probe Timeout computation (RFC 9002 §6.2).
//
//   PTO = smoothed_rtt + max(4*rttvar, kGranularity) [+ max_ack_delay]
//
// The max_ack_delay term applies only in the application space once the
// handshake is underway. Before any RTT sample exists, implementations fall
// back to a default PTO — the RFC recommends an initial RTT of 333 ms
// (PTO 999 ms) but deployed stacks choose much lower values (Table 4).
// Every PTO expiry doubles the backoff.
#pragma once

#include "quic/types.h"
#include "recovery/rtt_estimator.h"
#include "sim/time.h"

namespace quicer::recovery {

/// Timer granularity (RFC 9002 kGranularity).
inline constexpr sim::Duration kGranularity = sim::Millis(1);

/// RFC 9002 initial RTT assumption, yielding the 999 ms default PTO.
inline constexpr sim::Duration kInitialRtt = sim::Millis(333);

struct PtoConfig {
  /// PTO period used before the first RTT sample (Table 4 per client;
  /// 3 * kInitialRtt per the RFC).
  sim::Duration default_pto = 3 * kInitialRtt;
  /// Peer's max_ack_delay contribution in the application space.
  sim::Duration peer_max_ack_delay = sim::Millis(25);
};

/// PTO period for one expiry (before applying the backoff exponent).
sim::Duration PtoPeriod(const RttEstimator& rtt, const PtoConfig& config,
                        quic::PacketNumberSpace space, bool handshake_confirmed);

/// PTO period with exponential backoff applied (backoff_count doublings).
sim::Duration PtoPeriodWithBackoff(const RttEstimator& rtt, const PtoConfig& config,
                                   quic::PacketNumberSpace space, bool handshake_confirmed,
                                   int backoff_count);

}  // namespace quicer::recovery
