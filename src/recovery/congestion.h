// NewReno congestion control (RFC 9002 §7).
//
// The paper's transfers run over a 10 Mbit/s bottleneck; congestion control
// matters mostly for the 10 MB downloads (Fig 11) where the window must open
// past the bandwidth-delay product. Slow start, congestion avoidance and a
// single-reduction-per-recovery-period response to loss are implemented.
#pragma once

#include <cstddef>

#include "sim/time.h"

namespace quicer::recovery {

class NewRenoCongestion {
 public:
  struct Config {
    std::size_t max_datagram_size = 1200;
    std::size_t initial_window_packets = 10;  // RFC 9002 recommendation
    std::size_t min_window_packets = 2;
    double loss_reduction_factor = 0.5;
  };

  NewRenoCongestion();  // default configuration
  explicit NewRenoCongestion(Config config);

  void OnPacketSent(std::size_t bytes);
  void OnPacketAcked(std::size_t bytes, sim::Time sent_time);
  void OnPacketsLost(std::size_t bytes, sim::Time largest_lost_sent_time, sim::Time now);
  /// Removes bytes from flight without CC reaction (e.g. key discard).
  void OnPacketDiscarded(std::size_t bytes);

  /// Persistent congestion (RFC 9002 §7.6): every packet across a span
  /// longer than the persistent-congestion duration was lost — collapse the
  /// window to the minimum and restart slow start.
  void OnPersistentCongestion();

  /// Duration threshold: (smoothed + max(4*rttvar, granularity) +
  /// max_ack_delay) * kPersistentCongestionThreshold.
  static sim::Duration PersistentCongestionDuration(sim::Duration pto_period) {
    return 3 * pto_period;
  }

  bool CanSend(std::size_t bytes) const;
  std::size_t AvailableWindow() const;

  std::size_t congestion_window() const { return cwnd_; }
  std::size_t bytes_in_flight() const { return bytes_in_flight_; }
  std::size_t slow_start_threshold() const { return ssthresh_; }
  bool InSlowStart() const { return cwnd_ < ssthresh_; }
  bool InRecovery(sim::Time sent_time) const { return sent_time <= recovery_start_; }

 private:
  Config config_;
  std::size_t cwnd_;
  std::size_t ssthresh_;
  std::size_t bytes_in_flight_ = 0;
  sim::Time recovery_start_ = -1;
};

}  // namespace quicer::recovery
