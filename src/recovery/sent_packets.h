// Sent-packet ledger and loss detection (RFC 9002 §6.1).
//
// One ledger per packet number space. It remembers every ack-eliciting or
// in-flight packet until acknowledged or declared lost, provides the RTT
// sample on ack receipt (only when the *largest newly acked* packet is
// ack-eliciting — the rule that makes the server blind after an instant ACK,
// Fig 6), and implements packet-threshold + time-threshold loss detection.
//
// Storage is a vector kept sorted by packet number (packet numbers are
// assigned monotonically, so insertion IS a push_back; the one out-of-order
// repair path rotates a late record into place and is counted, never
// silent). All iteration orders are ascending-pn, matching the previous
// std::map-based implementation bit for bit. The Into-suffixed entry points
// fill caller-owned scratch buffers, and each record's retransmittable
// frames live in the per-repetition arena (see sim/arena.h) as a non-owning
// FrameSpan — the per-ACK hot path allocates nothing in steady state.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "quic/frame.h"
#include "quic/types.h"
#include "sim/time.h"

namespace quicer::recovery {

/// Non-owning view of a packet's retransmittable frames, parked in the run
/// arena by the sender. Only trivially-destructible frame alternatives
/// (CRYPTO/STREAM/MAX_DATA/HANDSHAKE_DONE/NEW_CONNECTION_ID) are ever
/// stored, so dropping a span — on ack, on loss, or at arena reset — needs
/// no cleanup. Valid until the owning arena resets.
struct FrameSpan {
  quic::Frame* data = nullptr;
  std::uint32_t count = 0;

  quic::Frame* begin() const { return data; }
  quic::Frame* end() const { return data + count; }
  std::uint32_t size() const { return count; }
  bool empty() const { return count == 0; }
};

/// Metadata for one sent packet. Trivially copyable: the frame storage is an
/// arena-backed span, not an owned container.
struct SentPacket {
  std::uint64_t packet_number = 0;
  sim::Time sent_time = 0;
  std::size_t bytes = 0;
  bool ack_eliciting = false;
  bool in_flight = false;
  /// Frames to replay if the packet is declared lost.
  FrameSpan retransmittable;
};

/// Outcome of processing one ACK frame.
struct AckResult {
  std::vector<SentPacket> newly_acked;
  /// Set when the largest acked packet is among the newly acked.
  std::optional<SentPacket> largest_newly_acked;
  /// True when a valid RTT sample is available: largest newly acked is
  /// ack-eliciting (RFC 9002 §5.1).
  bool rtt_sample_available = false;
  sim::Duration latest_rtt = 0;
  std::size_t newly_acked_bytes = 0;
  bool any_ack_eliciting_newly_acked = false;
};

/// Packet reordering threshold (RFC 9002 kPacketThreshold).
inline constexpr std::uint64_t kPacketThreshold = 3;

/// Per-space ledger of unacknowledged packets.
class SentPacketLedger {
 public:
  void OnPacketSent(SentPacket packet);

  /// Processes an ACK received at `now`.
  AckResult OnAckReceived(const quic::AckFrame& ack, sim::Time now);

  /// As above, but reuses `result`'s buffers (cleared first) — the per-ACK
  /// hot path allocates nothing in steady state.
  void OnAckReceivedInto(const quic::AckFrame& ack, sim::Time now, AckResult& result);

  /// Declares packets lost per time/packet thresholds; removes and returns
  /// them. `loss_delay` is 9/8 * max(smoothed, latest) (computed by caller).
  std::vector<SentPacket> DetectLoss(sim::Time now, sim::Duration loss_delay);

  /// As above into a reused buffer (cleared first).
  void DetectLossInto(sim::Time now, sim::Duration loss_delay, std::vector<SentPacket>& lost);

  /// Earliest time at which an unacked packet will cross the time threshold,
  /// or kNever. Valid after a call to DetectLoss.
  sim::Time loss_time() const { return loss_time_; }

  bool HasAckElicitingInFlight() const;
  std::size_t bytes_in_flight() const { return bytes_in_flight_; }

  /// Time the most recent ack-eliciting packet was sent (for PTO base).
  std::optional<sim::Time> LastAckElicitingSentTime() const;

  /// Largest packet number acknowledged so far.
  std::optional<std::uint64_t> largest_acked() const { return largest_acked_; }

  /// Unacked packets' retransmittable frames (oldest first) — used by PTO
  /// probes that bundle outstanding data.
  std::vector<quic::Frame> OutstandingRetransmittable() const;

  /// Packet numbers still outstanding (ascending).
  std::vector<std::uint64_t> OutstandingPns() const;

  /// Discards the space entirely (key discard, RFC 9002 §6.4). In-flight
  /// bytes are released.
  void Clear();

  /// Full rewind for context reuse between repetitions. Unlike Clear() —
  /// which keeps largest_acked_ because packet numbers never reset within a
  /// connection — Reset() forgets everything: the next run restarts packet
  /// numbers at zero.
  void Reset();

  std::size_t unacked_count() const { return unacked_.size(); }

  /// True if `pn` is still outstanding.
  bool IsOutstanding(std::uint64_t pn) const;

  /// Times the out-of-order repair path in OnPacketSent ran. Always zero for
  /// ledgers fed by a Connection (monotone next_pn); visible so misuse is
  /// never silent.
  std::uint64_t out_of_order_sends() const { return out_of_order_sends_; }

 private:
  /// Sorted ascending by packet_number.
  std::vector<SentPacket> unacked_;
  std::optional<std::uint64_t> largest_acked_;
  std::size_t bytes_in_flight_ = 0;
  sim::Time loss_time_ = sim::kNever;
  std::uint64_t out_of_order_sends_ = 0;
};

}  // namespace quicer::recovery
