// Sent-packet ledger and loss detection (RFC 9002 §6.1).
//
// One ledger per packet number space. It remembers every ack-eliciting or
// in-flight packet until acknowledged or declared lost, provides the RTT
// sample on ack receipt (only when the *largest newly acked* packet is
// ack-eliciting — the rule that makes the server blind after an instant ACK,
// Fig 6), and implements packet-threshold + time-threshold loss detection.
//
// Storage is a vector kept sorted by packet number (packet numbers are
// assigned monotonically, so insertion is a push_back in practice). All
// iteration orders are ascending-pn, matching the previous std::map-based
// implementation bit for bit. The Into-suffixed entry points fill
// caller-owned scratch buffers so the per-ACK hot path reuses capacity
// instead of allocating fresh result vectors.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "quic/frame.h"
#include "quic/types.h"
#include "sim/time.h"

namespace quicer::recovery {

/// Metadata for one sent packet.
struct SentPacket {
  std::uint64_t packet_number = 0;
  sim::Time sent_time = 0;
  std::size_t bytes = 0;
  bool ack_eliciting = false;
  bool in_flight = false;
  /// Frames to replay if the packet is declared lost.
  std::vector<quic::Frame> retransmittable;
};

/// Outcome of processing one ACK frame.
struct AckResult {
  std::vector<SentPacket> newly_acked;
  /// Set when the largest acked packet is among the newly acked.
  std::optional<SentPacket> largest_newly_acked;
  /// True when a valid RTT sample is available: largest newly acked is
  /// ack-eliciting (RFC 9002 §5.1).
  bool rtt_sample_available = false;
  sim::Duration latest_rtt = 0;
  std::size_t newly_acked_bytes = 0;
  bool any_ack_eliciting_newly_acked = false;
};

/// Packet reordering threshold (RFC 9002 kPacketThreshold).
inline constexpr std::uint64_t kPacketThreshold = 3;

/// Per-space ledger of unacknowledged packets.
class SentPacketLedger {
 public:
  void OnPacketSent(SentPacket packet);

  /// Processes an ACK received at `now`.
  AckResult OnAckReceived(const quic::AckFrame& ack, sim::Time now);

  /// As above, but reuses `result`'s buffers (cleared first) — the per-ACK
  /// hot path allocates nothing in steady state.
  void OnAckReceivedInto(const quic::AckFrame& ack, sim::Time now, AckResult& result);

  /// Declares packets lost per time/packet thresholds; removes and returns
  /// them. `loss_delay` is 9/8 * max(smoothed, latest) (computed by caller).
  std::vector<SentPacket> DetectLoss(sim::Time now, sim::Duration loss_delay);

  /// As above into a reused buffer (cleared first).
  void DetectLossInto(sim::Time now, sim::Duration loss_delay, std::vector<SentPacket>& lost);

  /// Earliest time at which an unacked packet will cross the time threshold,
  /// or kNever. Valid after a call to DetectLoss.
  sim::Time loss_time() const { return loss_time_; }

  bool HasAckElicitingInFlight() const;
  std::size_t bytes_in_flight() const { return bytes_in_flight_; }

  /// Time the most recent ack-eliciting packet was sent (for PTO base).
  std::optional<sim::Time> LastAckElicitingSentTime() const;

  /// Largest packet number acknowledged so far.
  std::optional<std::uint64_t> largest_acked() const { return largest_acked_; }

  /// Unacked packets' retransmittable frames (oldest first) — used by PTO
  /// probes that bundle outstanding data.
  std::vector<quic::Frame> OutstandingRetransmittable() const;

  /// Packet numbers still outstanding (ascending).
  std::vector<std::uint64_t> OutstandingPns() const;

  /// Discards the space entirely (key discard, RFC 9002 §6.4). In-flight
  /// bytes are released.
  void Clear();

  std::size_t unacked_count() const { return unacked_.size(); }

  /// True if `pn` is still outstanding.
  bool IsOutstanding(std::uint64_t pn) const;

 private:
  /// Sorted ascending by packet_number.
  std::vector<SentPacket> unacked_;
  std::optional<std::uint64_t> largest_acked_;
  std::size_t bytes_in_flight_ = 0;
  sim::Time loss_time_ = sim::kNever;
};

}  // namespace quicer::recovery
