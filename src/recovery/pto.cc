#include "recovery/pto.h"

#include <algorithm>

namespace quicer::recovery {

sim::Duration PtoPeriod(const RttEstimator& rtt, const PtoConfig& config,
                        quic::PacketNumberSpace space, bool handshake_confirmed) {
  if (!rtt.has_sample()) return config.default_pto;
  sim::Duration pto = rtt.smoothed() + std::max<sim::Duration>(4 * rtt.rttvar(), kGranularity);
  if (space == quic::PacketNumberSpace::kAppData && handshake_confirmed) {
    pto += config.peer_max_ack_delay;
  }
  return pto;
}

sim::Duration PtoPeriodWithBackoff(const RttEstimator& rtt, const PtoConfig& config,
                                   quic::PacketNumberSpace space, bool handshake_confirmed,
                                   int backoff_count) {
  sim::Duration period = PtoPeriod(rtt, config, space, handshake_confirmed);
  for (int i = 0; i < backoff_count && period < sim::Seconds(60); ++i) period *= 2;
  return period;
}

}  // namespace quicer::recovery
