// RTT estimation per RFC 9002 §5.
//
// This is the mechanism at the heart of the paper: the client's first RTT
// sample initialises smoothed_rtt = sample and rttvar = sample/2, so the
// first PTO is ~3x the first sample. Under WFC the first sample includes the
// certificate-fetch delay Δt, inflating the first PTO by 3Δt — exactly what
// instant ACK avoids (Fig 2, Fig 4).
//
// Two documented implementation deviations are modelled:
//  * aioquic computes rttvar from the unadjusted sample (Appendix E);
//  * go-x-net sometimes mis-initialises smoothed_rtt (e.g. 90 ms while the
//    real RTT is 33 ms — §4.1), modelled via OverrideFirstSample.
#pragma once

#include <cstdlib>

#include "sim/time.h"

namespace quicer::recovery {

/// Which rttvar update formula to use.
enum class RttVarFormula {
  kRfc9002,        // rttvar <- 3/4 rttvar + 1/4 |smoothed - adjusted|
  kAioquicLegacy,  // uses the unadjusted latest sample in the deviation term
};

/// Exponentially-weighted RTT state.
class RttEstimator {
 public:
  explicit RttEstimator(RttVarFormula formula = RttVarFormula::kRfc9002)
      : formula_(formula) {}

  /// Feeds one RTT sample. `ack_delay` is the peer-reported acknowledgment
  /// delay *after* the caller applied RFC rules (ignore in Initial space,
  /// cap at max_ack_delay post-handshake); pass 0 to skip adjustment.
  void AddSample(sim::Duration latest, sim::Duration ack_delay);

  /// go-x-net quirk: forces the first-sample state to the given values.
  /// Subsequent samples update from this (wrong) starting point.
  void OverrideFirstSample(sim::Duration smoothed, sim::Duration rttvar);

  bool has_sample() const { return has_sample_; }
  sim::Duration smoothed() const { return smoothed_; }
  sim::Duration rttvar() const { return rttvar_; }
  sim::Duration min_rtt() const { return min_rtt_; }
  sim::Duration latest() const { return latest_; }
  int sample_count() const { return sample_count_; }

 private:
  RttVarFormula formula_;
  bool has_sample_ = false;
  sim::Duration smoothed_ = 0;
  sim::Duration rttvar_ = 0;
  sim::Duration min_rtt_ = 0;
  sim::Duration latest_ = 0;
  int sample_count_ = 0;
};

}  // namespace quicer::recovery
