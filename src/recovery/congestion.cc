#include "recovery/congestion.h"

#include <algorithm>
#include <limits>

namespace quicer::recovery {

NewRenoCongestion::NewRenoCongestion() : NewRenoCongestion(Config{}) {}

NewRenoCongestion::NewRenoCongestion(Config config)
    : config_(config),
      cwnd_(config.initial_window_packets * config.max_datagram_size),
      ssthresh_(std::numeric_limits<std::size_t>::max()) {}

void NewRenoCongestion::OnPacketSent(std::size_t bytes) { bytes_in_flight_ += bytes; }

void NewRenoCongestion::OnPacketAcked(std::size_t bytes, sim::Time sent_time) {
  bytes_in_flight_ -= std::min(bytes_in_flight_, bytes);
  if (InRecovery(sent_time)) return;  // no growth on packets sent before recovery
  if (InSlowStart()) {
    cwnd_ += bytes;
  } else {
    // Congestion avoidance: one MSS per window worth of acked bytes.
    cwnd_ += config_.max_datagram_size * bytes / cwnd_;
  }
}

void NewRenoCongestion::OnPacketsLost(std::size_t bytes, sim::Time largest_lost_sent_time,
                                      sim::Time now) {
  bytes_in_flight_ -= std::min(bytes_in_flight_, bytes);
  if (InRecovery(largest_lost_sent_time)) return;  // already reduced this period
  recovery_start_ = now;
  cwnd_ = static_cast<std::size_t>(static_cast<double>(cwnd_) * config_.loss_reduction_factor);
  cwnd_ = std::max(cwnd_, config_.min_window_packets * config_.max_datagram_size);
  ssthresh_ = cwnd_;
}

void NewRenoCongestion::OnPacketDiscarded(std::size_t bytes) {
  bytes_in_flight_ -= std::min(bytes_in_flight_, bytes);
}

void NewRenoCongestion::OnPersistentCongestion() {
  cwnd_ = config_.min_window_packets * config_.max_datagram_size;
  ssthresh_ = cwnd_;
  recovery_start_ = -1;  // a fresh loss may reduce again immediately
}

bool NewRenoCongestion::CanSend(std::size_t bytes) const {
  return bytes_in_flight_ + bytes <= cwnd_;
}

std::size_t NewRenoCongestion::AvailableWindow() const {
  return bytes_in_flight_ >= cwnd_ ? 0 : cwnd_ - bytes_in_flight_;
}

}  // namespace quicer::recovery
