#include "recovery/sent_packets.h"

#include <algorithm>
#include <utility>

namespace quicer::recovery {

void SentPacketLedger::OnPacketSent(SentPacket packet) {
  if (packet.in_flight) bytes_in_flight_ += packet.bytes;
  // Packet numbers are assigned monotonically per space (Connection's
  // next_pn++), so an append IS the insert.
  unacked_.push_back(packet);
  if (unacked_.size() > 1 &&
      unacked_[unacked_.size() - 2].packet_number >= packet.packet_number) {
    // Out-of-order repair path: no Connection code path reaches this (the
    // counter proves it); it exists for direct ledger users that replay
    // packets out of sequence. Rotate the late record into its sorted slot.
    ++out_of_order_sends_;
    const auto it = std::lower_bound(
        unacked_.begin(), unacked_.end() - 1, packet.packet_number,
        [](const SentPacket& entry, std::uint64_t pn) { return entry.packet_number < pn; });
    std::rotate(it, unacked_.end() - 1, unacked_.end());
  }
}

AckResult SentPacketLedger::OnAckReceived(const quic::AckFrame& ack, sim::Time now) {
  AckResult result;
  OnAckReceivedInto(ack, now, result);
  return result;
}

void SentPacketLedger::OnAckReceivedInto(const quic::AckFrame& ack, sim::Time now,
                                         AckResult& result) {
  result.newly_acked.clear();
  result.largest_newly_acked.reset();
  result.rtt_sample_available = false;
  result.latest_rtt = 0;
  result.newly_acked_bytes = 0;
  result.any_ack_eliciting_newly_acked = false;

  if (!largest_acked_ || ack.largest_acked > *largest_acked_) {
    largest_acked_ = ack.largest_acked;
  }

  // Single ascending compaction pass: acked packets move into the result
  // (preserving ascending-pn order, as the map-based version did), survivors
  // slide down in place.
  auto keep = unacked_.begin();
  for (auto it = unacked_.begin(); it != unacked_.end(); ++it) {
    if (ack.Acks(it->packet_number)) {
      SentPacket packet = std::move(*it);
      if (packet.in_flight) bytes_in_flight_ -= packet.bytes;
      result.newly_acked_bytes += packet.bytes;
      if (packet.ack_eliciting) result.any_ack_eliciting_newly_acked = true;
      if (packet.packet_number == ack.largest_acked) {
        // Metadata copy only: the frames stay with the newly_acked entry, so
        // filling this field never allocates.
        SentPacket& meta = result.largest_newly_acked.emplace();
        meta.packet_number = packet.packet_number;
        meta.sent_time = packet.sent_time;
        meta.bytes = packet.bytes;
        meta.ack_eliciting = packet.ack_eliciting;
        meta.in_flight = packet.in_flight;
        if (packet.ack_eliciting) {
          result.rtt_sample_available = true;
          result.latest_rtt = now - packet.sent_time;
        }
      }
      result.newly_acked.push_back(std::move(packet));
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  unacked_.erase(keep, unacked_.end());
}

std::vector<SentPacket> SentPacketLedger::DetectLoss(sim::Time now, sim::Duration loss_delay) {
  std::vector<SentPacket> lost;
  DetectLossInto(now, loss_delay, lost);
  return lost;
}

void SentPacketLedger::DetectLossInto(sim::Time now, sim::Duration loss_delay,
                                      std::vector<SentPacket>& lost) {
  lost.clear();
  loss_time_ = sim::kNever;
  if (!largest_acked_) return;

  auto keep = unacked_.begin();
  for (auto it = unacked_.begin(); it != unacked_.end(); ++it) {
    const SentPacket& packet = *it;
    if (packet.packet_number >= *largest_acked_) {
      // Vector is ordered: nothing at or above largest_acked can be lost.
      if (keep != it) {
        for (; it != unacked_.end(); ++it, ++keep) *keep = std::move(*it);
      } else {
        keep = unacked_.end();
      }
      break;
    }

    const bool lost_by_packets = *largest_acked_ - packet.packet_number >= kPacketThreshold;
    const sim::Time lost_after = packet.sent_time + loss_delay;
    const bool lost_by_time = lost_after <= now;

    if (lost_by_packets || lost_by_time) {
      SentPacket out = std::move(*it);
      if (out.in_flight) bytes_in_flight_ -= out.bytes;
      lost.push_back(std::move(out));
    } else {
      loss_time_ = std::min(loss_time_, lost_after);
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  unacked_.erase(keep, unacked_.end());
}

bool SentPacketLedger::HasAckElicitingInFlight() const {
  for (const SentPacket& packet : unacked_) {
    if (packet.ack_eliciting && packet.in_flight) return true;
  }
  return false;
}

std::optional<sim::Time> SentPacketLedger::LastAckElicitingSentTime() const {
  std::optional<sim::Time> latest;
  for (const SentPacket& packet : unacked_) {
    if (packet.ack_eliciting) {
      if (!latest || packet.sent_time > *latest) latest = packet.sent_time;
    }
  }
  return latest;
}

std::vector<quic::Frame> SentPacketLedger::OutstandingRetransmittable() const {
  std::vector<quic::Frame> frames;
  for (const SentPacket& packet : unacked_) {
    frames.insert(frames.end(), packet.retransmittable.begin(), packet.retransmittable.end());
  }
  return frames;
}

std::vector<std::uint64_t> SentPacketLedger::OutstandingPns() const {
  std::vector<std::uint64_t> pns;
  pns.reserve(unacked_.size());
  for (const SentPacket& packet : unacked_) pns.push_back(packet.packet_number);
  return pns;
}

bool SentPacketLedger::IsOutstanding(std::uint64_t pn) const {
  return std::binary_search(
      unacked_.begin(), unacked_.end(), pn,
      [](const auto& a, const auto& b) {
        if constexpr (std::is_same_v<std::decay_t<decltype(a)>, std::uint64_t>) {
          return a < b.packet_number;
        } else {
          return a.packet_number < b;
        }
      });
}

void SentPacketLedger::Clear() {
  unacked_.clear();
  bytes_in_flight_ = 0;
  loss_time_ = sim::kNever;
  // largest_acked_ intentionally retained: packet numbers never reset.
}

void SentPacketLedger::Reset() {
  unacked_.clear();
  largest_acked_.reset();
  bytes_in_flight_ = 0;
  loss_time_ = sim::kNever;
  out_of_order_sends_ = 0;
}

}  // namespace quicer::recovery
