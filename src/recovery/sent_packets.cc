#include "recovery/sent_packets.h"

#include <algorithm>

namespace quicer::recovery {

void SentPacketLedger::OnPacketSent(SentPacket packet) {
  if (packet.in_flight) bytes_in_flight_ += packet.bytes;
  unacked_.emplace(packet.packet_number, std::move(packet));
}

AckResult SentPacketLedger::OnAckReceived(const quic::AckFrame& ack, sim::Time now) {
  AckResult result;
  if (!largest_acked_ || ack.largest_acked > *largest_acked_) {
    largest_acked_ = ack.largest_acked;
  }

  for (auto it = unacked_.begin(); it != unacked_.end();) {
    if (ack.Acks(it->first)) {
      SentPacket packet = std::move(it->second);
      if (packet.in_flight) bytes_in_flight_ -= packet.bytes;
      result.newly_acked_bytes += packet.bytes;
      if (packet.ack_eliciting) result.any_ack_eliciting_newly_acked = true;
      if (packet.packet_number == ack.largest_acked) {
        result.largest_newly_acked = packet;
        if (packet.ack_eliciting) {
          result.rtt_sample_available = true;
          result.latest_rtt = now - packet.sent_time;
        }
      }
      result.newly_acked.push_back(std::move(packet));
      it = unacked_.erase(it);
    } else {
      ++it;
    }
  }
  return result;
}

std::vector<SentPacket> SentPacketLedger::DetectLoss(sim::Time now, sim::Duration loss_delay) {
  std::vector<SentPacket> lost;
  loss_time_ = sim::kNever;
  if (!largest_acked_) return lost;

  for (auto it = unacked_.begin(); it != unacked_.end();) {
    const SentPacket& packet = it->second;
    if (packet.packet_number >= *largest_acked_) break;  // map is ordered

    const bool lost_by_packets = *largest_acked_ - packet.packet_number >= kPacketThreshold;
    const sim::Time lost_after = packet.sent_time + loss_delay;
    const bool lost_by_time = lost_after <= now;

    if (lost_by_packets || lost_by_time) {
      SentPacket out = std::move(it->second);
      if (out.in_flight) bytes_in_flight_ -= out.bytes;
      lost.push_back(std::move(out));
      it = unacked_.erase(it);
    } else {
      loss_time_ = std::min(loss_time_, lost_after);
      ++it;
    }
  }
  return lost;
}

bool SentPacketLedger::HasAckElicitingInFlight() const {
  for (const auto& [pn, packet] : unacked_) {
    if (packet.ack_eliciting && packet.in_flight) return true;
  }
  return false;
}

std::optional<sim::Time> SentPacketLedger::LastAckElicitingSentTime() const {
  std::optional<sim::Time> latest;
  for (const auto& [pn, packet] : unacked_) {
    if (packet.ack_eliciting) {
      if (!latest || packet.sent_time > *latest) latest = packet.sent_time;
    }
  }
  return latest;
}

std::vector<quic::Frame> SentPacketLedger::OutstandingRetransmittable() const {
  std::vector<quic::Frame> frames;
  for (const auto& [pn, packet] : unacked_) {
    frames.insert(frames.end(), packet.retransmittable.begin(), packet.retransmittable.end());
  }
  return frames;
}

std::vector<std::uint64_t> SentPacketLedger::OutstandingPns() const {
  std::vector<std::uint64_t> pns;
  pns.reserve(unacked_.size());
  for (const auto& [pn, packet] : unacked_) pns.push_back(pn);
  return pns;
}

void SentPacketLedger::Clear() {
  unacked_.clear();
  bytes_in_flight_ = 0;
  loss_time_ = sim::kNever;
  // largest_acked_ intentionally retained: packet numbers never reset.
}

}  // namespace quicer::recovery
