#include "recovery/rtt_estimator.h"

#include <algorithm>

namespace quicer::recovery {

void RttEstimator::AddSample(sim::Duration latest, sim::Duration ack_delay) {
  latest_ = latest;
  ++sample_count_;

  if (!has_sample_) {
    has_sample_ = true;
    min_rtt_ = latest;
    smoothed_ = latest;
    rttvar_ = latest / 2;
    return;
  }

  min_rtt_ = std::min(min_rtt_, latest);

  // Adjust for the peer's ack delay, but never below min_rtt (RFC 9002 §5.3).
  sim::Duration adjusted = latest;
  if (ack_delay > 0 && latest - ack_delay >= min_rtt_) {
    adjusted = latest - ack_delay;
  }

  const sim::Duration deviation_sample =
      formula_ == RttVarFormula::kAioquicLegacy ? latest : adjusted;
  rttvar_ = (3 * rttvar_ + std::abs(smoothed_ - deviation_sample)) / 4;
  smoothed_ = (7 * smoothed_ + adjusted) / 8;
}

void RttEstimator::OverrideFirstSample(sim::Duration smoothed, sim::Duration rttvar) {
  has_sample_ = true;
  sample_count_ = std::max(sample_count_, 1);
  smoothed_ = smoothed;
  rttvar_ = rttvar;
  if (min_rtt_ == 0 || smoothed < min_rtt_) min_rtt_ = smoothed;
  latest_ = smoothed;
}

}  // namespace quicer::recovery
