#include "netem/queue.h"

#include <algorithm>

namespace quicer::netem {

std::optional<sim::Time> BottleneckQueue::Enqueue(sim::Time now, std::size_t wire_bytes,
                                                  double bandwidth_bps) {
  // Retire datagrams that have fully left the bottleneck.
  while (!in_flight_.empty() && in_flight_.front().first <= now) {
    queued_bytes_ -= in_flight_.front().second;
    in_flight_.pop_front();
  }

  // The AQM decides admission against the post-drain occupancy. Both Aqm
  // values currently tail-drop; kCoDel is the reserved hook for a
  // sojourn-time controller.
  const bool full =
      (model_.depth_pkts > 0 && in_flight_.size() >= model_.depth_pkts) ||
      (model_.depth_bytes > 0 && queued_bytes_ + wire_bytes > model_.depth_bytes);
  if (full) {
    ++stats_.dropped;
    return std::nullopt;
  }

  // Same departure arithmetic as the legacy transmitter-busy clock.
  const sim::Time start = std::max(now, last_departure_);
  const double bits = static_cast<double>(wire_bytes) * 8.0;
  const sim::Time departure =
      start +
      static_cast<sim::Duration>(bits / bandwidth_bps * static_cast<double>(sim::kSecond));
  last_departure_ = departure;
  in_flight_.emplace_back(departure, wire_bytes);
  queued_bytes_ += wire_bytes;
  stats_.max_pkts = std::max<std::uint64_t>(stats_.max_pkts, in_flight_.size());
  stats_.max_bytes = std::max<std::uint64_t>(stats_.max_bytes, queued_bytes_);
  return departure;
}

}  // namespace quicer::netem
