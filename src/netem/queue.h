// Bounded bottleneck FIFO of one link direction.
//
// The legacy link models the bottleneck as an unbounded transmitter-busy
// clock: a datagram's departure is max(now, last departure) + its
// serialization time. BottleneckQueue keeps exactly that departure
// arithmetic but tracks the datagrams still waiting for (or on) the line,
// so occupancy is observable, a configurable depth (packets and/or wire
// bytes) bounds it, and the AQM decides the fate of arrivals at a full
// queue — tail-drop today, with the CoDel-style hook reserved in
// QueueModel::Aqm. With unbounded depth the departure times are identical
// to the busy clock's; only drops and stats differ.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "netem/model.h"
#include "sim/time.h"

namespace quicer::netem {

class BottleneckQueue {
 public:
  struct Stats {
    std::uint64_t dropped = 0;    // arrivals rejected by the AQM
    std::uint64_t max_pkts = 0;   // occupancy high-water marks, post-admission
    std::uint64_t max_bytes = 0;
  };

  BottleneckQueue() = default;
  explicit BottleneckQueue(const QueueModel& model) : model_(model) {}

  /// Re-arms the queue for a new run: new model, emptied, stats cleared.
  /// Unlike reassignment, this keeps the deque's allocated blocks.
  void Reset(const QueueModel& model) {
    model_ = model;
    in_flight_.clear();
    queued_bytes_ = 0;
    last_departure_ = 0;
    stats_ = Stats{};
  }

  /// True when the model wants FIFO queueing (vs. the legacy busy clock).
  bool active() const { return model_.kind == QueueModel::Kind::kFifo; }

  /// Offers one datagram of `wire_bytes` to the queue at time `now`.
  /// Returns its bottleneck departure time, or nullopt when the AQM drops
  /// it. `bandwidth_bps` must be positive.
  std::optional<sim::Time> Enqueue(sim::Time now, std::size_t wire_bytes,
                                   double bandwidth_bps);

  /// Datagrams currently queued or serializing (departure > last Enqueue's
  /// `now`).
  std::size_t occupancy_pkts() const { return in_flight_.size(); }
  std::size_t occupancy_bytes() const { return queued_bytes_; }

  const Stats& stats() const { return stats_; }

 private:
  QueueModel model_;
  /// (departure time, wire bytes) of admitted datagrams, departure order.
  std::deque<std::pair<sim::Time, std::size_t>> in_flight_;
  std::size_t queued_bytes_ = 0;
  sim::Time last_departure_ = 0;
  Stats stats_;
};

}  // namespace quicer::netem
