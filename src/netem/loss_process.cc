#include "netem/loss_process.h"

namespace quicer::netem {
namespace {

/// One probability-`p` event. Certain and impossible outcomes skip the draw
/// so that e.g. the classic Gilbert channel (loss_good = 0, loss_bad = 1)
/// spends its randomness only on state transitions.
bool Happens(double p, sim::Rng& rng) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return rng.NextDouble() < p;
}

}  // namespace

bool LossProcess::ShouldDrop(sim::Rng& rng) {
  switch (model_.kind) {
    case LossModel::Kind::kNone:
      return false;
    case LossModel::Kind::kBernoulli:
      return Happens(model_.rate, rng);
    case LossModel::Kind::kGilbertElliott: {
      // The datagram experiences the state it arrives in; the chain then
      // advances once per datagram.
      const bool drop = Happens(bad_ ? model_.loss_bad : model_.loss_good, rng);
      if (Happens(bad_ ? model_.r : model_.p, rng)) bad_ = !bad_;
      return drop;
    }
  }
  return false;
}

}  // namespace quicer::netem
