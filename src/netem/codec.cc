#include "netem/codec.h"

#include <cmath>
#include <cstdint>

#include "core/json.h"

namespace quicer::netem {
namespace {

using core::JsonNumber;
using core::JsonValue;

constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

bool Fail(std::string& error, const std::string& path, const std::string& message) {
  error = path + ": " + message;
  return false;
}

/// A finite number in [minimum, maximum].
bool ParseNumber(const JsonValue& v, const std::string& path, double minimum, double maximum,
                 double& out, std::string& error) {
  if (v.type() != JsonValue::Type::kNumber || !std::isfinite(v.AsNumber())) {
    return Fail(error, path, "expected a number");
  }
  if (v.AsNumber() < minimum || v.AsNumber() > maximum) {
    return Fail(error, path, "value " + JsonNumber(v.AsNumber()) + " is outside [" +
                                 JsonNumber(minimum) + ", " + JsonNumber(maximum) + "]");
  }
  out = v.AsNumber();
  return true;
}

/// A non-negative duration in milliseconds, stored in microsecond ticks
/// (llround, matching the scenario codec's ResolveMs so ToMillis
/// round-trips exactly).
bool ParseMs(const JsonValue& v, const std::string& path, sim::Duration& out,
             std::string& error) {
  double ms = 0.0;
  if (!ParseNumber(v, path, 0.0, kMaxExactInteger, ms, error)) return false;
  out = static_cast<sim::Duration>(std::llround(ms * 1000.0));
  return true;
}

/// A non-negative integral count.
bool ParseCount(const JsonValue& v, const std::string& path, std::size_t& out,
                std::string& error) {
  double n = 0.0;
  if (!ParseNumber(v, path, 0.0, kMaxExactInteger, n, error)) return false;
  if (n != std::floor(n)) return Fail(error, path, "expected an integer, got " + JsonNumber(n));
  out = static_cast<std::size_t>(n);
  return true;
}

bool ParseLossModel(const JsonValue& v, const std::string& path, LossModel& out,
                    std::string& error) {
  if (v.type() != JsonValue::Type::kObject) return Fail(error, path, "expected an object");
  if (v.Members().size() != 1) {
    return Fail(error, path, "expected exactly one loss kind ('bernoulli' or 'gilbert')");
  }
  const auto& [kind, body] = v.Members().front();
  const std::string kind_path = path + "." + kind;
  if (body.type() != JsonValue::Type::kObject) {
    return Fail(error, kind_path, "expected an object");
  }
  if (kind == "bernoulli") {
    out.kind = LossModel::Kind::kBernoulli;
    bool have_rate = false;
    for (const auto& [key, value] : body.Members()) {
      if (key == "rate") {
        if (!ParseNumber(value, kind_path + ".rate", 0.0, 1.0, out.rate, error)) return false;
        have_rate = true;
      } else {
        return Fail(error, kind_path, "unknown field '" + key + "' (known: rate)");
      }
    }
    if (!have_rate) return Fail(error, kind_path, "misses 'rate'");
    return true;
  }
  if (kind == "gilbert") {
    out.kind = LossModel::Kind::kGilbertElliott;
    bool have_p = false, have_r = false;
    for (const auto& [key, value] : body.Members()) {
      if (key == "p") {
        if (!ParseNumber(value, kind_path + ".p", 0.0, 1.0, out.p, error)) return false;
        have_p = true;
      } else if (key == "r") {
        if (!ParseNumber(value, kind_path + ".r", 0.0, 1.0, out.r, error)) return false;
        have_r = true;
      } else if (key == "loss_good") {
        if (!ParseNumber(value, kind_path + ".loss_good", 0.0, 1.0, out.loss_good, error)) {
          return false;
        }
      } else if (key == "loss_bad") {
        if (!ParseNumber(value, kind_path + ".loss_bad", 0.0, 1.0, out.loss_bad, error)) {
          return false;
        }
      } else {
        return Fail(error, kind_path,
                    "unknown field '" + key + "' (known: p, r, loss_good, loss_bad)");
      }
    }
    if (!have_p || !have_r) return Fail(error, kind_path, "misses 'p' and/or 'r'");
    return true;
  }
  return Fail(error, path, "unknown loss kind '" + kind + "' (known: bernoulli, gilbert)");
}

bool ParseQueueModel(const JsonValue& v, const std::string& path, QueueModel& out,
                     std::string& error) {
  if (v.type() != JsonValue::Type::kObject) return Fail(error, path, "expected an object");
  out.kind = QueueModel::Kind::kFifo;
  for (const auto& [key, value] : v.Members()) {
    if (key == "depth_pkts") {
      if (!ParseCount(value, path + ".depth_pkts", out.depth_pkts, error)) return false;
    } else if (key == "depth_bytes") {
      if (!ParseCount(value, path + ".depth_bytes", out.depth_bytes, error)) return false;
    } else if (key == "aqm") {
      if (value.type() == JsonValue::Type::kString && value.AsString() == "taildrop") {
        out.aqm = QueueModel::Aqm::kTailDrop;
      } else if (value.type() == JsonValue::Type::kString && value.AsString() == "codel") {
        out.aqm = QueueModel::Aqm::kCoDel;
      } else {
        return Fail(error, path + ".aqm", "unknown AQM (valid: \"taildrop\", \"codel\")");
      }
    } else {
      return Fail(error, path,
                  "unknown field '" + key + "' (known: depth_pkts, depth_bytes, aqm)");
    }
  }
  return true;
}

/// Parses a {"up": ..., "down": ..., "both": ...} direction object with a
/// per-model parser; "both" excludes the other two.
template <typename Model, typename Parser>
bool ParseDirections(const JsonValue& v, const std::string& path, Model (&out)[2],
                     Parser parse, std::string& error) {
  if (v.type() != JsonValue::Type::kObject) return Fail(error, path, "expected an object");
  bool have_both = false, have_side = false;
  for (const auto& [key, value] : v.Members()) {
    if (key == "up") {
      if (!parse(value, path + ".up", out[kUp], error)) return false;
      have_side = true;
    } else if (key == "down") {
      if (!parse(value, path + ".down", out[kDown], error)) return false;
      have_side = true;
    } else if (key == "both") {
      if (!parse(value, path + ".both", out[kUp], error)) return false;
      out[kDown] = out[kUp];
      have_both = true;
    } else {
      return Fail(error, path, "unknown direction '" + key + "' (known: up, down, both)");
    }
  }
  if (have_both && have_side) {
    return Fail(error, path, "'both' cannot be combined with 'up'/'down'");
  }
  return true;
}

bool ParsePath(const JsonValue& v, const std::string& path, PathOverride (&out)[2],
               std::string& error) {
  if (v.type() != JsonValue::Type::kObject) return Fail(error, path, "expected an object");
  for (const auto& [key, value] : v.Members()) {
    const std::string key_path = path + "." + key;
    if (key == "up_bps" || key == "down_bps") {
      double bps = 0.0;
      if (!ParseNumber(value, key_path, 0.0, 1e18, bps, error)) return false;
      if (bps <= 0.0) return Fail(error, key_path, "bandwidth must be positive");
      out[key == "up_bps" ? kUp : kDown].bandwidth_bps = bps;
    } else if (key == "up_delay_ms" || key == "down_delay_ms") {
      sim::Duration d = 0;
      if (!ParseMs(value, key_path, d, error)) return false;
      out[key == "up_delay_ms" ? kUp : kDown].one_way_delay = d;
    } else if (key == "up_jitter_ms" || key == "down_jitter_ms") {
      sim::Duration d = 0;
      if (!ParseMs(value, key_path, d, error)) return false;
      out[key == "up_jitter_ms" ? kUp : kDown].jitter = d;
    } else {
      return Fail(error, path,
                  "unknown field '" + key + "' (known: up_bps, down_bps, up_delay_ms, "
                  "down_delay_ms, up_jitter_ms, down_jitter_ms)");
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

std::string LossJson(const LossModel& m) {
  switch (m.kind) {
    case LossModel::Kind::kNone:
      return "{}";
    case LossModel::Kind::kBernoulli:
      return "{\"bernoulli\": {\"rate\": " + JsonNumber(m.rate) + "}}";
    case LossModel::Kind::kGilbertElliott: {
      std::string out =
          "{\"gilbert\": {\"p\": " + JsonNumber(m.p) + ", \"r\": " + JsonNumber(m.r);
      if (m.loss_good != 0.0) out += ", \"loss_good\": " + JsonNumber(m.loss_good);
      if (m.loss_bad != 1.0) out += ", \"loss_bad\": " + JsonNumber(m.loss_bad);
      return out + "}}";
    }
  }
  return "{}";
}

std::string QueueJson(const QueueModel& m) {
  std::string out = "{";
  if (m.depth_pkts > 0) out += "\"depth_pkts\": " + std::to_string(m.depth_pkts);
  if (m.depth_bytes > 0) {
    if (out.size() > 1) out += ", ";
    out += "\"depth_bytes\": " + std::to_string(m.depth_bytes);
  }
  if (m.aqm == QueueModel::Aqm::kCoDel) {
    if (out.size() > 1) out += ", ";
    out += "\"aqm\": \"codel\"";
  }
  return out + "}";
}

/// "up"/"down" members of the non-default directional models, or "" when
/// both directions are default.
template <typename Model, typename Writer>
std::string DirectionsJson(const Model (&models)[2], Writer write) {
  std::string out;
  if (!models[kUp].IsDefault()) out += "\"up\": " + write(models[kUp]);
  if (!models[kDown].IsDefault()) {
    if (!out.empty()) out += ", ";
    out += "\"down\": " + write(models[kDown]);
  }
  return out.empty() ? out : "{" + out + "}";
}

std::string PathJson(const PathOverride (&path)[2]) {
  std::string out;
  const auto add = [&out](const std::string& key, const std::string& value) {
    if (!out.empty()) out += ", ";
    out += "\"" + key + "\": " + value;
  };
  for (int dir : {kUp, kDown}) {
    const char* prefix = dir == kUp ? "up" : "down";
    if (path[dir].bandwidth_bps) {
      add(std::string(prefix) + "_bps", JsonNumber(*path[dir].bandwidth_bps));
    }
  }
  for (int dir : {kUp, kDown}) {
    const char* prefix = dir == kUp ? "up" : "down";
    if (path[dir].one_way_delay) {
      add(std::string(prefix) + "_delay_ms", JsonNumber(sim::ToMillis(*path[dir].one_way_delay)));
    }
  }
  for (int dir : {kUp, kDown}) {
    const char* prefix = dir == kUp ? "up" : "down";
    if (path[dir].jitter) {
      add(std::string(prefix) + "_jitter_ms", JsonNumber(sim::ToMillis(*path[dir].jitter)));
    }
  }
  return out.empty() ? out : "{" + out + "}";
}

}  // namespace

std::string LinkModelJson(const LinkModel& model) {
  std::string out;
  const auto add = [&out](const char* key, const std::string& value) {
    if (value.empty()) return;
    if (!out.empty()) out += ", ";
    out += "\"" + std::string(key) + "\": " + value;
  };
  add("loss", DirectionsJson(model.loss, LossJson));
  add("queue", DirectionsJson(model.queue, QueueJson));
  add("path", PathJson(model.path));
  return "{" + out + "}";
}

bool ParseLinkModel(const core::JsonValue& value, LinkModel& out, std::string& error) {
  if (value.type() != JsonValue::Type::kObject) {
    error = "expected an object";
    return false;
  }
  out = LinkModel{};
  for (const auto& [key, member] : value.Members()) {
    if (key == "loss") {
      if (!ParseDirections(member, "loss", out.loss,
                           [](const JsonValue& v, const std::string& p, LossModel& m,
                              std::string& e) { return ParseLossModel(v, p, m, e); },
                           error)) {
        return false;
      }
    } else if (key == "queue") {
      if (!ParseDirections(member, "queue", out.queue,
                           [](const JsonValue& v, const std::string& p, QueueModel& m,
                              std::string& e) { return ParseQueueModel(v, p, m, e); },
                           error)) {
        return false;
      }
    } else if (key == "path") {
      if (!ParsePath(member, "path", out.path, error)) return false;
    } else {
      error = "unknown link-model field '" + key + "' (known: loss, queue, path)";
      return false;
    }
  }
  return true;
}

}  // namespace quicer::netem
