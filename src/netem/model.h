// Network-emulation models: the serializable data of an emulated path.
//
// The paper runs every experiment over one idealized pipe — symmetric
// one-way delay, fixed bottleneck bandwidth, deterministic per-datagram
// loss. This module makes the path pluggable: composable per-direction
// models for stochastic loss (independent Bernoulli, Gilbert–Elliott
// two-state bursty), the bottleneck queue discipline (legacy
// transmitter-busy clock, or a bounded FIFO with a tail-drop AQM and a
// CoDel hook stubbed for later), and asymmetric path parameters (up/down
// bandwidth, one-way delay, jitter). These structs are pure data — the
// runtime state machines live in loss_process.h / queue.h, the JSON codec
// in codec.h — so a LinkModel serializes through scenario files and sweeps
// as a first-class axis. A default-constructed LinkModel reproduces the
// legacy pipe bit for bit.
#pragma once

#include <cstddef>
#include <optional>

#include "sim/time.h"

namespace quicer::netem {

/// Direction indices of the per-direction model arrays. "up" is
/// client->server, "down" is server->client — numerically identical to
/// sim::Direction, so sim::Link indexes both with one cast.
inline constexpr int kUp = 0;
inline constexpr int kDown = 1;

/// Stochastic per-datagram loss on one direction, applied after the
/// deterministic index patterns (sim::LossPattern). Draws come from the
/// link's per-repetition forked sim::Rng, so runs stay bit-identical
/// across thread counts and shards.
struct LossModel {
  enum class Kind {
    kNone,            // no stochastic loss (the paper's setting)
    kBernoulli,       // independent per-datagram loss with probability `rate`
    kGilbertElliott,  // two-state bursty loss (good/bad Markov chain)
  };
  Kind kind = Kind::kNone;
  /// kBernoulli: independent drop probability.
  double rate = 0.0;
  /// kGilbertElliott: per-datagram transition probabilities good->bad (`p`)
  /// and bad->good (`r`), and the drop probability inside each state. The
  /// classic Gilbert channel is loss_good = 0, loss_bad = 1.
  double p = 0.0;
  double r = 0.0;
  double loss_good = 0.0;
  double loss_bad = 1.0;

  bool IsDefault() const { return kind == Kind::kNone; }
  friend bool operator==(const LossModel& a, const LossModel& b) {
    return a.kind == b.kind && a.rate == b.rate && a.p == b.p && a.r == b.r &&
           a.loss_good == b.loss_good && a.loss_bad == b.loss_bad;
  }
  friend bool operator!=(const LossModel& a, const LossModel& b) { return !(a == b); }
};

/// Bottleneck queueing discipline of one direction.
struct QueueModel {
  enum class Kind {
    kTransmitterClock,  // legacy: unbounded, modeled as a busy clock
    kFifo,              // bounded FIFO; serialization delay emerges from occupancy
  };
  enum class Aqm {
    kTailDrop,  // drop arrivals while the queue is full
    kCoDel,     // hook for a CoDel-style AQM; currently behaves as tail-drop
  };
  Kind kind = Kind::kTransmitterClock;
  /// Capacity in datagrams / wire bytes; 0 = unbounded in that unit. Both
  /// limits apply when both are set.
  std::size_t depth_pkts = 0;
  std::size_t depth_bytes = 0;
  Aqm aqm = Aqm::kTailDrop;

  bool IsDefault() const { return kind == Kind::kTransmitterClock; }
  friend bool operator==(const QueueModel& a, const QueueModel& b) {
    return a.kind == b.kind && a.depth_pkts == b.depth_pkts &&
           a.depth_bytes == b.depth_bytes && a.aqm == b.aqm;
  }
  friend bool operator!=(const QueueModel& a, const QueueModel& b) { return !(a == b); }
};

/// Per-direction overrides of the symmetric path parameters; an unset field
/// keeps the symmetric value from the experiment config.
struct PathOverride {
  std::optional<double> bandwidth_bps;
  std::optional<sim::Duration> one_way_delay;
  std::optional<sim::Duration> jitter;

  bool IsDefault() const {
    return !bandwidth_bps.has_value() && !one_way_delay.has_value() && !jitter.has_value();
  }
  friend bool operator==(const PathOverride& a, const PathOverride& b) {
    return a.bandwidth_bps == b.bandwidth_bps && a.one_way_delay == b.one_way_delay &&
           a.jitter == b.jitter;
  }
  friend bool operator!=(const PathOverride& a, const PathOverride& b) { return !(a == b); }
};

/// The complete emulation model of one bidirectional path, indexed by
/// kUp/kDown. Default-constructed = the legacy symmetric pipe.
struct LinkModel {
  LossModel loss[2];
  QueueModel queue[2];
  PathOverride path[2];

  bool IsDefault() const {
    for (int dir : {kUp, kDown}) {
      if (!loss[dir].IsDefault() || !queue[dir].IsDefault() || !path[dir].IsDefault()) {
        return false;
      }
    }
    return true;
  }
  friend bool operator==(const LinkModel& a, const LinkModel& b) {
    for (int dir : {kUp, kDown}) {
      if (a.loss[dir] != b.loss[dir] || a.queue[dir] != b.queue[dir] ||
          a.path[dir] != b.path[dir]) {
        return false;
      }
    }
    return true;
  }
  friend bool operator!=(const LinkModel& a, const LinkModel& b) { return !(a == b); }
};

}  // namespace quicer::netem
