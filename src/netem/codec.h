// JSON codec of netem::LinkModel — the serialization the scenario codec's
// "link" base field and "links" axis embed.
//
// Canonical form (compact, one line), with every default omitted so the
// legacy pipe is the empty object `{}`:
//
//   {"loss": {"up": L, "down": L},
//    "queue": {"up": Q, "down": Q},
//    "path": {"up_bps": N, "down_bps": N, "up_delay_ms": N, "down_delay_ms": N,
//             "up_jitter_ms": N, "down_jitter_ms": N}}
//
//   L = {"bernoulli": {"rate": R}}
//     | {"gilbert": {"p": P, "r": R, "loss_good": G, "loss_bad": B}}
//       (loss_good omitted at 0, loss_bad omitted at 1 — the classic
//        Gilbert channel)
//   Q = {"depth_pkts": N, "depth_bytes": N, "aqm": "codel"}
//       ({} = unbounded tail-drop FIFO; "aqm": "taildrop" is the omitted
//        default, "codel" is accepted but currently behaves as tail-drop)
//
// The parser additionally accepts a "both" direction key in "loss" and
// "queue" as shorthand for identical up/down models (the writer always
// expands to up/down). "up" is client->server, "down" server->client.
// Writing a parse of any accepted document reproduces the canonical bytes,
// so scenario round trips (export-grid --check) and the spec content-hash
// are stable.
#pragma once

#include <string>

#include "netem/model.h"

namespace quicer::core {
class JsonValue;
}

namespace quicer::netem {

/// Canonical compact JSON of `model` ("{}" for the default pipe).
std::string LinkModelJson(const LinkModel& model);

/// Parses a LinkModel from a JSON value (as documented above). On failure
/// returns false and fills `error` with a "loss.up.gilbert.p: ..."-style
/// sub-path message (no outer field prefix — the scenario parser adds it).
bool ParseLinkModel(const core::JsonValue& value, LinkModel& out, std::string& error);

}  // namespace quicer::netem
