// Runtime state machine of a stochastic LossModel.
//
// One LossProcess per link direction; Link consults it per datagram, after
// the deterministic index patterns. All randomness comes from the caller's
// Rng (the link's per-repetition fork), and an inert process (Kind::kNone)
// consumes no draws at all — so selecting the default model leaves the
// legacy RNG stream untouched and runs byte-identical.
#pragma once

#include "netem/model.h"
#include "sim/rng.h"

namespace quicer::netem {

class LossProcess {
 public:
  LossProcess() = default;
  explicit LossProcess(const LossModel& model) : model_(model) {}

  /// True when the process never drops and never draws (Kind::kNone).
  bool inert() const { return model_.kind == LossModel::Kind::kNone; }

  /// True when the process is in the Gilbert–Elliott bad state.
  bool in_bad_state() const { return bad_; }

  /// Decides one datagram's fate and advances the state machine.
  bool ShouldDrop(sim::Rng& rng);

 private:
  LossModel model_;
  bool bad_ = false;  // Gilbert–Elliott state; starts in the good state
};

}  // namespace quicer::netem
