#include "quic/cid_manager.h"

#include <algorithm>

namespace quicer::quic {
namespace {

/// Set-like insert into a sorted vector: no-op if `value` is present.
void InsertSorted(std::vector<std::uint64_t>& values, std::uint64_t value) {
  const auto it = std::lower_bound(values.begin(), values.end(), value);
  if (it != values.end() && *it == value) return;
  values.insert(it, value);
}

}  // namespace

CidManager::ProcessResult CidManager::OnNewConnectionId(const NewConnectionIdFrame& frame) {
  ProcessResult result;
  OnNewConnectionIdInto(frame, result);
  return result;
}

void CidManager::OnNewConnectionIdInto(const NewConnectionIdFrame& frame,
                                       ProcessResult& result) {
  result.retirements.clear();
  result.duplicate_retirement = false;

  InsertSorted(active_, frame.sequence);
  // Retire everything below retire_prior_to, as the frame demands. active_
  // is sorted, so that's a leading run; retiring in ascending order matches
  // the set-iteration order of the original implementation.
  const auto cut = std::lower_bound(active_.begin(), active_.end(), frame.retire_prior_to);
  for (auto it = active_.begin(); it != cut; ++it) {
    InsertSorted(retired_, *it);
    result.retirements.push_back(RetireConnectionIdFrame{*it});
    ++retirement_count_;
  }
  active_.erase(active_.begin(), cut);
  // A retransmitted NEW_CONNECTION_ID asks us to retire already-retired
  // sequences again.
  if (result.retirements.empty() && !retired_.empty() &&
      retired_.front() < frame.retire_prior_to) {
    result.duplicate_retirement = true;
  }
}

void CidManager::Reset() {
  active_.clear();
  active_.push_back(0);
  retired_.clear();
  retirement_count_ = 0;
}

}  // namespace quicer::quic
