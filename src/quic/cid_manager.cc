#include "quic/cid_manager.h"

namespace quicer::quic {

CidManager::ProcessResult CidManager::OnNewConnectionId(const NewConnectionIdFrame& frame) {
  ProcessResult result;
  active_.insert(frame.sequence);
  // Retire everything below retire_prior_to, as the frame demands.
  for (auto it = active_.begin(); it != active_.end();) {
    if (*it < frame.retire_prior_to) {
      retired_.insert(*it);
      result.retirements.push_back(RetireConnectionIdFrame{*it});
      ++retirement_count_;
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  // A retransmitted NEW_CONNECTION_ID asks us to retire already-retired
  // sequences again.
  for (std::uint64_t seq : retired_) {
    if (seq < frame.retire_prior_to && result.retirements.empty()) {
      result.duplicate_retirement = true;
      break;
    }
  }
  return result;
}

}  // namespace quicer::quic
