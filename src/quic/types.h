// Shared QUIC protocol types.
#pragma once

#include <cstdint>
#include <string_view>

namespace quicer::quic {

/// QUIC packet number spaces (RFC 9000 §12.3).
enum class PacketNumberSpace : std::uint8_t {
  kInitial = 0,
  kHandshake = 1,
  kAppData = 2,
};

inline constexpr int kNumSpaces = 3;

constexpr std::string_view ToString(PacketNumberSpace space) {
  switch (space) {
    case PacketNumberSpace::kInitial: return "Initial";
    case PacketNumberSpace::kHandshake: return "Handshake";
    case PacketNumberSpace::kAppData: return "1-RTT";
  }
  return "?";
}

constexpr int SpaceIndex(PacketNumberSpace space) { return static_cast<int>(space); }

/// Minimum size a client must pad UDP datagrams containing Initial packets
/// to (RFC 9000 §14.1).
inline constexpr std::size_t kMinInitialDatagramSize = 1200;

/// Maximum UDP payload both endpoints use during the handshake.
inline constexpr std::size_t kMaxDatagramSize = 1200;

/// Anti-amplification factor: an unvalidated server may send at most
/// 3x the bytes it received (RFC 9000 §8.1).
inline constexpr std::size_t kAmplificationFactor = 3;

/// AEAD authentication tag appended to every packet.
inline constexpr std::size_t kAeadTagSize = 16;

/// Which peer an endpoint is.
enum class Perspective : std::uint8_t { kClient, kServer };

constexpr std::string_view ToString(Perspective p) {
  return p == Perspective::kClient ? "client" : "server";
}

}  // namespace quicer::quic
