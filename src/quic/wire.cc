#include "quic/wire.h"

#include <cstring>

namespace quicer::quic::wire {
namespace {

// Frame type bytes, aligned with the RFC 9000 registry where applicable.
enum : std::uint8_t {
  kTypePadding = 0x00,
  kTypePing = 0x01,
  kTypeAck = 0x02,
  kTypeCrypto = 0x06,
  kTypeStream = 0x08,  // OFF|LEN|FIN encoded explicitly below
  kTypeMaxData = 0x10,
  kTypeNewConnectionId = 0x18,
  kTypeRetireConnectionId = 0x19,
  kTypeConnectionClose = 0x1c,
  kTypeHandshakeDone = 0x1e,
  kTypeRetry = 0xf6,  // emulation-private
};

void AppendBytes(std::vector<std::uint8_t>& out, std::uint64_t value, int bytes) {
  for (int i = bytes - 1; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xff));
  }
}

std::optional<std::uint64_t> ReadBytes(const std::vector<std::uint8_t>& data,
                                       std::size_t& offset, int bytes) {
  if (offset + static_cast<std::size_t>(bytes) > data.size()) return std::nullopt;
  std::uint64_t value = 0;
  for (int i = 0; i < bytes; ++i) value = (value << 8) | data[offset++];
  return value;
}

struct EncodeVisitor {
  std::vector<std::uint8_t>& out;

  void operator()(const PaddingFrame& f) const {
    out.push_back(kTypePadding);
    AppendVarInt(out, f.size);
    out.insert(out.end(), f.size, 0);
  }
  void operator()(const PingFrame&) const { out.push_back(kTypePing); }
  void operator()(const AckFrame& f) const {
    out.push_back(kTypeAck);
    AppendVarInt(out, f.largest_acked);
    AppendVarInt(out, static_cast<std::uint64_t>(f.ack_delay));
    AppendVarInt(out, f.ranges.size());
    for (const PnRange& range : f.ranges) {
      AppendVarInt(out, range.first);
      AppendVarInt(out, range.last);
    }
  }
  void operator()(const CryptoFrame& f) const {
    out.push_back(kTypeCrypto);
    AppendVarInt(out, f.offset);
    AppendVarInt(out, f.length);
    AppendVarInt(out, static_cast<std::uint64_t>(f.message));
    out.insert(out.end(), f.length, 0);
  }
  void operator()(const StreamFrame& f) const {
    out.push_back(static_cast<std::uint8_t>(kTypeStream | (f.fin ? 0x01 : 0x00)));
    AppendVarInt(out, f.stream_id);
    AppendVarInt(out, f.offset);
    AppendVarInt(out, f.length);
    out.insert(out.end(), f.length, 0);
  }
  void operator()(const MaxDataFrame& f) const {
    out.push_back(kTypeMaxData);
    AppendVarInt(out, f.maximum_data);
  }
  void operator()(const HandshakeDoneFrame&) const { out.push_back(kTypeHandshakeDone); }
  void operator()(const NewConnectionIdFrame& f) const {
    out.push_back(kTypeNewConnectionId);
    AppendVarInt(out, f.sequence);
    AppendVarInt(out, f.retire_prior_to);
  }
  void operator()(const RetireConnectionIdFrame& f) const {
    out.push_back(kTypeRetireConnectionId);
    AppendVarInt(out, f.sequence);
  }
  void operator()(const ConnectionCloseFrame& f) const {
    out.push_back(kTypeConnectionClose);
    AppendVarInt(out, f.error_code);
    AppendVarInt(out, f.reason.size());
    out.insert(out.end(), f.reason.begin(), f.reason.end());
  }
  void operator()(const RetryFrame& f) const {
    out.push_back(kTypeRetry);
    AppendVarInt(out, f.token);
  }
};

}  // namespace

void AppendVarInt(std::vector<std::uint8_t>& out, std::uint64_t value) {
  constexpr std::uint64_t kMax = (1ULL << 62) - 1;
  if (value > kMax) value = kMax;
  if (value < 64) {
    out.push_back(static_cast<std::uint8_t>(value));
  } else if (value < 16384) {
    AppendBytes(out, value | (1ULL << 14), 2);
  } else if (value < 1073741824) {
    AppendBytes(out, value | (2ULL << 30), 4);
  } else {
    AppendBytes(out, value | (3ULL << 62), 8);
  }
}

std::optional<std::uint64_t> ReadVarInt(const std::vector<std::uint8_t>& data,
                                        std::size_t& offset) {
  if (offset >= data.size()) return std::nullopt;
  const int prefix = data[offset] >> 6;
  const int length = 1 << prefix;
  auto value = ReadBytes(data, offset, length);
  if (!value) return std::nullopt;
  const std::uint64_t mask = (1ULL << (8 * length - 2)) - 1;
  return *value & mask;
}

void EncodeFrame(std::vector<std::uint8_t>& out, const Frame& frame) {
  std::visit(EncodeVisitor{out}, frame);
}

std::optional<Frame> DecodeFrame(const std::vector<std::uint8_t>& data, std::size_t& offset) {
  if (offset >= data.size()) return std::nullopt;
  const std::uint8_t type = data[offset++];
  switch (type) {
    case kTypePadding: {
      auto size = ReadVarInt(data, offset);
      if (!size || offset + *size > data.size()) return std::nullopt;
      offset += *size;
      return PaddingFrame{static_cast<std::uint32_t>(*size)};
    }
    case kTypePing:
      return PingFrame{};
    case kTypeAck: {
      AckFrame ack;
      auto largest = ReadVarInt(data, offset);
      auto delay = ReadVarInt(data, offset);
      auto count = ReadVarInt(data, offset);
      if (!largest || !delay || !count) return std::nullopt;
      ack.largest_acked = *largest;
      ack.ack_delay = static_cast<sim::Duration>(*delay);
      for (std::uint64_t i = 0; i < *count; ++i) {
        auto first = ReadVarInt(data, offset);
        auto last = ReadVarInt(data, offset);
        if (!first || !last) return std::nullopt;
        ack.ranges.push_back(PnRange{*first, *last});
      }
      return ack;
    }
    case kTypeCrypto: {
      auto off = ReadVarInt(data, offset);
      auto length = ReadVarInt(data, offset);
      auto message = ReadVarInt(data, offset);
      if (!off || !length || !message || offset + *length > data.size()) return std::nullopt;
      offset += *length;
      CryptoFrame frame;
      frame.offset = *off;
      frame.length = static_cast<std::uint32_t>(*length);
      frame.message = static_cast<tls::MessageType>(*message);
      return frame;
    }
    case kTypeStream:
    case kTypeStream | 0x01: {
      auto id = ReadVarInt(data, offset);
      auto off = ReadVarInt(data, offset);
      auto length = ReadVarInt(data, offset);
      if (!id || !off || !length || offset + *length > data.size()) return std::nullopt;
      offset += *length;
      StreamFrame frame;
      frame.stream_id = *id;
      frame.offset = *off;
      frame.length = static_cast<std::uint32_t>(*length);
      frame.fin = (type & 0x01) != 0;
      return frame;
    }
    case kTypeMaxData: {
      auto maximum = ReadVarInt(data, offset);
      if (!maximum) return std::nullopt;
      return MaxDataFrame{*maximum};
    }
    case kTypeHandshakeDone:
      return HandshakeDoneFrame{};
    case kTypeNewConnectionId: {
      auto sequence = ReadVarInt(data, offset);
      auto retire = ReadVarInt(data, offset);
      if (!sequence || !retire) return std::nullopt;
      return NewConnectionIdFrame{*sequence, *retire};
    }
    case kTypeRetireConnectionId: {
      auto sequence = ReadVarInt(data, offset);
      if (!sequence) return std::nullopt;
      return RetireConnectionIdFrame{*sequence};
    }
    case kTypeConnectionClose: {
      auto code = ReadVarInt(data, offset);
      auto length = ReadVarInt(data, offset);
      if (!code || !length || offset + *length > data.size()) return std::nullopt;
      ConnectionCloseFrame frame;
      frame.error_code = *code;
      frame.reason.assign(data.begin() + static_cast<std::ptrdiff_t>(offset),
                          data.begin() + static_cast<std::ptrdiff_t>(offset + *length));
      offset += *length;
      return frame;
    }
    case kTypeRetry: {
      auto token = ReadVarInt(data, offset);
      if (!token) return std::nullopt;
      return RetryFrame{*token};
    }
    default:
      return std::nullopt;
  }
}

std::vector<std::uint8_t> EncodePacket(const Packet& packet) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(packet.space));
  AppendVarInt(out, packet.packet_number);
  AppendVarInt(out, packet.token);
  AppendVarInt(out, packet.frames.size());
  for (const Frame& frame : packet.frames) EncodeFrame(out, frame);
  return out;
}

std::optional<Packet> DecodePacket(const std::vector<std::uint8_t>& data) {
  std::size_t offset = 0;
  if (data.empty()) return std::nullopt;
  const std::uint8_t space = data[offset++];
  if (space >= kNumSpaces) return std::nullopt;
  auto pn = ReadVarInt(data, offset);
  auto token = ReadVarInt(data, offset);
  auto count = ReadVarInt(data, offset);
  if (!pn || !token || !count) return std::nullopt;

  Packet packet;
  packet.space = static_cast<PacketNumberSpace>(space);
  packet.packet_number = *pn;
  packet.token = *token;
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto frame = DecodeFrame(data, offset);
    if (!frame) return std::nullopt;
    packet.frames.push_back(std::move(*frame));
  }
  if (offset != data.size()) return std::nullopt;  // trailing garbage
  return packet;
}

std::vector<std::uint8_t> EncodeDatagram(const Datagram& datagram) {
  std::vector<std::uint8_t> out;
  AppendVarInt(out, datagram.packets.size());
  for (const Packet& packet : datagram.packets) {
    const std::vector<std::uint8_t> encoded = EncodePacket(packet);
    AppendVarInt(out, encoded.size());
    out.insert(out.end(), encoded.begin(), encoded.end());
  }
  return out;
}

std::optional<Datagram> DecodeDatagram(const std::vector<std::uint8_t>& data) {
  std::size_t offset = 0;
  auto count = ReadVarInt(data, offset);
  if (!count) return std::nullopt;
  Datagram datagram;
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto length = ReadVarInt(data, offset);
    if (!length || offset + *length > data.size()) return std::nullopt;
    std::vector<std::uint8_t> slice(data.begin() + static_cast<std::ptrdiff_t>(offset),
                                    data.begin() + static_cast<std::ptrdiff_t>(offset + *length));
    offset += *length;
    auto packet = DecodePacket(slice);
    if (!packet) return std::nullopt;
    datagram.packets.push_back(std::move(*packet));
  }
  if (offset != data.size()) return std::nullopt;
  return datagram;
}

}  // namespace quicer::quic::wire
