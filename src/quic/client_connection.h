// Client side of the QUIC 1-RTT handshake (Fig 3).
//
// Flight 1: Initial CRYPTO[ClientHello], padded to 1200 B.
// On the server's flight: install handshake keys after ServerHello, send the
// second client flight (Initial ACK, Handshake Finished+ACK, 1-RTT request)
// once EncryptedExtensions..Finished are complete. The shape of that second
// flight — how many datagrams, what coalesces — follows the implementation
// profile (Table 4) via ConnectionConfig.
#pragma once

#include "quic/connection.h"

namespace quicer::quic {

struct ClientConfig {
  ConnectionConfig base;
  /// Send the HTTP request as 0-RTT early data coalesced with the
  /// ClientHello (assumes a resumed session; §5 "Generalization to 0-RTT").
  bool enable_0rtt = false;
  /// Use a received Retry packet as the first RTT estimate (§5: "the client
  /// may use this packet as the first RTT estimate").
  bool use_retry_as_rtt_sample = true;
};

class ClientConnection : public Connection {
 public:
  ClientConnection(sim::EventQueue& queue, ClientConfig config, sim::Rng rng,
                   sim::Arena* arena = nullptr);

  /// Rewinds to freshly-constructed state for another repetition (see
  /// Connection::ResetForRun).
  void ResetForRun(const ClientConfig& config, sim::Rng rng);

  /// Sends the ClientHello and arms the initial PTO.
  void Start();

  /// True once the response stream finished.
  bool response_complete() const { return response_complete_; }

  /// Number of second-flight datagrams this client will emit after the
  /// ClientHello in a lossless handshake (Table 4 mapping).
  int ExpectedSecondFlightDatagrams() const {
    return config().second_flight_datagrams;
  }

  /// Number of Retry round trips this connection went through (0 or 1).
  int retries_seen() const { return retries_seen_; }

 protected:
  void HandleCrypto(PacketNumberSpace space, const CryptoFrame& frame) override;
  void HandleStream(const StreamFrame& frame) override;
  void HandleHandshakeDone() override;
  void HandleRetry(const RetryFrame& frame) override;
  void AfterDatagramProcessed() override;

 private:
  void SendClientHello();
  void SendSecondFlight();
  std::vector<Frame> BuildEarlyDataFrames();
  void ExpectServerMessages();

  ClientConfig client_config_;
  bool started_ = false;
  bool flight2_sent_ = false;
  bool response_complete_ = false;
  bool early_data_sent_ = false;
  int retries_seen_ = 0;
  std::uint64_t retry_token_ = 0;
  sim::Time client_hello_sent_time_ = -1;
};

}  // namespace quicer::quic
