// Reassembly of the CRYPTO stream within one packet number space.
//
// The emulation does not carry real TLS bytes; the receiver instead knows the
// expected message layout (type + size, in order) and tracks which byte
// ranges of the crypto stream have arrived. A message is "complete" when its
// whole extent is covered — this is what gates key installation and flight
// transitions in the connection state machines.
#pragma once

#include <cstdint>
#include <vector>

#include "quic/frame.h"
#include "tls/messages.h"

namespace quicer::quic {

/// Crypto-stream reassembly buffer for one packet number space.
class CryptoBuffer {
 public:
  /// Rewinds to an empty buffer — no expected layout, nothing received —
  /// for context reuse between repetitions; buffers keep their capacity.
  void Reset();

  /// Appends an expected message to the layout. Messages occupy consecutive
  /// stream ranges in the order declared.
  void ExpectMessage(tls::MessageType type, std::size_t size);

  /// Records receipt of a CRYPTO frame chunk. Overlapping/duplicate ranges
  /// are fine.
  void OnFrame(const CryptoFrame& frame);

  /// True if the full extent of `type` has been received.
  bool IsComplete(tls::MessageType type) const;

  /// True once every expected message is complete.
  bool AllComplete() const;

  /// Total bytes expected across all declared messages.
  std::uint64_t TotalExpected() const { return total_expected_; }

  /// Contiguous prefix of the stream received so far.
  std::uint64_t ContiguousReceived() const;

  /// Stream range [begin, end) occupied by `type`; {0,0} if not declared.
  std::pair<std::uint64_t, std::uint64_t> RangeOf(tls::MessageType type) const;

 private:
  struct Expected {
    tls::MessageType type;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };
  struct Interval {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;  // exclusive
  };

  bool Covered(std::uint64_t begin, std::uint64_t end) const;

  std::vector<Expected> expected_;
  std::vector<Interval> received_;  // sorted, disjoint
  std::uint64_t total_expected_ = 0;
};

}  // namespace quicer::quic
