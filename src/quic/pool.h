// Thread-local free lists for hot-path packet and frame storage.
//
// A simulated handshake builds and tears down dozens of frame vectors,
// packet vectors and datagrams; without pooling, every one is a heap
// round-trip. These free lists hand back empty vectors with retained
// capacity, so after a short warm-up the engine's steady state allocates
// nothing per datagram.
//
// Invariants:
//  * Pools are thread-local: a container acquired on a thread must be
//    released on the same thread. The simulator is single-threaded per run
//    and sweep workers pin a run to one thread, so this holds by design.
//  * Released containers are cleared before reuse — element state never
//    leaks between runs, only raw buffer capacity is recycled. Pooling is
//    therefore invisible to simulation results (byte-identical exports).
//  * Pools are bounded; releases beyond the cap simply free.
//
// The pools cover *transient* containers — frames and packets alive for one
// datagram's build/deliver cycle. Storage that outlives the datagram (the
// retransmittable frames parked in the sent-packet ledger) instead lives on
// the connection's sim::Arena: those frames are bump-allocated once per send
// and reclaimed wholesale when the run's arena resets, so they never churn
// through these free lists at all.
#pragma once

#include <vector>

#include "quic/packet.h"

namespace quicer::quic {

/// Returns an empty frame vector, reusing pooled capacity when available.
std::vector<Frame> AcquireFrameVec();

/// Recycles a frame vector's buffer. ACK frames' range buffers are salvaged
/// into the PnRange pool first; all other element state is destroyed.
void ReleaseFrameVec(std::vector<Frame>&& frames);

/// Returns an empty ACK-range vector, reusing pooled capacity when
/// available (AckManager::BuildAck uses this for every emitted ACK).
std::vector<PnRange> AcquirePnRangeVec();

/// Recycles an ACK-range vector's buffer.
void ReleasePnRangeVec(std::vector<PnRange>&& ranges);

/// Returns an empty packet vector, reusing pooled capacity when available.
std::vector<Packet> AcquirePacketVec();

/// Recycles a packet vector's buffer, salvaging each packet's frame vector
/// into the frame pool first.
void ReleasePacketVec(std::vector<Packet>&& packets);

/// Returns a datagram with an empty pooled packet vector.
Datagram AcquireDatagram();

/// Recycles a datagram's packet vector (and nested frame vectors).
void ReleaseDatagram(Datagram&& datagram);

}  // namespace quicer::quic
