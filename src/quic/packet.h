// QUIC packets and UDP datagram coalescing.
//
// A Datagram is what the Link transports and what loss patterns drop; the
// paper's loss scenarios are defined on datagram indices precisely because
// implementations coalesce packets differently (Table 4, Appendix E).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "quic/frame.h"
#include "quic/types.h"

namespace quicer::quic {

/// One QUIC packet: a packet number in a space plus frames.
struct Packet {
  PacketNumberSpace space = PacketNumberSpace::kInitial;
  std::uint64_t packet_number = 0;
  /// Address-validation token echoed in Initial packets after a Retry
  /// (0 = no token).
  std::uint64_t token = 0;
  std::vector<Frame> frames;
  /// Cached encoded size, stamped when the packet is built (0 = unknown).
  /// The simulator moves packets sender-to-receiver without re-encoding, so
  /// the stamp saves a frame-list walk at every sizing site along the way.
  /// Anything that mutates `frames` after building must re-stamp (see
  /// PadDatagramTo).
  std::size_t wire_size = 0;

  /// Long/short header size estimate (long headers carry CIDs + lengths).
  std::size_t HeaderSize() const;

  /// Full encoded size: header + frames + AEAD tag.
  std::size_t WireSize() const;

  bool IsAckEliciting() const { return AnyAckEliciting(frames); }

  /// Frames worth retransmitting if this packet is declared lost.
  std::vector<Frame> RetransmittableFrames() const;

  /// True if the packet carries a frame of type T.
  template <typename T>
  bool Has() const {
    for (const Frame& frame : frames) {
      if (std::holds_alternative<T>(frame)) return true;
    }
    return false;
  }

  /// Returns the first frame of type T or nullptr.
  template <typename T>
  const T* Find() const {
    for (const Frame& frame : frames) {
      if (const T* f = std::get_if<T>(&frame)) return f;
    }
    return nullptr;
  }

  std::string Describe() const;
};

/// One UDP datagram: one or more coalesced QUIC packets.
struct Datagram {
  std::vector<Packet> packets;
  /// Per-direction 1-based send index; assigned by the connection when
  /// handing the datagram to the link (mirrors the paper's loss indices).
  std::uint64_t index = 0;

  Datagram() = default;
  Datagram(Datagram&&) = default;
  Datagram& operator=(Datagram&&) = default;
  Datagram(const Datagram&) = default;
  Datagram& operator=(const Datagram&) = default;
  /// Returns the packet/frame/ack-range storage to the thread-local pools.
  /// Datagrams die in many places — after delivery, dropped by loss, or
  /// still sitting in an event-queue closure when a run ends and the queue
  /// is reset — and every one of those paths must preserve pool capacity or
  /// warm RunContexts start re-allocating what the teardown destroyed.
  ~Datagram();

  std::size_t WireSize() const;
  bool IsAckEliciting() const;

  /// True if any packet in the datagram is in `space`.
  bool HasSpace(PacketNumberSpace space) const;

  std::string Describe() const;
};

/// Pads `datagram` with a PADDING frame in its last packet so its wire size
/// reaches at least `target` bytes (no-op if already large enough).
void PadDatagramTo(Datagram& datagram, std::size_t target);

}  // namespace quicer::quic
