// Anti-amplification limit (RFC 9000 §8.1).
//
// Until the client's address is validated, a server may send at most three
// times the bytes it has received. When the TLS certificate exceeds this
// budget the server blocks mid-flight — the situation in which instant ACK
// helps most (Fig 5), because the earlier client PTO produces probe packets
// that refill the budget sooner.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace quicer::quic {

/// Tracks the 3x send budget of an unvalidated server.
class AmplificationLimiter {
 public:
  /// `enforced` is false for clients, which are never amplification-limited.
  explicit AmplificationLimiter(bool enforced) : enforced_(enforced) {}

  void OnBytesReceived(std::size_t bytes) { received_ += bytes; }
  void OnBytesSent(std::size_t bytes) { sent_ += bytes; }

  /// Address validation lifts the limit permanently.
  void OnAddressValidated() { validated_ = true; }
  bool validated() const { return validated_ || !enforced_; }

  /// Bytes that may still be sent under the limit.
  std::size_t Budget() const;

  /// True if a datagram of `bytes` fits in the current budget.
  bool CanSend(std::size_t bytes) const { return Budget() >= bytes; }

  /// Bookkeeping for the "server blocked" statistics the paper reports from
  /// server logs (§4.1): call when sending stalls / resumes.
  void NoteBlocked(sim::Time now);
  void NoteUnblocked(sim::Time now);

  std::uint64_t blocked_events() const { return blocked_events_; }
  sim::Duration total_blocked_time(sim::Time now) const;

  std::size_t bytes_received() const { return received_; }
  std::size_t bytes_sent() const { return sent_; }

 private:
  bool enforced_;
  bool validated_ = false;
  std::size_t received_ = 0;
  std::size_t sent_ = 0;
  std::uint64_t blocked_events_ = 0;
  bool currently_blocked_ = false;
  sim::Time blocked_since_ = 0;
  sim::Duration blocked_accum_ = 0;
};

}  // namespace quicer::quic
