#include "quic/client_connection.h"

#include <utility>

#include "quic/pool.h"

namespace quicer::quic {
namespace {
constexpr std::size_t kCryptoChunk = 1000;
}

ClientConnection::ClientConnection(sim::EventQueue& queue, ClientConfig config, sim::Rng rng,
                                   sim::Arena* arena)
    : Connection(queue, Perspective::kClient, config.base, rng, arena), client_config_(config) {
  ExpectServerMessages();
}

void ClientConnection::ExpectServerMessages() {
  // Expected server messages: ServerHello in Initial, the rest in Handshake.
  space(PacketNumberSpace::kInitial)
      .crypto_rx.ExpectMessage(tls::MessageType::kServerHello, config().tls.server_hello);
  auto& hs = space(PacketNumberSpace::kHandshake).crypto_rx;
  hs.ExpectMessage(tls::MessageType::kEncryptedExtensions, config().tls.encrypted_extensions);
  hs.ExpectMessage(tls::MessageType::kCertificate, config().tls.certificate);
  hs.ExpectMessage(tls::MessageType::kCertificateVerify, config().tls.certificate_verify);
  hs.ExpectMessage(tls::MessageType::kFinished, config().tls.finished);
}

void ClientConnection::ResetForRun(const ClientConfig& config, sim::Rng rng) {
  Connection::ResetForRun(config.base, rng);
  client_config_ = config;
  started_ = false;
  flight2_sent_ = false;
  response_complete_ = false;
  early_data_sent_ = false;
  retries_seen_ = 0;
  retry_token_ = 0;
  client_hello_sent_time_ = -1;
  ExpectServerMessages();
}

void ClientConnection::Start() {
  if (started_) return;
  started_ = true;
  SendClientHello();
}

std::vector<Frame> ClientConnection::BuildEarlyDataFrames() {
  std::vector<Frame> frames = AcquireFrameVec();
  if (config().http_version == http::Version::kHttp3) {
    StreamFrame settings;
    settings.stream_id = http::kClientControlStreamId;
    settings.length = static_cast<std::uint32_t>(http::kH3SettingsBytes);
    frames.push_back(settings);
  }
  StreamFrame request;
  request.stream_id = http::kRequestStreamId;
  request.length = static_cast<std::uint32_t>(http::RequestBytes(config().http_version));
  request.fin = true;
  frames.push_back(request);
  return frames;
}

void ClientConnection::SendClientHello() {
  client_hello_sent_time_ = queue().now();
  std::vector<Frame> frames = MakeCryptoFrames(PacketNumberSpace::kInitial,
                                               tls::MessageType::kClientHello,
                                               config().tls.client_hello, kCryptoChunk);
  RememberCryptoFlight(PacketNumberSpace::kInitial, frames);
  Packet initial = BuildPacket(PacketNumberSpace::kInitial, std::move(frames));
  initial.token = retry_token_;
  if (initial.token != 0) initial.wire_size = initial.WireSize();  // token adds bytes

  std::vector<Packet> packets = AcquirePacketVec();
  packets.push_back(std::move(initial));
  if (client_config_.enable_0rtt && !early_data_sent_) {
    // 0-RTT: the request rides in the first flight, protected with the
    // resumed session's early keys.
    early_data_sent_ = true;
    InstallOneRttSendKeys();
    packets.push_back(BuildPacket(PacketNumberSpace::kAppData, BuildEarlyDataFrames()));
  }
  SendDatagramNow(std::move(packets), kMinInitialDatagramSize);
}

void ClientConnection::HandleRetry(const RetryFrame& frame) {
  if (retry_token_ != 0) return;  // already retried once
  ++retries_seen_;
  retry_token_ = frame.token;
  trace().RecordNote(queue().now(), "transport", "Retry received; resending ClientHello");

  // §5: the Retry round trip may serve as the first RTT estimate. A
  // subsequent instant ACK is still beneficial — it reduces the variance.
  if (client_config_.use_retry_as_rtt_sample && client_hello_sent_time_ >= 0) {
    InjectRttSample(queue().now() - client_hello_sent_time_);
  }

  // The original attempt's state is discarded (RFC 9000 §17.2.5): forget
  // the unacknowledged ClientHello and restart the crypto stream.
  SpaceState& initial = space(PacketNumberSpace::kInitial);
  congestion().OnPacketDiscarded(initial.ledger.bytes_in_flight());
  initial.ledger.Clear();
  initial.crypto_tx_offset = 0;
  early_data_sent_ = false;  // 0-RTT data must be re-sent with the token
  SendClientHello();
}

void ClientConnection::HandleCrypto(PacketNumberSpace s, const CryptoFrame& frame) {
  (void)frame;
  if (s == PacketNumberSpace::kInitial && !HasHandshakeKeys() &&
      space(s).crypto_rx.IsComplete(tls::MessageType::kServerHello)) {
    InstallHandshakeKeys();
  }
  // Second-flight emission happens in AfterDatagramProcessed so the whole
  // coalesced datagram is taken into account first.
}

void ClientConnection::AfterDatagramProcessed() {
  if (flight2_sent_ || !HasHandshakeKeys()) return;
  if (!space(PacketNumberSpace::kHandshake).crypto_rx.AllComplete()) return;
  InstallOneRttRecvKeys();
  InstallOneRttSendKeys();
  // Absorb the 1-RTT tail of the server flight (H3 SETTINGS,
  // NEW_CONNECTION_ID) first so replies coalesce into the second flight.
  ReprocessUndecryptable();
  SendSecondFlight();
}

void ClientConnection::SendSecondFlight() {
  flight2_sent_ = true;

  // Handshake packet: client Finished (+ pending Handshake ACK).
  std::vector<Frame> hs_frames = AcquireFrameVec();
  if (auto ack = PopAck(PacketNumberSpace::kHandshake)) hs_frames.push_back(std::move(*ack));
  std::vector<Frame> fin = MakeCryptoFrames(PacketNumberSpace::kHandshake,
                                            tls::MessageType::kFinished,
                                            config().tls.finished, kCryptoChunk);
  RememberCryptoFlight(PacketNumberSpace::kHandshake, fin);
  for (Frame& frame : fin) hs_frames.push_back(std::move(frame));
  ReleaseFrameVec(std::move(fin));

  // 1-RTT packet: HTTP request (+ HTTP/3 client control stream SETTINGS),
  // coalesced with any queued 1-RTT replies (e.g. RETIRE_CONNECTION_ID for
  // the NEW_CONNECTION_ID in the server flight) — real stacks bundle these
  // into the same flight rather than emitting an extra datagram.
  std::vector<Frame> app_frames = AcquireFrameVec();
  auto& app_pending = space(PacketNumberSpace::kAppData).pending;
  for (Frame& frame : app_pending) app_frames.push_back(std::move(frame));
  app_pending.clear();
  if (!early_data_sent_) {
    // 1-RTT handshake: the request goes out now. (In 0-RTT it already rode
    // with the ClientHello.)
    std::vector<Frame> early = BuildEarlyDataFrames();
    for (Frame& frame : early) app_frames.push_back(std::move(frame));
    ReleaseFrameVec(std::move(early));
  } else if (app_frames.empty()) {
    // Keep the flight shape: an ACK-bearing 1-RTT packet still closes the
    // exchange.
    if (auto app_ack = PopAck(PacketNumberSpace::kAppData)) {
      app_frames.push_back(std::move(*app_ack));
    }
    if (app_frames.empty()) app_frames.push_back(PingFrame{});
  }

  // Leftover Initial ACK (quiche defers it to coalesce here; for others it
  // usually went out as its own datagram already).
  std::optional<AckFrame> initial_ack = PopAck(PacketNumberSpace::kInitial);

  const int split = config().second_flight_datagrams;
  if (split <= 1) {
    // quiche: everything in one datagram.
    std::vector<Packet> packets = AcquirePacketVec();
    if (initial_ack) {
      std::vector<Frame> frames = AcquireFrameVec();
      frames.push_back(std::move(*initial_ack));
      packets.push_back(BuildPacket(PacketNumberSpace::kInitial, std::move(frames)));
    }
    packets.push_back(BuildPacket(PacketNumberSpace::kHandshake, std::move(hs_frames)));
    packets.push_back(BuildPacket(PacketNumberSpace::kAppData, std::move(app_frames)));
    SendDatagramNow(std::move(packets));
  } else if (split == 2) {
    // neqo: Handshake and 1-RTT coalesce.
    if (initial_ack) {
      std::vector<Frame> frames = AcquireFrameVec();
      frames.push_back(std::move(*initial_ack));
      SendPacketNow(PacketNumberSpace::kInitial, std::move(frames));
    }
    std::vector<Packet> packets = AcquirePacketVec();
    packets.push_back(BuildPacket(PacketNumberSpace::kHandshake, std::move(hs_frames)));
    packets.push_back(BuildPacket(PacketNumberSpace::kAppData, std::move(app_frames)));
    SendDatagramNow(std::move(packets));
  } else {
    // Default (3) and picoquic (4): one datagram per space; picoquic's
    // extra datagram is its uncoalesced Handshake ACK, which the base class
    // already emitted separately (coalesce_acks = false).
    if (initial_ack) {
      std::vector<Frame> frames = AcquireFrameVec();
      frames.push_back(std::move(*initial_ack));
      SendPacketNow(PacketNumberSpace::kInitial, std::move(frames));
    }
    SendPacketNow(PacketNumberSpace::kHandshake, std::move(hs_frames));
    SendPacketNow(PacketNumberSpace::kAppData, std::move(app_frames));
  }

  // Sending the Finished completes the handshake from the client's TLS
  // perspective; the client now discards Initial keys (RFC 9001 §4.9.1).
  SetHandshakeComplete();
  if (!space(PacketNumberSpace::kInitial).discarded) {
    DiscardSpace(PacketNumberSpace::kInitial);
  }
}

void ClientConnection::HandleStream(const StreamFrame& frame) {
  if (frame.stream_id != http::kRequestStreamId) return;
  const InStream* in_ptr = FindInStream(http::kRequestStreamId);
  if (in_ptr == nullptr) return;
  const InStream& in = *in_ptr;
  if (in.fin_seen && in.high_watermark >= in.fin_offset && !response_complete_) {
    response_complete_ = true;
    mutable_metrics().response_complete = queue().now();
  }
}

void ClientConnection::HandleHandshakeDone() {
  // Handshake confirmed; base class already discarded Handshake keys.
}

}  // namespace quicer::quic
