// QUIC connection state machine (endpoint-role-independent core).
//
// Implements the protocol mechanics the paper's findings rest on:
//
//  * three packet number spaces with separate ack/loss state;
//  * RTT sampling rules — only an ACK whose largest newly-acked packet is
//    ack-eliciting yields a sample (RFC 9002 §5.1). This is why an instant
//    ACK gives the *client* a sample while leaving the *server* without one
//    (Fig 6);
//  * PTO arming per RFC 9002 §6.2 including the anti-deadlock rule: a client
//    with nothing in flight keeps probing until the handshake is confirmed,
//    which is what lets it refill a server's anti-amplification budget
//    (Fig 5);
//  * deterministic datagram coalescing, key discard, probe transmission with
//    exponential backoff, NewReno congestion control and connection-level
//    flow control (MAX_DATA cadence drives Fig 11).
//
// Documented implementation quirks (Table 4 / §4) are configuration, not
// subclasses: default PTO, second-flight coalescing, whether Initial-space
// RTT samples are used (picoquic), whether an emptied in-flight set re-arms
// the PTO from the new sample (mvfst/picoquic), erroneous smoothed-RTT
// initialisation (go-x-net), and the quiche datagram-drop / CID-retirement
// behaviours.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "http/http.h"
#include "qlog/qlog.h"
#include "quic/ack_manager.h"
#include "quic/amplification.h"
#include "quic/cid_manager.h"
#include "quic/crypto_buffer.h"
#include "quic/frame.h"
#include "quic/packet.h"
#include "quic/types.h"
#include "recovery/congestion.h"
#include "recovery/pto.h"
#include "recovery/rtt_estimator.h"
#include "recovery/sent_packets.h"
#include "sim/arena.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "tls/messages.h"

namespace quicer::quic {

/// Behaviour knobs shared by both endpoint roles. Client implementation
/// profiles (Table 4) and the reference server populate this.
struct ConnectionConfig {
  recovery::PtoConfig pto;
  recovery::RttVarFormula rttvar_formula = recovery::RttVarFormula::kRfc9002;
  AckPolicy ack_policy;  // applied to the 1-RTT space; Initial/Handshake ack immediately
  tls::HandshakeSizes tls;
  http::Version http_version = http::Version::kHttp1;

  /// Fixed local processing delay applied before a received datagram takes
  /// effect (QUIC stack + scheduling overhead, §4.1).
  sim::Duration processing_delay = 0;
  /// Additional uniform jitter in [0, processing_jitter] on top.
  sim::Duration processing_jitter = 0;

  /// Number of probe datagrams sent per PTO expiry (RFC 9002 allows 1-2).
  /// Senders without an RTT sample send the larger count.
  int probe_count_without_rtt = 2;
  int probe_count_with_rtt = 1;
  /// Probe content when nothing is outstanding: retransmit the last-sent
  /// CRYPTO flight instead of a PING (§5 "clients can retransmit the
  /// ClientHello").
  bool probe_with_data = false;

  /// RFC 9000 §13.2: endpoints MAY ignore the ACK Delay field in Initial
  /// packets; all modelled stacks do.
  bool apply_ack_delay_in_initial = false;

  // --- documented implementation quirks ---
  /// picoquic ignores RTT samples from the Initial space (§4.2).
  bool use_initial_space_rtt_samples = true;
  /// mvfst/picoquic do not re-arm the PTO from a fresh sample when an ACK
  /// empties the in-flight set pre-handshake ("receiving an instant ACK does
  /// not cause the client to send probe packets", §4.1).
  bool rearm_pto_on_empty_inflight = true;
  /// go-x-net sometimes initialises smoothed RTT wrongly (§4.1).
  std::optional<sim::Duration> wrong_first_srtt;
  double wrong_first_srtt_probability = 0.0;
  /// quiche drops a coalesced datagram that acknowledges one of its PING
  /// probes (§4.1, HTTP/1.1 only — profiles gate it).
  bool drop_coalesced_ping_reply = false;
  /// quiche aborts when asked to retire the same CID twice (§4.2).
  bool abort_on_duplicate_cid_retirement = false;

  // --- second client flight shaping (Table 4) ---
  /// Number of UDP datagrams the second client flight occupies (1-4).
  int second_flight_datagrams = 3;
  /// Defer even Initial ACKs so they coalesce with the second flight
  /// (quiche's single-datagram second flight).
  bool defer_acks_until_flight = false;
  /// Coalesce Initial and Handshake ACKs into one datagram (picoquic: no).
  bool coalesce_acks = true;

  // --- flow control (Fig 11) ---
  /// Grant window advertised to the peer above the bytes consumed.
  std::size_t local_max_data = 1 * 1024 * 1024;
  /// Send a MAX_DATA update every this many received stream bytes.
  std::size_t flow_update_interval_bytes = 64 * 1024;

  /// Idle timeout (RFC 9000 §10.1): the connection closes after this long
  /// without receiving any datagram. 0 disables the timer.
  sim::Duration idle_timeout = sim::Seconds(30);

  qlog::TraceConfig trace;
};

/// Timing and event counters extracted after a run.
struct ConnectionMetrics {
  sim::Time start_time = -1;
  sim::Time first_ack_received = -1;       // first ACK frame from the peer
  sim::Time first_crypto_received = -1;    // first CRYPTO frame (SH for clients)
  sim::Time first_stream_byte = -1;        // TTFB: first STREAM frame from peer
  /// First byte on the request/response stream (excludes the H3 control
  /// stream SETTINGS — the "first payload byte after the loss event" of
  /// Fig 6/7/12/13, Appendix F).
  sim::Time first_response_byte = -1;
  sim::Time handshake_complete = -1;
  sim::Time handshake_confirmed = -1;
  sim::Time response_complete = -1;
  sim::Duration first_rtt_sample = -1;
  sim::Duration first_pto_period = -1;     // PTO implied by the first sample
  int rtt_samples = 0;
  int pto_expirations = 0;
  int probe_datagrams_sent = 0;
  int retransmitted_frames = 0;
  int spurious_retransmits = 0;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  /// UDP payload bytes on the wire (sum of datagram wire sizes), the
  /// denominator for link-utilization readouts under netem queue models.
  std::uint64_t wire_bytes_sent = 0;
  std::uint64_t wire_bytes_received = 0;
  int datagrams_dropped_by_quirk = 0;
  std::uint64_t stream_bytes_received = 0;
  bool aborted = false;
  std::string abort_reason;
  int amp_blocked_events = 0;
};

/// Common endpoint machinery; ClientConnection / ServerConnection add the
/// handshake choreography.
class Connection {
 public:
  using SendFn = std::function<void(Datagram&&)>;

  /// `arena` is the per-repetition bump arena the sent-packet ledger parks
  /// retransmittable-frame spans in — normally the one owned by
  /// core::RunContext, reset wholesale between repetitions. Standalone
  /// constructions (tests, ad-hoc harnesses) may pass nullptr: the
  /// connection then owns a private arena with the same lifetime as itself.
  Connection(sim::EventQueue& queue, Perspective perspective, ConnectionConfig config,
             sim::Rng rng, sim::Arena* arena = nullptr);
  virtual ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Installs the transmit path (the harness wires this to the Link).
  void set_send_function(SendFn fn) { send_ = std::move(fn); }

  /// Entry point from the link; applies the processing-delay model and then
  /// dispatches to ProcessDatagram.
  void OnDatagramReceived(Datagram datagram);

  const ConnectionMetrics& metrics() const { return metrics_; }
  const qlog::Trace& trace() const { return trace_; }
  qlog::Trace& trace() { return trace_; }
  const recovery::RttEstimator& rtt() const { return rtt_; }
  const ConnectionConfig& config() const { return config_; }
  Perspective perspective() const { return perspective_; }
  bool closed() const { return closed_; }
  bool handshake_complete() const { return handshake_complete_; }
  bool handshake_confirmed() const { return handshake_confirmed_; }

  /// The amplification limiter (enforced only for servers).
  const AmplificationLimiter& amplification() const { return amp_; }

 protected:
  struct SpaceState {
    SpaceState(PacketNumberSpace s, AckPolicy policy) : acks(s, policy) {}
    std::uint64_t next_pn = 0;
    AckManager acks;
    recovery::SentPacketLedger ledger;
    CryptoBuffer crypto_rx;
    std::uint64_t crypto_tx_offset = 0;
    bool discarded = false;
    /// Frames queued for the next Flush().
    std::vector<Frame> pending;
  };

  /// Inbound per-stream receive state (high-watermark based; duplicate
  /// retransmissions do not double-count).
  struct InStream {
    std::uint64_t high_watermark = 0;
    bool fin_seen = false;
    std::uint64_t fin_offset = 0;
  };

  // ---- subclass interface ----
  virtual void HandleCrypto(PacketNumberSpace space, const CryptoFrame& frame) = 0;
  virtual void HandleStream(const StreamFrame& frame) = 0;
  virtual void HandleHandshakeDone() {}
  virtual void HandlePing(PacketNumberSpace space) { (void)space; }
  /// Retry packet received (clients only; RFC 9000 §8.1.2).
  virtual void HandleRetry(const RetryFrame& frame) { (void)frame; }
  /// Called after all packets of a datagram were processed; subclasses run
  /// flight-completion logic here (before the base flush).
  virtual void AfterDatagramProcessed() {}
  /// Called when the anti-amplification budget was lifted (validation).
  virtual void OnSendBudgetIncreased() {}
  /// A WFC server holds its Initial ACK until the certificate flight is
  /// ready; subclasses suppress immediate/timed ACK emission per space.
  virtual bool SuppressImmediateAck(PacketNumberSpace s) const {
    (void)s;
    return false;
  }

  // ---- services for subclasses ----
  sim::EventQueue& queue() { return queue_; }
  sim::Rng& rng() { return rng_; }
  SpaceState& space(PacketNumberSpace s) { return spaces_[SpaceIndex(s)]; }
  const SpaceState& space(PacketNumberSpace s) const { return spaces_[SpaceIndex(s)]; }
  ConnectionMetrics& mutable_metrics() { return metrics_; }
  AmplificationLimiter& amplification_mutable() { return amp_; }
  recovery::NewRenoCongestion& congestion() { return cc_; }
  /// Inbound receive state for `stream_id`, or nullptr before its first
  /// STREAM frame arrives.
  const InStream* FindInStream(std::uint64_t stream_id) const;

  /// Rewinds every member to its just-constructed state so the object can
  /// run another repetition without reallocation: container capacities (and
  /// pooled buffers) are retained, all protocol state re-derives from
  /// (config, rng). Subclasses extend this with their own state and MUST
  /// call the base version first.
  void ResetForRun(const ConnectionConfig& config, sim::Rng rng);

  /// Builds a packet in `s`, assigning the next packet number.
  Packet BuildPacket(PacketNumberSpace s, std::vector<Frame> frames);

  /// Records and transmits one datagram; pads to `pad_to` if non-zero.
  /// Returns false if the amplification limit blocked the send (packet
  /// numbers are returned; the caller keeps its data).
  bool SendDatagramNow(std::vector<Packet> packets, std::size_t pad_to = 0);

  /// Builds a packet in `s` around `frames` and transmits it as its own
  /// datagram (pooled packet vector; same return contract as
  /// SendDatagramNow).
  bool SendPacketNow(PacketNumberSpace s, std::vector<Frame> frames, std::size_t pad_to = 0);

  /// Emits ACK-only datagrams for every space that currently requires an
  /// immediate ACK, honouring the coalesce/defer configuration.
  void MaybeSendAcks();

  /// Pops the pending ACK for a space (to bundle into a flight packet).
  std::optional<AckFrame> PopAck(PacketNumberSpace s);

  /// Queues a frame for Flush().
  void QueueFrame(PacketNumberSpace s, Frame frame);

  /// Queues stream bytes for transmission in the 1-RTT space.
  void QueueStreamData(std::uint64_t stream_id, std::uint64_t bytes, bool fin);

  /// Packs queued frames + stream data into datagrams and transmits as much
  /// as amplification and congestion limits allow.
  void Flush();

  /// True while frames or stream bytes await transmission.
  bool HasQueuedData() const;

  /// Splits a TLS message into CRYPTO frames of at most `max_chunk` payload
  /// bytes, advancing the space's crypto send offset.
  std::vector<Frame> MakeCryptoFrames(PacketNumberSpace s, tls::MessageType message,
                                      std::size_t message_size, std::size_t max_chunk);

  /// As MakeCryptoFrames, but queues the frames for Flush() directly —
  /// no intermediate vector.
  void QueueCryptoFrames(PacketNumberSpace s, tls::MessageType message,
                         std::size_t message_size, std::size_t max_chunk);

  /// Remembers the crypto flight last sent in `s` for probe_with_data.
  void RememberCryptoFlight(PacketNumberSpace s, const std::vector<Frame>& frames);

  /// Discards keys/state of a space (RFC 9002 §6.4) and re-arms timers.
  void DiscardSpace(PacketNumberSpace s);

  /// Marks the handshake complete/confirmed (idempotent).
  void SetHandshakeComplete();
  void SetHandshakeConfirmed();

  /// Re-evaluates the loss-detection/PTO timer (RFC 9002 A.8).
  void SetLossDetectionTimer();

  /// Terminates the connection (quirk aborts).
  void CloseConnection(std::string reason);

  /// Re-processes packets that were buffered waiting for keys. Subclasses
  /// call this right after installing keys mid-hook (e.g. the client must
  /// absorb the 1-RTT tail of the server flight before building its own
  /// second flight, so replies coalesce into it).
  void ReprocessUndecryptable();

  /// Key availability management.
  bool HasHandshakeKeys() const { return has_handshake_keys_; }
  void InstallHandshakeKeys() { has_handshake_keys_ = true; }
  void InstallOneRttSendKeys() { has_one_rtt_send_keys_ = true; }
  void InstallOneRttRecvKeys() { has_one_rtt_recv_keys_ = true; }

  /// Base time used for anti-deadlock PTO arming.
  void TouchPtoBase() { pto_base_time_ = queue_.now(); }

  int pto_backoff_count() const { return pto_count_; }

  /// Token of the Initial packet currently being processed (0 = none);
  /// servers use this to validate Retry tokens.
  std::uint64_t current_packet_token() const { return current_packet_token_; }

  /// Injects an RTT sample that did not come from an ACK (a client MAY use
  /// the Retry packet as its first RTT estimate — §5).
  void InjectRttSample(sim::Duration latest);

 private:
  /// Both take mutable references: the caller is about to discard its copy,
  /// so packets that must wait for keys are *moved* into the undecryptable
  /// stash instead of deep-copying their frame lists.
  void ProcessDatagram(Datagram& datagram);
  void ProcessPacket(Packet& packet);
  void ProcessAckFrame(PacketNumberSpace s, const AckFrame& ack);
  void RecordRttSample(PacketNumberSpace s, sim::Duration latest, sim::Duration ack_delay);
  void HandleTimeThresholdLoss(SpaceState& state);
  void MaybeDeclarePersistentCongestion(const std::vector<recovery::SentPacket>& lost);
  /// Emits a qlog recovery:packet_lost event (no-op unless the trace
  /// captures structured events).
  void RecordPacketLost(PacketNumberSpace s, std::uint64_t packet_number,
                        bool time_threshold);
  /// Emits a qlog recovery:loss_timer_updated event. `event_type` follows
  /// qlog::StructEvent::detail (0 set / 1 cancelled / 2 expired);
  /// `timer_type` is 0 for the time-threshold (ack) timer, 1 for PTO.
  void RecordLossTimer(std::uint8_t event_type, std::uint8_t timer_type,
                       PacketNumberSpace s, sim::Time deadline);
  void OnStreamBytesReceived(const StreamFrame& frame);
  void OnLossDetectionTimeout();
  void OnAckTimerFired();
  void SendProbes(PacketNumberSpace s);
  sim::Duration LossDelay() const;
  bool ShouldDropByQuirk(const Datagram& datagram);
  void ArmAckTimer();
  InStream& InStreamFor(std::uint64_t stream_id);

  sim::EventQueue& queue_;
  Perspective perspective_;
  ConnectionConfig config_;
  sim::Rng rng_;
  SendFn send_;
  /// Fallback for standalone constructions; unset when the harness supplied
  /// a shared arena.
  std::unique_ptr<sim::Arena> owned_arena_;
  sim::Arena* arena_;

  std::array<SpaceState, kNumSpaces> spaces_;
  recovery::RttEstimator rtt_;
  recovery::NewRenoCongestion cc_;
  AmplificationLimiter amp_;
  CidManager cids_;
  qlog::Trace trace_;
  ConnectionMetrics metrics_;

  sim::Timer loss_timer_;
  sim::Timer ack_timer_;
  sim::Timer idle_timer_;
  int pto_count_ = 0;
  sim::Time pto_base_time_ = 0;
  // Persistent-congestion span: earliest/latest send times of packets lost
  // since the last acknowledged ack-eliciting packet (RFC 9002 §7.6).
  sim::Time pc_span_start_ = sim::kNever;
  sim::Time pc_span_end_ = 0;
  std::uint64_t current_packet_token_ = 0;
  PacketNumberSpace pending_pto_space_ = PacketNumberSpace::kInitial;
  bool handshake_complete_ = false;
  bool handshake_confirmed_ = false;
  bool has_handshake_keys_ = false;
  bool has_one_rtt_send_keys_ = false;
  bool has_one_rtt_recv_keys_ = false;
  bool closed_ = false;
  /// True while ProcessDatagram runs: loss-timer re-arms are deferred to its
  /// single tail call (intermediate states are unobservable — no event can
  /// execute mid-callback).
  bool defer_loss_timer_ = false;

  // Outbound stream state.
  struct OutStream {
    std::uint64_t id = 0;
    std::uint64_t total = 0;
    std::uint64_t offset = 0;
    bool fin = false;
  };
  std::vector<OutStream> out_streams_;
  std::uint64_t peer_max_data_;
  std::uint64_t stream_bytes_sent_ = 0;

  // Inbound streams + flow control. Sorted by stream id; connections carry
  // a handful of streams, so a flat vector beats the node-based map.
  std::vector<std::pair<std::uint64_t, InStream>> in_streams_;
  std::uint64_t flow_bytes_since_update_ = 0;
  std::uint64_t flow_granted_ = 0;

  // Packets received before their keys were available.
  std::vector<Packet> pending_undecryptable_;

  // Reusable per-ACK scratch buffers: ProcessAckFrame and the loss handlers
  // run to completion before anyone else can observe them, so a single
  // instance per connection suffices and the per-ACK hot path stops
  // allocating result vectors.
  recovery::AckResult ack_scratch_;
  std::vector<recovery::SentPacket> loss_scratch_;

  // Last crypto flight per space (probe_with_data).
  std::array<std::vector<Frame>, kNumSpaces> last_crypto_sent_;

  // Reused NEW_CONNECTION_ID processing scratch (same run-to-completion
  // argument as ack_scratch_).
  CidManager::ProcessResult cid_scratch_;

  // Quirk bookkeeping. ping_only_pns_ is append-only and searched linearly
  // (a handful of probe PINGs at most); probed_pns_ is kept sorted unique so
  // the spurious-retransmit check stays a binary search.
  std::vector<std::pair<PacketNumberSpace, std::uint64_t>> ping_only_pns_;
  std::vector<std::pair<PacketNumberSpace, std::uint64_t>> probed_pns_;
  bool ping_drop_quirk_used_ = false;
};

}  // namespace quicer::quic
