#include "quic/frame.h"

#include <cstdio>

namespace quicer::quic {
namespace {

// Variable-length integer encoding size (RFC 9000 §16).
std::size_t VarIntSize(std::uint64_t value) {
  if (value < 64) return 1;
  if (value < 16384) return 2;
  if (value < 1073741824) return 4;
  return 8;
}

struct WireSizeVisitor {
  std::size_t operator()(const PaddingFrame& f) const { return f.size; }
  std::size_t operator()(const PingFrame&) const { return 1; }
  std::size_t operator()(const AckFrame& f) const {
    std::size_t size = 1 + VarIntSize(f.largest_acked) + VarIntSize(
        static_cast<std::uint64_t>(f.ack_delay)) + VarIntSize(f.ranges.size());
    for (const PnRange& range : f.ranges) {
      size += VarIntSize(range.last - range.first) + 1;
    }
    return size;
  }
  std::size_t operator()(const CryptoFrame& f) const {
    return 1 + VarIntSize(f.offset) + VarIntSize(f.length) + f.length;
  }
  std::size_t operator()(const StreamFrame& f) const {
    return 1 + VarIntSize(f.stream_id) + VarIntSize(f.offset) + VarIntSize(f.length) + f.length;
  }
  std::size_t operator()(const MaxDataFrame& f) const { return 1 + VarIntSize(f.maximum_data); }
  std::size_t operator()(const HandshakeDoneFrame&) const { return 1; }
  std::size_t operator()(const NewConnectionIdFrame&) const {
    return 1 + 1 + 1 + 1 + 8 + 16;  // seq, retire_prior_to, len, cid(8), reset token
  }
  std::size_t operator()(const RetireConnectionIdFrame& f) const {
    return 1 + VarIntSize(f.sequence);
  }
  std::size_t operator()(const ConnectionCloseFrame& f) const {
    return 1 + VarIntSize(f.error_code) + 1 + VarIntSize(f.reason.size()) + f.reason.size();
  }
  std::size_t operator()(const RetryFrame&) const {
    return 8 + 16;  // token + retry integrity tag
  }
};

struct DescribeVisitor {
  std::string operator()(const PaddingFrame& f) const {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "PADDING[%u]", f.size);
    return buf;
  }
  std::string operator()(const PingFrame&) const { return "PING"; }
  std::string operator()(const AckFrame& f) const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "ACK[%llu delay=%lldus]",
                  static_cast<unsigned long long>(f.largest_acked),
                  static_cast<long long>(f.ack_delay));
    return buf;
  }
  std::string operator()(const CryptoFrame& f) const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "CRYPTO[%s %llu+%u]",
                  std::string(tls::ToString(f.message)).c_str(),
                  static_cast<unsigned long long>(f.offset), f.length);
    return buf;
  }
  std::string operator()(const StreamFrame& f) const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "STREAM[%llu %llu+%u%s]",
                  static_cast<unsigned long long>(f.stream_id),
                  static_cast<unsigned long long>(f.offset), f.length, f.fin ? " fin" : "");
    return buf;
  }
  std::string operator()(const MaxDataFrame& f) const {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "MAX_DATA[%llu]",
                  static_cast<unsigned long long>(f.maximum_data));
    return buf;
  }
  std::string operator()(const HandshakeDoneFrame&) const { return "HANDSHAKE_DONE"; }
  std::string operator()(const NewConnectionIdFrame& f) const {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "NEW_CONNECTION_ID[%llu]",
                  static_cast<unsigned long long>(f.sequence));
    return buf;
  }
  std::string operator()(const RetireConnectionIdFrame& f) const {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "RETIRE_CONNECTION_ID[%llu]",
                  static_cast<unsigned long long>(f.sequence));
    return buf;
  }
  std::string operator()(const ConnectionCloseFrame& f) const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "CONNECTION_CLOSE[%llu]",
                  static_cast<unsigned long long>(f.error_code));
    return buf;
  }
  std::string operator()(const RetryFrame& f) const {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "RETRY[token=%llu]",
                  static_cast<unsigned long long>(f.token));
    return buf;
  }
};

}  // namespace

bool IsAckEliciting(const Frame& frame) {
  return !std::holds_alternative<AckFrame>(frame) &&
         !std::holds_alternative<PaddingFrame>(frame) &&
         !std::holds_alternative<ConnectionCloseFrame>(frame) &&
         !std::holds_alternative<RetryFrame>(frame);
}

bool AnyAckEliciting(const std::vector<Frame>& frames) {
  for (const Frame& frame : frames) {
    if (IsAckEliciting(frame)) return true;
  }
  return false;
}

std::size_t WireSize(const Frame& frame) { return std::visit(WireSizeVisitor{}, frame); }

std::size_t WireSize(const std::vector<Frame>& frames) {
  std::size_t total = 0;
  for (const Frame& frame : frames) total += WireSize(frame);
  return total;
}

bool IsRetransmittable(const Frame& frame) {
  return std::holds_alternative<CryptoFrame>(frame) || std::holds_alternative<StreamFrame>(frame) ||
         std::holds_alternative<MaxDataFrame>(frame) ||
         std::holds_alternative<HandshakeDoneFrame>(frame) ||
         std::holds_alternative<NewConnectionIdFrame>(frame) ||
         std::holds_alternative<RetireConnectionIdFrame>(frame);
}

std::string Describe(const Frame& frame) { return std::visit(DescribeVisitor{}, frame); }

}  // namespace quicer::quic
