#include "quic/pool.h"

#include <utility>

#include "obs/telemetry.h"

namespace quicer::quic {
namespace {

/// Per-thread free lists. Bounded so pathological scenarios (huge bulk
/// transfers) cannot pin unbounded memory; steady-state handshake traffic
/// stays far below the cap.
constexpr std::size_t kMaxPooled = 64;

// Set by ~Pools at thread exit. Holders with static storage duration (e.g.
// the thread_local RunContext in RunExperiment) may release containers after
// the pool is gone; the flag turns those releases into plain destruction.
// It is a trivially-destructible namespace-scope thread_local, so it stays
// readable for the whole thread-teardown sequence.
thread_local bool pools_destroyed = false;

struct Pools {
  std::vector<std::vector<Frame>> frame_vecs;
  std::vector<std::vector<Packet>> packet_vecs;
  std::vector<std::vector<PnRange>> pn_range_vecs;
  ~Pools() { pools_destroyed = true; }
};

Pools& LocalPools() {
  thread_local Pools pools;
  return pools;
}

}  // namespace

std::vector<Frame> AcquireFrameVec() {
  obs::Count(obs::kPoolFrameAcquire);
  if (pools_destroyed) return {};
  auto& pool = LocalPools().frame_vecs;
  if (pool.empty()) return {};
  obs::Count(obs::kPoolFrameHit);
  std::vector<Frame> frames = std::move(pool.back());
  pool.pop_back();
  return frames;
}

void ReleaseFrameVec(std::vector<Frame>&& frames) {
  if (pools_destroyed) return;
  // Salvage ACK range buffers before the frames are destroyed — every ACK on
  // the wire acquired one from the pool in AckManager::BuildAck.
  for (Frame& frame : frames) {
    if (auto* ack = std::get_if<AckFrame>(&frame)) {
      ReleasePnRangeVec(std::move(ack->ranges));
    }
  }
  if (frames.capacity() == 0) return;
  auto& pool = LocalPools().frame_vecs;
  if (pool.size() >= kMaxPooled) return;
  frames.clear();
  pool.push_back(std::move(frames));
  obs::Count(obs::kPoolFrameRelease);
  obs::CountMax(obs::kPoolFrameHighWater, pool.size());
}

std::vector<PnRange> AcquirePnRangeVec() {
  obs::Count(obs::kPoolPnRangeAcquire);
  if (pools_destroyed) return {};
  auto& pool = LocalPools().pn_range_vecs;
  if (pool.empty()) return {};
  obs::Count(obs::kPoolPnRangeHit);
  std::vector<PnRange> ranges = std::move(pool.back());
  pool.pop_back();
  return ranges;
}

void ReleasePnRangeVec(std::vector<PnRange>&& ranges) {
  if (pools_destroyed || ranges.capacity() == 0) return;
  auto& pool = LocalPools().pn_range_vecs;
  if (pool.size() >= kMaxPooled) return;
  ranges.clear();
  pool.push_back(std::move(ranges));
  obs::Count(obs::kPoolPnRangeRelease);
  obs::CountMax(obs::kPoolPnRangeHighWater, pool.size());
}

std::vector<Packet> AcquirePacketVec() {
  obs::Count(obs::kPoolPacketAcquire);
  if (pools_destroyed) return {};
  auto& pool = LocalPools().packet_vecs;
  if (pool.empty()) return {};
  obs::Count(obs::kPoolPacketHit);
  std::vector<Packet> packets = std::move(pool.back());
  pool.pop_back();
  return packets;
}

void ReleasePacketVec(std::vector<Packet>&& packets) {
  if (pools_destroyed) return;
  for (Packet& packet : packets) ReleaseFrameVec(std::move(packet.frames));
  if (packets.capacity() == 0) return;
  auto& pool = LocalPools().packet_vecs;
  if (pool.size() >= kMaxPooled) return;
  packets.clear();
  pool.push_back(std::move(packets));
  obs::Count(obs::kPoolPacketRelease);
  obs::CountMax(obs::kPoolPacketHighWater, pool.size());
}

Datagram AcquireDatagram() {
  Datagram datagram;
  datagram.packets = AcquirePacketVec();
  return datagram;
}

void ReleaseDatagram(Datagram&& datagram) {
  ReleasePacketVec(std::move(datagram.packets));
  datagram.index = 0;
}

}  // namespace quicer::quic
