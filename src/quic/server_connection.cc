#include "quic/server_connection.h"

#include <utility>

#include "quic/pool.h"

namespace quicer::quic {
namespace {
constexpr std::size_t kCryptoChunk = 1000;
}

ServerConnection::ServerConnection(sim::EventQueue& queue, ServerConfig config, sim::Rng rng,
                                   sim::Arena* arena)
    : Connection(queue, Perspective::kServer, config.base, rng, arena),
      server_config_(std::move(config)),
      cert_store_(queue, server_config_.cert_store, this->rng().Fork(0xce57)) {
  ExpectClientMessages();
}

void ServerConnection::ExpectClientMessages() {
  space(PacketNumberSpace::kInitial)
      .crypto_rx.ExpectMessage(tls::MessageType::kClientHello, config().tls.client_hello);
  space(PacketNumberSpace::kHandshake)
      .crypto_rx.ExpectMessage(tls::MessageType::kFinished, config().tls.finished);
  // Accepting 0-RTT means early-data packets coalesced with the ClientHello
  // are readable immediately (resumed-session keys).
  if (server_config_.accept_0rtt) InstallOneRttRecvKeys();
}

void ServerConnection::ResetForRun(ServerConfig config, sim::Rng rng) {
  Connection::ResetForRun(config.base, rng);
  server_config_ = std::move(config);
  // Same fork label as the constructor: the reset store draws the fetch
  // jitter a freshly built one would.
  cert_store_.Reset(server_config_.cert_store, this->rng().Fork(0xce57));
  ch_complete_time_ = -1;
  realized_cert_delay_ = 0;
  started_ = false;
  iack_sent_ = false;
  flight_built_ = false;
  response_queued_ = false;
  retry_sent_ = false;
  ExpectClientMessages();
}

bool ServerConnection::SuppressImmediateAck(PacketNumberSpace s) const {
  // Until the certificate flight exists, Initial ACKs are held back: under
  // WFC they coalesce with the ServerHello; under IACK the single instant
  // ACK was already emitted explicitly and later Initial packets (client
  // PING probes) are acknowledged together with the flight.
  return s == PacketNumberSpace::kInitial && !flight_built_;
}

void ServerConnection::HandleCrypto(PacketNumberSpace s, const CryptoFrame& frame) {
  (void)frame;
  if (s == PacketNumberSpace::kInitial && !started_ &&
      space(s).crypto_rx.IsComplete(tls::MessageType::kClientHello)) {
    if (server_config_.send_retry && current_packet_token() == 0) {
      // Resource-exhaustion defence: demand a token round trip before
      // committing any handshake state.
      if (!retry_sent_) {
        retry_sent_ = true;
        std::vector<Frame> frames = AcquireFrameVec();
        frames.push_back(RetryFrame{kRetryToken});
        SendPacketNow(PacketNumberSpace::kInitial, std::move(frames));
        trace().RecordNote(queue().now(), "server", "Retry sent");
      }
      return;
    }
    if (current_packet_token() == kRetryToken) {
      // A valid token proves the address (RFC 9000 §8.1.2): the
      // anti-amplification limit never binds on this connection.
      amplification_mutable().OnAddressValidated();
    }
    OnClientHelloComplete();
    return;
  }
  if (s == PacketNumberSpace::kHandshake && !handshake_confirmed() &&
      space(s).crypto_rx.IsComplete(tls::MessageType::kFinished)) {
    // Client Finished: the handshake is complete and confirmed server-side
    // (RFC 9001 §4.1.2); announce confirmation to the client.
    SetHandshakeComplete();
    QueueFrame(PacketNumberSpace::kAppData, HandshakeDoneFrame{});
    SetHandshakeConfirmed();
  }
}

void ServerConnection::OnClientHelloComplete() {
  started_ = true;
  ch_complete_time_ = queue().now();

  // A certificate already cached on the frontend resolves immediately: the
  // ACK coalesces with the ServerHello instead of going out separately —
  // this is the coalesced-ACK+SH signal the paper uses to detect frontend
  // caching for popular Cloudflare domains (Fig 9).
  const bool cert_immediately_available = server_config_.cert_store.cached;
  if (server_config_.behavior == ServerBehavior::kInstantAck && !iack_sent_ &&
      !cert_immediately_available) {
    iack_sent_ = true;
    if (auto ack = PopAck(PacketNumberSpace::kInitial)) {
      std::vector<Frame> frames = AcquireFrameVec();
      frames.push_back(std::move(*ack));
      SendPacketNow(PacketNumberSpace::kInitial, std::move(frames),
                    server_config_.pad_instant_ack ? kMinInitialDatagramSize : 0);
      trace().RecordNote(queue().now(), "server", "instant ACK sent");
    }
  }

  cert_store_.Fetch([this](const tls::CertStore::Result& result) {
    const sim::Duration signing = server_config_.signing.Sample(rng());
    realized_cert_delay_ = result.delay + signing;
    queue().Schedule(signing,
                     [this, bytes = result.certificate_bytes] { BuildServerFlight(bytes); });
  });
}

void ServerConnection::BuildServerFlight(std::size_t certificate_bytes) {
  if (flight_built_ || closed()) return;
  flight_built_ = true;
  InstallHandshakeKeys();
  InstallOneRttSendKeys();
  InstallOneRttRecvKeys();
  trace().RecordNote(queue().now(), "server", "certificate ready; building flight");

  // Initial: ServerHello (the pending ACK is bundled by Flush — this is the
  // WFC coalesced ACK+SH, or an updated ACK covering client probes in IACK).
  std::vector<Frame> sh = MakeCryptoFrames(PacketNumberSpace::kInitial,
                                           tls::MessageType::kServerHello,
                                           config().tls.server_hello, kCryptoChunk);
  RememberCryptoFlight(PacketNumberSpace::kInitial, sh);
  for (Frame& frame : sh) QueueFrame(PacketNumberSpace::kInitial, std::move(frame));
  ReleaseFrameVec(std::move(sh));

  // Handshake: EncryptedExtensions, Certificate, CertificateVerify, Finished.
  QueueCryptoFrames(PacketNumberSpace::kHandshake, tls::MessageType::kEncryptedExtensions,
                    config().tls.encrypted_extensions, kCryptoChunk);
  QueueCryptoFrames(PacketNumberSpace::kHandshake, tls::MessageType::kCertificate,
                    certificate_bytes, kCryptoChunk);
  QueueCryptoFrames(PacketNumberSpace::kHandshake, tls::MessageType::kCertificateVerify,
                    config().tls.certificate_verify, kCryptoChunk);
  QueueCryptoFrames(PacketNumberSpace::kHandshake, tls::MessageType::kFinished,
                    config().tls.finished, kCryptoChunk);

  // 1-RTT tail of the first flight (Fig 3): HTTP/3 control-stream SETTINGS
  // (this is the stream frame that gives HTTP/3 its earlier TTFB in Fig 5)
  // and a NEW_CONNECTION_ID.
  if (config().http_version == http::Version::kHttp3) {
    QueueStreamData(http::kServerControlStreamId, http::kH3SettingsBytes, false);
  }
  if (server_config_.send_new_connection_id) {
    QueueFrame(PacketNumberSpace::kAppData, NewConnectionIdFrame{1, 1});
  }

  Flush();
  SetLossDetectionTimer();
}

void ServerConnection::HandleStream(const StreamFrame& frame) {
  if (frame.stream_id != http::kRequestStreamId || response_queued_) return;
  const InStream* in_ptr = FindInStream(http::kRequestStreamId);
  if (in_ptr == nullptr) return;
  const InStream& in = *in_ptr;
  if (!in.fin_seen || in.high_watermark < in.fin_offset) return;

  response_queued_ = true;
  const std::size_t total =
      http::ResponseHeadBytes(config().http_version) + server_config_.response_body_bytes;
  QueueStreamData(http::kRequestStreamId, total, /*fin=*/true);
}

}  // namespace quicer::quic
