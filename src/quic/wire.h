// Byte-level wire codec for the emulated QUIC packets.
//
// The simulator itself moves structured Packet objects, but a reproduction
// that claims wire realism should be able to serialise them: this codec
// encodes/decodes the frame and packet model to bytes using RFC 9000
// variable-length integers and type bytes close to the real registry.
// CRYPTO/STREAM payload bytes are zero-filled (the emulation carries sizes,
// not content). Round-tripping is exact for everything the model stores.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "quic/packet.h"

namespace quicer::quic::wire {

/// RFC 9000 §16 variable-length integer encoding. Values >= 2^62 are not
/// representable; Append* truncates them to the maximum.
void AppendVarInt(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Reads a varint at `offset`, advancing it. Returns nullopt on truncation.
std::optional<std::uint64_t> ReadVarInt(const std::vector<std::uint8_t>& data,
                                        std::size_t& offset);

/// Encodes one frame (type byte + fields + zero-filled payload).
void EncodeFrame(std::vector<std::uint8_t>& out, const Frame& frame);

/// Decodes one frame at `offset`, advancing it; nullopt on malformed input.
std::optional<Frame> DecodeFrame(const std::vector<std::uint8_t>& data, std::size_t& offset);

/// Encodes a full packet (emulation header: form byte, space, packet number,
/// optional token, frame count, frames).
std::vector<std::uint8_t> EncodePacket(const Packet& packet);

/// Decodes a packet; nullopt on malformed input.
std::optional<Packet> DecodePacket(const std::vector<std::uint8_t>& data);

/// Encodes a datagram (length-prefixed packets).
std::vector<std::uint8_t> EncodeDatagram(const Datagram& datagram);

std::optional<Datagram> DecodeDatagram(const std::vector<std::uint8_t>& data);

}  // namespace quicer::quic::wire
