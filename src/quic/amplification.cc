#include "quic/amplification.h"

#include "quic/types.h"

namespace quicer::quic {

std::size_t AmplificationLimiter::Budget() const {
  if (validated()) return static_cast<std::size_t>(-1);
  const std::size_t allowance = kAmplificationFactor * received_;
  return allowance > sent_ ? allowance - sent_ : 0;
}

void AmplificationLimiter::NoteBlocked(sim::Time now) {
  if (currently_blocked_) return;
  currently_blocked_ = true;
  blocked_since_ = now;
  ++blocked_events_;
}

void AmplificationLimiter::NoteUnblocked(sim::Time now) {
  if (!currently_blocked_) return;
  currently_blocked_ = false;
  blocked_accum_ += now - blocked_since_;
}

sim::Duration AmplificationLimiter::total_blocked_time(sim::Time now) const {
  sim::Duration total = blocked_accum_;
  if (currently_blocked_) total += now - blocked_since_;
  return total;
}

}  // namespace quicer::quic
