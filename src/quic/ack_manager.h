// Tracks received packets and produces ACK frames.
//
// One AckManager exists per packet number space. Initial/Handshake packets
// are acknowledged immediately; 1-RTT packets after every second
// ack-eliciting packet or when max_ack_delay expires (RFC 9000 §13.2).
// The *reported* ACK Delay field is configurable because deployed stacks
// report anything from 0 to values exceeding the RTT (Table 3, Fig 10).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "quic/frame.h"
#include "quic/types.h"
#include "sim/time.h"

namespace quicer::quic {

/// How the ACK Delay field is filled in.
enum class AckDelayReportMode {
  kActual,  // report the true delay between receipt and ACK
  kZero,    // always report 0 (ngtcp2, quic-go, nginx, ... — Table 3)
  kFixed,   // report a fixed configured value (s2n-quic-style)
};

struct AckPolicy {
  /// Maximum time a 1-RTT ACK may be delayed.
  sim::Duration max_ack_delay = sim::Millis(25);
  /// Send an ACK after this many ack-eliciting packets.
  int packet_tolerance = 2;
  AckDelayReportMode report_mode = AckDelayReportMode::kActual;
  sim::Duration fixed_report_value = 0;
};

/// Per-space receive/acknowledgment state.
class AckManager {
 public:
  AckManager(PacketNumberSpace space, AckPolicy policy);

  /// Rewinds to freshly-constructed state (same space) under a possibly
  /// different policy — context reuse between repetitions. The range buffer
  /// keeps its capacity.
  void Reset(AckPolicy policy);

  /// Registers a received packet. Returns false for duplicates (already
  /// received packet numbers), which must not be processed again.
  bool OnPacketReceived(std::uint64_t pn, bool ack_eliciting, sim::Time now);

  /// True if an ACK should be sent right now (immediate spaces, or the
  /// packet tolerance was reached).
  bool ShouldAckImmediately() const;

  /// True if any ack-eliciting packet awaits acknowledgment.
  bool HasPendingAck() const { return pending_ack_eliciting_ > 0; }

  /// Deadline for the delayed-ACK timer, or kNever if nothing pending.
  sim::Time AckDeadline() const;

  /// Builds an ACK covering everything received; clears the pending state.
  /// Returns nullopt if nothing has been received yet.
  std::optional<AckFrame> BuildAck(sim::Time now);

  /// Largest packet number received so far (nullopt if none).
  std::optional<std::uint64_t> largest_received() const { return largest_received_; }

  PacketNumberSpace space() const { return space_; }

 private:
  PacketNumberSpace space_;
  AckPolicy policy_;
  std::vector<PnRange> received_;  // sorted ascending, merged
  std::optional<std::uint64_t> largest_received_;
  sim::Time largest_ack_eliciting_time_ = 0;
  int pending_ack_eliciting_ = 0;
};

}  // namespace quicer::quic
