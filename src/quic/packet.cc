#include "quic/packet.h"

#include <cstdio>

#include "quic/pool.h"

namespace quicer::quic {

Datagram::~Datagram() {
  if (!packets.empty() || packets.capacity() > 0) ReleasePacketVec(std::move(packets));
}

std::size_t Packet::HeaderSize() const {
  switch (space) {
    case PacketNumberSpace::kInitial:
      // Long header, version, DCID/SCID (8 each), token length, length, pn.
      return 1 + 4 + 1 + 8 + 1 + 8 + 1 + 2 + 2;
    case PacketNumberSpace::kHandshake:
      return 1 + 4 + 1 + 8 + 1 + 8 + 2 + 2;
    case PacketNumberSpace::kAppData:
      // Short header: flags, DCID, pn.
      return 1 + 8 + 2;
  }
  return 0;
}

std::size_t Packet::WireSize() const {
  const std::size_t token_bytes = token != 0 ? 9 : 0;  // length prefix + token
  return HeaderSize() + token_bytes + quic::WireSize(frames) + kAeadTagSize;
}

std::vector<Frame> Packet::RetransmittableFrames() const {
  std::vector<Frame> out;
  for (const Frame& frame : frames) {
    if (IsRetransmittable(frame)) out.push_back(frame);
  }
  return out;
}

std::string Packet::Describe() const {
  std::string out(ToString(space));
  char pn[24];
  std::snprintf(pn, sizeof(pn), "[%llu]: ", static_cast<unsigned long long>(packet_number));
  out += pn;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i > 0) out += ", ";
    out += quic::Describe(frames[i]);
  }
  return out;
}

std::size_t Datagram::WireSize() const {
  std::size_t total = 0;
  for (const Packet& packet : packets) {
    total += packet.wire_size != 0 ? packet.wire_size : packet.WireSize();
  }
  return total;
}

bool Datagram::IsAckEliciting() const {
  for (const Packet& packet : packets) {
    if (packet.IsAckEliciting()) return true;
  }
  return false;
}

bool Datagram::HasSpace(PacketNumberSpace space) const {
  for (const Packet& packet : packets) {
    if (packet.space == space) return true;
  }
  return false;
}

std::string Datagram::Describe() const {
  std::string out;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (i > 0) out += " | ";
    out += packets[i].Describe();
  }
  return out;
}

void PadDatagramTo(Datagram& datagram, std::size_t target) {
  if (datagram.packets.empty()) return;
  const std::size_t current = datagram.WireSize();
  if (current >= target) return;
  Packet& padded = datagram.packets.back();
  padded.frames.push_back(PaddingFrame{static_cast<std::uint32_t>(target - current)});
  if (padded.wire_size != 0) padded.wire_size = padded.WireSize();
}

}  // namespace quicer::quic
