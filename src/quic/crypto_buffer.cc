#include "quic/crypto_buffer.h"

#include <algorithm>

namespace quicer::quic {

void CryptoBuffer::Reset() {
  expected_.clear();
  received_.clear();
  total_expected_ = 0;
}

void CryptoBuffer::ExpectMessage(tls::MessageType type, std::size_t size) {
  Expected e;
  e.type = type;
  e.begin = total_expected_;
  e.end = total_expected_ + size;
  expected_.push_back(e);
  total_expected_ = e.end;
}

void CryptoBuffer::OnFrame(const CryptoFrame& frame) {
  if (frame.length == 0) return;
  Interval incoming{frame.offset, frame.offset + frame.length};
  // Insert and merge.
  auto it = std::lower_bound(received_.begin(), received_.end(), incoming,
                             [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  it = received_.insert(it, incoming);
  // Merge with predecessor and successors.
  if (it != received_.begin()) {
    auto prev = std::prev(it);
    if (prev->end >= it->begin) {
      prev->end = std::max(prev->end, it->end);
      it = received_.erase(it);
      it = std::prev(it);
    }
  }
  while (std::next(it) != received_.end() && it->end >= std::next(it)->begin) {
    it->end = std::max(it->end, std::next(it)->end);
    received_.erase(std::next(it));
  }
}

bool CryptoBuffer::Covered(std::uint64_t begin, std::uint64_t end) const {
  if (begin >= end) return true;
  for (const Interval& interval : received_) {
    if (interval.begin <= begin && end <= interval.end) return true;
    if (interval.begin > begin) break;
  }
  return false;
}

bool CryptoBuffer::IsComplete(tls::MessageType type) const {
  for (const Expected& e : expected_) {
    if (e.type == type) return Covered(e.begin, e.end);
  }
  return false;
}

bool CryptoBuffer::AllComplete() const {
  return ContiguousReceived() >= total_expected_ && total_expected_ > 0;
}

std::uint64_t CryptoBuffer::ContiguousReceived() const {
  std::uint64_t contiguous = 0;
  for (const Interval& interval : received_) {
    if (interval.begin > contiguous) break;
    contiguous = std::max(contiguous, interval.end);
  }
  return contiguous;
}

std::pair<std::uint64_t, std::uint64_t> CryptoBuffer::RangeOf(tls::MessageType type) const {
  for (const Expected& e : expected_) {
    if (e.type == type) return {e.begin, e.end};
  }
  return {0, 0};
}

}  // namespace quicer::quic
