// Server side of the handshake with the two CDN frontend behaviours of
// Fig 1:
//
//  * WaitForCertificate (WFC): the Initial ACK is held back and coalesced
//    with the ServerHello once the certificate arrived from the store —
//    the client's first RTT sample is inflated by Δt.
//  * InstantAck (IACK): an ACK-only Initial (optionally padded, as
//    Cloudflare does for PMTU probing) leaves immediately; the ServerHello
//    flight follows when the certificate is available.
//
// The rest is a standard QUIC server: anti-amplification enforcement until a
// Handshake packet validates the client, PTO-driven retransmission of the
// flight (with the paper's key asymmetry — after an instant ACK the server
// holds no RTT sample, so it recovers on its *default* PTO, Fig 6), and a
// simple HTTP/1.1 / HTTP/3 responder.
#pragma once

#include "quic/connection.h"
#include "tls/cert_store.h"

namespace quicer::quic {

enum class ServerBehavior { kWaitForCertificate, kInstantAck };

constexpr const char* ToString(ServerBehavior b) {
  return b == ServerBehavior::kWaitForCertificate ? "WFC" : "IACK";
}

struct ServerConfig {
  ConnectionConfig base;
  ServerBehavior behavior = ServerBehavior::kWaitForCertificate;
  /// Pad the instant ACK to a full datagram (Cloudflare PMTUD probing, §5).
  /// Consumes 1200 B of amplification budget instead of ~45 B.
  bool pad_instant_ack = false;
  /// Certificate store (Δt lives here).
  tls::CertStore::Config cert_store;
  /// TLS signing latency (applied after the certificate is available).
  tls::SigningModel signing;
  /// Response body size for the single GET exchange.
  std::size_t response_body_bytes = http::kSmallFileBytes;
  /// Issue a NEW_CONNECTION_ID in the first 1-RTT flight (exercises the
  /// quiche duplicate-retirement quirk under loss).
  bool send_new_connection_id = true;
  /// Answer the first (token-less) ClientHello with a Retry packet
  /// (resource-exhaustion defence, RFC 9000 §8.1.2; §5 of the paper).
  bool send_retry = false;
  /// Accept 0-RTT early data coalesced with the ClientHello.
  bool accept_0rtt = true;
};

class ServerConnection : public Connection {
 public:
  ServerConnection(sim::EventQueue& queue, ServerConfig config, sim::Rng rng,
                   sim::Arena* arena = nullptr);

  /// Rewinds to freshly-constructed state for another repetition (see
  /// Connection::ResetForRun).
  void ResetForRun(ServerConfig config, sim::Rng rng);

  bool flight_built() const { return flight_built_; }

  /// The actual Δt this connection experienced (fetch + signing), available
  /// after the flight was built.
  sim::Duration realized_cert_delay() const { return realized_cert_delay_; }

  const ServerConfig& server_config() const { return server_config_; }

 protected:
  void HandleCrypto(PacketNumberSpace space, const CryptoFrame& frame) override;
  void HandleStream(const StreamFrame& frame) override;
  bool SuppressImmediateAck(PacketNumberSpace s) const override;

 private:
  void OnClientHelloComplete();
  void BuildServerFlight(std::size_t certificate_bytes);
  void ExpectClientMessages();

  ServerConfig server_config_;
  tls::CertStore cert_store_;
  sim::Time ch_complete_time_ = -1;
  sim::Duration realized_cert_delay_ = 0;
  bool started_ = false;
  bool iack_sent_ = false;
  bool flight_built_ = false;
  bool response_queued_ = false;
  bool retry_sent_ = false;

  /// Token value issued in Retry packets.
  static constexpr std::uint64_t kRetryToken = 0x7eACCed;
};

}  // namespace quicer::quic
