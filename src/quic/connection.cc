#include "quic/connection.h"

#include <algorithm>
#include <new>
#include <utility>

#include "obs/telemetry.h"
#include "quic/pool.h"

namespace quicer::quic {
namespace {

/// Initial connection-level flow-control credit before any MAX_DATA arrives
/// (stand-in for the transport-parameter exchange).
constexpr std::uint64_t kInitialMaxData = 1 * 1024 * 1024;

/// Approximate per-frame overhead of a STREAM frame header.
constexpr std::size_t kStreamFrameOverhead = 12;

/// Minimum bytes of budget a blocked server needs before arming its PTO.
constexpr std::size_t kMinProbeBudget = 50;

AckPolicy ImmediateAckPolicy(const AckPolicy& base) {
  AckPolicy policy = base;
  policy.packet_tolerance = 1;
  return policy;
}

using SpacePn = std::pair<PacketNumberSpace, std::uint64_t>;

/// Set-like insert into a sorted vector: no-op if `key` is present.
void InsertSortedPn(std::vector<SpacePn>& pns, SpacePn key) {
  const auto it = std::lower_bound(pns.begin(), pns.end(), key);
  if (it != pns.end() && *it == key) return;
  pns.insert(it, key);
}

/// Removes `key` from a sorted vector; returns whether it was present.
bool EraseSortedPn(std::vector<SpacePn>& pns, SpacePn key) {
  const auto it = std::lower_bound(pns.begin(), pns.end(), key);
  if (it == pns.end() || *it != key) return false;
  pns.erase(it);
  return true;
}

}  // namespace

Connection::Connection(sim::EventQueue& queue, Perspective perspective, ConnectionConfig config,
                       sim::Rng rng, sim::Arena* arena)
    : queue_(queue),
      perspective_(perspective),
      config_(config),
      rng_(rng),
      owned_arena_(arena != nullptr ? nullptr : std::make_unique<sim::Arena>()),
      arena_(arena != nullptr ? arena : owned_arena_.get()),
      spaces_{SpaceState(PacketNumberSpace::kInitial, ImmediateAckPolicy(config.ack_policy)),
              SpaceState(PacketNumberSpace::kHandshake, ImmediateAckPolicy(config.ack_policy)),
              SpaceState(PacketNumberSpace::kAppData, config.ack_policy)},
      rtt_(config.rttvar_formula),
      cc_(),
      amp_(perspective == Perspective::kServer),
      trace_(config.trace, rng_.Fork(0x71061)),
      loss_timer_(queue, [this] { OnLossDetectionTimeout(); }),
      ack_timer_(queue, [this] { OnAckTimerFired(); }),
      idle_timer_(queue, [this] { CloseConnection("idle timeout"); }),
      peer_max_data_(kInitialMaxData) {
  metrics_.start_time = queue_.now();
  flow_granted_ = kInitialMaxData;
  // Pending-frame queues start with pooled capacity so the first QueueFrame
  // calls of every run reuse a previous run's storage.
  for (SpaceState& state : spaces_) state.pending = AcquireFrameVec();
  if (config_.idle_timeout > 0) idle_timer_.SetDeadline(queue_.now() + config_.idle_timeout);
}

Connection::~Connection() {
  for (SpaceState& state : spaces_) ReleaseFrameVec(std::move(state.pending));
  for (std::vector<Frame>& flight : last_crypto_sent_) ReleaseFrameVec(std::move(flight));
  ReleasePacketVec(std::move(pending_undecryptable_));
}

void Connection::ResetForRun(const ConnectionConfig& config, sim::Rng rng) {
  config_ = config;
  rng_ = rng;
  // send_ is left untouched: the harness re-installs it after every reset
  // (the closure captures the current link/peer).

  for (int idx = 0; idx < kNumSpaces; ++idx) {
    SpaceState& state = spaces_[idx];
    const auto s = static_cast<PacketNumberSpace>(idx);
    state.next_pn = 0;
    state.acks.Reset(s == PacketNumberSpace::kAppData ? config_.ack_policy
                                                      : ImmediateAckPolicy(config_.ack_policy));
    state.ledger.Reset();
    state.crypto_rx.Reset();
    state.crypto_tx_offset = 0;
    state.discarded = false;
    state.pending.clear();
    last_crypto_sent_[idx].clear();
  }
  rtt_ = recovery::RttEstimator(config_.rttvar_formula);
  cc_ = recovery::NewRenoCongestion();
  amp_ = AmplificationLimiter(perspective_ == Perspective::kServer);
  cids_.Reset();
  // Same fork label as the constructor, so a reset connection draws the
  // exact trace-sampling stream a fresh one would.
  trace_.Reset(config_.trace, rng_.Fork(0x71061));
  metrics_ = ConnectionMetrics{};

  // The run harness reset the event queue wholesale, so every timer handle
  // is already dead; forget them without touching the queue.
  loss_timer_.ResetForReuse();
  ack_timer_.ResetForReuse();
  idle_timer_.ResetForReuse();
  pto_count_ = 0;
  pto_base_time_ = 0;
  pc_span_start_ = sim::kNever;
  pc_span_end_ = 0;
  current_packet_token_ = 0;
  pending_pto_space_ = PacketNumberSpace::kInitial;
  handshake_complete_ = false;
  handshake_confirmed_ = false;
  has_handshake_keys_ = false;
  has_one_rtt_send_keys_ = false;
  has_one_rtt_recv_keys_ = false;
  closed_ = false;
  defer_loss_timer_ = false;

  out_streams_.clear();
  peer_max_data_ = kInitialMaxData;
  stream_bytes_sent_ = 0;
  in_streams_.clear();
  flow_bytes_since_update_ = 0;
  flow_granted_ = kInitialMaxData;
  pending_undecryptable_.clear();
  ping_only_pns_.clear();
  probed_pns_.clear();
  ping_drop_quirk_used_ = false;

  metrics_.start_time = queue_.now();
  if (config_.idle_timeout > 0) idle_timer_.SetDeadline(queue_.now() + config_.idle_timeout);
}

Packet Connection::BuildPacket(PacketNumberSpace s, std::vector<Frame> frames) {
  Packet packet;
  packet.space = s;
  packet.packet_number = space(s).next_pn++;
  packet.frames = std::move(frames);
  packet.wire_size = packet.WireSize();
  return packet;
}

bool Connection::SendDatagramNow(std::vector<Packet> packets, std::size_t pad_to) {
  if (closed_ || packets.empty()) {
    ReleasePacketVec(std::move(packets));
    return false;
  }
  Datagram datagram;
  datagram.packets = std::move(packets);
  if (pad_to > 0) PadDatagramTo(datagram, pad_to);
  const std::size_t size = datagram.WireSize();

  if (!amp_.CanSend(size)) {
    amp_.NoteBlocked(queue_.now());
    ++metrics_.amp_blocked_events;
    // Return the unused packet numbers: nothing hit the wire.
    for (auto it = datagram.packets.rbegin(); it != datagram.packets.rend(); ++it) {
      SpaceState& state = space(it->space);
      if (state.next_pn == it->packet_number + 1) --state.next_pn;
    }
    ReleaseDatagram(std::move(datagram));
    return false;
  }
  amp_.OnBytesSent(size);

  bool any_ack_eliciting = false;
  for (const Packet& packet : datagram.packets) {
    const bool ack_eliciting = packet.IsAckEliciting();
    const bool in_flight = ack_eliciting || packet.Has<PaddingFrame>();
    const std::size_t wire_size = packet.wire_size != 0 ? packet.wire_size : packet.WireSize();
    any_ack_eliciting |= ack_eliciting;

    trace_.RecordPacket(qlog::PacketEvent{queue_.now(), /*sent=*/true, packet.space,
                                          packet.packet_number, wire_size, ack_eliciting});
    if (ack_eliciting) {
      recovery::SentPacket sent;
      sent.packet_number = packet.packet_number;
      sent.sent_time = queue_.now();
      sent.bytes = wire_size;
      sent.ack_eliciting = true;
      sent.in_flight = in_flight;
      // Park the retransmittable frames in the run arena: one bump per
      // packet, dropped wholesale on ack/loss, reclaimed at repetition
      // reset. Only trivially-destructible alternatives pass the
      // IsRetransmittable filter, so never running their destructors is
      // sound (see sim/arena.h).
      std::uint32_t retrans_count = 0;
      for (const Frame& frame : packet.frames) {
        if (IsRetransmittable(frame)) ++retrans_count;
      }
      if (retrans_count > 0) {
        Frame* parked = arena_->AllocateUninitialized<Frame>(retrans_count);
        std::uint32_t at = 0;
        for (const Frame& frame : packet.frames) {
          if (IsRetransmittable(frame)) ::new (static_cast<void*>(parked + at++)) Frame(frame);
        }
        sent.retransmittable = recovery::FrameSpan{parked, retrans_count};
      }
      space(packet.space).ledger.OnPacketSent(sent);
    }
    if (in_flight) cc_.OnPacketSent(wire_size);
  }

  ++metrics_.datagrams_sent;
  metrics_.wire_bytes_sent += size;
  if (send_) {
    send_(std::move(datagram));
  } else {
    ReleaseDatagram(std::move(datagram));
  }
  if (any_ack_eliciting) SetLossDetectionTimer();
  return true;
}

bool Connection::SendPacketNow(PacketNumberSpace s, std::vector<Frame> frames,
                               std::size_t pad_to) {
  std::vector<Packet> packets = AcquirePacketVec();
  packets.push_back(BuildPacket(s, std::move(frames)));
  return SendDatagramNow(std::move(packets), pad_to);
}

void Connection::MaybeSendAcks() {
  if (closed_) return;
  // Cheap precheck: most calls find nothing due and should not pay the
  // pooled-vector round trip below.
  bool any_due = false;
  for (const auto& state : spaces_) {
    if (!state.discarded && state.acks.ShouldAckImmediately()) {
      any_due = true;
      break;
    }
  }
  if (!any_due) return;
  std::vector<Packet> due = AcquirePacketVec();
  for (auto& state : spaces_) {
    if (state.discarded || !state.acks.ShouldAckImmediately()) continue;
    if (SuppressImmediateAck(state.acks.space())) continue;
    // quiche-style batching: hold handshake-phase ACKs for the delayed-ACK
    // timer so they coalesce with the second flight.
    if (config_.defer_acks_until_flight && !handshake_complete_ &&
        state.acks.space() != PacketNumberSpace::kAppData) {
      continue;
    }
    if (auto ack = state.acks.BuildAck(queue_.now())) {
      std::vector<Frame> frames = AcquireFrameVec();
      frames.push_back(std::move(*ack));
      due.push_back(BuildPacket(state.acks.space(), std::move(frames)));
    }
  }
  if (due.empty()) {
    ReleasePacketVec(std::move(due));
    return;
  }

  if (config_.coalesce_acks) {
    SendDatagramNow(std::move(due));
  } else {
    for (auto& packet : due) {
      std::vector<Packet> single = AcquirePacketVec();
      single.push_back(std::move(packet));
      SendDatagramNow(std::move(single));
    }
    ReleasePacketVec(std::move(due));
  }
}

std::optional<AckFrame> Connection::PopAck(PacketNumberSpace s) {
  SpaceState& state = space(s);
  if (state.discarded || !state.acks.HasPendingAck()) return std::nullopt;
  return state.acks.BuildAck(queue_.now());
}

void Connection::QueueFrame(PacketNumberSpace s, Frame frame) {
  space(s).pending.push_back(std::move(frame));
}

void Connection::QueueStreamData(std::uint64_t stream_id, std::uint64_t bytes, bool fin) {
  out_streams_.push_back(OutStream{stream_id, bytes, 0, fin});
}

std::vector<Frame> Connection::MakeCryptoFrames(PacketNumberSpace s, tls::MessageType message,
                                                std::size_t message_size, std::size_t max_chunk) {
  std::vector<Frame> frames = AcquireFrameVec();
  SpaceState& state = space(s);
  std::size_t remaining = message_size;
  while (remaining > 0) {
    const std::size_t chunk = std::min(remaining, max_chunk);
    CryptoFrame frame;
    frame.offset = state.crypto_tx_offset;
    frame.length = static_cast<std::uint32_t>(chunk);
    frame.message = message;
    frames.emplace_back(frame);
    state.crypto_tx_offset += chunk;
    remaining -= chunk;
  }
  return frames;
}

void Connection::QueueCryptoFrames(PacketNumberSpace s, tls::MessageType message,
                                   std::size_t message_size, std::size_t max_chunk) {
  SpaceState& state = space(s);
  std::size_t remaining = message_size;
  while (remaining > 0) {
    const std::size_t chunk = std::min(remaining, max_chunk);
    CryptoFrame frame;
    frame.offset = state.crypto_tx_offset;
    frame.length = static_cast<std::uint32_t>(chunk);
    frame.message = message;
    state.pending.emplace_back(frame);
    state.crypto_tx_offset += chunk;
    remaining -= chunk;
  }
}

void Connection::RememberCryptoFlight(PacketNumberSpace s, const std::vector<Frame>& frames) {
  std::vector<Frame>& remembered = last_crypto_sent_[SpaceIndex(s)];
  if (remembered.capacity() == 0) remembered = AcquireFrameVec();
  remembered.assign(frames.begin(), frames.end());
}

bool Connection::HasQueuedData() const {
  for (const auto& state : spaces_) {
    if (!state.discarded && !state.pending.empty()) return true;
  }
  for (const auto& stream : out_streams_) {
    if (stream.offset < stream.total) return true;
  }
  return false;
}

void Connection::Flush() {
  if (closed_) return;
  // Fast path: with no queued control/crypto frames and no stream data the
  // loop below could only build an empty datagram; skip straight to the
  // unblocked bookkeeping it would have reached.
  if (!HasQueuedData()) {
    amp_.NoteUnblocked(queue_.now());
    return;
  }
  while (true) {
    Datagram datagram = AcquireDatagram();
    std::size_t used = 0;
    const std::size_t capacity = kMaxDatagramSize;

    for (auto& state : spaces_) {
      if (state.discarded) continue;
      const PacketNumberSpace s = state.acks.space();
      if (s == PacketNumberSpace::kAppData && !has_one_rtt_send_keys_) continue;

      Packet header_probe;
      header_probe.space = s;
      const std::size_t header_cost = header_probe.WireSize();
      if (capacity - used <= header_cost + 8) break;
      std::size_t packet_budget = capacity - used - header_cost;
      std::vector<Frame> frames = AcquireFrameVec();

      const bool has_payload =
          !state.pending.empty() ||
          (s == PacketNumberSpace::kAppData &&
           std::any_of(out_streams_.begin(), out_streams_.end(),
                       [](const OutStream& st) { return st.offset < st.total; }));

      // Opportunistically bundle a pending ACK with real payload.
      if (has_payload && state.acks.HasPendingAck()) {
        if (auto ack = state.acks.BuildAck(queue_.now())) {
          Frame ack_frame{std::move(*ack)};
          const std::size_t ack_size = quic::WireSize(ack_frame);
          if (ack_size <= packet_budget) {
            packet_budget -= ack_size;
            frames.push_back(std::move(ack_frame));
          }
        }
      }

      // Drain queued control/crypto frames that fit; CRYPTO and STREAM
      // frames split at the datagram boundary so flights pack densely
      // (the 2-datagram first server flight of Fig 3).
      while (!state.pending.empty()) {
        Frame& front = state.pending.front();
        const std::size_t frame_size = quic::WireSize(front);
        if (frame_size > packet_budget) {
          constexpr std::size_t kSplitOverhead = 10;
          if (packet_budget <= kSplitOverhead + 8) break;
          const std::size_t payload_fit = packet_budget - kSplitOverhead;
          if (auto* crypto = std::get_if<CryptoFrame>(&front)) {
            if (crypto->length > payload_fit) {
              CryptoFrame head = *crypto;
              head.length = static_cast<std::uint32_t>(payload_fit);
              crypto->offset += payload_fit;
              crypto->length -= static_cast<std::uint32_t>(payload_fit);
              packet_budget -= quic::WireSize(Frame(head));
              frames.push_back(head);
            }
          } else if (auto* stream = std::get_if<StreamFrame>(&front)) {
            if (stream->length > payload_fit) {
              StreamFrame head = *stream;
              head.length = static_cast<std::uint32_t>(payload_fit);
              head.fin = false;
              stream->offset += payload_fit;
              stream->length -= static_cast<std::uint32_t>(payload_fit);
              packet_budget -= quic::WireSize(Frame(head));
              frames.push_back(head);
            }
          }
          break;
        }
        packet_budget -= frame_size;
        frames.push_back(std::move(front));
        state.pending.erase(state.pending.begin());
      }

      // Fill remaining room with stream data (1-RTT only).
      if (s == PacketNumberSpace::kAppData) {
        for (OutStream& stream : out_streams_) {
          if (stream.offset >= stream.total) continue;
          if (packet_budget <= kStreamFrameOverhead) break;
          const std::uint64_t flow_room =
              peer_max_data_ > stream_bytes_sent_ ? peer_max_data_ - stream_bytes_sent_ : 0;
          std::uint64_t chunk = std::min<std::uint64_t>(
              stream.total - stream.offset, packet_budget - kStreamFrameOverhead);
          chunk = std::min(chunk, flow_room);
          if (chunk == 0) break;  // flow-control blocked
          StreamFrame frame;
          frame.stream_id = stream.id;
          frame.offset = stream.offset;
          frame.length = static_cast<std::uint32_t>(chunk);
          stream.offset += chunk;
          stream_bytes_sent_ += chunk;
          frame.fin = stream.fin && stream.offset == stream.total;
          const std::size_t frame_size = quic::WireSize(Frame(frame));
          packet_budget -= std::min(packet_budget, frame_size);
          frames.push_back(frame);
        }
      }

      if (frames.empty()) {
        ReleaseFrameVec(std::move(frames));
        continue;
      }
      datagram.packets.push_back(BuildPacket(s, std::move(frames)));
      // Datagram::WireSize is the sum of its packets' sizes; accumulate
      // incrementally instead of rewalking every packet's frame list.
      used += datagram.packets.back().wire_size;
    }

    if (datagram.packets.empty()) {
      ReleaseDatagram(std::move(datagram));
      break;
    }

    // Congestion + amplification checks at datagram granularity (PTO probes
    // bypass Flush and are therefore exempt from CC, per RFC 9002 §7.5).
    const std::size_t size = used;
    const bool cc_blocked = datagram.IsAckEliciting() && !cc_.CanSend(size);
    const bool amp_blocked = !amp_.CanSend(size);
    if (cc_blocked || amp_blocked) {
      if (amp_blocked) {
        amp_.NoteBlocked(queue_.now());
        ++metrics_.amp_blocked_events;
      }
      // Put everything back for a later flush.
      for (auto it = datagram.packets.rbegin(); it != datagram.packets.rend(); ++it) {
        SpaceState& state = space(it->space);
        if (state.next_pn == it->packet_number + 1) --state.next_pn;
        state.pending.insert(state.pending.begin(),
                             std::make_move_iterator(it->frames.begin()),
                             std::make_move_iterator(it->frames.end()));
      }
      ReleaseDatagram(std::move(datagram));
      break;
    }
    if (!SendDatagramNow(std::move(datagram.packets))) break;
  }

  if (!amp_.validated() && HasQueuedData() && amp_.Budget() < kMaxDatagramSize) {
    amp_.NoteBlocked(queue_.now());
  } else {
    amp_.NoteUnblocked(queue_.now());
  }
}

void Connection::DiscardSpace(PacketNumberSpace s) {
  SpaceState& state = space(s);
  if (state.discarded) return;
  state.discarded = true;
  cc_.OnPacketDiscarded(state.ledger.bytes_in_flight());
  state.ledger.Clear();
  state.pending.clear();
  // Discarding keys resets the PTO backoff (RFC 9002 §6.2.2).
  pto_count_ = 0;
  TouchPtoBase();
  SetLossDetectionTimer();
}

void Connection::SetHandshakeComplete() {
  if (handshake_complete_) return;
  handshake_complete_ = true;
  metrics_.handshake_complete = queue_.now();
  qlog::StructEvent event;
  event.kind = qlog::StructEvent::Kind::kConnectionStateUpdated;
  event.detail = 0;  // handshake_complete
  event.time = queue_.now();
  trace_.RecordEvent(event);
}

void Connection::SetHandshakeConfirmed() {
  if (handshake_confirmed_) return;
  handshake_confirmed_ = true;
  metrics_.handshake_confirmed = queue_.now();
  qlog::StructEvent event;
  event.kind = qlog::StructEvent::Kind::kConnectionStateUpdated;
  event.detail = 1;  // handshake_confirmed
  event.time = queue_.now();
  trace_.RecordEvent(event);
  if (!space(PacketNumberSpace::kHandshake).discarded) {
    DiscardSpace(PacketNumberSpace::kHandshake);
  }
}

void Connection::CloseConnection(std::string reason) {
  if (closed_) return;
  closed_ = true;
  metrics_.aborted = true;
  metrics_.abort_reason = std::move(reason);
  trace_.RecordNote(queue_.now(), "connectivity", "closed: " + metrics_.abort_reason);
  qlog::StructEvent event;
  event.kind = qlog::StructEvent::Kind::kConnectionStateUpdated;
  event.detail = 2;  // closed
  event.time = queue_.now();
  trace_.RecordEvent(event);
  loss_timer_.Cancel();
  ack_timer_.Cancel();
  idle_timer_.Cancel();
}

void Connection::OnDatagramReceived(Datagram datagram) {
  if (closed_) return;
  sim::Duration delay = config_.processing_delay;
  // Handshake-phase jitter only (the go-x-net reporting noise of §4.1);
  // jittering bulk-transfer datagrams would reorder the whole download.
  if (config_.processing_jitter > 0 && !handshake_complete_) {
    delay += static_cast<sim::Duration>(
        rng_.Uniform(0.0, static_cast<double>(config_.processing_jitter)));
  }
  if (delay <= 0) {
    ProcessDatagram(datagram);
    ReleaseDatagram(std::move(datagram));
  } else {
    queue_.Schedule(delay, [this, d = std::move(datagram)]() mutable {
      ProcessDatagram(d);
      ReleaseDatagram(std::move(d));
    });
  }
}

bool Connection::ShouldDropByQuirk(const Datagram& datagram) {
  if (!config_.drop_coalesced_ping_reply || ping_drop_quirk_used_) return false;
  if (datagram.packets.size() < 2) return false;
  for (const Packet& packet : datagram.packets) {
    if (packet.space != PacketNumberSpace::kInitial) continue;
    const AckFrame* ack = packet.Find<AckFrame>();
    if (ack == nullptr) continue;
    for (const auto& [s, pn] : ping_only_pns_) {
      if (s == PacketNumberSpace::kInitial && ack->Acks(pn)) {
        ping_drop_quirk_used_ = true;
        return true;
      }
    }
  }
  return false;
}

void Connection::ProcessDatagram(Datagram& datagram) {
  if (closed_) return;
  ++metrics_.datagrams_received;
  const std::size_t wire_size = datagram.WireSize();
  metrics_.wire_bytes_received += wire_size;
  amp_.OnBytesReceived(wire_size);
  // Any received datagram restarts the idle timer (RFC 9000 §10.1). The
  // restart always pushes the deadline later, so the lazy form avoids a
  // cancel+reschedule per datagram.
  if (config_.idle_timeout > 0) idle_timer_.SetDeadlineLazy(queue_.now() + config_.idle_timeout);

  if (ShouldDropByQuirk(datagram)) {
    ++metrics_.datagrams_dropped_by_quirk;
    trace_.RecordNote(queue_.now(), "quirk", "dropped coalesced datagram acking a PING probe");
    return;
  }

  // Defer loss-timer re-arms until the single tail call below; the guard
  // clears the flag on every exit path, including mid-processing closes.
  defer_loss_timer_ = true;
  struct DeferGuard {
    bool* flag;
    ~DeferGuard() { *flag = false; }
  } defer_guard{&defer_loss_timer_};

  for (Packet& packet : datagram.packets) {
    ProcessPacket(packet);
    if (closed_) return;
  }
  // Retry packets that arrived before their keys — once now, and once more
  // after the subclass hook, which is where clients install 1-RTT keys upon
  // completing the server flight (the coalesced H3 SETTINGS depends on it).
  ReprocessUndecryptable();
  if (closed_) return;

  AfterDatagramProcessed();
  if (closed_) return;
  ReprocessUndecryptable();
  if (closed_) return;
  Flush();
  MaybeSendAcks();
  defer_loss_timer_ = false;
  SetLossDetectionTimer();
  ArmAckTimer();
}

void Connection::ReprocessUndecryptable() {
  if (pending_undecryptable_.empty()) return;
  if (!has_handshake_keys_ && !has_one_rtt_recv_keys_) return;
  std::vector<Packet> retry = AcquirePacketVec();
  retry.swap(pending_undecryptable_);
  for (Packet& packet : retry) {
    ProcessPacket(packet);
    if (closed_) break;
  }
  ReleasePacketVec(std::move(retry));
}

void Connection::ProcessPacket(Packet& packet) {
  SpaceState& state = space(packet.space);
  if (state.discarded) return;

  if (packet.space == PacketNumberSpace::kHandshake && !has_handshake_keys_) {
    pending_undecryptable_.push_back(std::move(packet));
    return;
  }
  if (packet.space == PacketNumberSpace::kAppData && !has_one_rtt_recv_keys_) {
    pending_undecryptable_.push_back(std::move(packet));
    return;
  }

  // Retry packets are unnumbered and never acknowledged; handle and return.
  if (const RetryFrame* retry = packet.Find<RetryFrame>()) {
    HandleRetry(*retry);
    return;
  }

  current_packet_token_ = packet.token;
  const bool ack_eliciting = packet.IsAckEliciting();
  if (!state.acks.OnPacketReceived(packet.packet_number, ack_eliciting, queue_.now())) {
    return;  // duplicate
  }
  trace_.RecordPacket(qlog::PacketEvent{
      queue_.now(), /*sent=*/false, packet.space, packet.packet_number,
      packet.wire_size != 0 ? packet.wire_size : packet.WireSize(), ack_eliciting});

  // Receiving a Handshake packet validates the client's address
  // (RFC 9000 §8.1) and lifts the server's anti-amplification limit.
  if (perspective_ == Perspective::kServer &&
      packet.space == PacketNumberSpace::kHandshake && !amp_.validated()) {
    amp_.OnAddressValidated();
    amp_.NoteUnblocked(queue_.now());
    OnSendBudgetIncreased();
  }

  for (const Frame& frame : packet.frames) {
    if (closed_) return;
    if (const auto* ack = std::get_if<AckFrame>(&frame)) {
      ProcessAckFrame(packet.space, *ack);
    } else if (const auto* crypto = std::get_if<CryptoFrame>(&frame)) {
      if (metrics_.first_crypto_received < 0) metrics_.first_crypto_received = queue_.now();
      state.crypto_rx.OnFrame(*crypto);
      HandleCrypto(packet.space, *crypto);
    } else if (const auto* stream = std::get_if<StreamFrame>(&frame)) {
      OnStreamBytesReceived(*stream);
      HandleStream(*stream);
    } else if (const auto* max_data = std::get_if<MaxDataFrame>(&frame)) {
      peer_max_data_ = std::max(peer_max_data_, max_data->maximum_data);
    } else if (std::holds_alternative<HandshakeDoneFrame>(frame)) {
      SetHandshakeConfirmed();
      HandleHandshakeDone();
    } else if (std::holds_alternative<PingFrame>(frame)) {
      HandlePing(packet.space);
    } else if (const auto* ncid = std::get_if<NewConnectionIdFrame>(&frame)) {
      cids_.OnNewConnectionIdInto(*ncid, cid_scratch_);
      if (cid_scratch_.duplicate_retirement && config_.abort_on_duplicate_cid_retirement) {
        CloseConnection("duplicate connection ID retirement");
        return;
      }
      for (const RetireConnectionIdFrame& retire : cid_scratch_.retirements) {
        QueueFrame(PacketNumberSpace::kAppData, retire);
      }
    } else if (std::holds_alternative<ConnectionCloseFrame>(frame)) {
      closed_ = true;
      loss_timer_.Cancel();
      ack_timer_.Cancel();
      idle_timer_.Cancel();
      return;
    }
    // PADDING / RETIRE_CONNECTION_ID need no receiver action here.
  }
}

void Connection::ProcessAckFrame(PacketNumberSpace s, const AckFrame& ack) {
  if (metrics_.first_ack_received < 0) metrics_.first_ack_received = queue_.now();
  SpaceState& state = space(s);
  recovery::AckResult& result = ack_scratch_;
  state.ledger.OnAckReceivedInto(ack, queue_.now(), result);
  if (result.newly_acked.empty()) return;

  trace_.CountNewAckPacket();

  for (const recovery::SentPacket& acked : result.newly_acked) {
    if (acked.in_flight) cc_.OnPacketAcked(acked.bytes, acked.sent_time);
    const auto key = std::make_pair(s, acked.packet_number);
    if (EraseSortedPn(probed_pns_, key)) {
      ++metrics_.spurious_retransmits;
      trace_.RecordNote(queue_.now(), "recovery", "spurious retransmit detected");
    }
  }

  if (result.rtt_sample_available &&
      (s != PacketNumberSpace::kInitial || config_.use_initial_space_rtt_samples)) {
    sim::Duration ack_delay = ack.ack_delay;
    if (s == PacketNumberSpace::kInitial && !config_.apply_ack_delay_in_initial) ack_delay = 0;
    RecordRttSample(s, result.latest_rtt, ack_delay);
  }

  if (result.any_ack_eliciting_newly_acked) {
    pto_count_ = 0;
    TouchPtoBase();
    // Forward progress ends any persistent-congestion span.
    pc_span_start_ = sim::kNever;
    pc_span_end_ = 0;
  }

  // Acked packets' frame spans need no recycling: the arena reclaims them
  // wholesale at repetition reset.

  // Loss detection after every ack (RFC 9002 A.7).
  std::vector<recovery::SentPacket>& lost = loss_scratch_;
  obs::Count(obs::kRecoveryLossDetectionRuns);
  state.ledger.DetectLossInto(queue_.now(), LossDelay(), lost);
  if (!lost.empty()) {
    obs::Count(obs::kRecoveryPacketsLost, lost.size());
    std::size_t lost_bytes = 0;
    sim::Time largest_sent = 0;
    for (recovery::SentPacket& packet : lost) {
      if (packet.in_flight) lost_bytes += packet.bytes;
      largest_sent = std::max(largest_sent, packet.sent_time);
      RecordPacketLost(s, packet.packet_number, /*time_threshold=*/false);
      InsertSortedPn(probed_pns_, {s, packet.packet_number});
      for (Frame& frame : packet.retransmittable) {
        QueueFrame(s, frame);
        ++metrics_.retransmitted_frames;
      }
    }
    if (lost_bytes > 0) cc_.OnPacketsLost(lost_bytes, largest_sent, queue_.now());
    MaybeDeclarePersistentCongestion(lost);
  }
}

void Connection::InjectRttSample(sim::Duration latest) {
  RecordRttSample(PacketNumberSpace::kInitial, latest, 0);
}

void Connection::RecordRttSample(PacketNumberSpace s, sim::Duration latest,
                                 sim::Duration ack_delay) {
  (void)s;
  const bool first = !rtt_.has_sample();
  if (first && config_.wrong_first_srtt &&
      rng_.Bernoulli(config_.wrong_first_srtt_probability)) {
    // go-x-net quirk: smoothed RTT initialised to a wrong fixed value while
    // the latest sample is reported correctly.
    rtt_.OverrideFirstSample(*config_.wrong_first_srtt, *config_.wrong_first_srtt / 2);
    trace_.RecordNote(queue_.now(), "quirk", "smoothed RTT mis-initialised");
  } else {
    rtt_.AddSample(latest, ack_delay);
  }
  ++metrics_.rtt_samples;
  if (first) {
    metrics_.first_rtt_sample = latest;
    metrics_.first_pto_period =
        recovery::PtoPeriod(rtt_, config_.pto, PacketNumberSpace::kHandshake, false);
  }

  qlog::MetricsUpdate update;
  update.time = queue_.now();
  update.smoothed_rtt = rtt_.smoothed();
  update.rtt_var = rtt_.rttvar();
  update.latest_rtt = latest;
  update.min_rtt = rtt_.min_rtt();
  update.pto = recovery::PtoPeriod(rtt_, config_.pto, PacketNumberSpace::kHandshake, false);
  trace_.RecordMetrics(update);
}

sim::Duration Connection::LossDelay() const {
  const sim::Duration base = std::max(rtt_.smoothed(), rtt_.latest());
  return std::max(base * 9 / 8, recovery::kGranularity);
}

void Connection::RecordPacketLost(PacketNumberSpace s, std::uint64_t packet_number,
                                  bool time_threshold) {
  if (!trace_.capturing_events()) return;
  qlog::StructEvent event;
  event.kind = qlog::StructEvent::Kind::kPacketLost;
  event.detail = time_threshold ? 1 : 0;
  event.time = queue_.now();
  event.space = s;
  event.packet_number = packet_number;
  trace_.RecordEvent(event);
}

void Connection::RecordLossTimer(std::uint8_t event_type, std::uint8_t timer_type,
                                 PacketNumberSpace s, sim::Time deadline) {
  if (!trace_.capturing_events()) return;
  qlog::StructEvent event;
  event.kind = qlog::StructEvent::Kind::kLossTimerUpdated;
  event.detail = event_type;
  event.timer_type = timer_type;
  event.time = queue_.now();
  event.space = s;
  event.deadline = deadline;
  trace_.RecordEvent(event);
}

void Connection::SetLossDetectionTimer() {
  if (closed_) return;
  // While a datagram is being processed only the final re-arm (from the
  // ProcessDatagram tail) can be observed — no event runs in between — so
  // intermediate recomputations are skipped wholesale.
  if (defer_loss_timer_) return;
  obs::Count(obs::kRecoveryLossTimerUpdates);

  // Earliest time-threshold loss deadline.
  sim::Time loss_time = sim::kNever;
  PacketNumberSpace loss_space = PacketNumberSpace::kInitial;
  for (const auto& state : spaces_) {
    if (!state.discarded && state.ledger.loss_time() < loss_time) {
      loss_time = state.ledger.loss_time();
      loss_space = state.acks.space();
    }
  }
  if (loss_time != sim::kNever) {
    loss_timer_.SetDeadline(loss_time);
    RecordLossTimer(/*event_type=*/0, /*timer_type=*/0, loss_space, loss_time);
    return;
  }

  // A server blocked by the amplification limit cannot usefully probe.
  if (perspective_ == Perspective::kServer && !amp_.validated() &&
      amp_.Budget() < kMinProbeBudget) {
    if (loss_timer_.armed()) {
      RecordLossTimer(/*event_type=*/1, /*timer_type=*/1, pending_pto_space_, 0);
    }
    loss_timer_.Cancel();
    return;
  }

  bool ack_eliciting_in_flight = false;
  for (const auto& state : spaces_) {
    if (!state.discarded && state.ledger.HasAckElicitingInFlight()) {
      ack_eliciting_in_flight = true;
      break;
    }
  }

  if (!ack_eliciting_in_flight) {
    // Anti-deadlock (RFC 9002 A.8): a client keeps its PTO armed until the
    // handshake is confirmed so it can unblock an amplification-limited
    // server.
    if (perspective_ == Perspective::kClient && !handshake_confirmed_) {
      if (!config_.rearm_pto_on_empty_inflight && loss_timer_.armed()) {
        return;  // mvfst/picoquic: keep the original default-PTO deadline
      }
      const PacketNumberSpace s = has_handshake_keys_ ? PacketNumberSpace::kHandshake
                                                      : PacketNumberSpace::kInitial;
      pending_pto_space_ = s;
      const sim::Time deadline =
          pto_base_time_ + recovery::PtoPeriodWithBackoff(rtt_, config_.pto, s,
                                                          handshake_confirmed_, pto_count_);
      loss_timer_.SetDeadline(deadline);
      RecordLossTimer(/*event_type=*/0, /*timer_type=*/1, s, deadline);
      return;
    }
    if (loss_timer_.armed()) {
      RecordLossTimer(/*event_type=*/1, /*timer_type=*/1, pending_pto_space_, 0);
    }
    loss_timer_.Cancel();
    return;
  }

  sim::Time earliest = sim::kNever;
  PacketNumberSpace chosen = PacketNumberSpace::kInitial;
  for (const auto& state : spaces_) {
    if (state.discarded || !state.ledger.HasAckElicitingInFlight()) continue;
    const PacketNumberSpace s = state.acks.space();
    if (s == PacketNumberSpace::kAppData && !handshake_complete_) continue;
    const auto last_sent = state.ledger.LastAckElicitingSentTime();
    if (!last_sent) continue;
    const sim::Time deadline =
        *last_sent + recovery::PtoPeriodWithBackoff(rtt_, config_.pto, s, handshake_confirmed_,
                                                    pto_count_);
    if (deadline < earliest) {
      earliest = deadline;
      chosen = s;
    }
  }
  if (earliest == sim::kNever) {
    if (loss_timer_.armed()) {
      RecordLossTimer(/*event_type=*/1, /*timer_type=*/1, pending_pto_space_, 0);
    }
    loss_timer_.Cancel();
    return;
  }
  pending_pto_space_ = chosen;
  loss_timer_.SetDeadline(earliest);
  RecordLossTimer(/*event_type=*/0, /*timer_type=*/1, chosen, earliest);
}

void Connection::MaybeDeclarePersistentCongestion(
    const std::vector<recovery::SentPacket>& lost) {
  // RFC 9002 §7.6: declared when the packets lost since the last
  // acknowledged ack-eliciting packet span longer than the persistent-
  // congestion duration. The span accumulates across detection batches and
  // resets whenever an ack-eliciting packet is newly acknowledged.
  if (!rtt_.has_sample() || lost.empty()) return;
  for (const recovery::SentPacket& packet : lost) {
    if (!packet.ack_eliciting) continue;
    pc_span_start_ = std::min(pc_span_start_, packet.sent_time);
    pc_span_end_ = std::max(pc_span_end_, packet.sent_time);
  }
  if (pc_span_start_ == sim::kNever) return;
  const sim::Duration pto = recovery::PtoPeriod(rtt_, config_.pto,
                                                PacketNumberSpace::kAppData, true);
  if (pc_span_end_ - pc_span_start_ >
      recovery::NewRenoCongestion::PersistentCongestionDuration(pto)) {
    cc_.OnPersistentCongestion();
    trace_.RecordNote(queue_.now(), "recovery", "persistent congestion declared");
    pc_span_start_ = sim::kNever;
    pc_span_end_ = 0;
  }
}

void Connection::HandleTimeThresholdLoss(SpaceState& state) {
  std::vector<recovery::SentPacket>& lost = loss_scratch_;
  obs::Count(obs::kRecoveryLossDetectionRuns);
  state.ledger.DetectLossInto(queue_.now(), LossDelay(), lost);
  if (!lost.empty()) obs::Count(obs::kRecoveryPacketsLost, lost.size());
  std::size_t lost_bytes = 0;
  sim::Time largest_sent = 0;
  for (recovery::SentPacket& packet : lost) {
    if (packet.in_flight) lost_bytes += packet.bytes;
    largest_sent = std::max(largest_sent, packet.sent_time);
    RecordPacketLost(state.acks.space(), packet.packet_number, /*time_threshold=*/true);
    InsertSortedPn(probed_pns_, {state.acks.space(), packet.packet_number});
    for (Frame& frame : packet.retransmittable) {
      QueueFrame(state.acks.space(), frame);
      ++metrics_.retransmitted_frames;
    }
  }
  if (lost_bytes > 0) cc_.OnPacketsLost(lost_bytes, largest_sent, queue_.now());
  MaybeDeclarePersistentCongestion(lost);
}

void Connection::OnLossDetectionTimeout() {
  if (closed_) return;

  // Time-threshold loss first.
  for (auto& state : spaces_) {
    if (state.discarded) continue;
    if (state.ledger.loss_time() != sim::kNever && state.ledger.loss_time() <= queue_.now()) {
      RecordLossTimer(/*event_type=*/2, /*timer_type=*/0, state.acks.space(), 0);
      HandleTimeThresholdLoss(state);
      Flush();
      SetLossDetectionTimer();
      return;
    }
  }

  // PTO expiry.
  ++metrics_.pto_expirations;
  obs::Count(obs::kRecoveryPtoFired);
  RecordLossTimer(/*event_type=*/2, /*timer_type=*/1, pending_pto_space_, 0);
  trace_.RecordNote(queue_.now(), "recovery",
                    "PTO expired (space " + std::string(ToString(pending_pto_space_)) + ")");
  TouchPtoBase();
  SendProbes(pending_pto_space_);
  ++pto_count_;
  SetLossDetectionTimer();
}

void Connection::OnAckTimerFired() {
  if (closed_) return;
  for (auto& state : spaces_) {
    if (state.discarded || !state.acks.HasPendingAck()) continue;
    if (SuppressImmediateAck(state.acks.space())) continue;
    if (auto ack = state.acks.BuildAck(queue_.now())) {
      std::vector<Frame> frames = AcquireFrameVec();
      frames.push_back(std::move(*ack));
      std::vector<Packet> packets = AcquirePacketVec();
      packets.push_back(BuildPacket(state.acks.space(), std::move(frames)));
      SendDatagramNow(std::move(packets));
    }
  }
  ArmAckTimer();
}

void Connection::SendProbes(PacketNumberSpace s) {
  // The armed space may have been discarded between arming and firing.
  if (space(s).discarded) {
    if (s == PacketNumberSpace::kInitial &&
        !space(PacketNumberSpace::kHandshake).discarded) {
      s = PacketNumberSpace::kHandshake;
    } else if (!space(PacketNumberSpace::kAppData).discarded && handshake_complete_) {
      s = PacketNumberSpace::kAppData;
    } else {
      return;
    }
  }
  // Gather outstanding retransmittable data starting at the probed space and
  // continuing through later spaces — real stacks coalesce retransmitted
  // flights the same way they coalesced the originals. A cursor spreads the
  // data across the 1-2 probe datagrams instead of duplicating it.
  struct Chunk {
    PacketNumberSpace space;
    Frame frame;
  };
  std::vector<Chunk> outstanding;
  for (int idx = SpaceIndex(s); idx < kNumSpaces; ++idx) {
    const PacketNumberSpace os = static_cast<PacketNumberSpace>(idx);
    SpaceState& other = space(os);
    if (other.discarded) continue;
    if (os == PacketNumberSpace::kAppData && !has_one_rtt_send_keys_) continue;
    for (const auto& frame : other.ledger.OutstandingRetransmittable()) {
      outstanding.push_back(Chunk{os, frame});
    }
  }

  const int count =
      rtt_.has_sample() ? config_.probe_count_with_rtt : config_.probe_count_without_rtt;
  std::size_t cursor = 0;
  for (int i = 0; i < count; ++i) {
    // Group this datagram's frames by space, preserving space order.
    std::vector<std::vector<Frame>> by_space(kNumSpaces);
    PacketNumberSpace first_space = s;
    std::size_t budget = kMaxDatagramSize - 120;
    bool any_data = false;
    while (cursor < outstanding.size()) {
      const std::size_t size = quic::WireSize(outstanding[cursor].frame);
      if (size > budget) break;
      budget -= size;
      if (!any_data) first_space = outstanding[cursor].space;
      by_space[SpaceIndex(outstanding[cursor].space)].push_back(outstanding[cursor].frame);
      any_data = true;
      ++cursor;
    }

    std::vector<Packet> packets;
    bool ping_only = false;
    if (any_data) {
      for (int idx = 0; idx < kNumSpaces; ++idx) {
        if (by_space[idx].empty()) continue;
        const PacketNumberSpace os = static_cast<PacketNumberSpace>(idx);
        for (std::uint64_t pn : space(os).ledger.OutstandingPns()) {
          InsertSortedPn(probed_pns_, {os, pn});
        }
        metrics_.retransmitted_frames += static_cast<int>(by_space[idx].size());
        packets.push_back(BuildPacket(os, std::move(by_space[idx])));
      }
    } else if (config_.probe_with_data && !last_crypto_sent_[SpaceIndex(s)].empty()) {
      // §5 tuning: re-send the ClientHello (or last crypto flight) instead
      // of a PING so the server can recover state faster.
      metrics_.retransmitted_frames +=
          static_cast<int>(last_crypto_sent_[SpaceIndex(s)].size());
      packets.push_back(BuildPacket(s, last_crypto_sent_[SpaceIndex(s)]));
    } else {
      packets.push_back(BuildPacket(s, {PingFrame{}}));
      ping_only = true;
    }

    const PacketNumberSpace probe_space = packets.front().space;
    const std::uint64_t pn = packets.front().packet_number;
    (void)first_space;
    // Clients pad Initial probe datagrams to 1200 B, which also refills an
    // amplification-blocked server's budget (Fig 5).
    const std::size_t pad =
        (perspective_ == Perspective::kClient && probe_space == PacketNumberSpace::kInitial)
            ? kMinInitialDatagramSize
            : 0;
    if (SendDatagramNow(std::move(packets), pad)) {
      ++metrics_.probe_datagrams_sent;
      if (ping_only) ping_only_pns_.emplace_back(probe_space, pn);
    } else {
      break;  // amplification-blocked: stop probing
    }
  }
}

void Connection::OnStreamBytesReceived(const StreamFrame& frame) {
  if (frame.length > 0 && metrics_.first_stream_byte < 0) {
    metrics_.first_stream_byte = queue_.now();
  }
  if (frame.length > 0 && frame.stream_id == http::kRequestStreamId &&
      metrics_.first_response_byte < 0) {
    metrics_.first_response_byte = queue_.now();
  }
  InStream& in = InStreamFor(frame.stream_id);
  const std::uint64_t end = frame.offset + frame.length;
  std::uint64_t new_bytes = 0;
  if (end > in.high_watermark) {
    new_bytes = end - in.high_watermark;
    in.high_watermark = end;
  }
  if (frame.fin) {
    in.fin_seen = true;
    in.fin_offset = end;
  }
  metrics_.stream_bytes_received += new_bytes;

  // Connection-level flow control: grant more credit every
  // flow_update_interval_bytes (this cadence produces the per-client RTT
  // sample counts of Fig 11).
  flow_bytes_since_update_ += new_bytes;
  if (flow_bytes_since_update_ >= config_.flow_update_interval_bytes && handshake_complete_) {
    flow_bytes_since_update_ = 0;
    flow_granted_ = metrics_.stream_bytes_received + config_.local_max_data;
    QueueFrame(PacketNumberSpace::kAppData, MaxDataFrame{flow_granted_});
  }
}

const Connection::InStream* Connection::FindInStream(std::uint64_t stream_id) const {
  const auto it = std::lower_bound(
      in_streams_.begin(), in_streams_.end(), stream_id,
      [](const auto& entry, std::uint64_t id) { return entry.first < id; });
  if (it == in_streams_.end() || it->first != stream_id) return nullptr;
  return &it->second;
}

Connection::InStream& Connection::InStreamFor(std::uint64_t stream_id) {
  const auto it = std::lower_bound(
      in_streams_.begin(), in_streams_.end(), stream_id,
      [](const auto& entry, std::uint64_t id) { return entry.first < id; });
  if (it != in_streams_.end() && it->first == stream_id) return it->second;
  return in_streams_.emplace(it, stream_id, InStream{})->second;
}

void Connection::ArmAckTimer() {
  sim::Time deadline = sim::kNever;
  for (const auto& state : spaces_) {
    if (state.discarded || !state.acks.HasPendingAck()) continue;
    if (SuppressImmediateAck(state.acks.space())) continue;
    sim::Time d = state.acks.AckDeadline();
    if (config_.defer_acks_until_flight && !handshake_complete_ &&
        state.acks.space() != PacketNumberSpace::kAppData) {
      d += config_.ack_policy.max_ack_delay;  // quiche batching window
    }
    deadline = std::min(deadline, d);
  }
  if (deadline == sim::kNever) {
    ack_timer_.Cancel();
  } else if (deadline > queue_.now()) {
    ack_timer_.SetDeadline(deadline);
  } else {
    ack_timer_.SetDeadline(queue_.now() + 1);
  }
}

}  // namespace quicer::quic
