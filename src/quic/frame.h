// QUIC frame model.
//
// Frames carry no real payload bytes — only the metadata the experiments
// depend on: type, byte counts (for amplification / coalescing accounting),
// stream and crypto offsets (for reassembly and retransmission), and the
// ACK fields (largest acked, ranges, ack delay) that drive RTT estimation.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "quic/types.h"
#include "sim/time.h"
#include "tls/messages.h"

namespace quicer::quic {

/// PADDING: fills a datagram up to the required minimum size.
struct PaddingFrame {
  std::uint32_t size = 0;
};

/// PING: ack-eliciting no-op, the default PTO probe content.
struct PingFrame {};

/// Inclusive packet-number range inside an ACK frame.
struct PnRange {
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  bool Contains(std::uint64_t pn) const { return pn >= first && pn <= last; }
};

/// ACK: acknowledges packet ranges and reports the local ack delay.
struct AckFrame {
  std::uint64_t largest_acked = 0;
  /// Host-reported delay between receiving the largest acked packet and
  /// sending this ACK. Many deployments report 0 (Table 3) or values
  /// exceeding the RTT (Fig 10); the connection config controls this.
  sim::Duration ack_delay = 0;
  std::vector<PnRange> ranges;  // descending, first covers largest_acked

  /// True if `pn` is covered by any range. Inline because the recovery
  /// library calls it without linking the quic library.
  bool Acks(std::uint64_t pn) const {
    for (const PnRange& range : ranges) {
      if (range.Contains(pn)) return true;
    }
    return false;
  }
};

/// CRYPTO: a chunk of a TLS handshake message at a crypto-stream offset.
struct CryptoFrame {
  /// Offset within the per-space crypto stream.
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
  /// Which TLS message this chunk belongs to (emulation metadata).
  tls::MessageType message = tls::MessageType::kClientHello;
};

/// STREAM: a chunk of application data.
struct StreamFrame {
  std::uint64_t stream_id = 0;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
  bool fin = false;
};

/// MAX_DATA: connection-level flow-control credit (drives Fig 11: these are
/// ack-eliciting and give the client most of its RTT samples on downloads).
struct MaxDataFrame {
  std::uint64_t maximum_data = 0;
};

/// HANDSHAKE_DONE: server -> client, confirms the handshake.
struct HandshakeDoneFrame {};

/// NEW_CONNECTION_ID (sequence number only; used for the quiche CID quirk).
struct NewConnectionIdFrame {
  std::uint64_t sequence = 0;
  std::uint64_t retire_prior_to = 0;
};

/// RETIRE_CONNECTION_ID.
struct RetireConnectionIdFrame {
  std::uint64_t sequence = 0;
};

/// CONNECTION_CLOSE.
struct ConnectionCloseFrame {
  std::uint64_t error_code = 0;
  std::string reason;
};

/// Retry "frame": stands in for the Retry packet type (RFC 9000 §17.2.5) —
/// carries the address-validation token the client must echo in its next
/// Initial. Not ack-eliciting (Retry packets are never acknowledged).
struct RetryFrame {
  std::uint64_t token = 0;
};

using Frame = std::variant<PaddingFrame, PingFrame, AckFrame, CryptoFrame, StreamFrame,
                           MaxDataFrame, HandshakeDoneFrame, NewConnectionIdFrame,
                           RetireConnectionIdFrame, ConnectionCloseFrame, RetryFrame>;

/// True for frames that require the peer to send an acknowledgment
/// (everything except ACK, PADDING and CONNECTION_CLOSE — RFC 9002 §2).
bool IsAckEliciting(const Frame& frame);

/// True if any frame in `frames` is ack-eliciting.
bool AnyAckEliciting(const std::vector<Frame>& frames);

/// Approximate encoded size of the frame in bytes.
std::size_t WireSize(const Frame& frame);

/// Total encoded size of a frame sequence.
std::size_t WireSize(const std::vector<Frame>& frames);

/// Frames worth retransmitting after loss (CRYPTO, STREAM, MAX_DATA,
/// HANDSHAKE_DONE, NEW_CONNECTION_ID — not ACK/PADDING/PING).
bool IsRetransmittable(const Frame& frame);

/// Short human-readable rendering, e.g. "ACK[3]" or "CRYPTO[SH 0..122]".
std::string Describe(const Frame& frame);

}  // namespace quicer::quic
