// Connection-ID issuance and retirement.
//
// Only the subset relevant to the paper is modelled: servers issue a
// NEW_CONNECTION_ID (with retire_prior_to) in their first 1-RTT flight; the
// peer retires superseded CIDs and responds with RETIRE_CONNECTION_ID.
// When the issuing packet is retransmitted (e.g. both PTO probe datagrams
// carry it), the receiver sees the same retirement request twice. Most
// stacks treat that as idempotent; quiche aborts the connection — the
// behaviour behind the Fig 6 quiche anomaly ("drops connections when the
// same connection ID is retired multiple times").
#pragma once

#include <cstdint>
#include <vector>

#include "quic/frame.h"

namespace quicer::quic {

/// Receive-side CID state.
class CidManager {
 public:
  struct ProcessResult {
    /// RETIRE_CONNECTION_ID frames the receiver must send in response.
    std::vector<RetireConnectionIdFrame> retirements;
    /// True if a CID that was already retired was asked to retire again.
    bool duplicate_retirement = false;
  };

  /// Processes a NEW_CONNECTION_ID frame; returns required retirements and
  /// whether a duplicate retirement occurred.
  ProcessResult OnNewConnectionId(const NewConnectionIdFrame& frame);

  /// As above, but reuses `result`'s buffers (cleared first) so the per-frame
  /// hot path allocates nothing in steady state.
  void OnNewConnectionIdInto(const NewConnectionIdFrame& frame, ProcessResult& result);

  /// Number of currently active (issued, unretired) sequence numbers.
  std::size_t active_count() const { return active_.size(); }

  std::uint64_t retirement_count() const { return retirement_count_; }

  /// Rewinds to the fresh-connection state (only the handshake CID active)
  /// for context reuse between repetitions. Buffer capacity is retained.
  void Reset();

 private:
  // Sorted ascending, unique. Small (a handful of CIDs per connection), so
  // sorted vectors beat node-based sets on every operation here.
  std::vector<std::uint64_t> active_{0};  // seq 0 is the handshake CID
  std::vector<std::uint64_t> retired_;
  std::uint64_t retirement_count_ = 0;
};

}  // namespace quicer::quic
