#include "quic/ack_manager.h"

#include <algorithm>

#include "quic/pool.h"

namespace quicer::quic {

AckManager::AckManager(PacketNumberSpace space, AckPolicy policy)
    : space_(space), policy_(policy) {}

void AckManager::Reset(AckPolicy policy) {
  policy_ = policy;
  received_.clear();
  largest_received_.reset();
  largest_ack_eliciting_time_ = 0;
  pending_ack_eliciting_ = 0;
}

bool AckManager::OnPacketReceived(std::uint64_t pn, bool ack_eliciting, sim::Time now) {
  // Find insertion point among merged ranges.
  auto it = std::lower_bound(received_.begin(), received_.end(), pn,
                             [](const PnRange& r, std::uint64_t v) { return r.last < v; });
  if (it != received_.end() && it->Contains(pn)) return false;  // duplicate

  if (it != received_.end() && it->first == pn + 1) {
    it->first = pn;  // extend downwards
    if (it != received_.begin()) {
      auto prev = std::prev(it);
      if (prev->last + 1 == it->first) {
        prev->last = it->last;
        received_.erase(it);
      }
    }
  } else if (it != received_.begin() && std::prev(it)->last + 1 == pn) {
    std::prev(it)->last = pn;  // extend upwards
  } else {
    received_.insert(it, PnRange{pn, pn});
  }

  if (!largest_received_ || pn > *largest_received_) largest_received_ = pn;
  if (ack_eliciting) {
    if (pending_ack_eliciting_ == 0) largest_ack_eliciting_time_ = now;
    ++pending_ack_eliciting_;
  }
  return true;
}

bool AckManager::ShouldAckImmediately() const {
  if (pending_ack_eliciting_ == 0) return false;
  if (space_ != PacketNumberSpace::kAppData) return true;
  return pending_ack_eliciting_ >= policy_.packet_tolerance;
}

sim::Time AckManager::AckDeadline() const {
  if (pending_ack_eliciting_ == 0) return sim::kNever;
  if (space_ != PacketNumberSpace::kAppData) return largest_ack_eliciting_time_;
  return largest_ack_eliciting_time_ + policy_.max_ack_delay;
}

std::optional<AckFrame> AckManager::BuildAck(sim::Time now) {
  if (received_.empty()) return std::nullopt;
  AckFrame ack;
  // Pooled range buffer: the frame pool salvages it back when the ACK frame
  // is recycled, so steady-state ACK emission allocates nothing.
  ack.ranges = AcquirePnRangeVec();
  ack.largest_acked = *largest_received_;
  switch (policy_.report_mode) {
    case AckDelayReportMode::kActual:
      ack.ack_delay = pending_ack_eliciting_ > 0 ? now - largest_ack_eliciting_time_ : 0;
      break;
    case AckDelayReportMode::kZero:
      ack.ack_delay = 0;
      break;
    case AckDelayReportMode::kFixed:
      ack.ack_delay = policy_.fixed_report_value;
      break;
  }
  // ACK ranges are listed from the largest downwards.
  ack.ranges.assign(received_.rbegin(), received_.rend());
  pending_ack_eliciting_ = 0;
  return ack;
}

}  // namespace quicer::quic
