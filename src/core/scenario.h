// Scenario codec: SweepSpec grids as serializable data.
//
// Every grid in bench/ used to exist only as compiled C++ — running a
// scenario the paper didn't ship meant recompiling. This codec makes the
// *data* of a spec first-class: every ExperimentConfig field, every axis
// (including extra axes), the metric set and the seed schedule serialize
// to/from a JSON scenario file through one field-descriptor table (a single
// source of truth for names, defaults, enum labels and validation — and the
// generator of the README defaults table).
//
// Functions do not serialize. A SweepSpec's loss builders, variant
// mutations, metric extractors and runners are C++ closures; a scenario
// file refers to them *by label* and ApplyScenario resolves the labels
// against the live spec of the same (bench, sweep) — captured via the
// enumerate pass, no experiments run — plus a small registry of builtin
// losses ("none", "first-server-flight-tail", "second-client-flight") and
// metrics ("ttfb_ms", "response_ttfb_ms"). So `bench_suite export-grid B |
// bench_suite run --grid=-` reproduces the compiled-in grid byte for byte,
// and a hand-edited copy sweeps axes the paper never shipped without
// touching a compiler.
//
// ScenarioHash fingerprints the canonical serialization. RunSweep stamps it
// into every result, partial files and work units carry it, and the merge /
// collect phases refuse to combine partials whose hashes differ — two
// shards of "the same" sweep run from different grid files can never
// silently mix. The hash covers exactly the serializable data: label-
// resolved closures (loss builders, variant mutations, extractors, runners)
// hash by label, so binaries whose *code* diverged under unchanged labels
// are not distinguished — a distributed pool should run one binary
// revision per queue.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/sweep.h"

namespace quicer::core {

class JsonValue;

/// File-level format marker of scenario files.
inline constexpr std::string_view kScenarioFormat = "quicer-scenario-v1";

/// One row of the ExperimentConfig descriptor table: the field's JSON name,
/// a human type label, a one-line description, a writer producing the
/// canonical JSON value token, and a validating reader. The table drives
/// serialization, parsing, unknown-field rejection and the README defaults
/// table alike.
struct ConfigFieldSpec {
  std::string name;
  std::string type;
  std::string doc;
  std::string (*write)(const ExperimentConfig&);
  /// Parses `value` into `config`; on failure fills `error` (without the
  /// field-path prefix) and returns false.
  bool (*read)(const JsonValue& value, ExperimentConfig& config, std::string& error);
};

/// The descriptor table, in canonical serialization order. `base.loss` and
/// `client_config_override` are deliberately absent: loss patterns are
/// expressed through the losses axis, and full config overrides are a
/// C++-only escape hatch.
const std::vector<ConfigFieldSpec>& ConfigFields();

/// The serializable data of one SweepSpec, as parsed from a scenario file.
/// Losses, variants and metrics are labels/names; ApplyScenario resolves
/// them to functions.
struct Scenario {
  std::string bench;  // provenance; optional in hand-authored files
  std::string sweep;
  int repetitions = 25;
  std::uint64_t seed_base = 0;
  std::uint64_t seed_stride = 7919;
  bool skip_unsupported_http3 = true;
  std::size_t reservoir_capacity = stats::Accumulator::kDefaultReservoirCapacity;
  ExperimentConfig base;

  std::vector<clients::ClientImpl> clients;
  std::vector<http::Version> http_versions;
  std::vector<quic::ServerBehavior> behaviors;
  std::vector<HandshakeMode> modes;
  std::vector<sim::Duration> rtts;
  std::vector<sim::Duration> cert_fetch_delays;
  std::vector<std::size_t> certificate_sizes;
  std::vector<std::string> losses;    // labels, resolved by ApplyScenario
  std::vector<std::string> variants;  // labels, resolved by ApplyScenario
  std::vector<SweepLink> links;       // structural netem models (no resolution)
  std::vector<SweepExtraAxis> extras;

  struct Metric {
    std::string name;
    MetricMode mode = MetricMode::kSummary;
    bool exclude_negative = true;
  };
  std::vector<Metric> metrics;
};

/// Serializes the data of `spec` as one canonical scenario object, each
/// line indented by `indent` spaces. "bench" is omitted when empty (the
/// hash canonicalization). Deterministic: re-serializing an applied parse
/// of the output reproduces it byte for byte.
std::string ScenarioJson(const SweepSpec& spec, std::string_view bench, int indent = 0);

/// A whole scenario file ({"format": ..., "scenarios": [...]}) from
/// (bench name, spec) pairs.
std::string ScenarioFileJson(
    const std::vector<std::pair<std::string, const SweepSpec*>>& specs);

/// Parses and validates a scenario file: format marker, unknown fields at
/// every level, enum labels, value ranges. Returns nullopt and fills
/// `error` (with a "scenarios[i].axes.clients[2]"-style path) on the first
/// violation.
std::optional<std::vector<Scenario>> ParseScenarioFile(std::string_view text,
                                                       std::string* error = nullptr);

/// Overwrites the data fields of `spec` — which must be the live spec of
/// the scenario's sweep (spec.name == scenario.sweep) — with the
/// scenario's, resolving loss/variant labels and metric names against the
/// spec's compiled-in axes first and the builtin registries second.
/// Execution control (shard, observer, runner, budget, sinks) is left
/// untouched. Returns false and fills `error` on an unresolvable label.
bool ApplyScenario(const Scenario& scenario, SweepSpec& spec, std::string* error = nullptr);

/// 64-bit FNV-1a over the canonical serialization (bench name excluded) —
/// the spec content-hash carried by results, partial files and work units.
std::uint64_t ScenarioHash(const SweepSpec& spec);

/// Lower-case hex of a hash, zero-padded to 16 digits ("0" stays "0" — the
/// absent-hash sentinel never collides with a real digest).
std::string ScenarioHashHex(std::uint64_t hash);

/// Markdown table (field | type | default | description) of every base
/// config field, generated from the descriptor table — the README
/// "Scenario files" defaults table and `bench_suite schema`.
std::string ScenarioSchemaMarkdown();

}  // namespace quicer::core
