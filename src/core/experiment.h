// Testbed experiment harness.
//
// One experiment = one QUIC connection between a client implementation
// profile and the reference server over an emulated path, mirroring the
// paper's QUIC Interop Runner setup (§3): configurable RTT, 10 Mbit/s
// bottleneck, deterministic datagram loss, certificate size, Δt, WFC/IACK
// behaviour, HTTP version, and seeded repetitions.
#pragma once

#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "clients/profiles.h"
#include "http/http.h"
#include "qlog/qlog.h"
#include "quic/client_connection.h"
#include "quic/server_connection.h"
#include "sim/arena.h"
#include "sim/link.h"
#include "sim/loss.h"
#include "tls/cert_store.h"
#include "tls/messages.h"

namespace quicer::core {

/// Handshake type (§5 "Generalization to 0-RTT and Retry handshakes").
enum class HandshakeMode {
  k1Rtt,   // standard 1-RTT handshake (the paper's main setting)
  k0Rtt,   // resumed session; request rides with the ClientHello
  kRetry,  // server demands a token round trip first
};

/// Report label of a handshake mode ("1-RTT" / "0-RTT" / "Retry").
std::string_view ToString(HandshakeMode mode);

/// Inverse of ToString; nullopt for unknown labels.
std::optional<HandshakeMode> HandshakeModeFromString(std::string_view label);

struct ExperimentConfig {
  clients::ClientImpl client = clients::ClientImpl::kQuicGo;
  http::Version http = http::Version::kHttp1;
  quic::ServerBehavior behavior = quic::ServerBehavior::kWaitForCertificate;
  HandshakeMode mode = HandshakeMode::k1Rtt;
  /// For kRetry: the client uses the Retry round trip as its first RTT
  /// estimate (§5).
  bool client_use_retry_rtt_sample = true;

  /// Path round-trip time (symmetric one-way delays, §3).
  sim::Duration rtt = sim::Millis(9);
  double bandwidth_bps = 10e6;
  /// Per-datagram path jitter (0 in all paper experiments).
  sim::Duration path_jitter = 0;
  /// Network-emulation models (stochastic loss, bottleneck queue,
  /// asymmetric path overrides). The default is the paper's legacy pipe.
  netem::LinkModel link;

  /// TLS certificate chain size (1,212 B or 5,113 B in the paper).
  std::size_t certificate_bytes = tls::kSmallCertificateBytes;
  /// Backend certificate-store delay Δt.
  sim::Duration cert_fetch_delay = 0;
  bool cert_cached = false;
  /// Signing latency model (the dominant server-side compute cost, §4.1).
  tls::SigningModel signing{sim::Millis(2.8), 0.2};

  std::size_t response_body_bytes = http::kSmallFileBytes;
  sim::LossPattern loss;  // lint:allow(CC001): set from the losses axis; scenarios carry the loss label

  /// Server default PTO (the paper's quic-go server: 200 ms).
  sim::Duration server_default_pto = sim::Millis(200);
  bool pad_instant_ack = false;
  /// §5 tuning: client probes re-send the ClientHello instead of PINGs.
  bool client_probe_with_data = false;

  std::uint64_t seed = 1;
  /// Simulated-time budget per run.
  sim::Duration time_limit = sim::Seconds(30);

  /// Capture a full qlog trace on both endpoints: packet events regardless
  /// of body size, plus the structured recovery/transport/connectivity
  /// events (qlog::StructEvent), plus transport:datagram_dropped entries
  /// wired from the link's drop hook. Off by default — capture changes no
  /// run behaviour or RNG draws, but the export pipeline only pays for
  /// trace storage when a qlog is actually wanted (--qlog-dir). Not part of
  /// the serialized scenario, so it never affects the spec content-hash.
  bool capture_qlog = false;  // lint:allow(CC001): changes no run bytes; deliberately outside the scenario hash

  /// Full override of the client configuration (profiles otherwise apply).
  std::optional<quic::ConnectionConfig> client_config_override;  // lint:allow(CC001): programmatic escape hatch, not expressible in scenario files
};

struct ExperimentResult {
  quic::ConnectionMetrics client;
  quic::ConnectionMetrics server;
  /// Δt the server actually experienced (fetch + signing).
  sim::Duration realized_cert_delay = 0;
  bool completed = false;
  sim::Time end_time = 0;
  sim::Link::DirectionStats client_to_server;
  sim::Link::DirectionStats server_to_client;
  /// Client-side qlog extracts (Fig 11 / Fig 16 methodology).
  std::vector<qlog::MetricsUpdate> client_metric_updates;
  std::uint64_t client_packets_with_new_acks = 0;

  /// Time to first byte: first STREAM frame from the server, in ms
  /// (negative when never received — aborted runs). This is the Fig 5
  /// metric, where HTTP/3's control-stream SETTINGS counts.
  double TtfbMs() const {
    return client.first_stream_byte < 0 ? -1.0 : sim::ToMillis(client.first_stream_byte);
  }

  /// First byte of the *response stream*, in ms — the metric of the loss
  /// figures (Appendix F: "first payload byte after the loss event"), which
  /// excludes HTTP/3's pre-loss SETTINGS.
  double ResponseTtfbMs() const {
    return client.first_response_byte < 0 ? -1.0 : sim::ToMillis(client.first_response_byte);
  }
};

/// Reusable run context: owns the event queue, arena, link and both
/// endpoints and replays them across runs. Run() resets the queue (retaining
/// its slot and heap capacity), rewinds the arena, and resets the
/// link/endpoints in place — every container keeps its capacity — so after a
/// warm-up run, repeated runs (sweep repetitions, thread-pool workers)
/// allocate nothing at all. Reuse is invisible to results: every run
/// re-seeds its RNG forks and rebuilds endpoint state from the config, and
/// exports are byte-identical to fresh-context runs.
class RunContext {
 public:
  using InspectFn =
      std::function<void(const quic::ClientConnection&, const quic::ServerConnection&)>;

  RunContext() = default;
  ~RunContext();

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Runs one experiment, reusing this context's storage.
  ExperimentResult Run(const ExperimentConfig& config);
  ExperimentResult Run(const ExperimentConfig& config, const InspectFn& inspect);

 private:
  sim::EventQueue queue_;  // declared first: destroyed last, after its users
  sim::Arena arena_;       // per-run scratch; reset wholesale between runs
  std::optional<sim::Link> link_;
  std::optional<quic::ClientConnection> client_;
  std::optional<quic::ServerConnection> server_;
};

/// Runs a single experiment.
ExperimentResult RunExperiment(const ExperimentConfig& config);

/// Runs a single experiment and lets `inspect` examine the live endpoints
/// before teardown.
ExperimentResult RunExperiment(
    const ExperimentConfig& config,
    const std::function<void(const quic::ClientConnection&, const quic::ServerConnection&)>&
        inspect);

/// Runs `repetitions` seeded runs and returns extractor(result) for each.
std::vector<double> RunRepetitions(ExperimentConfig config, int repetitions,
                                   const std::function<double(const ExperimentResult&)>& extract);

/// Convenience: TTFB in ms across repetitions (aborted runs excluded).
std::vector<double> CollectTtfbMs(ExperimentConfig config, int repetitions);

/// Response-stream TTFB in ms across repetitions (the loss-figure metric).
std::vector<double> CollectResponseTtfbMs(ExperimentConfig config, int repetitions);

}  // namespace quicer::core
