// Minimal JSON document parser for the sweep partial-result files.
//
// The repo writes JSON in several places (sweep exports, qlog) but the
// sharded sweep workflow is the first that must *read* it back: the merge
// phase ingests partial-result files produced by other processes. This is a
// small recursive-descent parser over an immutable value tree — enough for
// machine-generated documents (objects, arrays, strings, doubles, bools,
// null), not a general-purpose library (no \uXXXX escapes, no comments).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace quicer::core {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document (trailing whitespace allowed, trailing garbage
  /// is an error). Returns nullopt and fills `error` on malformed input.
  static std::optional<JsonValue> Parse(std::string_view text, std::string* error = nullptr);

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  /// Typed accessors; the fallback is returned on type mismatch, so lookup
  /// chains over optional fields stay branch-free at the call site.
  bool AsBool(bool fallback = false) const { return type_ == Type::kBool ? bool_ : fallback; }
  double AsNumber(double fallback = 0.0) const {
    return type_ == Type::kNumber ? number_ : fallback;
  }
  const std::string& AsString() const;

  /// Array elements (empty for non-arrays).
  const std::vector<JsonValue>& Items() const;
  /// Object members in document order (empty for non-objects).
  const std::vector<std::pair<std::string, JsonValue>>& Members() const;

  /// Object member by key, or nullptr (also for non-objects).
  const JsonValue* Get(std::string_view key) const;

  /// Convenience typed member lookups.
  double GetNumber(std::string_view key, double fallback = 0.0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;
  const std::string& GetString(std::string_view key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Writer-side helpers shared by the JSON-emitting modules (sweep exports,
/// sweep partials).
std::string JsonEscape(const std::string& s);
/// Formats the shortest %g representation that round-trips the double
/// exactly (falling back to %.17g) — exact parse-back is the property the
/// sharded sweep workflow relies on for byte-identical merged exports, and
/// the short form keeps scenario files hand-editable. NaN renders as null.
std::string JsonNumber(double v);
/// Appends "[1, 2, 3]" — the id/bin-array shape shared by the sweep partial
/// and work-unit documents.
void AppendJsonSizeArray(std::string& out, const std::vector<std::size_t>& values);

}  // namespace quicer::core
