// Builders for the paper's deterministic loss scenarios (§3, Appendix E).
//
// The paper drops *specific datagrams by index* and, because implementations
// coalesce flights differently (Table 4), maps "equal information loss" to
// per-implementation datagram indices. These helpers encode that mapping.
#pragma once

#include "clients/profiles.h"
#include "http/http.h"
#include "quic/server_connection.h"
#include "sim/loss.h"
#include "tls/messages.h"

namespace quicer::core {

/// Number of UDP datagrams the first server flight occupies for a given
/// certificate size (ServerHello + EncryptedExtensions..Finished + 1-RTT
/// tail, packed into 1200 B datagrams).
int ServerFlightDatagrams(std::size_t certificate_bytes, http::Version version,
                          const tls::HandshakeSizes& sizes = {});

/// Fig 6/12 scenario: lose the remaining first server flight — everything
/// after the first datagram. Under WFC the first datagram carries the
/// coalesced ACK+ServerHello (giving the server an RTT sample via the
/// client's ACK); under IACK it is the instant ACK alone, so the whole
/// ServerHello flight is lost and the server must rely on its default PTO.
sim::LossPattern FirstServerFlightTailLoss(quic::ServerBehavior behavior,
                                           std::size_t certificate_bytes,
                                           http::Version version);

/// Fig 7/13 scenario: lose the entire second client flight. The flight's
/// datagram indices follow the implementation's coalescing (Table 4):
/// datagrams 2..(1 + SecondFlightDatagrams(client)).
sim::LossPattern SecondClientFlightLoss(clients::ClientImpl client);

}  // namespace quicer::core
