#include "core/csv.h"

#include <cstdio>
#include <cstdlib>

namespace quicer::core {

std::string CsvWriter::Escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& directory, const std::string& name,
                     const std::vector<std::string>& header) {
  if (directory.empty()) return;
  out_.open(directory + "/" + name + ".csv");
  if (!out_.is_open()) return;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << Escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::Row(const std::vector<double>& values) {
  if (!out_.is_open()) return;
  char buf[48];
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out_ << ',';
    std::snprintf(buf, sizeof(buf), "%.6g", values[i]);
    out_ << buf;
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::TextRow(const std::vector<std::string>& fields) {
  if (!out_.is_open()) return;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << Escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::optional<std::string> DataDirFromEnv() {
  const char* dir = std::getenv("QUICER_DATA_DIR");  // lint:allow(ND003): export destination root, never run behaviour
  if (dir == nullptr || dir[0] == '\0') return std::nullopt;
  return std::string(dir);
}

}  // namespace quicer::core
