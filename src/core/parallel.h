// Parallel experiment execution.
//
// Each experiment run is an isolated, deterministic function of its config
// (own event queue, own RNG), so repetitions parallelise perfectly. The
// benches sweep hundreds of (client, mode, RTT, Δt) points at 10-100
// repetitions each; running them across hardware threads keeps the full
// figure regeneration interactive.
#pragma once

#include <functional>
#include <vector>

#include "core/experiment.h"

namespace quicer::core {

/// Runs `repetitions` seeded experiments across `threads` workers (0 =
/// hardware concurrency) and returns extractor(result) for each run, in
/// seed order — bit-identical to the serial RunRepetitions.
std::vector<double> RunRepetitionsParallel(
    ExperimentConfig config, int repetitions,
    const std::function<double(const ExperimentResult&)>& extract, unsigned threads = 0);

/// Parallel map over arbitrary experiment configs; results in input order.
std::vector<ExperimentResult> RunExperimentsParallel(
    const std::vector<ExperimentConfig>& configs, unsigned threads = 0);

}  // namespace quicer::core
