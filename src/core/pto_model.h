// Closed-form numerical analysis of the Probe Timeout (RFC 9002 §5/§6.2),
// independent of the packet-level simulator.
//
// This reproduces the paper's "numerical sweet spot analysis" (§4.1):
//
//  * Fig 2 — evolution of the PTO over the first ~50 new-ACK packets when
//    the first RTT sample is inflated by Δt (WFC) versus accurate (IACK):
//    the instant ACK improves the first PTO by 3Δt and the EWMA slowly
//    converges afterwards.
//  * Fig 4 — first-PTO reduction measured in units of the RTT, per Δt, and
//    the spurious-retransmission boundary: if Δt exceeds the client's PTO
//    set from the instant-ACK sample, the client probes before the
//    ServerHello can arrive and the retransmission is spurious.
#pragma once

#include <vector>

#include "sim/time.h"

namespace quicer::core {

/// RFC 9002 smoothed-RTT state stepped sample by sample.
struct PtoState {
  sim::Duration smoothed = 0;
  sim::Duration rttvar = 0;
  bool has_sample = false;

  /// Feeds one sample (first sample: smoothed = s, rttvar = s/2).
  void AddSample(sim::Duration sample);

  /// PTO = smoothed + max(4*rttvar, granularity).
  sim::Duration Pto() const;
};

/// One point of the Fig 2 series.
struct PtoEvolutionPoint {
  int ack_index = 0;          // packets with new ACKs, 0-based
  sim::Duration pto_wfc = 0;  // first sample rtt+Δt, then rtt
  sim::Duration pto_iack = 0; // all samples rtt
};

/// Computes the PTO evolution assuming every subsequent packet is acked
/// after exactly one RTT (the Fig 2 static setting).
std::vector<PtoEvolutionPoint> ComputePtoEvolution(sim::Duration rtt, sim::Duration delta_t,
                                                   int ack_count);

/// First PTO after one sample: 3x the sample (+ granularity floor).
sim::Duration FirstPto(sim::Duration first_sample);

/// One point of the Fig 4 analysis.
struct SweetSpotPoint {
  sim::Duration rtt = 0;
  sim::Duration delta_t = 0;
  /// (PTO_WFC - PTO_IACK) / RTT — the paper's y-axis.
  double reduction_rtts = 0.0;
  /// Δt > client PTO: the instant-ACK-armed client probes before the
  /// ServerHello arrives.
  bool spurious_retransmissions = false;
};

SweetSpotPoint FirstPtoReduction(sim::Duration rtt, sim::Duration delta_t);

/// Largest Δt (for a given RTT) that avoids spurious retransmissions —
/// the boundary line of Fig 4's "zone of reduced latency".
sim::Duration SpuriousBoundary(sim::Duration rtt);

}  // namespace quicer::core
