// Declarative parameter-sweep engine.
//
// Every figure and table in the paper is a sweep: (client implementation ×
// server behavior × handshake mode × RTT × Δt × certificate size × loss
// scenario) at 9-100 seeded repetitions per point. Instead of each bench
// hand-rolling nested loops over CollectTtfbMs, a bench declares its axes as
// a SweepSpec; the engine enumerates the flat config grid, schedules every
// (point × repetition) job globally on the shared persistent ThreadPool —
// not per point, so the tail of one point overlaps the head of the next —
// and streams each point's values into a stats::Accumulator (count / min /
// max / mean / percentiles, bounded memory).
//
// Determinism: repetition r of every point uses seed_base + r * seed_stride
// (the schedule of core::RunRepetitions), each value lands in a slot keyed
// by its repetition index, and a point's accumulator is folded in repetition
// order by whichever worker completes the point — so summaries are
// bit-identical to a serial run for any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "stats/accumulator.h"

namespace quicer::core {

class CsvWriter;
class ThreadPool;

std::string_view ToString(HandshakeMode mode);

/// One named loss scenario. `make` resolves the pattern against the fully
/// resolved point config, because the paper's deterministic drops depend on
/// the point (behavior, certificate size, client coalescing, HTTP version).
struct SweepLoss {
  std::string label = "none";
  /// Null means "keep base.loss".
  std::function<sim::LossPattern(const ExperimentConfig&)> make;
};

/// A named config mutation — the escape hatch for sweeping knobs that are
/// not first-class axes (server default PTO, §5 tuning flags, ...). Applied
/// after the first-class axes and before the loss pattern is resolved.
struct SweepVariant {
  std::string label = "base";
  /// Null means "leave the config unchanged".
  std::function<void(ExperimentConfig&)> mutate;
};

/// Axis values to sweep. An empty axis keeps the base config's value and
/// contributes one grid column.
struct SweepAxes {
  std::vector<clients::ClientImpl> clients;
  std::vector<http::Version> http_versions;
  std::vector<quic::ServerBehavior> behaviors;
  std::vector<HandshakeMode> modes;
  std::vector<sim::Duration> rtts;
  std::vector<sim::Duration> cert_fetch_delays;
  std::vector<std::size_t> certificate_sizes;
  std::vector<SweepLoss> losses;
  std::vector<SweepVariant> variants;
};

struct SweepSpec {
  /// Short machine name ("fig05", "table2_probes"); names CSV/JSON output.
  std::string name;
  ExperimentConfig base;
  SweepAxes axes;
  int repetitions = 25;

  /// Metric extracted from each run. While `exclude_negative` is set, a
  /// negative value marks the run as aborted: counted but excluded from
  /// aggregation (the semantics of CollectTtfbMs / CollectResponseTtfbMs).
  /// Clear it for metrics where negative values are data (e.g. the -1
  /// sentinel of first_pto_period, aggregated raw by the legacy loops).
  /// Defaults to TtfbMs.
  std::function<double(const ExperimentResult&)> metric;
  bool exclude_negative = true;

  /// Seed schedule: repetition r runs with seed_base + r * seed_stride.
  /// seed_base 0 means "use base.seed".
  std::uint64_t seed_base = 0;
  std::uint64_t seed_stride = 7919;

  /// Drop (client, HTTP/3) combinations the client does not support, the
  /// way every bench loop skips them.
  bool skip_unsupported_http3 = true;

  /// Per-point accumulator reservoir capacity (percentiles are exact and
  /// scatter samples retained while repetitions stay within it).
  std::size_t reservoir_capacity = stats::Accumulator::kDefaultReservoirCapacity;
};

/// One fully resolved grid point, with axis labels for reporting.
struct SweepPoint {
  ExperimentConfig config;
  std::string client;
  std::string http;
  std::string behavior;
  std::string mode;
  std::string loss;
  std::string variant;
  double rtt_ms = 0.0;
  double delta_ms = 0.0;
  std::size_t certificate_bytes = 0;
  std::size_t index = 0;
};

struct PointSummary {
  SweepPoint point;
  stats::Accumulator values;
  /// Runs whose metric came back negative (excluded from `values`).
  std::size_t aborted = 0;

  bool all_aborted() const { return values.count() == 0; }
  /// Median of the non-aborted runs; -1 when every run aborted (the
  /// convention of the bench tables).
  double MedianOrNegative() const { return all_aborted() ? -1.0 : values.Median(); }
};

struct SweepResult {
  std::string name;
  std::vector<PointSummary> points;
  std::size_t total_runs = 0;

  /// First point matching `pred`, or nullptr. Enumeration order is
  /// outermost-to-innermost: http, variant, loss, certificate, Δt, RTT,
  /// mode, client, behavior.
  const PointSummary* Find(const std::function<bool(const SweepPoint&)>& pred) const;
};

/// Enumerates the flat grid of a spec (no experiments run).
std::vector<SweepPoint> Enumerate(const SweepSpec& spec);

/// Runs the whole grid on the shared ThreadPool. `max_parallelism` caps
/// concurrent jobs (0 = whole pool).
SweepResult RunSweep(const SweepSpec& spec, unsigned max_parallelism = 0);

/// Column names of the machine-readable exports.
const std::vector<std::string>& SweepCsvHeader();

/// Appends every point as one CSV row (see SweepCsvHeader).
void WriteSweepCsv(const SweepResult& result, CsvWriter& writer);

/// Serialises the result as a JSON document (one object per point).
std::string SweepResultJson(const SweepResult& result);

/// When QUICER_DATA_DIR is set, writes <dir>/<name>_sweep.csv and
/// <dir>/<name>_sweep.json. Returns true if files were written.
bool MaybeWriteSweepData(const SweepResult& result);

}  // namespace quicer::core
