// Declarative parameter-sweep engine.
//
// Every figure and table in the paper is a sweep: (client implementation ×
// server behavior × handshake mode × RTT × Δt × certificate size × loss
// scenario) at 9-100 seeded repetitions per point — and the measurement
// studies sweep (vantage × CDN × day × hour) grids over the scan layer the
// same way. A bench declares its axes as a SweepSpec; the engine enumerates
// the flat config grid, schedules every (point × repetition) job globally on
// the shared persistent ThreadPool — not per point, so the tail of one point
// overlaps the head of the next — and folds each repetition's metric values
// into per-point series.
//
// Extraction is declarative too: a SweepSpec carries a *set* of MetricSpecs.
// A kSummary metric streams into a stats::Accumulator (count / min / max /
// mean / percentiles, bounded memory); a kTrace metric retains the
// per-repetition vector in repetition order — CDF points (Fig 8), time
// series (Fig 9, repetition index = study hour), and scatter inputs.
//
// Execution is pluggable: repetitions are produced by a SweepRunner. The
// default runner calls core::RunExperiment on the point's config and applies
// each MetricSpec's extractor; custom runners probe the scan layer
// (scan::ProbeRunner / scan::StudyRunner in scan/sweep_runners.h) or
// evaluate closed-form models, so the measurement-study benches declare axes
// like testbed benches do.
//
// Determinism: repetition r of every point uses seed_base + r * seed_stride
// (the schedule of core::RunRepetitions), each value lands in a slot keyed
// by its (repetition, metric) index, and a point's series are folded in
// repetition order by whichever worker completes the point — so summaries
// and traces are bit-identical to a serial run for any thread count.
//
// The engine is split into three point-addressable phases, so a grid can be
// cut across processes or machines and recombined byte-identically:
//
//  * enumerate — Enumerate(spec) assigns every SweepPoint a stable id
//    (SweepPoint::index), derived only from the spec's axes: independent of
//    thread count, shard layout and execution order.
//  * execute — RunSweep(spec) runs the subset selected by spec.shard (a
//    round-robin i-of-N shard, an explicit point-id list, and/or a
//    repetition window; the default selects everything). Because the seed
//    schedule depends only on the repetition index, any subset reproduces
//    exactly the values the full run would produce for those points (and
//    repetition windows of one point concatenate back losslessly).
//  * merge — MergeSweepResults combines partial results (disjoint or not)
//    into one full result: summary series merge via stats::Accumulator::
//    Merge, trace series concatenate in repetition order, and the merged
//    exports are byte-identical to a single-process run when each point ran
//    wholly in one partial. sweep_partial.h serialises partials to JSON for
//    cross-process merging (the bench_suite --shard / merge workflow).
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"
#include "stats/accumulator.h"

namespace quicer::core {

class CsvWriter;
class ThreadPool;

/// One named loss scenario. `make` resolves the pattern against the fully
/// resolved point config, because the paper's deterministic drops depend on
/// the point (behavior, certificate size, client coalescing, HTTP version).
struct SweepLoss {
  std::string label = "none";
  /// Null means "keep base.loss".
  std::function<sim::LossPattern(const ExperimentConfig&)> make;
};

/// A named config mutation — the escape hatch for sweeping knobs that are
/// not first-class axes (server default PTO, §5 tuning flags, ...). Applied
/// after the first-class axes and before the loss pattern is resolved.
struct SweepVariant {
  std::string label = "base";
  /// Null means "leave the config unchanged".
  std::function<void(ExperimentConfig&)> mutate;
};

/// One named link-emulation model (netem::LinkModel): stochastic loss,
/// bottleneck queue, asymmetric path overrides. Unlike losses and variants
/// this axis is pure data — scenario files carry the model structurally,
/// no label resolution against compiled-in closures.
struct SweepLink {
  std::string label = "default";
  netem::LinkModel model;
};

/// One value of a generic labeled axis: a report label plus an opaque
/// integer payload the runner interprets (a scan::Vantage, a scan::Cdn, a
/// scenario index, ...).
struct SweepAxisValue {
  std::string label;
  std::int64_t value = 0;
};

/// A generic axis for dimensions that are not first-class ExperimentConfig
/// knobs (scan vantage, CDN, study day, ...). Extras enumerate outermost, in
/// declaration order, and are carried into every SweepPoint.
struct SweepExtraAxis {
  std::string name;
  std::vector<SweepAxisValue> values;
};

/// Which subset of the enumerated grid an execution covers. The default
/// covers every point (a classic single-process run). A shard of `count`
/// processes executes the points whose stable id is congruent to `index`
/// modulo `count` — round-robin, so dense and sparse grid regions spread
/// evenly — unless `points` lists explicit ids (re-running budget-skipped
/// points from an earlier partial). Orthogonally, `rep_begin`/`rep_end`
/// restrict execution to a window of repetition indices, so one huge
/// point's repetitions can be split across shards (the work-queue driver's
/// repetition-range sharding).
struct SweepShard {
  std::size_t index = 0;
  std::size_t count = 1;
  /// Explicit point ids; overrides index/count when non-empty.
  std::vector<std::size_t> points;
  /// Repetition window [rep_begin, rep_end) executed for every selected
  /// point; rep_end 0 means "to the last repetition". Seeds derive from the
  /// absolute repetition index, so the windows of a split point merge
  /// bit-identically to an unsplit run.
  std::size_t rep_begin = 0;
  std::size_t rep_end = 0;

  /// True when this shard selects the whole grid at full repetitions.
  bool all() const {
    return count <= 1 && points.empty() && rep_begin == 0 && rep_end == 0;
  }
  /// True when the point with stable id `point_id` belongs to this shard.
  bool Contains(std::size_t point_id) const;
  /// The window resolved against a spec's repetition count, clamped to
  /// [0, repetitions): {begin, end} with begin <= end.
  std::pair<std::size_t, std::size_t> RepWindow(std::size_t repetitions) const;
};

/// Axis values to sweep. An empty axis keeps the base config's value and
/// contributes one grid column.
struct SweepAxes {
  std::vector<clients::ClientImpl> clients;
  std::vector<http::Version> http_versions;
  std::vector<quic::ServerBehavior> behaviors;
  std::vector<HandshakeMode> modes;
  std::vector<sim::Duration> rtts;
  std::vector<sim::Duration> cert_fetch_delays;
  std::vector<std::size_t> certificate_sizes;
  std::vector<SweepLoss> losses;
  std::vector<SweepVariant> variants;
  std::vector<SweepLink> links;
  std::vector<SweepExtraAxis> extras;
};

/// How a metric's per-repetition values are aggregated.
enum class MetricMode {
  kSummary,  // stream into a stats::Accumulator (bounded memory)
  kTrace,    // retain the per-repetition vector in repetition order
};

std::string_view ToString(MetricMode mode);

/// One named metric extracted from every repetition of every point.
///
/// Value semantics, applied per metric when the repetition's value arrives:
///  * NaN       — "no sample for this repetition" (a probe that filtered the
///                domain out, a profile without the field); counted in
///                `skipped`, never aggregated. Works in every mode.
///  * negative  — while `exclude_negative` is set, marks the run as aborted:
///                counted in `aborted` but excluded from aggregation (the
///                semantics of the legacy CollectTtfbMs loops). Clear it for
///                metrics where negative values are data (e.g. the -1
///                sentinel of first_pto_period, which Fig 9's time series
///                must keep hour-aligned).
struct MetricSpec {
  std::string name = "ttfb_ms";
  MetricMode mode = MetricMode::kSummary;
  bool exclude_negative = true;
  /// Used by the default experiment runner (null = ExperimentResult::TtfbMs).
  /// Custom runners produce values positionally and ignore it.
  std::function<double(const ExperimentResult&)> extract;
};

/// One fully resolved grid point, with axis labels for reporting.
struct SweepPoint {
  ExperimentConfig config;
  std::string client;
  std::string http;
  std::string behavior;
  std::string mode;
  std::string loss;
  std::string variant;
  /// Label of the links-axis value ("default" when the axis is absent and
  /// the base model is the legacy pipe).
  std::string link = "default";
  /// Resolved extras, one per SweepAxes::extras entry, in axis order.
  std::vector<std::pair<std::string, SweepAxisValue>> extras;
  double rtt_ms = 0.0;
  double delta_ms = 0.0;
  std::size_t certificate_bytes = 0;
  /// Stable point id: the position in the enumerated grid, derived only
  /// from the spec's axes (independent of thread count and shard layout).
  std::size_t index = 0;

  /// The value of the named extra axis at this point, or nullptr.
  const SweepAxisValue* Extra(std::string_view axis) const;
  /// "day=0|vantage=Hamburg, DE" — the CSV/JSON extras key.
  std::string ExtrasLabel() const;
  /// ExtrasLabel with a "link=<label>" segment prefixed when a non-default
  /// link model is selected — the CSV extras column, kept byte-identical
  /// for every sweep that never touches the links axis.
  std::string ExportExtrasLabel() const;
  /// Label fingerprint of the point ("client|http|...|rtt|delta|cert") —
  /// the merge phase's check that two partials enumerate the same grid.
  std::string Key() const;
};

/// Everything a runner needs to produce one repetition of one point.
struct SweepRunContext {
  const SweepPoint& point;
  int repetition = 0;
  /// seed_base + repetition * seed_stride — what the default runner assigns
  /// to the experiment config.
  std::uint64_t seed = 0;
};

/// Produces one repetition's metric values, aligned positionally with
/// SweepSpec::metrics. Runners are called concurrently from pool workers and
/// must be thread-safe; determinism requires the returned values depend only
/// on the context, never on call order.
using SweepRunner = std::function<std::vector<double>(const SweepRunContext&)>;

/// Progress snapshot handed to a SweepObserver after each point completes.
struct SweepProgress {
  std::string_view sweep;
  std::size_t points_total = 0;
  std::size_t points_completed = 0;  // includes budget-skipped points
  std::size_t points_skipped = 0;    // skipped by the wall-clock budget
  std::size_t runs_total = 0;
  std::size_t runs_completed = 0;    // repetitions actually executed
  double elapsed_seconds = 0.0;
  double runs_per_second = 0.0;
};

/// Called after every completed point, serialized by the engine (never
/// concurrently), from whichever worker finished the point.
using SweepObserver = std::function<void(const SweepProgress&)>;

struct SweepSpec;
struct SweepResult;

/// Receives the enumerated (but unexecuted) result when a spec carries an
/// enumerate_sink; see SweepSpec::enumerate_sink.
using SweepEnumerateSink = std::function<void(const SweepSpec&, const SweepResult&)>;

struct SweepSpec {
  /// Short machine name ("fig05", "table2_probes"); names CSV/JSON output.
  std::string name;
  ExperimentConfig base;
  SweepAxes axes;
  int repetitions = 25;

  /// Metrics extracted from each repetition. Empty means the single default
  /// summary metric (TtfbMs, exclude_negative) — the common bench case.
  std::vector<MetricSpec> metrics;

  /// Produces each repetition's values. Null means the experiment runner:
  /// RunExperiment(point config with the scheduled seed), then each
  /// MetricSpec::extract.
  SweepRunner runner;

  /// Seed schedule: repetition r runs with seed_base + r * seed_stride.
  /// seed_base 0 means "use base.seed".
  std::uint64_t seed_base = 0;
  std::uint64_t seed_stride = 7919;

  /// Drop (client, HTTP/3) combinations the client does not support, the
  /// way every bench loop skips them.
  bool skip_unsupported_http3 = true;

  /// Per-point accumulator reservoir capacity (percentiles are exact and
  /// scatter samples retained while repetitions stay within it). Raise it to
  /// the repetition count when exact percentiles over large scans matter.
  std::size_t reservoir_capacity = stats::Accumulator::kDefaultReservoirCapacity;

  /// Progress hook; see SweepObserver.
  SweepObserver observer;

  /// Wall-clock budget in seconds (0 = unlimited). Once exceeded, points
  /// whose first repetition has not yet started are skipped cleanly (marked
  /// budget_skipped, no partial series); points already underway finish all
  /// their repetitions, so every non-skipped point stays deterministic.
  double time_budget_seconds = 0.0;

  /// Subset of the grid this process executes (default: everything). Points
  /// outside the shard stay in the result with their metadata but empty
  /// series and executed == false.
  SweepShard shard;

  /// When non-empty and different from `name`, RunSweep executes nothing:
  /// the grid is enumerated (metadata intact) but no point is selected. The
  /// work-queue worker targets one sweep of a bench per unit; sibling
  /// sweeps of the same bench body — including specs *copied* from a tuned
  /// one, which inherit this field — must not execute.
  std::string only_sweep;

  /// When set, RunSweep enumerates the grid, hands (spec, result) to the
  /// sink and returns without executing anything (the returned result has
  /// enumerate_only set). The work-queue init phase uses this to learn
  /// every bench's grids — point counts, repetitions, sweep names —
  /// without running a single experiment.
  SweepEnumerateSink enumerate_sink;

  /// When true, the bench should export machine-readable data and skip its
  /// human-readable analysis even for a full (unsharded) run. The --grid
  /// workflow sets this: a data-defined grid may drop the very points a
  /// bench's printed tables index.
  bool export_only = false;

  /// When non-empty, the default runner captures a full qlog trace per
  /// repetition (structured events included) and writes
  /// `<dir>/<sweep>_p<point>_r<rep>_{client,server}.qlog` in JSON-SEQ
  /// framing. File names are unique per (point, repetition), so parallel
  /// execution is safe and the output is deterministic for a given seed
  /// regardless of thread count. Custom runners ignore it.
  std::string qlog_dir;
};

/// One metric's aggregated values at one point.
struct MetricSeries {
  std::string name;
  MetricMode mode = MetricMode::kSummary;
  /// Populated in kSummary mode.
  stats::Accumulator summary;
  /// Populated in kTrace mode: retained values in repetition order (aborted
  /// and skipped repetitions removed).
  std::vector<double> trace;
  /// Runs whose value came back negative under exclude_negative.
  std::size_t aborted = 0;
  /// Runs whose value came back NaN ("no sample").
  std::size_t skipped = 0;

  /// Retained values (either mode).
  std::size_t count() const {
    return mode == MetricMode::kTrace ? trace.size() : summary.count();
  }
  bool all_aborted() const { return count() == 0; }
  /// Median of the retained values; works in both modes.
  double Median() const;
  /// Median, or -1 when every run aborted (the convention of the bench
  /// tables).
  double MedianOrNegative() const { return count() == 0 ? -1.0 : Median(); }
  /// Five-number summary in either mode (computed from the trace when
  /// mode == kTrace).
  stats::Summary Summarize() const;
};

struct PointSummary {
  SweepPoint point;
  /// One series per SweepSpec metric, in spec order.
  std::vector<MetricSeries> metrics;
  /// True when the wall-clock budget skipped this point before any
  /// repetition ran (all series empty).
  bool budget_skipped = false;
  /// True when this process ran the point's repetitions (false for points
  /// outside the shard and for budget-skipped points).
  bool executed = false;

  /// Series of the named metric, or nullptr.
  const MetricSeries* Metric(std::string_view name) const;
  /// The first (or only) metric — the common single-metric bench case.
  const MetricSeries& primary() const { return metrics.front(); }

  bool all_aborted() const { return primary().all_aborted(); }
  double MedianOrNegative() const { return primary().MedianOrNegative(); }
  /// Primary summary accumulator (feeds the ASCII scatter strips).
  const stats::Accumulator& values() const { return primary().summary; }
  std::size_t aborted() const { return primary().aborted; }
};

/// Runtime-telemetry snapshot attributed to one sweep execution (see
/// src/obs/telemetry.h). Populated by RunSweep only when process telemetry
/// is enabled; carried through partial files and folded by
/// MergeSweepResults so sharded and queued runs merge their telemetry too.
struct SweepTelemetry {
  bool enabled = false;
  /// Wall-clock execute-phase time. Merging *sums* shards' wall times (total
  /// compute spent, not elapsed).
  double wall_seconds = 0.0;
  /// (counter name, value) pairs, non-zero only, registry order. Names this
  /// binary does not know (newer producers) merge as sums.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

struct SweepResult {
  std::string name;
  std::vector<PointSummary> points;
  /// Scheduled runs (selected points × repetitions).
  std::size_t total_runs = 0;
  /// Repetitions actually executed (differs from total_runs only when a
  /// wall-clock budget skipped points).
  std::size_t executed_runs = 0;

  /// Execution metadata, carried into partial-result files so the merge
  /// phase can validate that partials come from the same spec.
  SweepShard shard;
  int repetitions = 0;
  std::size_t reservoir_capacity = stats::Accumulator::kDefaultReservoirCapacity;
  std::uint64_t seed_base = 0;
  std::uint64_t seed_stride = 0;

  /// True when the spec carried an enumerate_sink: the grid metadata is
  /// populated but nothing ran (and nothing should be exported).
  bool enumerate_only = false;

  /// True when only_sweep deselected this whole sweep (a sibling of the
  /// targeted sweep): nothing ran and nothing — not even an empty partial —
  /// should be written.
  bool deselected = false;

  /// Mirrors SweepSpec::export_only (the --grid workflow).
  bool export_only = false;

  /// Content-hash of the spec's serializable data (core::ScenarioHash),
  /// stamped by RunSweep, carried through partial files and work units, and
  /// required to agree by the merge/collect phases — partials of two
  /// different grid definitions never mix silently. 0 = unknown (documents
  /// written before the hash existed).
  std::uint64_t spec_hash = 0;

  /// Runtime counters attributed to this sweep's execution (empty and
  /// disabled unless the process ran with telemetry on). Never serialized
  /// into the final CSV/JSON exports — those stay byte-identical whether or
  /// not telemetry ran.
  SweepTelemetry telemetry;

  /// True when this result covers a strict subset of the grid by
  /// construction (spec.shard selected a subset).
  bool sharded() const { return !shard.all(); }
  /// True when some point lacks data — sharded, budget-skipped, or both —
  /// i.e. the exports do not represent the full grid.
  bool partial() const;
  /// Stable ids of the points the wall-clock budget skipped; listed in
  /// partial-result files so a later shard can re-run exactly those.
  std::vector<std::size_t> BudgetSkippedPoints() const;

  /// First point matching `pred`, or nullptr. Enumeration order is
  /// outermost-to-innermost: extras (declaration order), http, variant,
  /// link, loss, certificate, Δt, RTT, mode, client, behavior.
  const PointSummary* Find(const std::function<bool(const SweepPoint&)>& pred) const;

  /// Series of `metric` at the first point matching `pred`, or nullptr.
  const MetricSeries* FindMetric(const std::function<bool(const SweepPoint&)>& pred,
                                 std::string_view metric) const;
};

/// Phase 1 — enumerates the flat grid of a spec (no experiments run). The
/// position of a point in the returned vector is its stable id.
std::vector<SweepPoint> Enumerate(const SweepSpec& spec);

/// Closed-form `Enumerate(spec).size()` without materialising any point.
/// Exact because the only per-point filter (skip_unsupported_http3) depends
/// solely on the http and client axis values, which are fixed before the
/// variant mutator runs.
std::size_t EnumerateCount(const SweepSpec& spec);

/// Phase 2 — runs the subset of the grid selected by spec.shard (default:
/// everything) on the shared ThreadPool. `max_parallelism` caps concurrent
/// jobs (0 = whole pool).
SweepResult RunSweep(const SweepSpec& spec, unsigned max_parallelism = 0);

/// Phase 3 — merges partial results of the same spec into one result
/// covering every point executed in any partial. Partials fold in ascending
/// repetition-window order (stable, so the given order decides between
/// whole-point partials): per point, summary series fold via
/// stats::Accumulator::Merge and trace series concatenate in repetition
/// order; aborted/skipped counters add. A point executed by exactly one
/// partial (the --shard workflow) or split into repetition windows (the
/// --rep-range / work-queue workflow) is reproduced bit-identically, so the
/// merged CSV/JSON exports match a single-process run byte for byte.
/// Points executed nowhere stay budget_skipped when some partial skipped
/// them over budget; otherwise the merge fails. Returns nullopt and fills
/// `error` when the partials disagree on the spec fingerprint (name, grid,
/// repetitions, seeds) or leave points uncovered.
std::optional<SweepResult> MergeSweepResults(const std::vector<SweepResult>& partials,
                                             std::string* error = nullptr);

/// Adapts a whole-grid computation into a runner: `compute` runs exactly
/// once (triggered by the first repetition to arrive, other workers block),
/// then every (point, repetition) extracts its values from the shared
/// outcome. The adapter for legacy single-pass studies whose RNG threads
/// through one sequential computation (the certificate-caching study).
template <typename Outcome>
SweepRunner SharedOutcomeRunner(
    std::function<Outcome()> compute,
    std::function<std::vector<double>(const Outcome&, const SweepRunContext&)> extract) {
  struct State {
    std::once_flag once;
    Outcome outcome;
  };
  auto state = std::make_shared<State>();
  return [state, compute = std::move(compute),
          extract = std::move(extract)](const SweepRunContext& ctx) {
    std::call_once(state->once, [&] { state->outcome = compute(); });
    return extract(state->outcome, ctx);
  };
}

/// Generalises SharedOutcomeRunner to sweeps whose shared computation
/// depends on the point: `compute` runs once per distinct key (memoized,
/// concurrency-safe via a per-key once_flag), and every (point, repetition)
/// extracts its values from its key's outcome. `compute` receives the
/// context of whichever repetition triggers it; determinism requires the
/// outcome to depend only on the key (with its own RNG seeds) — never on
/// the triggering repetition — so the set of keys actually computed, which
/// depends on the shard, cannot change any outcome. The caching study keys
/// one cluster simulation per (capacity, ttl) pair shared by its domain
/// points; scan::StudyRunner keys one Cloudflare study per point.
template <typename Outcome, typename Key>
SweepRunner KeyedOutcomeRunner(
    std::function<Key(const SweepRunContext&)> key_of,
    std::function<Outcome(const Key&, const SweepRunContext&)> compute,
    std::function<std::vector<double>(const Outcome&, const SweepRunContext&)> extract) {
  struct Entry {
    std::once_flag once;
    Outcome outcome;
  };
  struct State {
    std::mutex mutex;
    std::map<Key, std::unique_ptr<Entry>> entries;
  };
  auto state = std::make_shared<State>();
  return [state, key_of = std::move(key_of), compute = std::move(compute),
          extract = std::move(extract)](const SweepRunContext& ctx) {
    const Key key = key_of(ctx);
    Entry* entry;
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      std::unique_ptr<Entry>& slot = state->entries[key];
      if (!slot) slot = std::make_unique<Entry>();
      entry = slot.get();
    }
    std::call_once(entry->once, [&] { entry->outcome = compute(key, ctx); });
    return extract(entry->outcome, ctx);
  };
}

/// The NaN sentinel runners return for "no sample for this repetition".
inline double NoSample() { return std::nan(""); }

/// Column names of the machine-readable exports (one row per point ×
/// metric).
const std::vector<std::string>& SweepCsvHeader();

/// Appends every (point, metric) series as one CSV row (see SweepCsvHeader).
/// Trace series export their five-number summary; the full vectors live in
/// the JSON export.
void WriteSweepCsv(const SweepResult& result, CsvWriter& writer);

/// Serialises the result as a JSON document: one object per point, each with
/// a "metrics" array; kTrace series carry their full "trace" vector.
std::string SweepResultJson(const SweepResult& result);

/// Writes the result's machine-readable files into `directory`:
///  * full results — <name>_sweep.csv and <name>_sweep.json;
///  * sharded results — only <name>_sweep.<shard-tag>.json, the
///    partial-result file the merge subcommand ingests (a shard must not
///    clobber the merged export names);
///  * unsharded results with budget-skipped points — the usual pair plus
///    <name>_sweep.partial.json, so the skipped points can be re-run
///    (--points) and merged in.
/// Returns true if files were written.
bool WriteSweepData(const SweepResult& result, const std::string& directory);

/// WriteSweepData into QUICER_DATA_DIR, when set.
bool MaybeWriteSweepData(const SweepResult& result);

}  // namespace quicer::core
