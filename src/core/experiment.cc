#include "core/experiment.h"

#include <memory>
#include <utility>

namespace quicer::core {
namespace {

quic::ConnectionConfig BuildClientConfig(const ExperimentConfig& config) {
  quic::ConnectionConfig client =
      config.client_config_override.has_value()
          ? *config.client_config_override
          : clients::MakeClientConfig(config.client, config.http);
  client.tls.certificate = config.certificate_bytes;
  client.http_version = config.http;
  client.probe_with_data = config.client_probe_with_data;
  // Packet capture is disabled for bulk transfers to keep memory bounded.
  if (config.response_body_bytes > 1024 * 1024) client.trace.capture_packets = false;
  if (config.capture_qlog) {
    client.trace.capture_packets = true;
    client.trace.capture_events = true;
  }
  return client;
}

quic::ServerConfig BuildServerConfig(const ExperimentConfig& config) {
  quic::ServerConfig server;
  server.behavior = config.behavior;
  server.send_retry = config.mode == HandshakeMode::kRetry;
  server.accept_0rtt = config.mode == HandshakeMode::k0Rtt;
  server.pad_instant_ack = config.pad_instant_ack;
  server.base.http_version = config.http;
  server.base.tls.certificate = config.certificate_bytes;
  server.base.pto.default_pto = config.server_default_pto;
  // The paper's server is quic-go, which reports an ACK Delay of 0 (Table 3).
  server.base.ack_policy.report_mode = quic::AckDelayReportMode::kZero;
  // Initial key derivation / scheduling overhead before the CH is acted on.
  server.base.processing_delay = sim::Millis(0.3);
  server.cert_store.fetch_delay = config.cert_fetch_delay;
  server.cert_store.certificate_bytes = config.certificate_bytes;
  server.cert_store.cached = config.cert_cached;
  server.signing = config.signing;
  server.response_body_bytes = config.response_body_bytes;
  if (config.response_body_bytes > 1024 * 1024) server.base.trace.capture_packets = false;
  if (config.capture_qlog) {
    server.base.trace.capture_packets = true;
    server.base.trace.capture_events = true;
  }
  return server;
}

}  // namespace

std::string_view ToString(HandshakeMode mode) {
  switch (mode) {
    case HandshakeMode::k1Rtt: return "1-RTT";
    case HandshakeMode::k0Rtt: return "0-RTT";
    case HandshakeMode::kRetry: return "Retry";
  }
  return "?";
}

std::optional<HandshakeMode> HandshakeModeFromString(std::string_view label) {
  for (HandshakeMode mode : {HandshakeMode::k1Rtt, HandshakeMode::k0Rtt, HandshakeMode::kRetry}) {
    if (ToString(mode) == label) return mode;
  }
  return std::nullopt;
}

RunContext::~RunContext() = default;

ExperimentResult RunContext::Run(const ExperimentConfig& config) { return Run(config, {}); }

ExperimentResult RunContext::Run(const ExperimentConfig& config, const InspectFn& inspect) {
  // Reset drops any events left over from the previous run (invalidating
  // their handles) before the old endpoints are replaced below, so no stale
  // callback can outlive the objects it captured.
  queue_.Reset();
  // The arena only ever holds trivially-destructible per-run scratch (ledger
  // frame spans); rewinding it wholesale is the whole teardown.
  arena_.Reset();
  sim::EventQueue& queue = queue_;
  sim::Rng rng(config.seed);

  sim::Link::Config link_config;
  link_config.one_way_delay = config.rtt / 2;
  link_config.bandwidth_bps = config.bandwidth_bps;
  link_config.jitter = config.path_jitter;
  link_config.model = config.link;
  // Reset-in-place on warm contexts: the endpoints and link rewind to
  // freshly-constructed state (re-deriving everything from config + seed)
  // while keeping every container's capacity, so repeated runs construct and
  // destroy nothing.
  if (link_.has_value()) {
    link_->ResetForRun(link_config, rng.Fork(1));
  } else {
    link_.emplace(queue, link_config, rng.Fork(1));
  }
  sim::Link& link = *link_;
  link.set_loss_pattern(config.loss);

  quic::ClientConfig client_config{BuildClientConfig(config)};
  client_config.enable_0rtt = config.mode == HandshakeMode::k0Rtt;
  client_config.use_retry_as_rtt_sample = config.client_use_retry_rtt_sample;
  if (client_.has_value()) {
    client_->ResetForRun(client_config, rng.Fork(2));
  } else {
    client_.emplace(queue, client_config, rng.Fork(2), &arena_);
  }
  if (server_.has_value()) {
    server_->ResetForRun(BuildServerConfig(config), rng.Fork(3));
  } else {
    server_.emplace(queue, BuildServerConfig(config), rng.Fork(3), &arena_);
  }

  quic::ClientConnection* client_ptr = &*client_;
  quic::ServerConnection* server_ptr = &*server_;
  quic::ClientConnection* client = client_ptr;
  quic::ServerConnection* server = server_ptr;

  if (config.capture_qlog) {
    // transport:datagram_dropped is recorded at the vantage point that would
    // have received the datagram. The hook draws no randomness, so capture
    // cannot change the run.
    link.set_drop_hook([client_ptr, server_ptr, &queue](sim::Direction direction,
                                                        sim::Link::DropCause cause,
                                                        std::size_t bytes) {
      qlog::StructEvent event;
      event.kind = qlog::StructEvent::Kind::kDatagramDropped;
      event.detail = static_cast<std::uint8_t>(cause);
      event.time = queue.now();
      event.size = bytes;
      if (direction == sim::Direction::kClientToServer) {
        server_ptr->trace().RecordEvent(event);
      } else {
        client_ptr->trace().RecordEvent(event);
      }
    });
  }

  // The datagram is stamped with the index the link will assign and then
  // moved into the delivery closure — no shared ownership, no copy on
  // delivery, and the capture fits the closure's inline buffer.
  client->set_send_function([&link, server_ptr](quic::Datagram&& datagram) {
    const std::size_t size = datagram.WireSize();
    datagram.index = link.PeekNextIndex(sim::Direction::kClientToServer);
    link.Send(sim::Direction::kClientToServer, size,
              [server_ptr, d = std::move(datagram)]() mutable {
                server_ptr->OnDatagramReceived(std::move(d));
              });
  });
  server->set_send_function([&link, client_ptr](quic::Datagram&& datagram) {
    const std::size_t size = datagram.WireSize();
    datagram.index = link.PeekNextIndex(sim::Direction::kServerToClient);
    link.Send(sim::Direction::kServerToClient, size,
              [client_ptr, d = std::move(datagram)]() mutable {
                client_ptr->OnDatagramReceived(std::move(d));
              });
  });

  client->Start();

  const sim::Time deadline = config.time_limit;
  while (queue.PendingCount() > 0 && queue.now() <= deadline) {
    if (client->response_complete() || client->closed() || server->closed()) break;
    queue.RunOne();
  }

  if (inspect) inspect(*client, *server);

  ExperimentResult result;
  result.client = client->metrics();
  result.server = server->metrics();
  result.realized_cert_delay = server->realized_cert_delay();
  result.completed = client->response_complete();
  result.end_time = queue.now();
  result.client_to_server = link.stats(sim::Direction::kClientToServer);
  result.server_to_client = link.stats(sim::Direction::kServerToClient);
  result.client_metric_updates = client->trace().TakeMetrics();
  result.client_packets_with_new_acks = client->trace().packets_with_new_acks();
  return result;
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  return RunExperiment(config, {});
}

ExperimentResult RunExperiment(
    const ExperimentConfig& config,
    const std::function<void(const quic::ClientConnection&, const quic::ServerConnection&)>&
        inspect) {
  // Every caller on a thread shares one warm context; a re-entrant call
  // (e.g. an inspect hook running a nested experiment) falls back to a
  // fresh context rather than corrupting the one in use.
  thread_local RunContext context;
  thread_local bool context_busy = false;
  if (context_busy) {
    RunContext fresh;
    return fresh.Run(config, inspect);
  }
  context_busy = true;
  struct Guard {
    bool* flag;
    ~Guard() { *flag = false; }
  } guard{&context_busy};
  return context.Run(config, inspect);
}

std::vector<double> RunRepetitions(ExperimentConfig config, int repetitions,
                                   const std::function<double(const ExperimentResult&)>& extract) {
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(repetitions));
  const std::uint64_t base_seed = config.seed;
  for (int i = 0; i < repetitions; ++i) {
    config.seed = base_seed + static_cast<std::uint64_t>(i) * 7919;
    values.push_back(extract(RunExperiment(config)));
  }
  return values;
}

std::vector<double> CollectTtfbMs(ExperimentConfig config, int repetitions) {
  std::vector<double> all = RunRepetitions(std::move(config), repetitions,
                                           [](const ExperimentResult& r) { return r.TtfbMs(); });
  std::vector<double> valid;
  valid.reserve(all.size());
  for (double v : all) {
    if (v >= 0) valid.push_back(v);
  }
  return valid;
}

std::vector<double> CollectResponseTtfbMs(ExperimentConfig config, int repetitions) {
  std::vector<double> all =
      RunRepetitions(std::move(config), repetitions,
                     [](const ExperimentResult& r) { return r.ResponseTtfbMs(); });
  std::vector<double> valid;
  valid.reserve(all.size());
  for (double v : all) {
    if (v >= 0) valid.push_back(v);
  }
  return valid;
}

}  // namespace quicer::core
