#include "core/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <utility>

#include "core/csv.h"
#include "core/json.h"
#include "core/scenario.h"
#include "core/thread_pool.h"
#include "obs/telemetry.h"
#include "qlog/qlog_json.h"

namespace quicer::core {
namespace {

/// Microseconds elapsed since `since` (for the sweep phase counters).
// lint:allow(ND002): wall-clock phase timers measure the engine, never a run
std::uint64_t MicrosSince(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)  // lint:allow(ND002): phase timer
          .count());
}

/// Writes the client and server qlog traces of one repetition. File names
/// are unique per (sweep, point, repetition), so parallel repetitions never
/// contend and a run's qlog set is identical no matter the thread count.
void WriteQlogPair(const std::string& dir, const std::string& sweep,
                   std::size_t point_index, int rep,
                   const quic::ClientConnection& client,
                   const quic::ServerConnection& server) {
  const std::string stem = dir + "/" + sweep + "_p" + std::to_string(point_index) +
                           "_r" + std::to_string(rep) + "_";
  qlog::JsonOptions options;
  options.vantage = "client";
  std::ofstream(stem + "client.qlog", std::ios::binary)
      << qlog::ToJsonSeq(client.trace(), options);
  options.vantage = "server";
  std::ofstream(stem + "server.qlog", std::ios::binary)
      << qlog::ToJsonSeq(server.trace(), options);
}

template <typename T>
std::vector<std::optional<T>> AxisOrDefault(const std::vector<T>& axis) {
  if (axis.empty()) return {std::nullopt};
  std::vector<std::optional<T>> out;
  out.reserve(axis.size());
  for (const T& v : axis) out.emplace_back(v);
  return out;
}

/// All combinations of the extra axes, outermost first, in declaration
/// order. No extras yields the single empty combination.
std::vector<std::vector<std::pair<std::string, SweepAxisValue>>> EnumerateExtras(
    const std::vector<SweepExtraAxis>& extras) {
  std::vector<std::vector<std::pair<std::string, SweepAxisValue>>> combos = {{}};
  for (const SweepExtraAxis& axis : extras) {
    if (axis.values.empty()) continue;
    std::vector<std::vector<std::pair<std::string, SweepAxisValue>>> next;
    next.reserve(combos.size() * axis.values.size());
    for (const auto& combo : combos) {
      for (const SweepAxisValue& value : axis.values) {
        auto extended = combo;
        extended.emplace_back(axis.name, value);
        next.push_back(std::move(extended));
      }
    }
    combos = std::move(next);
  }
  return combos;
}

/// The metric set a spec actually runs with: spec.metrics, or the single
/// default TtfbMs summary metric.
std::vector<MetricSpec> ResolveMetrics(const SweepSpec& spec) {
  if (!spec.metrics.empty()) return spec.metrics;
  return {MetricSpec{}};
}

}  // namespace

std::string_view ToString(MetricMode mode) {
  switch (mode) {
    case MetricMode::kSummary: return "summary";
    case MetricMode::kTrace: return "trace";
  }
  return "?";
}

bool SweepShard::Contains(std::size_t point_id) const {
  if (!points.empty()) {
    return std::find(points.begin(), points.end(), point_id) != points.end();
  }
  if (count <= 1) return true;
  return point_id % count == index;
}

std::pair<std::size_t, std::size_t> SweepShard::RepWindow(std::size_t repetitions) const {
  const std::size_t begin = std::min(rep_begin, repetitions);
  const std::size_t end =
      rep_end == 0 ? repetitions : std::min(std::max(rep_end, begin), repetitions);
  return {begin, end};
}

const SweepAxisValue* SweepPoint::Extra(std::string_view axis) const {
  for (const auto& [name, value] : extras) {
    if (name == axis) return &value;
  }
  return nullptr;
}

std::string SweepPoint::ExtrasLabel() const {
  std::string out;
  for (const auto& [name, value] : extras) {
    if (!out.empty()) out += '|';
    out += name;
    out += '=';
    out += value.label;
  }
  return out;
}

std::string SweepPoint::ExportExtrasLabel() const {
  std::string out;
  if (link != "default") out = "link=" + link;
  const std::string extras_label = ExtrasLabel();
  if (!extras_label.empty()) {
    if (!out.empty()) out += '|';
    out += extras_label;
  }
  return out;
}

std::string SweepPoint::Key() const {
  std::string out = client;
  for (const std::string* part : {&http, &behavior, &mode, &loss, &variant, &link}) {
    out += '|';
    out += *part;
  }
  out += '|';
  out += ExtrasLabel();
  out += '|' + JsonNumber(rtt_ms) + '|' + JsonNumber(delta_ms) + '|' +
         std::to_string(certificate_bytes);
  return out;
}

double MetricSeries::Median() const {
  if (mode == MetricMode::kTrace) return stats::Median(trace);
  return summary.Median();
}

stats::Summary MetricSeries::Summarize() const {
  if (mode == MetricMode::kSummary) return summary.Summarize();
  stats::Accumulator acc(std::max<std::size_t>(trace.size(), 1));
  for (double v : trace) acc.Add(v);
  return acc.Summarize();
}

const MetricSeries* PointSummary::Metric(std::string_view name) const {
  for (const MetricSeries& series : metrics) {
    if (series.name == name) return &series;
  }
  return nullptr;
}

std::vector<SweepPoint> Enumerate(const SweepSpec& spec) {
  const auto extra_combos = EnumerateExtras(spec.axes.extras);
  const auto https = AxisOrDefault(spec.axes.http_versions);
  const auto certs = AxisOrDefault(spec.axes.certificate_sizes);
  const auto deltas = AxisOrDefault(spec.axes.cert_fetch_delays);
  const auto rtts = AxisOrDefault(spec.axes.rtts);
  const auto modes = AxisOrDefault(spec.axes.modes);
  const auto clients = AxisOrDefault(spec.axes.clients);
  const auto behaviors = AxisOrDefault(spec.axes.behaviors);

  std::vector<SweepLoss> losses = spec.axes.losses;
  if (losses.empty()) {
    SweepLoss keep;
    keep.label = spec.base.loss.empty() ? "none" : "base";
    losses.push_back(std::move(keep));
  }
  std::vector<SweepVariant> variants = spec.axes.variants;
  if (variants.empty()) variants.push_back(SweepVariant{});

  // An empty links axis keeps base.link and contributes one column, like
  // losses: labeled "default" for the legacy pipe, "base" otherwise.
  const bool links_from_axis = !spec.axes.links.empty();
  std::vector<SweepLink> links = spec.axes.links;
  if (links.empty()) {
    SweepLink keep;
    keep.label = spec.base.link.IsDefault() ? "default" : "base";
    links.push_back(std::move(keep));
  }

  std::vector<SweepPoint> points;
  for (const auto& extra : extra_combos) {
   for (const auto& http : https) {
    for (const SweepVariant& variant : variants) {
     for (const SweepLink& link : links) {
     for (const SweepLoss& loss : losses) {
      for (const auto& cert : certs) {
        for (const auto& delta : deltas) {
          for (const auto& rtt : rtts) {
            for (const auto& mode : modes) {
              for (const auto& client : clients) {
                for (const auto& behavior : behaviors) {
                  SweepPoint point;
                  point.config = spec.base;
                  if (http) point.config.http = *http;
                  if (cert) point.config.certificate_bytes = *cert;
                  if (delta) point.config.cert_fetch_delay = *delta;
                  if (rtt) point.config.rtt = *rtt;
                  if (mode) point.config.mode = *mode;
                  if (client) point.config.client = *client;
                  if (behavior) point.config.behavior = *behavior;
                  if (links_from_axis) point.config.link = link.model;
                  if (spec.skip_unsupported_http3 &&
                      point.config.http == http::Version::kHttp3 &&
                      !clients::SupportsHttp3(point.config.client)) {
                    continue;
                  }
                  if (variant.mutate) variant.mutate(point.config);
                  if (loss.make) point.config.loss = loss.make(point.config);

                  point.client = std::string(clients::Name(point.config.client));
                  point.http = std::string(http::ToString(point.config.http));
                  point.behavior = std::string(quic::ToString(point.config.behavior));
                  point.mode = std::string(ToString(point.config.mode));
                  point.loss = loss.label;
                  point.variant = variant.label;
                  point.link = link.label;
                  point.extras = extra;
                  point.rtt_ms = sim::ToMillis(point.config.rtt);
                  point.delta_ms = sim::ToMillis(point.config.cert_fetch_delay);
                  point.certificate_bytes = point.config.certificate_bytes;
                  point.index = points.size();
                  points.push_back(std::move(point));
                }
              }
            }
          }
        }
      }
     }
     }
    }
   }
  }
  return points;
}

std::size_t EnumerateCount(const SweepSpec& spec) {
  std::size_t extras = 1;
  for (const SweepExtraAxis& axis : spec.axes.extras) {
    if (!axis.values.empty()) extras *= axis.values.size();
  }
  const auto non_empty = [](std::size_t n) { return n == 0 ? 1 : n; };

  // Count the (http, client) pairs that survive the support filter; every
  // other axis multiplies through unfiltered.
  const auto https = AxisOrDefault(spec.axes.http_versions);
  const auto clients = AxisOrDefault(spec.axes.clients);
  std::size_t pairs = 0;
  for (const auto& http : https) {
    const http::Version version = http ? *http : spec.base.http;
    for (const auto& client : clients) {
      const clients::ClientImpl impl = client ? *client : spec.base.client;
      if (spec.skip_unsupported_http3 && version == http::Version::kHttp3 &&
          !clients::SupportsHttp3(impl)) {
        continue;
      }
      ++pairs;
    }
  }

  return extras * pairs * non_empty(spec.axes.variants.size()) *
         non_empty(spec.axes.links.size()) * non_empty(spec.axes.losses.size()) *
         non_empty(spec.axes.certificate_sizes.size()) *
         non_empty(spec.axes.cert_fetch_delays.size()) *
         non_empty(spec.axes.rtts.size()) * non_empty(spec.axes.modes.size()) *
         non_empty(spec.axes.behaviors.size());
}

const PointSummary* SweepResult::Find(
    const std::function<bool(const SweepPoint&)>& pred) const {
  for (const PointSummary& summary : points) {
    if (pred(summary.point)) return &summary;
  }
  return nullptr;
}

const MetricSeries* SweepResult::FindMetric(
    const std::function<bool(const SweepPoint&)>& pred, std::string_view metric) const {
  const PointSummary* summary = Find(pred);
  return summary == nullptr ? nullptr : summary->Metric(metric);
}

bool SweepResult::partial() const {
  if (sharded()) return true;
  for (const PointSummary& summary : points) {
    if (!summary.executed) return true;
  }
  return false;
}

std::vector<std::size_t> SweepResult::BudgetSkippedPoints() const {
  std::vector<std::size_t> skipped;
  for (const PointSummary& summary : points) {
    if (summary.budget_skipped) skipped.push_back(summary.point.index);
  }
  return skipped;
}

SweepResult RunSweep(const SweepSpec& spec, unsigned max_parallelism) {
  SweepResult result;
  result.name = spec.name;
  result.shard = spec.shard;
  result.repetitions = spec.repetitions > 0 ? spec.repetitions : 0;
  result.reservoir_capacity = spec.reservoir_capacity;
  result.seed_base = spec.seed_base != 0 ? spec.seed_base : spec.base.seed;
  result.seed_stride = spec.seed_stride;
  result.export_only = spec.export_only;
  result.deselected = !spec.only_sweep.empty() && spec.only_sweep != spec.name;
  result.spec_hash = ScenarioHash(spec);

  // A deselected sweep (the sibling of an only_sweep target) runs nothing
  // and exports nothing, so it must not pay the enumerate pass either: a
  // grid run re-enters each bench once per scenario, and every sibling
  // sweep enumerating its full grid each time adds up. Enumerate-sink
  // passes still enumerate — the sink is the point of those runs.
  if (result.deselected && !spec.enumerate_sink) return result;

  // Telemetry bracket: attribute everything from here to the end-of-sweep
  // snapshot to this sweep. Sweeps never overlap within a process (benches
  // run serially; RunSweep itself is the parallel unit), so a process-wide
  // reset per sweep is sound.
  const bool telemetry = obs::ProcessEnabled() && !spec.enumerate_sink;
  if (telemetry) {
    obs::EnsureThisThread();
    obs::ResetAll();
  }

  const std::vector<MetricSpec> metrics = ResolveMetrics(spec);
  const std::size_t n_metrics = metrics.size();

  const auto enumerate_start = std::chrono::steady_clock::now();  // lint:allow(ND002): phase timer
  std::vector<SweepPoint> points = Enumerate(spec);
  if (telemetry) obs::Count(obs::kSweepEnumerateMicros, MicrosSince(enumerate_start));
  result.points.reserve(points.size());
  for (SweepPoint& point : points) {
    PointSummary summary;
    summary.point = std::move(point);
    summary.metrics.reserve(n_metrics);
    for (const MetricSpec& metric : metrics) {
      MetricSeries series;
      series.name = metric.name;
      series.mode = metric.mode;
      if (metric.mode == MetricMode::kSummary) {
        series.summary = stats::Accumulator(spec.reservoir_capacity);
      }
      summary.metrics.push_back(std::move(series));
    }
    result.points.push_back(std::move(summary));
  }

  if (spec.enumerate_sink) {
    result.enumerate_only = true;
    spec.enumerate_sink(spec, result);
    return result;
  }

  // The execute phase covers only the shard's points; the others keep their
  // metadata and empty series (executed == false) so partial files carry
  // the full grid for merge-time validation. A unit targeted at a sibling
  // sweep of the same bench (only_sweep mismatch) selects nothing.
  std::vector<std::size_t> selected;
  if (spec.only_sweep.empty() || spec.only_sweep == spec.name) {
    selected.reserve(result.points.size());
    for (std::size_t i = 0; i < result.points.size(); ++i) {
      if (spec.shard.Contains(i)) selected.push_back(i);
    }
  }

  const std::size_t reps =
      spec.repetitions > 0 ? static_cast<std::size_t>(spec.repetitions) : 0;
  // The repetition window this shard executes of every selected point.
  const std::pair<std::size_t, std::size_t> window = spec.shard.RepWindow(reps);
  const std::size_t win_begin = window.first;
  const std::size_t win_end = window.second;
  const std::size_t win = win_end - win_begin;
  if (win == 0 || selected.empty()) return result;

  SweepRunner runner = spec.runner;
  if (!runner) {
    // The default experiment runner: one RunExperiment per repetition, each
    // MetricSpec's extractor applied to the result. With a qlog_dir the run
    // captures full traces and writes one client + one server qlog per
    // repetition; capture changes no run behaviour, so metric values (and
    // therefore exports) are identical either way.
    const std::string qlog_dir = spec.qlog_dir;
    const std::string sweep_name = spec.name;
    if (!qlog_dir.empty()) std::filesystem::create_directories(qlog_dir);
    runner = [metrics, qlog_dir, sweep_name](const SweepRunContext& ctx) {
      ExperimentConfig run = ctx.point.config;
      run.seed = ctx.seed;
      ExperimentResult experiment;
      if (qlog_dir.empty()) {
        experiment = RunExperiment(run);
      } else {
        run.capture_qlog = true;
        experiment = RunExperiment(
            run, [&](const quic::ClientConnection& client,
                     const quic::ServerConnection& server) {
              WriteQlogPair(qlog_dir, sweep_name, ctx.point.index, ctx.repetition,
                            client, server);
            });
      }
      std::vector<double> values;
      values.reserve(metrics.size());
      for (const MetricSpec& metric : metrics) {
        values.push_back(metric.extract ? metric.extract(experiment) : experiment.TtfbMs());
      }
      return values;
    };
  }

  const std::uint64_t seed_base = result.seed_base;
  const auto start = std::chrono::steady_clock::now();  // lint:allow(ND002): phase timer

  // Transient per-point value slots: allocated when the point's first
  // repetition arrives, filled by (point × repetition) jobs in any order,
  // folded into the point's series in repetition order by the worker that
  // completes the point, then released — memory tracks the set of in-flight
  // points, not the whole grid (a 100k-repetition scan sweep would
  // otherwise zero-fill every point's slots up front).
  //
  // decision: 0 = undecided, 1 = run, 2 = budget-skipped. The first
  // repetition of a point to arrive decides for the whole point, so a
  // budget expiry never leaves a partially-run point behind (and skipped
  // points never allocate slots).
  struct PointState {
    std::vector<double> slots;
    std::once_flag init;
    std::atomic<std::size_t> remaining{0};
    std::atomic<int> decision{0};
  };
  std::vector<PointState> states(selected.size());
  for (PointState& state : states) {
    state.remaining.store(win, std::memory_order_relaxed);
  }

  const bool budgeted = spec.time_budget_seconds > 0.0;
  auto budget_exhausted = [&] {
    if (!budgeted) return false;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();  // lint:allow(ND002): wall budget
    return elapsed >= spec.time_budget_seconds;
  };

  std::mutex progress_mutex;
  SweepProgress progress;
  progress.sweep = result.name;
  progress.points_total = selected.size();
  progress.runs_total = selected.size() * win;

  const std::size_t total = selected.size() * win;
  ThreadPool::Global().ParallelFor(
      total,
      [&](std::size_t j) {
        if (telemetry) obs::EnsureThisThread();
        const std::size_t si = j / win;
        const std::size_t rep = win_begin + j % win;
        PointState& state = states[si];
        PointSummary& summary = result.points[selected[si]];

        int decision = state.decision.load(std::memory_order_acquire);
        if (decision == 0) {
          int want = budget_exhausted() ? 2 : 1;
          if (state.decision.compare_exchange_strong(decision, want,
                                                     std::memory_order_acq_rel)) {
            decision = want;
          }
        }

        if (decision == 1) {
          std::call_once(state.init, [&] { state.slots.assign(win * n_metrics, 0.0); });
          SweepRunContext ctx{summary.point, static_cast<int>(rep),
                              seed_base + static_cast<std::uint64_t>(rep) * spec.seed_stride};
          const std::vector<double> values = runner(ctx);
          for (std::size_t m = 0; m < n_metrics; ++m) {
            state.slots[(rep - win_begin) * n_metrics + m] =
                m < values.size() ? values[m] : NoSample();
          }
        }

        if (state.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Last repetition of this point: fold in repetition order.
          if (decision == 2) {
            summary.budget_skipped = true;
          } else {
            summary.executed = true;
            for (std::size_t r = 0; r < win; ++r) {
              for (std::size_t m = 0; m < n_metrics; ++m) {
                const double v = state.slots[r * n_metrics + m];
                MetricSeries& series = summary.metrics[m];
                if (std::isnan(v)) {
                  ++series.skipped;
                } else if (metrics[m].exclude_negative && v < 0.0) {
                  ++series.aborted;
                } else if (series.mode == MetricMode::kTrace) {
                  series.trace.push_back(v);
                } else {
                  series.summary.Add(v);
                }
              }
            }
          }
          state.slots.clear();
          state.slots.shrink_to_fit();

          std::lock_guard<std::mutex> lock(progress_mutex);
          ++progress.points_completed;
          if (decision == 2) {
            ++progress.points_skipped;
          } else {
            progress.runs_completed += win;
          }
          if (spec.observer) {
            progress.elapsed_seconds =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - start)  // lint:allow(ND002): progress wall time
                    .count();
            progress.runs_per_second =
                progress.elapsed_seconds > 0.0
                    ? static_cast<double>(progress.runs_completed) / progress.elapsed_seconds
                    : 0.0;
            spec.observer(progress);
          }
        }
      },
      max_parallelism);

  result.total_runs = total;
  result.executed_runs = progress.runs_completed;

  if (telemetry) {
    obs::Count(obs::kSweepExecuteMicros, MicrosSince(start));
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();  // lint:allow(ND002): telemetry wall time
    const auto snapshot = obs::Snapshot();
    result.telemetry.enabled = true;
    result.telemetry.wall_seconds = wall;
    for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
      if (snapshot[i] != 0) {
        result.telemetry.counters.emplace_back(obs::Descriptors()[i].name, snapshot[i]);
      }
    }
    obs::SweepRecord record;
    record.bench = obs::CurrentBench();
    record.sweep = result.name;
    record.wall_seconds = wall;
    record.executed_runs = result.executed_runs;
    record.counters = result.telemetry.counters;
    obs::AppendSweepRecord(std::move(record));
  }
  return result;
}

std::optional<SweepResult> MergeSweepResults(const std::vector<SweepResult>& partials,
                                             std::string* error) {
  const auto merge_start = std::chrono::steady_clock::now();  // lint:allow(ND002): phase timer
  auto fail = [error](std::string message) -> std::optional<SweepResult> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  if (partials.empty()) return fail("no partial results to merge");

  const SweepResult& first = partials.front();
  for (const SweepResult& partial : partials) {
    if (partial.name != first.name) {
      return fail("sweep name mismatch: '" + partial.name + "' vs '" + first.name + "'");
    }
    if (partial.points.size() != first.points.size()) {
      return fail("grid size mismatch in sweep '" + first.name + "': " +
                  std::to_string(partial.points.size()) + " vs " +
                  std::to_string(first.points.size()) + " points");
    }
    if (partial.repetitions != first.repetitions ||
        partial.reservoir_capacity != first.reservoir_capacity ||
        partial.seed_base != first.seed_base || partial.seed_stride != first.seed_stride) {
      return fail("spec fingerprint mismatch in sweep '" + first.name +
                  "' (repetitions / reservoir / seed schedule differ)");
    }
    // The content-hash covers everything the fingerprint above cannot see —
    // base config, axis values, metric set. Hash 0 means "unknown" (a
    // pre-hash document) and is tolerated.
    if (partial.spec_hash != 0 && first.spec_hash != 0 &&
        partial.spec_hash != first.spec_hash) {
      return fail("spec content-hash mismatch in sweep '" + first.name + "': " +
                  ScenarioHashHex(partial.spec_hash) + " vs " +
                  ScenarioHashHex(first.spec_hash) +
                  " — the partials were produced from different grid definitions");
    }
    for (std::size_t i = 0; i < partial.points.size(); ++i) {
      if (partial.points[i].point.Key() != first.points[i].point.Key()) {
        return fail("point " + std::to_string(i) + " of sweep '" + first.name +
                    "' differs between partials: '" + partial.points[i].point.Key() +
                    "' vs '" + first.points[i].point.Key() + "'");
      }
      if (partial.points[i].metrics.size() != first.points[i].metrics.size()) {
        return fail("metric count mismatch at point " + std::to_string(i) + " of sweep '" +
                    first.name + "'");
      }
      for (std::size_t m = 0; m < partial.points[i].metrics.size(); ++m) {
        const MetricSeries& a = partial.points[i].metrics[m];
        const MetricSeries& b = first.points[i].metrics[m];
        if (a.name != b.name || a.mode != b.mode) {
          return fail("metric " + std::to_string(m) + " of sweep '" + first.name +
                      "' differs between partials: " + a.name + "/" +
                      std::string(ToString(a.mode)) + " vs " + b.name + "/" +
                      std::string(ToString(b.mode)));
        }
      }
    }
  }

  // Fold partials in ascending repetition-window order (stable, so the
  // caller's order decides between whole-point partials): the windows of a
  // split point then concatenate in repetition order no matter how the
  // partial files were globbed.
  std::vector<const SweepResult*> ordered;
  ordered.reserve(partials.size());
  for (const SweepResult& partial : partials) ordered.push_back(&partial);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SweepResult* a, const SweepResult* b) {
                     return a->shard.rep_begin < b->shard.rep_begin;
                   });

  SweepResult merged = first;
  merged.shard = SweepShard{};
  for (const SweepResult& partial : partials) {
    if (merged.spec_hash == 0) merged.spec_hash = partial.spec_hash;
  }
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < merged.points.size(); ++i) {
    PointSummary& dst = merged.points[i];
    dst.executed = false;
    dst.budget_skipped = false;
    // Fresh empty series; every executing partial folds in via Merge /
    // trace concatenation, in window order.
    for (MetricSeries& series : dst.metrics) {
      series.aborted = 0;
      series.skipped = 0;
      series.trace.clear();
      if (series.mode == MetricMode::kSummary) {
        series.summary = stats::Accumulator(merged.reservoir_capacity);
      }
    }
    bool budget_skipped_somewhere = false;
    for (const SweepResult* partial : ordered) {
      const PointSummary& src = partial->points[i];
      budget_skipped_somewhere |= src.budget_skipped;
      if (!src.executed) continue;
      dst.executed = true;
      for (std::size_t m = 0; m < dst.metrics.size(); ++m) {
        MetricSeries& series = dst.metrics[m];
        const MetricSeries& from = src.metrics[m];
        series.aborted += from.aborted;
        series.skipped += from.skipped;
        if (series.mode == MetricMode::kTrace) {
          series.trace.insert(series.trace.end(), from.trace.begin(), from.trace.end());
        } else {
          series.summary.Merge(from.summary);
        }
      }
    }
    if (!dst.executed) {
      if (budget_skipped_somewhere) {
        dst.budget_skipped = true;
      } else {
        missing.push_back(i);
      }
    }
  }
  if (!missing.empty()) {
    std::string ids;
    for (std::size_t id : missing) {
      if (!ids.empty()) ids += ',';
      ids += std::to_string(id);
    }
    return fail("sweep '" + merged.name + "': points " + ids +
                " executed in no partial (and not budget-skipped)");
  }

  const std::size_t reps =
      merged.repetitions > 0 ? static_cast<std::size_t>(merged.repetitions) : 0;
  std::size_t executed_points = 0;
  for (const PointSummary& summary : merged.points) {
    if (summary.executed) ++executed_points;
  }
  merged.total_runs = merged.points.size() * reps;
  merged.executed_runs = executed_points * reps;

  // Fold telemetry across partials: wall times sum (total compute spent);
  // counters fold by their registered merge mode, names unknown to this
  // binary as sums. The merge pass itself is accounted directly into the
  // folded counters — a merge process need not have telemetry enabled.
  merged.telemetry = SweepTelemetry{};
  for (const SweepResult* partial : ordered) {
    if (!partial->telemetry.enabled) continue;
    merged.telemetry.enabled = true;
    merged.telemetry.wall_seconds += partial->telemetry.wall_seconds;
    for (const auto& [name, value] : partial->telemetry.counters) {
      auto it = std::find_if(merged.telemetry.counters.begin(),
                             merged.telemetry.counters.end(),
                             [&](const auto& entry) { return entry.first == name; });
      if (it == merged.telemetry.counters.end()) {
        merged.telemetry.counters.emplace_back(name, value);
      } else if (obs::MergeModeForName(name) == obs::MergeMode::kMax) {
        it->second = std::max(it->second, value);
      } else {
        it->second += value;
      }
    }
  }
  if (merged.telemetry.enabled) {
    const std::uint64_t micros = MicrosSince(merge_start);
    const std::string merge_counter = obs::Describe(obs::kSweepMergeMicros).name;
    auto it = std::find_if(merged.telemetry.counters.begin(),
                           merged.telemetry.counters.end(),
                           [&](const auto& entry) { return entry.first == merge_counter; });
    if (it == merged.telemetry.counters.end()) {
      merged.telemetry.counters.emplace_back(merge_counter, micros);
    } else {
      it->second += micros;
    }
  }
  return merged;
}

const std::vector<std::string>& SweepCsvHeader() {
  static const std::vector<std::string> header = {
      "sweep",    "point",   "metric",  "metric_mode", "client",   "http",
      "behavior", "mode",    "loss",    "variant",     "extras",   "rtt_ms",
      "delta_ms", "cert_bytes", "count", "aborted",    "skipped",  "min",
      "p25",      "median",  "p75",     "max",         "mean",     "stddev"};
  return header;
}

void WriteSweepCsv(const SweepResult& result, CsvWriter& writer) {
  for (const PointSummary& summary : result.points) {
    for (const MetricSeries& series : summary.metrics) {
      const stats::Summary s = series.Summarize();
      writer.TextRow({result.name, std::to_string(summary.point.index), series.name,
                      std::string(ToString(series.mode)), summary.point.client,
                      summary.point.http, summary.point.behavior, summary.point.mode,
                      summary.point.loss, summary.point.variant,
                      summary.point.ExportExtrasLabel(),
                      JsonNumber(summary.point.rtt_ms), JsonNumber(summary.point.delta_ms),
                      std::to_string(summary.point.certificate_bytes),
                      std::to_string(s.count), std::to_string(series.aborted),
                      std::to_string(series.skipped), JsonNumber(s.min), JsonNumber(s.p25),
                      JsonNumber(s.median), JsonNumber(s.p75), JsonNumber(s.max),
                      JsonNumber(s.mean), JsonNumber(s.stddev)});
    }
  }
}

std::string SweepResultJson(const SweepResult& result) {
  std::string out = "{\n  \"sweep\": \"" + JsonEscape(result.name) + "\",\n";
  out += "  \"total_runs\": " + std::to_string(result.total_runs) + ",\n";
  out += "  \"executed_runs\": " + std::to_string(result.executed_runs) + ",\n";
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const PointSummary& summary = result.points[i];
    out += "    {\"point\": " + std::to_string(summary.point.index);
    out += ", \"client\": \"" + JsonEscape(summary.point.client) + "\"";
    out += ", \"http\": \"" + JsonEscape(summary.point.http) + "\"";
    out += ", \"behavior\": \"" + JsonEscape(summary.point.behavior) + "\"";
    out += ", \"mode\": \"" + JsonEscape(summary.point.mode) + "\"";
    out += ", \"loss\": \"" + JsonEscape(summary.point.loss) + "\"";
    out += ", \"variant\": \"" + JsonEscape(summary.point.variant) + "\"";
    // Emitted only off the default so every legacy export stays
    // byte-identical (the conditional-extras precedent below).
    if (summary.point.link != "default") {
      out += ", \"link\": \"" + JsonEscape(summary.point.link) + "\"";
    }
    if (!summary.point.extras.empty()) {
      out += ", \"extras\": {";
      for (std::size_t e = 0; e < summary.point.extras.size(); ++e) {
        const auto& [name, value] = summary.point.extras[e];
        if (e != 0) out += ", ";
        out += "\"" + JsonEscape(name) + "\": \"" + JsonEscape(value.label) + "\"";
      }
      out += "}";
    }
    out += ", \"rtt_ms\": " + JsonNumber(summary.point.rtt_ms);
    out += ", \"delta_ms\": " + JsonNumber(summary.point.delta_ms);
    out += ", \"cert_bytes\": " + std::to_string(summary.point.certificate_bytes);
    if (summary.budget_skipped) out += ", \"budget_skipped\": true";
    out += ", \"metrics\": [";
    for (std::size_t m = 0; m < summary.metrics.size(); ++m) {
      const MetricSeries& series = summary.metrics[m];
      const stats::Summary s = series.Summarize();
      if (m != 0) out += ", ";
      out += "{\"name\": \"" + JsonEscape(series.name) + "\"";
      out += ", \"mode\": \"" + std::string(ToString(series.mode)) + "\"";
      out += ", \"count\": " + std::to_string(s.count);
      out += ", \"aborted\": " + std::to_string(series.aborted);
      out += ", \"skipped\": " + std::to_string(series.skipped);
      out += ", \"min\": " + JsonNumber(s.min);
      out += ", \"p25\": " + JsonNumber(s.p25);
      out += ", \"median\": " + JsonNumber(s.median);
      out += ", \"p75\": " + JsonNumber(s.p75);
      out += ", \"max\": " + JsonNumber(s.max);
      out += ", \"mean\": " + JsonNumber(s.mean);
      out += ", \"stddev\": " + JsonNumber(s.stddev);
      if (series.mode == MetricMode::kTrace) {
        out += ", \"trace\": [";
        for (std::size_t t = 0; t < series.trace.size(); ++t) {
          if (t != 0) out += ", ";
          out += JsonNumber(series.trace[t]);
        }
        out += "]";
      }
      out += "}";
    }
    out += "]";
    out += i + 1 < result.points.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

// WriteSweepData / MaybeWriteSweepData live in sweep_partial.cc: sharded
// results write partial-result files instead of the final export pair.

}  // namespace quicer::core
