#include "core/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <optional>
#include <utility>

#include "core/csv.h"
#include "core/thread_pool.h"

namespace quicer::core {
namespace {

template <typename T>
std::vector<std::optional<T>> AxisOrDefault(const std::vector<T>& axis) {
  if (axis.empty()) return {std::nullopt};
  std::vector<std::optional<T>> out;
  out.reserve(axis.size());
  for (const T& v : axis) out.emplace_back(v);
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

}  // namespace

std::string_view ToString(HandshakeMode mode) {
  switch (mode) {
    case HandshakeMode::k1Rtt: return "1-RTT";
    case HandshakeMode::k0Rtt: return "0-RTT";
    case HandshakeMode::kRetry: return "Retry";
  }
  return "?";
}

std::vector<SweepPoint> Enumerate(const SweepSpec& spec) {
  const auto https = AxisOrDefault(spec.axes.http_versions);
  const auto certs = AxisOrDefault(spec.axes.certificate_sizes);
  const auto deltas = AxisOrDefault(spec.axes.cert_fetch_delays);
  const auto rtts = AxisOrDefault(spec.axes.rtts);
  const auto modes = AxisOrDefault(spec.axes.modes);
  const auto clients = AxisOrDefault(spec.axes.clients);
  const auto behaviors = AxisOrDefault(spec.axes.behaviors);

  std::vector<SweepLoss> losses = spec.axes.losses;
  if (losses.empty()) {
    SweepLoss keep;
    keep.label = spec.base.loss.empty() ? "none" : "base";
    losses.push_back(std::move(keep));
  }
  std::vector<SweepVariant> variants = spec.axes.variants;
  if (variants.empty()) variants.push_back(SweepVariant{});

  std::vector<SweepPoint> points;
  for (const auto& http : https) {
   for (const SweepVariant& variant : variants) {
    for (const SweepLoss& loss : losses) {
      for (const auto& cert : certs) {
        for (const auto& delta : deltas) {
          for (const auto& rtt : rtts) {
            for (const auto& mode : modes) {
              for (const auto& client : clients) {
                for (const auto& behavior : behaviors) {
                  SweepPoint point;
                  point.config = spec.base;
                  if (http) point.config.http = *http;
                  if (cert) point.config.certificate_bytes = *cert;
                  if (delta) point.config.cert_fetch_delay = *delta;
                  if (rtt) point.config.rtt = *rtt;
                  if (mode) point.config.mode = *mode;
                  if (client) point.config.client = *client;
                  if (behavior) point.config.behavior = *behavior;
                  if (spec.skip_unsupported_http3 &&
                      point.config.http == http::Version::kHttp3 &&
                      !clients::SupportsHttp3(point.config.client)) {
                    continue;
                  }
                  if (variant.mutate) variant.mutate(point.config);
                  if (loss.make) point.config.loss = loss.make(point.config);

                  point.client = std::string(clients::Name(point.config.client));
                  point.http = std::string(http::ToString(point.config.http));
                  point.behavior = std::string(quic::ToString(point.config.behavior));
                  point.mode = std::string(ToString(point.config.mode));
                  point.loss = loss.label;
                  point.variant = variant.label;
                  point.rtt_ms = sim::ToMillis(point.config.rtt);
                  point.delta_ms = sim::ToMillis(point.config.cert_fetch_delay);
                  point.certificate_bytes = point.config.certificate_bytes;
                  point.index = points.size();
                  points.push_back(std::move(point));
                }
              }
            }
          }
        }
      }
    }
   }
  }
  return points;
}

const PointSummary* SweepResult::Find(
    const std::function<bool(const SweepPoint&)>& pred) const {
  for (const PointSummary& summary : points) {
    if (pred(summary.point)) return &summary;
  }
  return nullptr;
}

SweepResult RunSweep(const SweepSpec& spec, unsigned max_parallelism) {
  SweepResult result;
  result.name = spec.name;

  std::vector<SweepPoint> points = Enumerate(spec);
  result.points.reserve(points.size());
  for (SweepPoint& point : points) {
    PointSummary summary;
    summary.point = std::move(point);
    summary.values = stats::Accumulator(spec.reservoir_capacity);
    result.points.push_back(std::move(summary));
  }

  const std::size_t reps =
      spec.repetitions > 0 ? static_cast<std::size_t>(spec.repetitions) : 0;
  if (reps == 0 || result.points.empty()) return result;

  std::function<double(const ExperimentResult&)> metric = spec.metric;
  if (!metric) metric = [](const ExperimentResult& r) { return r.TtfbMs(); };
  const std::uint64_t seed_base = spec.seed_base != 0 ? spec.seed_base : spec.base.seed;

  // Transient per-point value slots: filled by (point × repetition) jobs in
  // any order, folded into the point's accumulator in repetition order by
  // the worker that completes the point, then released — memory tracks the
  // set of in-flight points, not the whole grid.
  struct PointState {
    std::vector<double> slots;
    std::atomic<std::size_t> remaining{0};
  };
  std::vector<PointState> states(result.points.size());
  for (PointState& state : states) {
    state.slots.assign(reps, 0.0);
    state.remaining.store(reps, std::memory_order_relaxed);
  }

  const std::size_t total = result.points.size() * reps;
  ThreadPool::Global().ParallelFor(
      total,
      [&](std::size_t j) {
        const std::size_t pi = j / reps;
        const std::size_t rep = j % reps;
        PointState& state = states[pi];
        PointSummary& summary = result.points[pi];

        ExperimentConfig run = summary.point.config;
        run.seed = seed_base + static_cast<std::uint64_t>(rep) * spec.seed_stride;
        state.slots[rep] = metric(RunExperiment(run));

        if (state.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          for (double v : state.slots) {
            if (spec.exclude_negative && v < 0.0) {
              ++summary.aborted;
            } else {
              summary.values.Add(v);
            }
          }
          state.slots.clear();
          state.slots.shrink_to_fit();
        }
      },
      max_parallelism);

  result.total_runs = total;
  return result;
}

const std::vector<std::string>& SweepCsvHeader() {
  static const std::vector<std::string> header = {
      "sweep",   "point",  "client", "http",     "behavior",   "mode",
      "loss",    "variant", "rtt_ms", "delta_ms", "cert_bytes", "count",
      "aborted", "min",    "p25",    "median",   "p75",        "max",
      "mean",    "stddev"};
  return header;
}

void WriteSweepCsv(const SweepResult& result, CsvWriter& writer) {
  for (const PointSummary& summary : result.points) {
    const stats::Summary s = summary.values.Summarize();
    writer.TextRow({result.name, std::to_string(summary.point.index),
                    summary.point.client, summary.point.http, summary.point.behavior,
                    summary.point.mode, summary.point.loss, summary.point.variant,
                    JsonNumber(summary.point.rtt_ms), JsonNumber(summary.point.delta_ms),
                    std::to_string(summary.point.certificate_bytes),
                    std::to_string(s.count), std::to_string(summary.aborted),
                    JsonNumber(s.min), JsonNumber(s.p25), JsonNumber(s.median),
                    JsonNumber(s.p75), JsonNumber(s.max), JsonNumber(s.mean),
                    JsonNumber(s.stddev)});
  }
}

std::string SweepResultJson(const SweepResult& result) {
  std::string out = "{\n  \"sweep\": \"" + JsonEscape(result.name) + "\",\n";
  out += "  \"total_runs\": " + std::to_string(result.total_runs) + ",\n";
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const PointSummary& summary = result.points[i];
    const stats::Summary s = summary.values.Summarize();
    out += "    {\"point\": " + std::to_string(summary.point.index);
    out += ", \"client\": \"" + JsonEscape(summary.point.client) + "\"";
    out += ", \"http\": \"" + JsonEscape(summary.point.http) + "\"";
    out += ", \"behavior\": \"" + JsonEscape(summary.point.behavior) + "\"";
    out += ", \"mode\": \"" + JsonEscape(summary.point.mode) + "\"";
    out += ", \"loss\": \"" + JsonEscape(summary.point.loss) + "\"";
    out += ", \"variant\": \"" + JsonEscape(summary.point.variant) + "\"";
    out += ", \"rtt_ms\": " + JsonNumber(summary.point.rtt_ms);
    out += ", \"delta_ms\": " + JsonNumber(summary.point.delta_ms);
    out += ", \"cert_bytes\": " + std::to_string(summary.point.certificate_bytes);
    out += ", \"count\": " + std::to_string(s.count);
    out += ", \"aborted\": " + std::to_string(summary.aborted);
    out += ", \"min\": " + JsonNumber(s.min);
    out += ", \"p25\": " + JsonNumber(s.p25);
    out += ", \"median\": " + JsonNumber(s.median);
    out += ", \"p75\": " + JsonNumber(s.p75);
    out += ", \"max\": " + JsonNumber(s.max);
    out += ", \"mean\": " + JsonNumber(s.mean);
    out += ", \"stddev\": " + JsonNumber(s.stddev);
    out += i + 1 < result.points.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool MaybeWriteSweepData(const SweepResult& result) {
  const auto dir = DataDirFromEnv();
  if (!dir || result.name.empty()) return false;
  CsvWriter csv(*dir, result.name + "_sweep", SweepCsvHeader());
  if (!csv.active()) return false;
  WriteSweepCsv(result, csv);
  std::ofstream json(*dir + "/" + result.name + "_sweep.json");
  if (!json.is_open()) return false;
  json << SweepResultJson(result);
  return true;
}

}  // namespace quicer::core
