#include "core/ack_delay_alt.h"

#include <algorithm>

#include "core/pto_model.h"

namespace quicer::core {

AckDelayAltResult EvaluateStrategy(AckDelayStrategy strategy,
                                   const AckDelayAltScenario& scenario) {
  AckDelayAltResult result;
  result.first_pto_iack = FirstPto(scenario.rtt);

  const sim::Duration wfc_sample = scenario.rtt + scenario.delta_t;

  switch (strategy) {
    case AckDelayStrategy::kRfcStandard:
      // RFC 9002 §5.3: the first sample's ack delay is not subtracted.
      result.first_pto_wfc = FirstPto(wfc_sample);
      break;

    case AckDelayStrategy::kApplyAtInit: {
      // Hypothetical: subtract the *reported* delay from the first sample,
      // but never below the true path RTT floor (min_rtt rule).
      sim::Duration adjusted = wfc_sample - scenario.reported_ack_delay;
      if (adjusted < scenario.rtt) {
        adjusted = scenario.rtt;
        result.clamped_to_min_rtt = true;
      }
      result.first_pto_wfc = FirstPto(adjusted);
      break;
    }

    case AckDelayStrategy::kReinitOnSecond: {
      // The first PTO is the inflated one; from the second (undelayed)
      // sample the client re-initialises — modelled as the PTO implied by a
      // clean RTT sample. The benefit arrives one exchange too late for the
      // handshake, which is the paper's point.
      result.first_pto_wfc = FirstPto(scenario.rtt);
      break;
    }
  }
  return result;
}

}  // namespace quicer::core
