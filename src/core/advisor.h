// Deployment advisor — Table 2 ("Guidelines for Instant ACK Deployment").
//
// Encodes the paper's decision matrix: when the certificate exceeds the
// anti-amplification budget, instant ACK always helps; otherwise the answer
// depends on which flight loss dominates and on Δt relative to the client's
// PTO (3x RTT).
#pragma once

#include <string_view>

#include "quic/types.h"
#include "sim/time.h"

namespace quicer::core {

enum class LossCase {
  kNoLoss,
  kFirstServerFlightTail,  // first server flight except first datagram lost
  kSecondClientFlight,     // entire second client flight lost
};

std::string_view ToString(LossCase c);

struct DeploymentScenario {
  std::size_t certificate_bytes = 1212;
  /// Bytes the server may send off one padded client Initial (3 x 1200).
  std::size_t amplification_budget = 3 * quic::kMinInitialDatagramSize;
  sim::Duration client_frontend_rtt = sim::Millis(9);
  /// Frontend <-> certificate store delay Δt.
  sim::Duration frontend_cert_delay = 0;
  LossCase loss = LossCase::kNoLoss;
};

enum class Recommendation { kWfc, kIack };

std::string_view ToString(Recommendation r);

/// Table 2 lookup.
Recommendation Advise(const DeploymentScenario& scenario);

/// True if the certificate flight exceeds the amplification budget (row 2 of
/// Table 2).
bool CertificateExceedsAmplificationLimit(const DeploymentScenario& scenario);

/// True if Δt is below the client PTO (3 x RTT) — the "zone of reduced
/// latency" of Fig 4.
bool DeltaWithinClientPto(const DeploymentScenario& scenario);

}  // namespace quicer::core
