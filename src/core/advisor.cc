#include "core/advisor.h"

#include "core/pto_model.h"
#include "tls/messages.h"

namespace quicer::core {

std::string_view ToString(LossCase c) {
  switch (c) {
    case LossCase::kNoLoss: return "no loss";
    case LossCase::kFirstServerFlightTail: return "first server flight tail lost";
    case LossCase::kSecondClientFlight: return "second client flight lost";
  }
  return "?";
}

std::string_view ToString(Recommendation r) {
  return r == Recommendation::kWfc ? "WFC" : "IACK";
}

bool CertificateExceedsAmplificationLimit(const DeploymentScenario& scenario) {
  // The flight also carries ServerHello/EE/CV/Finished and packet overhead.
  tls::HandshakeSizes sizes;
  sizes.certificate = scenario.certificate_bytes;
  return sizes.ServerFlightBytes() + 200 > scenario.amplification_budget;
}

bool DeltaWithinClientPto(const DeploymentScenario& scenario) {
  return scenario.frontend_cert_delay <= SpuriousBoundary(scenario.client_frontend_rtt);
}

Recommendation Advise(const DeploymentScenario& scenario) {
  // Table 2 row (2): certificate above the amplification limit -> IACK in
  // every column.
  if (CertificateExceedsAmplificationLimit(scenario)) return Recommendation::kIack;

  // Row (1): certificate within the limit.
  switch (scenario.loss) {
    case LossCase::kFirstServerFlightTail:
      // The server needs its own RTT sample to resend quickly; the instant
      // ACK denies it one (not ack-eliciting), so WFC wins.
      return Recommendation::kWfc;
    case LossCase::kSecondClientFlight:
      // The client's smaller PTO lets it resend the request sooner.
      return Recommendation::kIack;
    case LossCase::kNoLoss:
      // Without loss, instant ACK only pays when it does not cause spurious
      // probes: Δt below the client PTO (3x RTT).
      return DeltaWithinClientPto(scenario) ? Recommendation::kIack : Recommendation::kWfc;
  }
  return Recommendation::kIack;
}

}  // namespace quicer::core
