// Cross-process interchange for the sweep engine's merge phase.
//
// A sharded execution (SweepSpec::shard) serialises its SweepResult —
// including the complete per-series accumulator state, trace vectors and
// the full grid's point metadata — as a partial-result JSON document. A
// merge process (bench_suite's `merge` subcommand) parses any set of these
// files, recombines them with MergeSweepResults, and emits the usual
// CSV/JSON exports. Numbers are written in their shortest exactly
// round-tripping form (core::JsonNumber), so the merged exports are
// byte-identical to what a single-process run of the same spec would have
// written. Every document carries the spec content-hash (core::
// ScenarioHash); the merge phase refuses to combine partials whose hashes
// differ.
//
// The document also lists budget-skipped point ids, so a later run can
// re-execute exactly those (`bench_suite --points=...`) and the rerun's
// partial merges in cleanly.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/sweep.h"

namespace quicer::core {

/// Serialises a (possibly partial) result as a partial-result document.
std::string SweepPartialJson(const SweepResult& result);

/// Parses a partial-result document. The returned result carries the full
/// grid metadata (labels, stable ids) but default-constructed point
/// configs — everything the merge and export phases need, nothing the
/// execute phase does. Returns nullopt and fills `error` on malformed or
/// wrong-format input.
std::optional<SweepResult> ParseSweepPartialJson(std::string_view json,
                                                std::string* error = nullptr);

/// Reads and parses one partial-result file.
std::optional<SweepResult> ReadSweepPartialFile(const std::string& path,
                                                std::string* error = nullptr);

/// Canonical file name for a result's partial document:
/// "<name>_sweep.shard<i>of<N>.json" for round-robin shards,
/// "<name>_sweep.points.json" for explicit point-id runs, and
/// "<name>_sweep.partial.json" for unsharded runs with budget skips.
/// A repetition window appends ".reps<a>to<b>" before the extension, so
/// windows of the same point-id set land in distinct files.
std::string SweepPartialFileName(const SweepResult& result);

/// Driver of the `merge` subcommand: reads every file, groups the partials
/// by sweep name, merges each group and writes the final exports into
/// `out_dir` (plus a fresh partial file when budget-skipped points remain).
/// Diagnostics go to `log` (may be null). Returns false if any file fails
/// to read or any group fails to merge or export. When `merged_out` is
/// non-null, every successfully merged result is appended to it (in
/// first-seen sweep order) — the --telemetry report path uses this to fold
/// the partials' telemetry into a per-sweep report.
bool MergeSweepPartialFiles(const std::vector<std::string>& files, const std::string& out_dir,
                            std::FILE* log, std::vector<SweepResult>* merged_out = nullptr);

}  // namespace quicer::core
