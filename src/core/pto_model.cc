#include "core/pto_model.h"

#include <algorithm>
#include <cstdlib>

#include "recovery/pto.h"

namespace quicer::core {

void PtoState::AddSample(sim::Duration sample) {
  if (!has_sample) {
    has_sample = true;
    smoothed = sample;
    rttvar = sample / 2;
    return;
  }
  rttvar = (3 * rttvar + std::abs(smoothed - sample)) / 4;
  smoothed = (7 * smoothed + sample) / 8;
}

sim::Duration PtoState::Pto() const {
  return smoothed + std::max<sim::Duration>(4 * rttvar, recovery::kGranularity);
}

std::vector<PtoEvolutionPoint> ComputePtoEvolution(sim::Duration rtt, sim::Duration delta_t,
                                                   int ack_count) {
  std::vector<PtoEvolutionPoint> points;
  points.reserve(static_cast<std::size_t>(std::max(ack_count, 0)));
  PtoState wfc;
  PtoState iack;
  for (int i = 0; i < ack_count; ++i) {
    // WFC's first sample includes the certificate-store delay Δt; every
    // later packet is assumed to be acknowledged after exactly one RTT.
    wfc.AddSample(i == 0 ? rtt + delta_t : rtt);
    iack.AddSample(rtt);
    points.push_back(PtoEvolutionPoint{i, wfc.Pto(), iack.Pto()});
  }
  return points;
}

sim::Duration FirstPto(sim::Duration first_sample) {
  PtoState state;
  state.AddSample(first_sample);
  return state.Pto();
}

SweetSpotPoint FirstPtoReduction(sim::Duration rtt, sim::Duration delta_t) {
  SweetSpotPoint point;
  point.rtt = rtt;
  point.delta_t = delta_t;
  const sim::Duration pto_wfc = FirstPto(rtt + delta_t);
  const sim::Duration pto_iack = FirstPto(rtt);
  point.reduction_rtts =
      static_cast<double>(pto_wfc - pto_iack) / static_cast<double>(std::max<sim::Duration>(rtt, 1));
  // The client arms its PTO from the instant-ACK sample; if the remaining
  // wait for the ServerHello (Δt) exceeds that PTO, the probe fires first.
  point.spurious_retransmissions = delta_t > pto_iack;
  return point;
}

sim::Duration SpuriousBoundary(sim::Duration rtt) { return FirstPto(rtt); }

}  // namespace quicer::core
