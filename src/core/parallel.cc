#include "core/parallel.h"

#include <atomic>
#include <thread>

namespace quicer::core {
namespace {

unsigned WorkerCount(unsigned requested, std::size_t jobs) {
  unsigned threads = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (threads == 0) threads = 4;
  if (threads > jobs) threads = static_cast<unsigned>(jobs);
  return threads == 0 ? 1 : threads;
}

}  // namespace

std::vector<double> RunRepetitionsParallel(
    ExperimentConfig config, int repetitions,
    const std::function<double(const ExperimentResult&)>& extract, unsigned threads) {
  if (repetitions <= 0) return {};
  std::vector<double> values(static_cast<std::size_t>(repetitions));
  const std::uint64_t base_seed = config.seed;
  std::atomic<int> next{0};

  auto worker = [&] {
    for (int i = next.fetch_add(1); i < repetitions; i = next.fetch_add(1)) {
      ExperimentConfig run = config;
      // Same seed schedule as the serial RunRepetitions.
      run.seed = base_seed + static_cast<std::uint64_t>(i) * 7919;
      values[static_cast<std::size_t>(i)] = extract(RunExperiment(run));
    }
  };

  const unsigned count = WorkerCount(threads, static_cast<std::size_t>(repetitions));
  std::vector<std::thread> pool;
  pool.reserve(count);
  for (unsigned t = 0; t < count; ++t) pool.emplace_back(worker);
  for (std::thread& thread : pool) thread.join();
  return values;
}

std::vector<ExperimentResult> RunExperimentsParallel(
    const std::vector<ExperimentConfig>& configs, unsigned threads) {
  std::vector<ExperimentResult> results(configs.size());
  std::atomic<std::size_t> next{0};

  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < configs.size(); i = next.fetch_add(1)) {
      results[i] = RunExperiment(configs[i]);
    }
  };

  const unsigned count = WorkerCount(threads, configs.size());
  std::vector<std::thread> pool;
  pool.reserve(count);
  for (unsigned t = 0; t < count; ++t) pool.emplace_back(worker);
  for (std::thread& thread : pool) thread.join();
  return results;
}

}  // namespace quicer::core
