#include "core/parallel.h"

#include "core/thread_pool.h"

namespace quicer::core {

// Both entry points now run on the persistent shared ThreadPool instead of
// spawning and joining a fresh set of std::threads per call. `threads` is a
// concurrency cap (0 = whole pool); results are written into slots keyed by
// repetition index, so the output is bit-identical to the serial
// RunRepetitions for every cap value.

std::vector<double> RunRepetitionsParallel(
    ExperimentConfig config, int repetitions,
    const std::function<double(const ExperimentResult&)>& extract, unsigned threads) {
  if (repetitions <= 0) return {};
  std::vector<double> values(static_cast<std::size_t>(repetitions));
  const std::uint64_t base_seed = config.seed;
  ThreadPool::Global().ParallelFor(
      static_cast<std::size_t>(repetitions),
      [&](std::size_t i) {
        ExperimentConfig run = config;
        // Same seed schedule as the serial RunRepetitions.
        run.seed = base_seed + static_cast<std::uint64_t>(i) * 7919;
        values[i] = extract(RunExperiment(run));
      },
      threads);
  return values;
}

std::vector<ExperimentResult> RunExperimentsParallel(
    const std::vector<ExperimentConfig>& configs, unsigned threads) {
  std::vector<ExperimentResult> results(configs.size());
  ThreadPool::Global().ParallelFor(
      configs.size(), [&](std::size_t i) { results[i] = RunExperiment(configs[i]); }, threads);
  return results;
}

}  // namespace quicer::core
