#include "core/sweep_partial.h"

#include <cinttypes>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/csv.h"
#include "core/json.h"
#include "core/scenario.h"

namespace quicer::core {
namespace {

constexpr std::string_view kFormat = "quicer-sweep-partial-v1";

void AppendDoubleArray(std::string& out, const std::vector<double>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += JsonNumber(values[i]);
  }
  out += ']';
}

std::string U64String(std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, v);
  return buffer;
}

std::vector<double> ParseDoubleArray(const JsonValue& value) {
  std::vector<double> out;
  out.reserve(value.Items().size());
  for (const JsonValue& item : value.Items()) out.push_back(item.AsNumber());
  return out;
}

std::vector<std::size_t> ParseSizeArray(const JsonValue& value) {
  std::vector<std::size_t> out;
  out.reserve(value.Items().size());
  for (const JsonValue& item : value.Items()) {
    out.push_back(static_cast<std::size_t>(item.AsNumber()));
  }
  return out;
}

}  // namespace

std::string SweepPartialJson(const SweepResult& result) {
  std::string out = "{\n";
  out += "  \"format\": \"" + std::string(kFormat) + "\",\n";
  out += "  \"sweep\": \"" + JsonEscape(result.name) + "\",\n";
  if (result.spec_hash != 0) {
    out += "  \"spec_hash\": \"" + ScenarioHashHex(result.spec_hash) + "\",\n";
  }
  out += "  \"shard_index\": " + std::to_string(result.shard.index) + ",\n";
  out += "  \"shard_count\": " + std::to_string(result.shard.count) + ",\n";
  if (!result.shard.points.empty()) {
    out += "  \"shard_points\": ";
    AppendJsonSizeArray(out, result.shard.points);
    out += ",\n";
  }
  if (result.shard.rep_begin != 0 || result.shard.rep_end != 0) {
    out += "  \"rep_begin\": " + std::to_string(result.shard.rep_begin) + ",\n";
    out += "  \"rep_end\": " + std::to_string(result.shard.rep_end) + ",\n";
  }
  out += "  \"repetitions\": " + std::to_string(result.repetitions) + ",\n";
  out += "  \"reservoir_capacity\": " + std::to_string(result.reservoir_capacity) + ",\n";
  // Seeds ride as strings: they are full-range uint64, beyond the exact
  // range of JSON numbers as doubles.
  out += "  \"seed_base\": \"" + U64String(result.seed_base) + "\",\n";
  out += "  \"seed_stride\": \"" + U64String(result.seed_stride) + "\",\n";
  // Telemetry rides only when the producing run recorded it, so documents
  // from telemetry-off runs keep their exact legacy bytes.
  if (result.telemetry.enabled) {
    out += "  \"telemetry\": {\"wall_seconds\": " + JsonNumber(result.telemetry.wall_seconds) +
           ", \"counters\": {";
    for (std::size_t i = 0; i < result.telemetry.counters.size(); ++i) {
      const auto& [counter_name, value] = result.telemetry.counters[i];
      if (i != 0) out += ", ";
      out += "\"" + JsonEscape(counter_name) + "\": " + U64String(value);
    }
    out += "}},\n";
  }
  out += "  \"points_total\": " + std::to_string(result.points.size()) + ",\n";
  out += "  \"budget_skipped_points\": ";
  AppendJsonSizeArray(out, result.BudgetSkippedPoints());
  out += ",\n  \"points\": [\n";

  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const PointSummary& summary = result.points[i];
    out += "    {\"point\": " + std::to_string(summary.point.index);
    out += ", \"executed\": " + std::string(summary.executed ? "true" : "false");
    if (summary.budget_skipped) out += ", \"budget_skipped\": true";
    out += ", \"client\": \"" + JsonEscape(summary.point.client) + "\"";
    out += ", \"http\": \"" + JsonEscape(summary.point.http) + "\"";
    out += ", \"behavior\": \"" + JsonEscape(summary.point.behavior) + "\"";
    out += ", \"mode\": \"" + JsonEscape(summary.point.mode) + "\"";
    out += ", \"loss\": \"" + JsonEscape(summary.point.loss) + "\"";
    out += ", \"variant\": \"" + JsonEscape(summary.point.variant) + "\"";
    // Off-default only, so pre-links partial files and their byte layout
    // stay stable.
    if (summary.point.link != "default") {
      out += ", \"link\": \"" + JsonEscape(summary.point.link) + "\"";
    }
    out += ", \"extras\": [";
    for (std::size_t e = 0; e < summary.point.extras.size(); ++e) {
      const auto& [axis, value] = summary.point.extras[e];
      if (e != 0) out += ", ";
      out += "{\"axis\": \"" + JsonEscape(axis) + "\", \"label\": \"" +
             JsonEscape(value.label) + "\", \"value\": " + std::to_string(value.value) + "}";
    }
    out += "]";
    out += ", \"rtt_ms\": " + JsonNumber(summary.point.rtt_ms);
    out += ", \"delta_ms\": " + JsonNumber(summary.point.delta_ms);
    out += ", \"cert_bytes\": " + std::to_string(summary.point.certificate_bytes);
    out += ",\n     \"metrics\": [";
    for (std::size_t m = 0; m < summary.metrics.size(); ++m) {
      const MetricSeries& series = summary.metrics[m];
      if (m != 0) out += ", ";
      out += "{\"name\": \"" + JsonEscape(series.name) + "\"";
      out += ", \"mode\": \"" + std::string(ToString(series.mode)) + "\"";
      out += ", \"aborted\": " + std::to_string(series.aborted);
      out += ", \"skipped\": " + std::to_string(series.skipped);
      if (series.mode == MetricMode::kTrace) {
        out += ", \"trace\": ";
        AppendDoubleArray(out, series.trace);
      } else {
        const stats::AccumulatorState state = series.summary.state();
        if (!state.overflowed) {
          out += ", \"samples\": ";
          AppendDoubleArray(out, state.samples);
        } else {
          out += ", \"overflow\": {\"count\": " + std::to_string(state.count);
          out += ", \"mean\": " + JsonNumber(state.mean);
          out += ", \"m2\": " + JsonNumber(state.m2);
          out += ", \"min\": " + JsonNumber(state.min);
          out += ", \"max\": " + JsonNumber(state.max);
          out += ", \"lo\": " + JsonNumber(state.histo_lo);
          out += ", \"hi\": " + JsonNumber(state.histo_hi);
          out += ", \"bins\": ";
          AppendJsonSizeArray(out, state.bins);
          out += "}";
        }
      }
      out += "}";
    }
    out += "]";
    out += i + 1 < result.points.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::optional<SweepResult> ParseSweepPartialJson(std::string_view json, std::string* error) {
  auto fail = [error](std::string message) -> std::optional<SweepResult> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  std::string parse_error;
  const std::optional<JsonValue> doc = JsonValue::Parse(json, &parse_error);
  if (!doc) return fail("invalid JSON: " + parse_error);
  if (doc->GetString("format") != kFormat) {
    return fail("not a sweep partial-result document (format '" + doc->GetString("format") +
                "')");
  }

  SweepResult result;
  result.name = doc->GetString("sweep");
  result.spec_hash = std::strtoull(doc->GetString("spec_hash").c_str(), nullptr, 16);
  result.shard.index = static_cast<std::size_t>(doc->GetNumber("shard_index"));
  result.shard.count = static_cast<std::size_t>(doc->GetNumber("shard_count", 1.0));
  if (const JsonValue* shard_points = doc->Get("shard_points")) {
    result.shard.points = ParseSizeArray(*shard_points);
  }
  result.shard.rep_begin = static_cast<std::size_t>(doc->GetNumber("rep_begin"));
  result.shard.rep_end = static_cast<std::size_t>(doc->GetNumber("rep_end"));
  result.repetitions = static_cast<int>(doc->GetNumber("repetitions"));
  result.reservoir_capacity = static_cast<std::size_t>(doc->GetNumber("reservoir_capacity"));
  result.seed_base = std::strtoull(doc->GetString("seed_base").c_str(), nullptr, 10);
  result.seed_stride = std::strtoull(doc->GetString("seed_stride").c_str(), nullptr, 10);
  if (const JsonValue* telemetry = doc->Get("telemetry")) {
    result.telemetry.enabled = true;
    result.telemetry.wall_seconds = telemetry->GetNumber("wall_seconds");
    if (const JsonValue* counters = telemetry->Get("counters")) {
      for (const auto& [counter_name, value] : counters->Members()) {
        result.telemetry.counters.emplace_back(
            counter_name, static_cast<std::uint64_t>(value.AsNumber()));
      }
    }
  }

  const JsonValue* points = doc->Get("points");
  if (points == nullptr) return fail("missing 'points' array");
  const auto points_total = static_cast<std::size_t>(doc->GetNumber("points_total"));
  if (points->Items().size() != points_total) {
    return fail("points_total (" + std::to_string(points_total) + ") does not match the " +
                std::to_string(points->Items().size()) + " serialised points");
  }

  result.points.reserve(points->Items().size());
  for (const JsonValue& point : points->Items()) {
    PointSummary summary;
    summary.executed = point.GetBool("executed");
    summary.budget_skipped = point.GetBool("budget_skipped");
    summary.point.index = static_cast<std::size_t>(point.GetNumber("point"));
    if (summary.point.index != result.points.size()) {
      return fail("point ids out of order at position " + std::to_string(result.points.size()));
    }
    summary.point.client = point.GetString("client");
    summary.point.http = point.GetString("http");
    summary.point.behavior = point.GetString("behavior");
    summary.point.mode = point.GetString("mode");
    summary.point.loss = point.GetString("loss");
    summary.point.variant = point.GetString("variant");
    if (point.Get("link") != nullptr) summary.point.link = point.GetString("link");
    if (const JsonValue* extras = point.Get("extras")) {
      for (const JsonValue& extra : extras->Items()) {
        SweepAxisValue value;
        value.label = extra.GetString("label");
        value.value = static_cast<std::int64_t>(extra.GetNumber("value"));
        summary.point.extras.emplace_back(extra.GetString("axis"), value);
      }
    }
    summary.point.rtt_ms = point.GetNumber("rtt_ms");
    summary.point.delta_ms = point.GetNumber("delta_ms");
    summary.point.certificate_bytes = static_cast<std::size_t>(point.GetNumber("cert_bytes"));

    const JsonValue* metrics = point.Get("metrics");
    if (metrics == nullptr) return fail("point " + std::to_string(summary.point.index) +
                                        " misses its 'metrics' array");
    for (const JsonValue& metric : metrics->Items()) {
      MetricSeries series;
      series.name = metric.GetString("name");
      const std::string& mode = metric.GetString("mode");
      if (mode != "summary" && mode != "trace") {
        return fail("unknown metric mode '" + mode + "'");
      }
      series.mode = mode == "trace" ? MetricMode::kTrace : MetricMode::kSummary;
      series.aborted = static_cast<std::size_t>(metric.GetNumber("aborted"));
      series.skipped = static_cast<std::size_t>(metric.GetNumber("skipped"));
      if (series.mode == MetricMode::kTrace) {
        if (const JsonValue* trace = metric.Get("trace")) series.trace = ParseDoubleArray(*trace);
      } else {
        stats::AccumulatorState state;
        state.capacity = result.reservoir_capacity;
        if (const JsonValue* overflow = metric.Get("overflow")) {
          state.overflowed = true;
          state.count = static_cast<std::size_t>(overflow->GetNumber("count"));
          state.mean = overflow->GetNumber("mean");
          state.m2 = overflow->GetNumber("m2");
          state.min = overflow->GetNumber("min");
          state.max = overflow->GetNumber("max");
          state.histo_lo = overflow->GetNumber("lo");
          state.histo_hi = overflow->GetNumber("hi");
          if (const JsonValue* bins = overflow->Get("bins")) {
            state.bins = ParseSizeArray(*bins);
          }
        } else if (const JsonValue* samples = metric.Get("samples")) {
          state.samples = ParseDoubleArray(*samples);
        }
        series.summary = stats::Accumulator::FromState(state);
      }
      summary.metrics.push_back(std::move(series));
    }
    result.points.push_back(std::move(summary));
  }

  const std::size_t reps =
      result.repetitions > 0 ? static_cast<std::size_t>(result.repetitions) : 0;
  const std::pair<std::size_t, std::size_t> window = result.shard.RepWindow(reps);
  std::size_t executed_points = 0;
  for (const PointSummary& summary : result.points) {
    if (summary.executed) ++executed_points;
  }
  result.total_runs = result.points.size() * reps;
  result.executed_runs = executed_points * (window.second - window.first);
  return result;
}

std::optional<SweepResult> ReadSweepPartialFile(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in.is_open()) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseSweepPartialJson(buffer.str(), error);
}

std::string SweepPartialFileName(const SweepResult& result) {
  std::string stem = result.name + "_sweep";
  if (!result.shard.points.empty()) {
    stem += ".points";
  } else if (result.shard.count > 1) {
    stem += ".shard" + std::to_string(result.shard.index) + "of" +
            std::to_string(result.shard.count);
  }
  if (result.shard.rep_begin != 0 || result.shard.rep_end != 0) {
    stem += ".reps" + std::to_string(result.shard.rep_begin) + "to" +
            (result.shard.rep_end == 0 ? std::string("end")
                                       : std::to_string(result.shard.rep_end));
  }
  if (stem == result.name + "_sweep") stem += ".partial";
  return stem + ".json";
}

bool WriteSweepData(const SweepResult& result, const std::string& directory) {
  if (result.name.empty()) return false;
  // A sweep deselected by only_sweep (the sibling of a targeted sweep) ran
  // nothing: writing even an empty partial would clobber or pollute the
  // exports of the run that actually targets it.
  if (result.deselected) return true;
  if (!result.sharded()) {
    CsvWriter csv(directory, result.name + "_sweep", SweepCsvHeader());
    if (!csv.active()) return false;
    WriteSweepCsv(result, csv);
    std::ofstream json(directory + "/" + result.name + "_sweep.json");
    if (!json.is_open()) return false;
    json << SweepResultJson(result);
    if (!result.partial()) return true;
    // Budget-skipped points remain: also leave a partial-result file so a
    // later --points rerun can be merged in.
  }
  std::ofstream partial(directory + "/" + SweepPartialFileName(result));
  if (!partial.is_open()) return false;
  partial << SweepPartialJson(result);
  return true;
}

bool MaybeWriteSweepData(const SweepResult& result) {
  const auto dir = DataDirFromEnv();
  if (!dir) return false;
  return WriteSweepData(result, *dir);
}

bool MergeSweepPartialFiles(const std::vector<std::string>& files, const std::string& out_dir,
                            std::FILE* log, std::vector<SweepResult>* merged_out) {
  // Group the partials by sweep name, in first-seen order.
  std::vector<std::pair<std::string, std::vector<SweepResult>>> groups;
  bool ok = true;
  for (const std::string& file : files) {
    std::string error;
    std::optional<SweepResult> partial = ReadSweepPartialFile(file, &error);
    if (!partial) {
      if (log != nullptr) std::fprintf(log, "%s: %s\n", file.c_str(), error.c_str());
      ok = false;
      continue;
    }
    auto group = groups.begin();
    for (; group != groups.end(); ++group) {
      if (group->first == partial->name) break;
    }
    if (group == groups.end()) {
      groups.push_back({partial->name, {}});
      group = groups.end() - 1;
    }
    group->second.push_back(std::move(*partial));
  }

  for (const auto& [name, partials] : groups) {
    std::string error;
    const std::optional<SweepResult> merged = MergeSweepResults(partials, &error);
    if (!merged) {
      if (log != nullptr) std::fprintf(log, "merge failed: %s\n", error.c_str());
      ok = false;
      continue;
    }
    if (!WriteSweepData(*merged, out_dir)) {
      if (log != nullptr) {
        std::fprintf(log, "cannot write merged exports for sweep '%s' into '%s'\n",
                     name.c_str(), out_dir.c_str());
      }
      ok = false;
      continue;
    }
    if (log != nullptr) {
      const std::vector<std::size_t> still_skipped = merged->BudgetSkippedPoints();
      std::fprintf(log, "[%s] merged %zu partials: %zu points, %zu runs%s\n", name.c_str(),
                   partials.size(), merged->points.size(), merged->executed_runs,
                   still_skipped.empty()
                       ? ""
                       : (" (" + std::to_string(still_skipped.size()) +
                          " budget-skipped points remain — see the partial file)")
                             .c_str());
    }
    if (merged_out != nullptr) merged_out->push_back(*merged);
  }
  return ok;
}

}  // namespace quicer::core
