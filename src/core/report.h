// Plain-text report rendering for the benchmark binaries.
//
// Each bench regenerates one of the paper's tables/figures as text: headers,
// aligned rows, and ASCII scatter strips that mimic the per-measurement
// diamond plots (Fig 5/6/7/12/13).
#pragma once

#include <string>
#include <vector>

#include "sim/time.h"
#include "stats/accumulator.h"

namespace quicer::core {

/// Prints a boxed section title to stdout.
void PrintTitle(const std::string& title);

/// Prints a secondary heading.
void PrintHeading(const std::string& heading);

/// Formats a duration as milliseconds with one decimal.
std::string FormatMs(sim::Duration d);

/// Formats a double with the given precision.
std::string FormatDouble(double value, int precision = 1);

/// Renders a one-line ASCII scatter of `values` over [lo, hi]: each sample
/// becomes a diamond-ish marker; stacked samples darken the cell. The median
/// is marked with '|'.
std::string RenderScatter(const std::vector<double>& values, double lo, double hi,
                          std::size_t width = 60);

/// Scatter strip straight from a sweep point's accumulator (uses the
/// retained reservoir samples; renders an empty strip after overflow).
/// Distinctly named: an overload would be ambiguous for braced-init calls.
std::string RenderAccumulatorScatter(const stats::Accumulator& values, double lo, double hi,
                                     std::size_t width = 60);

/// Renders a simple series as "x -> y" aligned columns.
void PrintSeries(const std::string& x_label, const std::string& y_label,
                 const std::vector<std::pair<double, double>>& points);

}  // namespace quicer::core
