#include "core/scenario.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/json.h"
#include "core/loss_scenarios.h"
#include "netem/codec.h"

namespace quicer::core {
namespace {

constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

std::string Quoted(std::string_view s) { return "\"" + JsonEscape(std::string(s)) + "\""; }

// ---------------------------------------------------------------------------
// Low-level value resolvers, shared between the base-config descriptor table
// and the axis parsers (one source of truth for labels and ranges).
// ---------------------------------------------------------------------------

bool ResolveClient(const JsonValue& v, clients::ClientImpl& out, std::string& error) {
  if (v.type() == JsonValue::Type::kString) {
    for (clients::ClientImpl impl : clients::kAllClients) {
      if (v.AsString() == clients::Name(impl)) {
        out = impl;
        return true;
      }
    }
  }
  std::string valid;
  for (clients::ClientImpl impl : clients::kAllClients) {
    if (!valid.empty()) valid += ", ";
    valid += clients::Name(impl);
  }
  error = "unknown client " +
          (v.type() == JsonValue::Type::kString ? "'" + v.AsString() + "'"
                                                : std::string("(not a string)")) +
          " (valid: " + valid + ")";
  return false;
}

bool ResolveHttp(const JsonValue& v, http::Version& out, std::string& error) {
  for (http::Version version : {http::Version::kHttp1, http::Version::kHttp3}) {
    if (v.type() == JsonValue::Type::kString && v.AsString() == http::ToString(version)) {
      out = version;
      return true;
    }
  }
  error = "unknown HTTP version (valid: \"" + std::string(http::ToString(http::Version::kHttp1)) +
          "\", \"" + std::string(http::ToString(http::Version::kHttp3)) + "\")";
  return false;
}

bool ResolveBehavior(const JsonValue& v, quic::ServerBehavior& out, std::string& error) {
  for (quic::ServerBehavior behavior :
       {quic::ServerBehavior::kWaitForCertificate, quic::ServerBehavior::kInstantAck}) {
    if (v.type() == JsonValue::Type::kString && v.AsString() == quic::ToString(behavior)) {
      out = behavior;
      return true;
    }
  }
  error = "unknown server behavior (valid: \"WFC\", \"IACK\")";
  return false;
}

bool ResolveMode(const JsonValue& v, HandshakeMode& out, std::string& error) {
  if (v.type() == JsonValue::Type::kString) {
    if (const std::optional<HandshakeMode> mode = HandshakeModeFromString(v.AsString())) {
      out = *mode;
      return true;
    }
  }
  error = "unknown handshake mode (valid: \"1-RTT\", \"0-RTT\", \"Retry\")";
  return false;
}

/// A finite number; `minimum` is inclusive.
bool ResolveNumber(const JsonValue& v, double minimum, double& out, std::string& error) {
  if (v.type() != JsonValue::Type::kNumber || !std::isfinite(v.AsNumber())) {
    error = "expected a number";
    return false;
  }
  if (v.AsNumber() < minimum) {
    error = "value " + JsonNumber(v.AsNumber()) + " is below the minimum " +
            JsonNumber(minimum);
    return false;
  }
  out = v.AsNumber();
  return true;
}

/// A non-negative duration in milliseconds; stored in microsecond ticks
/// (llround, so ToMillis round-trips exactly).
bool ResolveMs(const JsonValue& v, sim::Duration& out, std::string& error) {
  double ms = 0.0;
  if (!ResolveNumber(v, 0.0, ms, error)) return false;
  out = static_cast<sim::Duration>(std::llround(ms * 1000.0));
  return true;
}

/// An integral count with an inclusive minimum.
bool ResolveSize(const JsonValue& v, double minimum, std::size_t& out, std::string& error) {
  double n = 0.0;
  if (!ResolveNumber(v, minimum, n, error)) return false;
  if (n != std::floor(n) || n > kMaxExactInteger) {
    error = "expected an integer, got " + JsonNumber(n);
    return false;
  }
  out = static_cast<std::size_t>(n);
  return true;
}

bool ResolveBool(const JsonValue& v, bool& out, std::string& error) {
  if (v.type() != JsonValue::Type::kBool) {
    error = "expected true or false";
    return false;
  }
  out = v.AsBool();
  return true;
}

/// Full-range uint64, serialized as a decimal string (JSON numbers are
/// doubles and would round seeds above 2^53).
bool ResolveU64(const JsonValue& v, std::uint64_t& out, std::string& error) {
  if (v.type() != JsonValue::Type::kString || v.AsString().empty()) {
    error = "expected a decimal string (seeds are full-range uint64)";
    return false;
  }
  const std::string& s = v.AsString();
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(s.c_str(), &end, 10);
  if (*end != '\0' || errno != 0 || s[0] == '-') {
    error = "'" + s + "' is not a decimal uint64";
    return false;
  }
  out = parsed;
  return true;
}

std::string WriteMs(sim::Duration d) { return JsonNumber(sim::ToMillis(d)); }
std::string WriteBool(bool b) { return b ? "true" : "false"; }
std::string WriteU64(std::uint64_t v) { return "\"" + std::to_string(v) + "\""; }

}  // namespace

const std::vector<ConfigFieldSpec>& ConfigFields() {
  static const std::vector<ConfigFieldSpec>* fields = new std::vector<ConfigFieldSpec>{
      {"client", "enum", "client implementation profile (Table 4)",
       [](const ExperimentConfig& c) { return Quoted(clients::Name(c.client)); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveClient(v, c.client, e);
       }},
      {"http", "enum", "HTTP version of the single GET",
       [](const ExperimentConfig& c) { return Quoted(http::ToString(c.http)); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveHttp(v, c.http, e);
       }},
      {"behavior", "enum", "server certificate strategy: WFC or IACK",
       [](const ExperimentConfig& c) { return Quoted(quic::ToString(c.behavior)); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveBehavior(v, c.behavior, e);
       }},
      {"mode", "enum", "handshake type: 1-RTT, 0-RTT or Retry (§5)",
       [](const ExperimentConfig& c) { return Quoted(ToString(c.mode)); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveMode(v, c.mode, e);
       }},
      {"client_use_retry_rtt_sample", "bool",
       "Retry handshakes: client seeds its RTT estimate from the token round trip",
       [](const ExperimentConfig& c) { return WriteBool(c.client_use_retry_rtt_sample); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveBool(v, c.client_use_retry_rtt_sample, e);
       }},
      {"rtt_ms", "ms", "path round-trip time (symmetric one-way delays)",
       [](const ExperimentConfig& c) { return WriteMs(c.rtt); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveMs(v, c.rtt, e);
       }},
      {"bandwidth_bps", "number", "bottleneck bandwidth in bits/s",
       [](const ExperimentConfig& c) { return JsonNumber(c.bandwidth_bps); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         double bps = 0.0;
         if (!ResolveNumber(v, 0.0, bps, e)) return false;
         if (bps <= 0.0) {
           e = "bandwidth must be positive";
           return false;
         }
         c.bandwidth_bps = bps;
         return true;
       }},
      {"path_jitter_ms", "ms", "per-datagram path jitter (0 in all paper runs)",
       [](const ExperimentConfig& c) { return WriteMs(c.path_jitter); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveMs(v, c.path_jitter, e);
       }},
      {"certificate_bytes", "bytes", "TLS certificate chain size (paper: 1212 or 5113)",
       [](const ExperimentConfig& c) { return std::to_string(c.certificate_bytes); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveSize(v, 1.0, c.certificate_bytes, e);
       }},
      {"cert_fetch_delay_ms", "ms", "backend certificate-store delay Δt",
       [](const ExperimentConfig& c) { return WriteMs(c.cert_fetch_delay); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveMs(v, c.cert_fetch_delay, e);
       }},
      {"cert_cached", "bool", "certificate already cached at the frontend (Δt = 0)",
       [](const ExperimentConfig& c) { return WriteBool(c.cert_cached); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveBool(v, c.cert_cached, e);
       }},
      {"signing_median_ms", "ms", "median certificate-signing latency (§4.1)",
       [](const ExperimentConfig& c) { return WriteMs(c.signing.median); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveMs(v, c.signing.median, e);
       }},
      {"signing_sigma", "number", "log-normal signing jitter sigma (0 = deterministic)",
       [](const ExperimentConfig& c) { return JsonNumber(c.signing.sigma); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveNumber(v, 0.0, c.signing.sigma, e);
       }},
      {"response_body_bytes", "bytes", "response body size (paper: 10 KB / 10 MB)",
       [](const ExperimentConfig& c) { return std::to_string(c.response_body_bytes); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveSize(v, 0.0, c.response_body_bytes, e);
       }},
      {"server_default_pto_ms", "ms", "server default PTO before an RTT sample (quic-go: 200)",
       [](const ExperimentConfig& c) { return WriteMs(c.server_default_pto); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveMs(v, c.server_default_pto, e);
       }},
      {"pad_instant_ack", "bool", "pad the instant ACK to an ack-eliciting full datagram",
       [](const ExperimentConfig& c) { return WriteBool(c.pad_instant_ack); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveBool(v, c.pad_instant_ack, e);
       }},
      {"client_probe_with_data", "bool",
       "§5 tuning: client probes re-send the ClientHello instead of PINGs",
       [](const ExperimentConfig& c) { return WriteBool(c.client_probe_with_data); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveBool(v, c.client_probe_with_data, e);
       }},
      {"seed", "uint64", "base RNG seed (decimal string)",
       [](const ExperimentConfig& c) { return WriteU64(c.seed); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return ResolveU64(v, c.seed, e);
       }},
      {"time_limit_ms", "ms", "simulated-time budget per run",
       [](const ExperimentConfig& c) { return WriteMs(c.time_limit); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         if (!ResolveMs(v, c.time_limit, e)) return false;
         if (c.time_limit <= 0) {
           e = "time limit must be positive";
           return false;
         }
         return true;
       }},
      {"link", "object",
       "netem link model: stochastic loss / bottleneck queue / asymmetric path "
       "(`{}` = the paper's legacy pipe; see docs/netem)",
       [](const ExperimentConfig& c) { return netem::LinkModelJson(c.link); },
       [](const JsonValue& v, ExperimentConfig& c, std::string& e) {
         return netem::ParseLinkModel(v, c.link, e);
       }},
  };
  return *fields;
}

namespace {

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

void AppendMsArray(std::string& out, const std::vector<sim::Duration>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += JsonNumber(sim::ToMillis(values[i]));
  }
  out += ']';
}

template <typename T, typename NameFn>
void AppendLabelArray(std::string& out, const std::vector<T>& values, NameFn name) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += Quoted(name(values[i]));
  }
  out += ']';
}

}  // namespace

std::string ScenarioJson(const SweepSpec& spec, std::string_view bench, int indent) {
  const std::string pad(indent, ' ');
  const std::string in1 = pad + "  ";
  const std::string in2 = pad + "    ";
  std::string out = pad + "{\n";
  if (!bench.empty()) out += in1 + "\"bench\": " + Quoted(bench) + ",\n";
  out += in1 + "\"sweep\": " + Quoted(spec.name) + ",\n";
  out += in1 + "\"repetitions\": " + std::to_string(spec.repetitions) + ",\n";
  out += in1 + "\"seed_base\": " + WriteU64(spec.seed_base) + ",\n";
  out += in1 + "\"seed_stride\": " + WriteU64(spec.seed_stride) + ",\n";
  out += in1 + "\"skip_unsupported_http3\": " + WriteBool(spec.skip_unsupported_http3) + ",\n";
  out += in1 + "\"reservoir_capacity\": " + std::to_string(spec.reservoir_capacity) + ",\n";

  out += in1 + "\"base\": {\n";
  const std::vector<ConfigFieldSpec>& fields = ConfigFields();
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out += in2 + "\"" + fields[i].name + "\": " + fields[i].write(spec.base);
    out += i + 1 < fields.size() ? ",\n" : "\n";
  }
  out += in1 + "},\n";

  out += in1 + "\"axes\": {\n";
  out += in2 + "\"clients\": ";
  AppendLabelArray(out, spec.axes.clients, [](clients::ClientImpl c) { return clients::Name(c); });
  out += ",\n" + in2 + "\"http\": ";
  AppendLabelArray(out, spec.axes.http_versions, [](http::Version v) { return http::ToString(v); });
  out += ",\n" + in2 + "\"behaviors\": ";
  AppendLabelArray(out, spec.axes.behaviors,
                   [](quic::ServerBehavior b) { return std::string_view(quic::ToString(b)); });
  out += ",\n" + in2 + "\"modes\": ";
  AppendLabelArray(out, spec.axes.modes, [](HandshakeMode m) { return ToString(m); });
  out += ",\n" + in2 + "\"rtts_ms\": ";
  AppendMsArray(out, spec.axes.rtts);
  out += ",\n" + in2 + "\"cert_fetch_delays_ms\": ";
  AppendMsArray(out, spec.axes.cert_fetch_delays);
  out += ",\n" + in2 + "\"certificate_sizes\": ";
  AppendJsonSizeArray(out, spec.axes.certificate_sizes);
  out += ",\n" + in2 + "\"losses\": ";
  AppendLabelArray(out, spec.axes.losses,
                   [](const SweepLoss& l) { return std::string_view(l.label); });
  out += ",\n" + in2 + "\"variants\": ";
  AppendLabelArray(out, spec.axes.variants,
                   [](const SweepVariant& v) { return std::string_view(v.label); });
  out += ",\n" + in2 + "\"links\": [";
  for (std::size_t l = 0; l < spec.axes.links.size(); ++l) {
    const SweepLink& link = spec.axes.links[l];
    out += l == 0 ? "\n" : ",\n";
    out += in2 + "  {\"label\": " + Quoted(link.label) +
           ", \"link\": " + netem::LinkModelJson(link.model) + "}";
    if (l + 1 == spec.axes.links.size()) out += "\n" + in2;
  }
  out += "]";
  out += ",\n" + in2 + "\"extras\": [";
  for (std::size_t a = 0; a < spec.axes.extras.size(); ++a) {
    const SweepExtraAxis& axis = spec.axes.extras[a];
    out += a == 0 ? "\n" : ",\n";
    out += in2 + "  {\"name\": " + Quoted(axis.name) + ", \"values\": [";
    for (std::size_t v = 0; v < axis.values.size(); ++v) {
      if (v != 0) out += ", ";
      out += "{\"label\": " + Quoted(axis.values[v].label) +
             ", \"value\": " + std::to_string(axis.values[v].value) + "}";
    }
    out += "]}";
    if (a + 1 == spec.axes.extras.size()) out += "\n" + in2;
  }
  out += "]\n";
  out += in1 + "},\n";

  out += in1 + "\"metrics\": [";
  for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
    const MetricSpec& metric = spec.metrics[m];
    out += m == 0 ? "\n" : ",\n";
    out += in2 + "{\"name\": " + Quoted(metric.name) + ", \"mode\": \"" +
           std::string(ToString(metric.mode)) +
           "\", \"exclude_negative\": " + WriteBool(metric.exclude_negative) + "}";
    if (m + 1 == spec.metrics.size()) out += "\n" + in1;
  }
  out += "]\n";
  out += pad + "}";
  return out;
}

std::string ScenarioFileJson(
    const std::vector<std::pair<std::string, const SweepSpec*>>& specs) {
  std::string out = "{\n  \"format\": \"" + std::string(kScenarioFormat) + "\",\n";
  out += "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    out += ScenarioJson(*specs[i].second, specs[i].first, 4);
    out += i + 1 < specs.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

struct ParseContext {
  std::string error;  // empty = ok

  bool Fail(const std::string& path, const std::string& message) {
    if (error.empty()) error = path + ": " + message;
    return false;
  }
};

bool ParseMetric(const JsonValue& v, const std::string& path, Scenario::Metric& metric,
                 ParseContext& ctx) {
  if (v.type() != JsonValue::Type::kObject) return ctx.Fail(path, "expected an object");
  for (const auto& [key, value] : v.Members()) {
    std::string e;
    if (key == "name") {
      if (value.type() != JsonValue::Type::kString || value.AsString().empty()) {
        return ctx.Fail(path + ".name", "expected a non-empty string");
      }
      metric.name = value.AsString();
    } else if (key == "mode") {
      if (value.type() == JsonValue::Type::kString && value.AsString() == "summary") {
        metric.mode = MetricMode::kSummary;
      } else if (value.type() == JsonValue::Type::kString && value.AsString() == "trace") {
        metric.mode = MetricMode::kTrace;
      } else {
        return ctx.Fail(path + ".mode", "unknown metric mode (valid: \"summary\", \"trace\")");
      }
    } else if (key == "exclude_negative") {
      if (!ResolveBool(value, metric.exclude_negative, e)) {
        return ctx.Fail(path + ".exclude_negative", e);
      }
    } else {
      return ctx.Fail(path, "unknown metric field '" + key +
                                "' (known: name, mode, exclude_negative)");
    }
  }
  if (metric.name.empty()) return ctx.Fail(path, "metric misses its 'name'");
  return true;
}

bool ParseExtras(const JsonValue& v, const std::string& path,
                 std::vector<SweepExtraAxis>& extras, ParseContext& ctx) {
  if (v.type() != JsonValue::Type::kArray) return ctx.Fail(path, "expected an array");
  for (std::size_t a = 0; a < v.Items().size(); ++a) {
    const JsonValue& entry = v.Items()[a];
    const std::string entry_path = path + "[" + std::to_string(a) + "]";
    if (entry.type() != JsonValue::Type::kObject) {
      return ctx.Fail(entry_path, "expected an object");
    }
    SweepExtraAxis axis;
    for (const auto& [key, value] : entry.Members()) {
      if (key == "name") {
        if (value.type() != JsonValue::Type::kString || value.AsString().empty()) {
          return ctx.Fail(entry_path + ".name", "expected a non-empty string");
        }
        axis.name = value.AsString();
      } else if (key == "values") {
        if (value.type() != JsonValue::Type::kArray) {
          return ctx.Fail(entry_path + ".values", "expected an array");
        }
        for (std::size_t i = 0; i < value.Items().size(); ++i) {
          const JsonValue& item = value.Items()[i];
          const std::string item_path = entry_path + ".values[" + std::to_string(i) + "]";
          if (item.type() != JsonValue::Type::kObject) {
            return ctx.Fail(item_path, "expected an object");
          }
          SweepAxisValue axis_value;
          for (const auto& [vkey, vvalue] : item.Members()) {
            if (vkey == "label") {
              if (vvalue.type() != JsonValue::Type::kString) {
                return ctx.Fail(item_path + ".label", "expected a string");
              }
              axis_value.label = vvalue.AsString();
            } else if (vkey == "value") {
              if (vvalue.type() != JsonValue::Type::kNumber ||
                  vvalue.AsNumber() != std::floor(vvalue.AsNumber()) ||
                  std::abs(vvalue.AsNumber()) > kMaxExactInteger) {
                return ctx.Fail(item_path + ".value", "expected an integer");
              }
              axis_value.value = static_cast<std::int64_t>(vvalue.AsNumber());
            } else {
              return ctx.Fail(item_path, "unknown field '" + vkey + "' (known: label, value)");
            }
          }
          axis.values.push_back(std::move(axis_value));
        }
      } else {
        return ctx.Fail(entry_path, "unknown field '" + key + "' (known: name, values)");
      }
    }
    if (axis.name.empty()) return ctx.Fail(entry_path, "extra axis misses its 'name'");
    extras.push_back(std::move(axis));
  }
  return true;
}

/// Parses the links axis: [{"label": ..., "link": MODEL}, ...]. Pure data —
/// the models travel structurally, never by label resolution.
bool ParseLinks(const JsonValue& v, const std::string& path, std::vector<SweepLink>& links,
                ParseContext& ctx) {
  if (v.type() != JsonValue::Type::kArray) return ctx.Fail(path, "expected an array");
  for (std::size_t i = 0; i < v.Items().size(); ++i) {
    const JsonValue& entry = v.Items()[i];
    const std::string entry_path = path + "[" + std::to_string(i) + "]";
    if (entry.type() != JsonValue::Type::kObject) {
      return ctx.Fail(entry_path, "expected an object");
    }
    SweepLink link;
    bool have_model = false;
    for (const auto& [key, value] : entry.Members()) {
      if (key == "label") {
        if (value.type() != JsonValue::Type::kString || value.AsString().empty()) {
          return ctx.Fail(entry_path + ".label", "expected a non-empty string");
        }
        link.label = value.AsString();
      } else if (key == "link") {
        std::string e;
        if (!netem::ParseLinkModel(value, link.model, e)) {
          return ctx.Fail(entry_path + ".link", e);
        }
        have_model = true;
      } else {
        return ctx.Fail(entry_path, "unknown field '" + key + "' (known: label, link)");
      }
    }
    if (!have_model) return ctx.Fail(entry_path, "misses its 'link' model");
    links.push_back(std::move(link));
  }
  return true;
}

/// Parses an array of items with a per-item resolver.
template <typename T, typename Resolver>
bool ParseValueArray(const JsonValue& v, const std::string& path, std::vector<T>& out,
                     Resolver resolve, ParseContext& ctx) {
  if (v.type() != JsonValue::Type::kArray) return ctx.Fail(path, "expected an array");
  for (std::size_t i = 0; i < v.Items().size(); ++i) {
    T value{};
    std::string e;
    if (!resolve(v.Items()[i], value, e)) {
      return ctx.Fail(path + "[" + std::to_string(i) + "]", e);
    }
    out.push_back(std::move(value));
  }
  return true;
}

bool ParseStringArray(const JsonValue& v, const std::string& path,
                      std::vector<std::string>& out, ParseContext& ctx) {
  return ParseValueArray<std::string>(
      v, path, out,
      [](const JsonValue& item, std::string& value, std::string& e) {
        if (item.type() != JsonValue::Type::kString || item.AsString().empty()) {
          e = "expected a non-empty string";
          return false;
        }
        value = item.AsString();
        return true;
      },
      ctx);
}

bool ParseAxes(const JsonValue& v, const std::string& path, Scenario& scenario,
               ParseContext& ctx) {
  if (v.type() != JsonValue::Type::kObject) return ctx.Fail(path, "expected an object");
  for (const auto& [key, value] : v.Members()) {
    const std::string key_path = path + "." + key;
    if (key == "clients") {
      if (!ParseValueArray<clients::ClientImpl>(value, key_path, scenario.clients,
                                                ResolveClient, ctx)) {
        return false;
      }
    } else if (key == "http") {
      if (!ParseValueArray<http::Version>(value, key_path, scenario.http_versions,
                                          ResolveHttp, ctx)) {
        return false;
      }
    } else if (key == "behaviors") {
      if (!ParseValueArray<quic::ServerBehavior>(value, key_path, scenario.behaviors,
                                                 ResolveBehavior, ctx)) {
        return false;
      }
    } else if (key == "modes") {
      if (!ParseValueArray<HandshakeMode>(value, key_path, scenario.modes, ResolveMode, ctx)) {
        return false;
      }
    } else if (key == "rtts_ms") {
      if (!ParseValueArray<sim::Duration>(value, key_path, scenario.rtts, ResolveMs, ctx)) {
        return false;
      }
    } else if (key == "cert_fetch_delays_ms") {
      if (!ParseValueArray<sim::Duration>(value, key_path, scenario.cert_fetch_delays,
                                          ResolveMs, ctx)) {
        return false;
      }
    } else if (key == "certificate_sizes") {
      if (!ParseValueArray<std::size_t>(
              value, key_path, scenario.certificate_sizes,
              [](const JsonValue& item, std::size_t& out, std::string& e) {
                return ResolveSize(item, 1.0, out, e);
              },
              ctx)) {
        return false;
      }
    } else if (key == "losses") {
      if (!ParseStringArray(value, key_path, scenario.losses, ctx)) return false;
    } else if (key == "variants") {
      if (!ParseStringArray(value, key_path, scenario.variants, ctx)) return false;
    } else if (key == "links") {
      if (!ParseLinks(value, key_path, scenario.links, ctx)) return false;
    } else if (key == "extras") {
      if (!ParseExtras(value, key_path, scenario.extras, ctx)) return false;
    } else {
      return ctx.Fail(path, "unknown axis '" + key +
                                "' (known: clients, http, behaviors, modes, rtts_ms, "
                                "cert_fetch_delays_ms, certificate_sizes, losses, variants, "
                                "links, extras)");
    }
  }
  return true;
}

bool ParseScenarioObject(const JsonValue& v, const std::string& path, Scenario& scenario,
                         ParseContext& ctx) {
  if (v.type() != JsonValue::Type::kObject) return ctx.Fail(path, "expected an object");
  for (const auto& [key, value] : v.Members()) {
    const std::string key_path = path + "." + key;
    std::string e;
    if (key == "bench") {
      if (value.type() != JsonValue::Type::kString) return ctx.Fail(key_path, "expected a string");
      scenario.bench = value.AsString();
    } else if (key == "sweep") {
      if (value.type() != JsonValue::Type::kString || value.AsString().empty()) {
        return ctx.Fail(key_path, "expected a non-empty string");
      }
      scenario.sweep = value.AsString();
    } else if (key == "repetitions") {
      std::size_t reps = 0;
      if (!ResolveSize(value, 1.0, reps, e)) return ctx.Fail(key_path, e);
      if (reps > 1000000000) return ctx.Fail(key_path, "repetitions above 1e9");
      scenario.repetitions = static_cast<int>(reps);
    } else if (key == "seed_base") {
      if (!ResolveU64(value, scenario.seed_base, e)) return ctx.Fail(key_path, e);
    } else if (key == "seed_stride") {
      if (!ResolveU64(value, scenario.seed_stride, e)) return ctx.Fail(key_path, e);
    } else if (key == "skip_unsupported_http3") {
      if (!ResolveBool(value, scenario.skip_unsupported_http3, e)) return ctx.Fail(key_path, e);
    } else if (key == "reservoir_capacity") {
      if (!ResolveSize(value, 1.0, scenario.reservoir_capacity, e)) return ctx.Fail(key_path, e);
    } else if (key == "base") {
      if (value.type() != JsonValue::Type::kObject) return ctx.Fail(key_path, "expected an object");
      for (const auto& [field_name, field_value] : value.Members()) {
        const ConfigFieldSpec* field = nullptr;
        for (const ConfigFieldSpec& candidate : ConfigFields()) {
          if (candidate.name == field_name) {
            field = &candidate;
            break;
          }
        }
        if (field == nullptr) {
          std::string known;
          for (const ConfigFieldSpec& candidate : ConfigFields()) {
            if (!known.empty()) known += ", ";
            known += candidate.name;
          }
          return ctx.Fail(key_path, "unknown base field '" + field_name + "' (known: " +
                                        known + ")");
        }
        if (!field->read(field_value, scenario.base, e)) {
          return ctx.Fail(key_path + "." + field_name, e);
        }
      }
    } else if (key == "axes") {
      if (!ParseAxes(value, key_path, scenario, ctx)) return false;
    } else if (key == "metrics") {
      if (value.type() != JsonValue::Type::kArray) return ctx.Fail(key_path, "expected an array");
      for (std::size_t m = 0; m < value.Items().size(); ++m) {
        Scenario::Metric metric;
        if (!ParseMetric(value.Items()[m], key_path + "[" + std::to_string(m) + "]", metric,
                         ctx)) {
          return false;
        }
        scenario.metrics.push_back(std::move(metric));
      }
    } else {
      return ctx.Fail(path, "unknown scenario field '" + key +
                                "' (known: bench, sweep, repetitions, seed_base, seed_stride, "
                                "skip_unsupported_http3, reservoir_capacity, base, axes, "
                                "metrics)");
    }
  }
  if (scenario.sweep.empty()) return ctx.Fail(path, "scenario misses its 'sweep' name");
  return true;
}

}  // namespace

std::optional<std::vector<Scenario>> ParseScenarioFile(std::string_view text,
                                                       std::string* error) {
  auto fail = [error](std::string message) -> std::optional<std::vector<Scenario>> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  std::string parse_error;
  const std::optional<JsonValue> doc = JsonValue::Parse(text, &parse_error);
  if (!doc) return fail("invalid JSON: " + parse_error);
  if (doc->type() != JsonValue::Type::kObject) return fail("expected a JSON object");
  if (doc->GetString("format") != kScenarioFormat) {
    return fail("not a scenario file (format '" + doc->GetString("format") + "', expected '" +
                std::string(kScenarioFormat) + "')");
  }
  const JsonValue* scenarios = nullptr;
  for (const auto& [key, value] : doc->Members()) {
    if (key == "format") continue;
    if (key == "scenarios") {
      scenarios = &value;
      continue;
    }
    return fail("unknown top-level field '" + key + "' (known: format, scenarios)");
  }
  if (scenarios == nullptr || scenarios->type() != JsonValue::Type::kArray) {
    return fail("missing 'scenarios' array");
  }
  if (scenarios->Items().empty()) return fail("'scenarios' is empty");

  ParseContext ctx;
  std::vector<Scenario> out;
  for (std::size_t i = 0; i < scenarios->Items().size(); ++i) {
    Scenario scenario;
    if (!ParseScenarioObject(scenarios->Items()[i], "scenarios[" + std::to_string(i) + "]",
                             scenario, ctx)) {
      return fail(ctx.error);
    }
    out.push_back(std::move(scenario));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

namespace {

/// Builtin loss scenarios addressable from any grid file, independent of
/// what the host sweep compiled in. Every `make` resolves against the fully
/// resolved point config, like the bench-declared ones.
const std::vector<SweepLoss>& BuiltinLosses() {
  static const std::vector<SweepLoss>* losses = new std::vector<SweepLoss>{
      {"none", nullptr},
      {"first-server-flight-tail",
       [](const ExperimentConfig& c) {
         return FirstServerFlightTailLoss(c.behavior, c.certificate_bytes, c.http);
       }},
      {"second-client-flight",
       [](const ExperimentConfig& c) { return SecondClientFlightLoss(c.client); }},
  };
  return *losses;
}

/// Builtin metric extractors for the default experiment runner.
const MetricSpec* BuiltinMetric(const std::string& name) {
  static const std::vector<MetricSpec>* metrics = new std::vector<MetricSpec>{
      {"ttfb_ms", MetricMode::kSummary, true, nullptr},
      {"response_ttfb_ms", MetricMode::kSummary, true,
       [](const ExperimentResult& r) { return r.ResponseTtfbMs(); }},
  };
  for (const MetricSpec& metric : *metrics) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

std::string KnownLabels(const std::vector<std::string>& host,
                        const std::vector<std::string>& builtin) {
  std::string out;
  for (const std::vector<std::string>* group : {&host, &builtin}) {
    for (const std::string& label : *group) {
      if (out.find("'" + label + "'") != std::string::npos) continue;
      if (!out.empty()) out += ", ";
      out += "'" + label + "'";
    }
  }
  return out.empty() ? "(none)" : out;
}

}  // namespace

bool ApplyScenario(const Scenario& scenario, SweepSpec& spec, std::string* error) {
  auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  if (scenario.sweep != spec.name) {
    return fail("scenario targets sweep '" + scenario.sweep + "' but the live spec is '" +
                spec.name + "'");
  }

  // Resolve function-valued labels against the live spec first (it owns the
  // exact closures the compiled grid uses), builtins second.
  std::vector<SweepLoss> losses;
  for (const std::string& label : scenario.losses) {
    const SweepLoss* found = nullptr;
    for (const SweepLoss& host : spec.axes.losses) {
      if (host.label == label) found = &host;
    }
    if (found == nullptr) {
      for (const SweepLoss& builtin : BuiltinLosses()) {
        if (builtin.label == label) found = &builtin;
      }
    }
    if (found == nullptr) {
      std::vector<std::string> host_labels, builtin_labels;
      for (const SweepLoss& host : spec.axes.losses) host_labels.push_back(host.label);
      for (const SweepLoss& builtin : BuiltinLosses()) builtin_labels.push_back(builtin.label);
      return fail("sweep '" + spec.name + "': unknown loss scenario '" + label +
                  "' (known: " + KnownLabels(host_labels, builtin_labels) + ")");
    }
    losses.push_back(*found);
  }

  std::vector<SweepVariant> variants;
  for (const std::string& label : scenario.variants) {
    const SweepVariant* found = nullptr;
    for (const SweepVariant& host : spec.axes.variants) {
      if (host.label == label) found = &host;
    }
    if (found == nullptr && label == "base") {
      static const SweepVariant* base = new SweepVariant{};
      found = base;
    }
    if (found == nullptr) {
      std::vector<std::string> host_labels;
      for (const SweepVariant& host : spec.axes.variants) host_labels.push_back(host.label);
      return fail("sweep '" + spec.name + "': unknown variant '" + label +
                  "' (known: " + KnownLabels(host_labels, {"base"}) +
                  "; variants are C++ config mutations and resolve by label against the "
                  "compiled-in sweep)");
    }
    variants.push_back(*found);
  }

  std::vector<MetricSpec> metrics;
  for (const Scenario::Metric& wanted : scenario.metrics) {
    MetricSpec resolved;
    resolved.name = wanted.name;
    resolved.mode = wanted.mode;
    resolved.exclude_negative = wanted.exclude_negative;
    const MetricSpec* found = nullptr;
    for (const MetricSpec& host : spec.metrics) {
      if (host.name == wanted.name) found = &host;
    }
    if (found == nullptr) found = BuiltinMetric(wanted.name);
    if (found != nullptr) {
      resolved.extract = found->extract;
    } else if (!spec.runner) {
      // The default experiment runner needs an extractor; a custom runner
      // produces values positionally and any metric name is fine.
      std::vector<std::string> host_names, builtin_names = {"ttfb_ms", "response_ttfb_ms"};
      for (const MetricSpec& host : spec.metrics) host_names.push_back(host.name);
      return fail("sweep '" + spec.name + "': unknown metric '" + wanted.name +
                  "' (known: " + KnownLabels(host_names, builtin_names) + ")");
    }
    metrics.push_back(std::move(resolved));
  }

  spec.base = scenario.base;
  spec.repetitions = scenario.repetitions;
  spec.seed_base = scenario.seed_base;
  spec.seed_stride = scenario.seed_stride;
  spec.skip_unsupported_http3 = scenario.skip_unsupported_http3;
  spec.reservoir_capacity = scenario.reservoir_capacity;
  spec.axes.clients = scenario.clients;
  spec.axes.http_versions = scenario.http_versions;
  spec.axes.behaviors = scenario.behaviors;
  spec.axes.modes = scenario.modes;
  spec.axes.rtts = scenario.rtts;
  spec.axes.cert_fetch_delays = scenario.cert_fetch_delays;
  spec.axes.certificate_sizes = scenario.certificate_sizes;
  spec.axes.losses = std::move(losses);
  spec.axes.variants = std::move(variants);
  spec.axes.links = scenario.links;
  spec.axes.extras = scenario.extras;
  spec.metrics = std::move(metrics);
  return true;
}

std::uint64_t ScenarioHash(const SweepSpec& spec) {
  const std::string canonical = ScenarioJson(spec, /*bench=*/"");
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a 64 offset basis
  for (const char c : canonical) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

std::string ScenarioHashHex(std::uint64_t hash) {
  if (hash == 0) return "0";
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(hash));
  return buffer;
}

std::string ScenarioSchemaMarkdown() {
  const ExperimentConfig defaults;
  std::string out = "| field | type | default | description |\n";
  out += "|---|---|---|---|\n";
  for (const ConfigFieldSpec& field : ConfigFields()) {
    out += "| `" + field.name + "` | " + field.type + " | `" + field.write(defaults) +
           "` | " + field.doc + " |\n";
  }
  return out;
}

}  // namespace quicer::core
