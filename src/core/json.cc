#include "core/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace quicer::core {
namespace {

const std::string kEmptyString;
const std::vector<JsonValue> kEmptyItems;
const std::vector<std::pair<std::string, JsonValue>> kEmptyMembers;

}  // namespace

const std::string& JsonValue::AsString() const {
  return type_ == Type::kString ? string_ : kEmptyString;
}

const std::vector<JsonValue>& JsonValue::Items() const {
  return type_ == Type::kArray ? items_ : kEmptyItems;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::Members() const {
  return type_ == Type::kObject ? members_ : kEmptyMembers;
}

const JsonValue* JsonValue::Get(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* value = Get(key);
  return value == nullptr ? fallback : value->AsNumber(fallback);
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* value = Get(key);
  return value == nullptr ? fallback : value->AsBool(fallback);
}

const std::string& JsonValue::GetString(std::string_view key) const {
  const JsonValue* value = Get(key);
  return value == nullptr ? kEmptyString : value->AsString();
}

/// Recursive-descent parser over the document text. Depth is bounded to
/// keep adversarial inputs from exhausting the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Parse(std::string* error) {
    JsonValue value;
    if (!ParseValue(value, 0)) {
      if (error != nullptr) *error = error_ + " (offset " + std::to_string(pos_) + ")";
      return std::nullopt;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters after document (offset " + std::to_string(pos_) + ")";
      }
      return std::nullopt;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const std::string& message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool ParseString(std::string& out) {
    if (!Consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escaped = text_[pos_++];
      switch (escaped) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        default: return Fail("unsupported escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return Fail("document too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of document");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"':
        out.type_ = JsonValue::Type::kString;
        return ParseString(out.string_);
      case 't':
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = true;
        return ConsumeLiteral("true");
      case 'f':
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = false;
        return ConsumeLiteral("false");
      case 'n':
        out.type_ = JsonValue::Type::kNull;
        return ConsumeLiteral("null");
      default: return ParseNumber(out);
    }
  }

  bool ParseNumber(JsonValue& out) {
    // strtod accepts a superset (hex, inf); restrict the leading character
    // to JSON's grammar and let it handle the rest — the documents here are
    // machine-written with %.17g, which round-trips doubles exactly.
    const char first = text_[pos_];
    if (first != '-' && !std::isdigit(static_cast<unsigned char>(first))) {
      return Fail("unexpected character");
    }
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    out.number_ = std::strtod(begin, &end);
    if (end == begin) return Fail("malformed number");
    out.type_ = JsonValue::Type::kNumber;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool ParseArray(JsonValue& out, int depth) {
    if (!Consume('[')) return false;
    out.type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!ParseValue(item, depth + 1)) return false;
      out.items_.push_back(std::move(item));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue& out, int depth) {
    if (!Consume('{')) return false;
    out.type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(value, depth + 1)) return false;
      out.members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::optional<JsonValue> JsonValue::Parse(std::string_view text, std::string* error) {
  return JsonParser(text).Parse(error);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (std::isnan(v)) return "null";
  // Shortest representation that still round-trips exactly: scenario files
  // are hand-edited, so "2.8" beats "2.7999999999999998" — but byte-exact
  // parse-back is what the sharded/merged byte-identity rests on, so wider
  // precision is used whenever the short form is lossy.
  char buffer[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, v);
    if (std::strtod(buffer, nullptr) == v) break;
  }
  return buffer;
}

void AppendJsonSizeArray(std::string& out, const std::vector<std::size_t>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(values[i]);
  }
  out += ']';
}

}  // namespace quicer::core
