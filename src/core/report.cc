#include "core/report.h"

#include <algorithm>
#include <cstdio>

#include "stats/stats.h"

namespace quicer::core {

void PrintTitle(const std::string& title) {
  const std::string bar(title.size() + 4, '=');
  std::printf("\n%s\n= %s =\n%s\n", bar.c_str(), title.c_str(), bar.c_str());
}

void PrintHeading(const std::string& heading) {
  std::printf("\n--- %s ---\n", heading.c_str());
}

std::string FormatMs(sim::Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", sim::ToMillis(d));
  return buf;
}

std::string FormatDouble(double value, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string RenderScatter(const std::vector<double>& values, double lo, double hi,
                          std::size_t width) {
  std::string strip(width, ' ');
  if (values.empty() || hi <= lo) return strip;
  std::vector<int> counts(width, 0);
  for (double v : values) {
    double frac = (v - lo) / (hi - lo);
    frac = std::clamp(frac, 0.0, 1.0);
    std::size_t cell = static_cast<std::size_t>(frac * static_cast<double>(width - 1));
    ++counts[cell];
  }
  for (std::size_t i = 0; i < width; ++i) {
    if (counts[i] == 0) continue;
    if (counts[i] <= 2) {
      strip[i] = '.';
    } else if (counts[i] <= 8) {
      strip[i] = 'o';
    } else {
      strip[i] = '#';
    }
  }
  const double median = stats::Median(values);
  double frac = std::clamp((median - lo) / (hi - lo), 0.0, 1.0);
  strip[static_cast<std::size_t>(frac * static_cast<double>(width - 1))] = '|';
  return strip;
}

std::string RenderAccumulatorScatter(const stats::Accumulator& values, double lo, double hi,
                                     std::size_t width) {
  return RenderScatter(values.samples(), lo, hi, width);
}

void PrintSeries(const std::string& x_label, const std::string& y_label,
                 const std::vector<std::pair<double, double>>& points) {
  std::printf("%14s  %14s\n", x_label.c_str(), y_label.c_str());
  for (const auto& [x, y] : points) {
    std::printf("%14.3f  %14.3f\n", x, y);
  }
}

}  // namespace quicer::core
