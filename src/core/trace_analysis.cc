#include "core/trace_analysis.h"

#include <algorithm>
#include <deque>

namespace quicer::core {

DerivedPtoSeries DerivePtoSeries(const qlog::Trace& trace) {
  DerivedPtoSeries series;

  // Outstanding ack-eliciting sends per space, FIFO.
  std::deque<qlog::PacketEvent> outstanding[quic::kNumSpaces];

  recovery::RttEstimator estimator;
  recovery::PtoConfig pto_config;

  for (const qlog::PacketEvent& event : trace.packets()) {
    const int space = quic::SpaceIndex(event.space);
    if (event.sent) {
      if (event.ack_eliciting) outstanding[space].push_back(event);
      continue;
    }
    // A packet received in a space acknowledges (at least) the oldest
    // outstanding ack-eliciting packet of that space if a full round trip
    // could have elapsed.
    if (outstanding[space].empty()) continue;
    const qlog::PacketEvent& oldest = outstanding[space].front();
    if (event.time <= oldest.time) continue;

    DerivedSample sample;
    sample.sent_time = oldest.time;
    sample.acked_time = event.time;
    sample.rtt = event.time - oldest.time;
    outstanding[space].pop_front();
    series.samples.push_back(sample);

    estimator.AddSample(sample.rtt, 0);
    qlog::MetricsUpdate update;
    update.time = event.time;
    update.smoothed_rtt = estimator.smoothed();
    update.rtt_var = estimator.rttvar();
    update.latest_rtt = sample.rtt;
    update.min_rtt = estimator.min_rtt();
    update.pto = recovery::PtoPeriod(estimator, pto_config,
                                     quic::PacketNumberSpace::kHandshake, false);
    series.metrics.push_back(update);
  }
  return series;
}

ExposureComparison CompareExposure(const qlog::Trace& trace) {
  ExposureComparison comparison;
  comparison.exposed_updates = trace.metrics().size();
  const DerivedPtoSeries derived = DerivePtoSeries(trace);
  comparison.derived_samples = derived.samples.size();
  if (!trace.metrics().empty() && derived.FirstPto().has_value()) {
    const sim::Duration exposed_pto = trace.metrics().front().pto;
    comparison.first_pto_difference =
        std::max(exposed_pto, *derived.FirstPto()) - std::min(exposed_pto, *derived.FirstPto());
  }
  return comparison;
}

SampleCounts CountSamples(const qlog::Trace& trace) {
  SampleCounts counts;
  counts.packets_with_new_acks = trace.packets_with_new_acks();
  counts.exposed_metric_updates = trace.metrics().size();
  if (counts.packets_with_new_acks > 0) {
    counts.exposure_ratio = static_cast<double>(counts.exposed_metric_updates) /
                            static_cast<double>(counts.packets_with_new_acks);
  }
  return counts;
}

}  // namespace quicer::core
