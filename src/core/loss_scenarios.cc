#include "core/loss_scenarios.h"

#include <vector>

#include "quic/types.h"

namespace quicer::core {

int ServerFlightDatagrams(std::size_t certificate_bytes, http::Version version,
                          const tls::HandshakeSizes& sizes) {
  // Initial packet: header + ACK + CRYPTO[SH]; then Handshake CRYPTO bytes;
  // then the 1-RTT tail (H3 SETTINGS + NEW_CONNECTION_ID).
  const std::size_t initial_packet = 28 + 10 + 6 + sizes.server_hello + quic::kAeadTagSize;
  const std::size_t handshake_bytes = sizes.encrypted_extensions + certificate_bytes +
                                      sizes.certificate_verify + sizes.finished;
  std::size_t app_bytes = 30;  // NEW_CONNECTION_ID
  if (version == http::Version::kHttp3) app_bytes += http::kH3SettingsBytes + 15;

  // Per-datagram usable payload after long-header + AEAD overhead.
  const std::size_t per_datagram = quic::kMaxDatagramSize - 60;
  std::size_t total = initial_packet + handshake_bytes + 40 /*hs headers*/ + app_bytes;
  int datagrams = 0;
  while (total > 0) {
    ++datagrams;
    total -= std::min(total, per_datagram);
  }
  return datagrams;
}

sim::LossPattern FirstServerFlightTailLoss(quic::ServerBehavior behavior,
                                           std::size_t certificate_bytes,
                                           http::Version version) {
  const int flight = ServerFlightDatagrams(certificate_bytes, version);
  sim::LossPattern pattern;
  std::vector<int> drops;
  if (behavior == quic::ServerBehavior::kWaitForCertificate) {
    // Datagram 1 = coalesced ACK+SH(+HS head); drop 2..flight.
    for (int i = 2; i <= flight; ++i) drops.push_back(i);
  } else {
    // Datagram 1 = instant ACK; flight occupies 2..flight+1.
    for (int i = 2; i <= flight + 1; ++i) drops.push_back(i);
  }
  pattern.DropIndexRange(sim::Direction::kServerToClient, drops);
  return pattern;
}

sim::LossPattern SecondClientFlightLoss(clients::ClientImpl client) {
  const int flight = clients::SecondFlightDatagrams(client);
  sim::LossPattern pattern;
  std::vector<int> drops;
  for (int i = 2; i <= 1 + flight; ++i) drops.push_back(i);
  pattern.DropIndexRange(sim::Direction::kClientToServer, drops);
  return pattern;
}

}  // namespace quicer::core
