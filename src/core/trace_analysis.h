// Offline trace analysis — the paper's measurement methodology.
//
// §3: "To ensure consistency, we calculate PTOs based on sent and received
// packets according to the standard [RFC 9002]." and Appendix E: "When RTT
// variance is not available [in qlog], we calculate it from the sent and
// received packets instead."
//
// This module re-derives RTT samples and PTOs *from packet events alone*,
// independent of whatever the connection's own estimator did — exactly what
// the paper does to compare implementations whose qlog output is incomplete
// or non-standard (wrong variance formula, missing rttvar, sparse metric
// exposure).
#pragma once

#include <optional>
#include <vector>

#include "qlog/qlog.h"
#include "recovery/pto.h"

namespace quicer::core {

/// One re-derived RTT sample: an ACK-eliciting packet we sent whose
/// acknowledgment is inferred from the peer's next return packet.
struct DerivedSample {
  sim::Time sent_time = 0;
  sim::Time acked_time = 0;
  sim::Duration rtt = 0;
};

/// Estimator state replayed over the derived samples.
struct DerivedPtoSeries {
  std::vector<DerivedSample> samples;
  /// smoothed/var/PTO after each sample (RFC 9002 formulas).
  std::vector<qlog::MetricsUpdate> metrics;

  std::optional<sim::Duration> FirstPto() const {
    if (metrics.empty()) return std::nullopt;
    return metrics.front().pto;
  }
};

/// Re-derives RTT samples from a packet trace. A sample is formed for the
/// oldest outstanding ack-eliciting sent packet each time a packet is
/// received from the peer in the same space (our traces do not carry ACK
/// ranges, so this is the conservative approximation the paper applies to
/// packet captures: match each return packet to the newest unmatched
/// ack-eliciting send that precedes it by at least the serialisation time).
DerivedPtoSeries DerivePtoSeries(const qlog::Trace& trace);

/// Compares the connection's own exposed metrics with the re-derived ones.
struct ExposureComparison {
  std::size_t exposed_updates = 0;
  std::size_t derived_samples = 0;
  /// |first exposed PTO - first derived PTO|, if both exist.
  std::optional<sim::Duration> first_pto_difference;
};

ExposureComparison CompareExposure(const qlog::Trace& trace);

/// Counts the theoretically possible RTT samples (packets with new ACKs of
/// ack-eliciting data) versus the exposed recovery:metric updates — the two
/// bars of Fig 11.
struct SampleCounts {
  std::uint64_t packets_with_new_acks = 0;
  std::size_t exposed_metric_updates = 0;
  double exposure_ratio = 0.0;
};

SampleCounts CountSamples(const qlog::Trace& trace);

}  // namespace quicer::core
