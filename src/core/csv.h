// CSV data export for the benchmark harness.
//
// Every bench prints human-readable rows; plotting pipelines want machine-
// readable series. When the environment variable QUICER_DATA_DIR is set,
// benches additionally write one CSV per figure into that directory.
#pragma once

#include <fstream>
#include <optional>
#include <string>
#include <vector>

namespace quicer::core {

/// Minimal CSV writer: header row + value rows, RFC 4180 quoting for
/// fields containing separators/quotes.
class CsvWriter {
 public:
  /// Opens `<directory>/<name>.csv` for writing; fails silently into a
  /// detached state if the directory is not writable (benches must never
  /// crash over optional output).
  CsvWriter(const std::string& directory, const std::string& name,
            const std::vector<std::string>& header);

  /// True if the file is open and rows will be persisted.
  bool active() const { return out_.is_open(); }

  /// Writes one row; numbers are formatted with full precision.
  void Row(const std::vector<double>& values);

  /// Writes one row of preformatted fields.
  void TextRow(const std::vector<std::string>& fields);

  /// Number of data rows written so far.
  std::size_t rows() const { return rows_; }

  static std::string Escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t rows_ = 0;
};

/// Returns the data directory from QUICER_DATA_DIR, or nullopt if unset.
std::optional<std::string> DataDirFromEnv();

}  // namespace quicer::core
