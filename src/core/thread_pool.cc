#include "core/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

namespace quicer::core {
namespace {

unsigned ResolveThreads(unsigned requested) {
  unsigned threads = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (threads == 0) threads = 4;
  return threads;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = ResolveThreads(threads);
  queues_.reserve(count);
  for (unsigned i = 0; i < count; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) workers_.emplace_back([this, i] { WorkerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    // Holding sleep_mutex_ means no worker is between its predicate check
    // and the wait, so the notification cannot be lost.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(Task task) {
  const unsigned index = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    // pending_ must rise before the task becomes poppable: a worker that
    // pops and decrements first would wrap the counter. Updating under
    // sleep_mutex_ also closes the lost-wakeup window against the
    // predicate check in WorkerLoop.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lock(queues_[index]->mutex);
    queues_[index]->tasks.push_back(std::move(task));
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::TryPop(unsigned self, Task& task) {
  // Own queue first (front: submission order)...
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.front());
      own.tasks.pop_front();
      return true;
    }
  }
  // ...then steal from the back of a victim's.
  const unsigned n = static_cast<unsigned>(queues_.size());
  for (unsigned offset = 1; offset < n; ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(unsigned index) {
  while (true) {
    Task task;
    if (TryPop(index, task)) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      task();
      executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) != 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(std::size_t count, const std::function<void(std::size_t)>& fn,
                             unsigned max_parallelism) {
  if (count == 0) return;

  struct LoopState {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining;
    std::mutex mutex;
    std::condition_variable done;
  };
  auto state = std::make_shared<LoopState>();
  state->remaining.store(count, std::memory_order_relaxed);

  auto drain = [state, &fn, count] {
    for (std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed); i < count;
         i = state->next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->done.notify_all();
      }
    }
  };

  // One runner task per extra lane; the calling thread is the final lane, so
  // the loop completes even if no worker is ever free to help.
  unsigned lanes = size();
  if (max_parallelism != 0 && max_parallelism < lanes) lanes = max_parallelism;
  const std::size_t helpers =
      lanes > 1 ? std::min<std::size_t>(lanes - 1, count > 1 ? count - 1 : 0) : 0;
  for (std::size_t h = 0; h < helpers; ++h) Submit(drain);

  drain();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->remaining.load(std::memory_order_acquire) == 0; });
}

std::uint64_t ThreadPool::tasks_executed() const {
  return executed_.load(std::memory_order_relaxed);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    unsigned threads = 0;
    if (const char* env = std::getenv("QUICER_THREADS")) {  // lint:allow(ND003): pool sizing; scheduling only, exports are thread-count invariant
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) threads = static_cast<unsigned>(parsed);
    }
    return new ThreadPool(threads);  // leaked: workers must outlive static dtors
  }();
  return *pool;
}

}  // namespace quicer::core
