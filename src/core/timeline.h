// Merged two-sided connection timeline (a textual Fig 3).
//
// Combines the client's and server's qlog traces into one chronological
// transcript — packet sends/receives and notes — for debugging and for the
// conformance tests that check the handshake follows the paper's Fig 3
// choreography.
#pragma once

#include <string>
#include <vector>

#include "qlog/qlog.h"

namespace quicer::core {

struct TimelineEntry {
  sim::Time time = 0;
  /// "client" or "server".
  std::string actor;
  /// "send", "recv" or "note".
  std::string kind;
  quic::PacketNumberSpace space = quic::PacketNumberSpace::kInitial;
  std::uint64_t packet_number = 0;
  std::size_t size = 0;
  bool ack_eliciting = false;
  std::string detail;  // notes only
};

/// Builds the merged, time-ordered timeline from both traces.
std::vector<TimelineEntry> BuildTimeline(const qlog::Trace& client, const qlog::Trace& server);

/// Renders the timeline as aligned text, one line per entry.
std::string RenderTimeline(const std::vector<TimelineEntry>& timeline);

/// Convenience filters.
std::vector<TimelineEntry> SendsOf(const std::vector<TimelineEntry>& timeline,
                                   const std::string& actor);

}  // namespace quicer::core
