#include "core/timeline.h"

#include <algorithm>
#include <cstdio>

namespace quicer::core {
namespace {

void Append(std::vector<TimelineEntry>& out, const qlog::Trace& trace,
            const std::string& actor) {
  for (const qlog::PacketEvent& event : trace.packets()) {
    TimelineEntry entry;
    entry.time = event.time;
    entry.actor = actor;
    entry.kind = event.sent ? "send" : "recv";
    entry.space = event.space;
    entry.packet_number = event.packet_number;
    entry.size = event.size;
    entry.ack_eliciting = event.ack_eliciting;
    out.push_back(std::move(entry));
  }
  for (const qlog::NoteEvent& note : trace.notes()) {
    TimelineEntry entry;
    entry.time = note.time;
    entry.actor = actor;
    entry.kind = "note";
    entry.detail = note.category + ": " + note.detail;
    out.push_back(std::move(entry));
  }
}

}  // namespace

std::vector<TimelineEntry> BuildTimeline(const qlog::Trace& client,
                                         const qlog::Trace& server) {
  std::vector<TimelineEntry> timeline;
  Append(timeline, client, "client");
  Append(timeline, server, "server");
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const TimelineEntry& a, const TimelineEntry& b) { return a.time < b.time; });
  return timeline;
}

std::string RenderTimeline(const std::vector<TimelineEntry>& timeline) {
  std::string out;
  char line[256];
  for (const TimelineEntry& entry : timeline) {
    if (entry.kind == "note") {
      std::snprintf(line, sizeof(line), "%10.3f ms  %-6s  -- %s\n",
                    sim::ToMillis(entry.time), entry.actor.c_str(), entry.detail.c_str());
    } else {
      std::snprintf(line, sizeof(line), "%10.3f ms  %-6s  %-4s %-9s pn=%llu %5zu B%s\n",
                    sim::ToMillis(entry.time), entry.actor.c_str(), entry.kind.c_str(),
                    std::string(ToString(entry.space)).c_str(),
                    static_cast<unsigned long long>(entry.packet_number), entry.size,
                    entry.ack_eliciting ? "" : "  [non-eliciting]");
    }
    out += line;
  }
  return out;
}

std::vector<TimelineEntry> SendsOf(const std::vector<TimelineEntry>& timeline,
                                   const std::string& actor) {
  std::vector<TimelineEntry> out;
  for (const TimelineEntry& entry : timeline) {
    if (entry.kind == "send" && entry.actor == actor) out.push_back(entry);
  }
  return out;
}

}  // namespace quicer::core
