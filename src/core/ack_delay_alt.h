// Appendix D — can the ACK Delay field replace instant ACK?
//
// The paper answers no, for three reasons, all modelled here:
//  1. PTO initialisation ignores the acknowledgment delay of the first
//     sample, so a correct ACK Delay only helps from the second sample on;
//  2. many server implementations report an ACK Delay of 0 (Table 3);
//  3. deployed CDNs often report delays *exceeding* the RTT (Fig 10), which
//     clients must ignore (the sample may not drop below min_rtt).
#pragma once

#include "sim/time.h"

namespace quicer::core {

/// How a hypothetical client could use the ACK Delay field.
enum class AckDelayStrategy {
  kRfcStandard,       // ignore at PTO initialisation (what RFC 9002 does)
  kApplyAtInit,       // subtract the reported delay from the first sample
  kReinitOnSecond,    // re-initialise smoothed/var from the second sample
};

struct AckDelayAltScenario {
  sim::Duration rtt = sim::Millis(9);
  /// True frontend <-> cert-store delay baked into the WFC first sample.
  sim::Duration delta_t = sim::Millis(4);
  /// What the server writes into the ACK Delay field (Table 3 / Fig 10).
  sim::Duration reported_ack_delay = 0;
};

struct AckDelayAltResult {
  sim::Duration first_pto_wfc = 0;        // strategy applied to WFC
  sim::Duration first_pto_iack = 0;       // instant ACK baseline
  /// True when subtracting the reported delay pushed the sample below the
  /// true RTT (over-reported delay, the Fig 10 hazard) and the client must
  /// clamp to min_rtt.
  bool clamped_to_min_rtt = false;
};

/// Evaluates one strategy. For kReinitOnSecond the returned PTO is the one
/// effective after the *second* exchange (the first PTO stays inflated).
AckDelayAltResult EvaluateStrategy(AckDelayStrategy strategy,
                                   const AckDelayAltScenario& scenario);

}  // namespace quicer::core
