// Persistent work-stealing thread pool.
//
// The benches sweep thousands of (scenario point × repetition) experiment
// jobs. The original harness spawned and joined a fresh set of std::threads
// for every sweep point, parallelising only within a point; this pool is
// created once per process, schedules all jobs of a sweep globally, and is
// shared by every bench in a suite run.
//
// Design: each worker owns a deque guarded by its own mutex. Submitted tasks
// are distributed round-robin (or pushed locally when submitted from a
// worker); an idle worker pops from the front of its own deque and steals
// from the back of a victim's when empty. Determinism of experiment sweeps
// does not depend on scheduling order: every job writes to a result slot
// keyed by its (point, repetition) index, so outputs are bit-identical to a
// serial run regardless of thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace quicer::core {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Creates `threads` workers (0 = hardware concurrency, minimum 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains remaining tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Thread-safe.
  void Submit(Task task);

  /// Runs fn(0) .. fn(count-1), blocking until every call has returned.
  /// At most `max_parallelism` indices run concurrently (0 = no cap beyond
  /// the pool size). The calling thread participates in the work, so
  /// ParallelFor makes progress even when every worker is busy — including
  /// when it is invoked from inside a pool task (nested parallelism).
  void ParallelFor(std::size_t count, const std::function<void(std::size_t)>& fn,
                   unsigned max_parallelism = 0);

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// The process-wide shared pool, created on first use with hardware
  /// concurrency (override with the QUICER_THREADS environment variable).
  static ThreadPool& Global();

  /// Total tasks executed by workers since construction (telemetry; does not
  /// count indices the submitting thread ran itself inside ParallelFor).
  std::uint64_t tasks_executed() const;

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void WorkerLoop(unsigned index);
  bool TryPop(unsigned self, Task& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<unsigned> next_queue_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace quicer::core
